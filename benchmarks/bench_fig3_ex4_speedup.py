"""E10 — Figure 3, bottom-right: Example 4 (Cholesky) speedups (REC dataflow vs PDM).

Paper shape: REC's dataflow partitioning wins below 3 threads (loop-bound
optimization), but the simpler PDM partitioning has better load balance and
overtakes it at higher thread counts.  The simulation reproduces the two
regimes: REC's advantage shrinks (or reverses) as the processor count grows
because its 200+ barrier-separated wavefronts stop scaling, while PDM's single
DOALL phase keeps scaling.
"""

from repro.analysis.experiments import run_figure3_experiment
from repro.analysis.report import format_speedups
from repro.runtime.metrics import SpeedupTable, crossover_points

from conftest import emit, run_once


def test_figure3_example4_speedups(benchmark, report):
    result = run_once(
        benchmark,
        run_figure3_experiment,
        "ex4",
        {"NMAT": 3, "M": 4, "N": 24, "NRHS": 1},
        processors=(1, 2, 3, 4),
    )
    report("Figure 3 / Example 4 speedups", result)
    print(format_speedups(result))
    speedups = result["speedups"]
    rec, pdm = speedups["REC"], speedups["PDM"]
    # The load-balance effect of the paper: the simpler PDM partitioning wins
    # at the higher thread counts, and REC's relative position only gets worse
    # as the processor count grows (its 200+ barrier-separated wavefronts stop
    # scaling).  The paper's REC advantage below 3 threads (coming from the
    # Omega loop-bound optimization of the generated sequential code) is not
    # modelled — recorded as a deviation in EXPERIMENTS.md.
    assert result["winner_at"][4] == "PDM"
    advantage = [r - p for r, p in zip(rec, pdm)]
    assert advantage[-1] < advantage[0]
    # PDM keeps scaling up to 4 CPUs
    assert pdm[-1] > pdm[0] * 2.5
