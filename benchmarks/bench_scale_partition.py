"""E-scale — scaling sweeps of the array-native partitioning pipeline.

Not a paper artifact: this benchmark guards the performance contract of the
array-backed path, at two levels.

* ``test_scale_partition_speedup`` — the original core sweep: three-set
  partition (eq. 5) + dataflow wavefront peeling over a **synthetic relation**
  (:func:`repro.workloads.synthetic.scale_partition_case`), set vs vector
  engine, 10³–10⁵ points (10⁶ with ``REPRO_SCALE_XL=1``).  Contract: ≥5×
  at 10⁵ points, bit-identical partitions and wavefronts.

* ``test_end_to_end_pipeline_speedup`` — the full **program → exact Rd →
  schedule** pipeline on a real program (:func:`large_uniform_loop`), old
  path (hash-join analyser, frozenset unions, set-engine partitioners, tuple
  ``Schedule``) vs array-native path (sort/merge join, array concatenation,
  vector engines, :class:`~repro.core.schedule.ArrayPhase` schedule).
  Contract: ≥10× end-to-end wall-clock at 10⁵ points, bit-identical
  P1/P2/P3/W sets and wavefronts.

* ``test_triangular_end_to_end`` — the same pipeline over the non-rectangular
  :func:`large_triangular_loop` (bounding-box + filter enumeration feeding
  the sort join): path equivalence at 10⁴ points, array-path wall-clock
  recorded at 10⁵.

* ``test_plan_facade_overhead`` — the planning facade's contract on the
  10⁵-point sweep: a cold ``plan()`` costs <5% over the bare pipeline it
  wraps, and a cached re-plan is ≥10× faster than cold *and* returns the
  identical :class:`~repro.core.strategy.Plan` object.

* ``test_process_backend_speedup`` — the **execution**-side contract: the
  shared-memory ``process`` backend vs the ``serial`` backend on the
  ``large_uniform_loop`` wavefront schedule with the compute-heavy semantics
  kernel (:func:`repro.ir.semantics.compute_heavy_semantics`, so per-instance
  work dominates interpreter dispatch).  Contract: measured wall-clock
  speedup **>1× at 4 workers** on 10⁵ points (target ≥2×) — asserted on
  multi-core hosts; single-core machines record the measured row (expect
  <1×: there is nothing to parallelise onto) without failing, and
  ``REPRO_REQUIRE_PROCESS_SPEEDUP=1`` forces the assertion anywhere.

* ``test_statement_level_speedup`` — the §3.3 statement-level pipeline on the
  multi-statement triangular imperfect nest
  (:func:`repro.workloads.synthetic.large_cholesky_nest`): full
  program → statement-level Rd → wavefront schedule, tuple path
  (``engine="set"``: per-instance unify loop, Python set of unified pairs,
  set peeling, per-point block units) vs array path (``engine="vector"``:
  one ``unify_array`` interleave per statement, ``PointCodec`` orientation,
  CSR peeling over unified rows,
  :class:`~repro.core.schedule.UnifiedArrayPhase` schedule).  Contract: ≥5×
  at 10⁵ statement instances, bit-identical phase names and instance
  sequences.

Every sweep's rows are recorded in ``BENCH_scale.json`` at the repository
root — the perf-trajectory file.  Rows **accumulate across sessions**: each
row carries the session ``run_id`` and machine fingerprint, a re-run within
one session replaces its own rows, and rows from earlier sessions are kept
so the trajectory is inspectable over time.
"""

import json
import os
import time
from pathlib import Path

from repro.analysis.pipelines import (
    pipeline_mismatches,
    run_array_pipeline,
    run_set_pipeline,
)
from repro.core.dataflow import dataflow_partition, dataflow_schedule
from repro.core.partition import three_set_partition
from repro.core.strategy import PlanCache, PlanConfig, plan
from repro.dependence.analysis import DependenceAnalysis

from conftest import RUN_ID, emit, run_once, stamp_rows

#: (n1, n2) sweep: 10³, 10⁴ and 10⁵ iteration points.
SIZES = [(40, 25), (125, 80), (500, 200)]
XL_SIZE = (1250, 800)  # 10⁶ points, vector engine only

BENCH_JSON = Path(__file__).resolve().parents[1] / "BENCH_scale.json"


def record_bench(section, rows):
    """Append one sweep's rows to the BENCH_scale.json perf-trajectory file.

    Every row is stamped with the session ``run_id`` and the machine
    fingerprint (cpu_count / platform / Python version).  Rows from *other*
    sessions are preserved — the file is a trajectory, not a snapshot — while
    a re-run inside the same session replaces its own earlier rows, so a
    single bench invocation never double-counts.
    """
    data = {}
    if BENCH_JSON.exists():
        try:
            data = json.loads(BENCH_JSON.read_text())
        except json.JSONDecodeError:
            data = {}
    existing = data.get(section, [])
    if not isinstance(existing, list):
        existing = []
    kept = [r for r in existing if r.get("run_id") != RUN_ID]
    data[section] = kept + stamp_rows(rows)
    BENCH_JSON.write_text(json.dumps(data, indent=2) + "\n")


def hot_path(space, rd, engine):
    """The measured core hot path: eq. 5 partition + dataflow peeling."""
    partition = three_set_partition(space, rd, engine=engine)
    waves = dataflow_partition(space, rd, engine=engine)
    return partition, waves


def test_scale_partition_speedup(benchmark, report):
    from repro.workloads.synthetic import scale_partition_case

    rows = []
    for n1, n2 in SIZES:
        space, rd = scale_partition_case(n1, n2)
        t0 = time.perf_counter()
        set_partition, set_waves = hot_path(space, rd, "set")
        t_set = time.perf_counter() - t0
        t0 = time.perf_counter()
        vec_partition, vec_waves = hot_path(space, rd, "vector")
        t_vector = time.perf_counter() - t0
        # The two engines must agree exactly before their timings mean anything.
        assert vec_partition.p1 == set_partition.p1
        assert vec_partition.p2 == set_partition.p2
        assert vec_partition.p3 == set_partition.p3
        assert vec_partition.w == set_partition.w
        assert vec_waves.wavefronts == set_waves.wavefronts
        rows.append(
            {
                "points": n1 * n2,
                "pairs": len(rd),
                "wavefronts": vec_waves.num_steps,
                "t_set_s": round(t_set, 4),
                "t_vector_s": round(t_vector, 4),
                "speedup": round(t_set / t_vector, 2),
            }
        )
    if os.environ.get("REPRO_SCALE_XL"):
        n1, n2 = XL_SIZE
        space, rd = scale_partition_case(n1, n2)
        t0 = time.perf_counter()
        _, waves = hot_path(space, rd, "vector")
        t_vector = time.perf_counter() - t0
        rows.append(
            {
                "points": n1 * n2,
                "pairs": len(rd),
                "wavefronts": waves.num_steps,
                "t_set_s": None,
                "t_vector_s": round(t_vector, 4),
                "speedup": None,
            }
        )
    report("Scaling sweep: three-set partition + dataflow peeling", rows)
    record_bench("scale_partition", rows)

    big = rows[len(SIZES) - 1]
    assert big["points"] >= 10**5
    assert big["speedup"] >= 5.0, (
        f"vectorized engine only {big['speedup']}x faster at {big['points']} points"
    )

    # Record the vectorized hot path at the largest swept size under
    # pytest-benchmark as well.
    space, rd = scale_partition_case(*SIZES[-1])
    run_once(benchmark, hot_path, space, rd, "vector")


# ---------------------------------------------------------------------------
# end-to-end pipeline: program -> exact Rd -> partition -> schedule
# (drivers shared with tests/core/test_array_pipeline.py via
#  repro.analysis.pipelines, so the bench measures exactly what is verified)
# ---------------------------------------------------------------------------


def test_end_to_end_pipeline_speedup(report):
    from repro.workloads.synthetic import large_uniform_loop

    rows = []
    for n1, n2 in SIZES:
        prog = large_uniform_loop(n1, n2)
        t0 = time.perf_counter()
        set_run = run_set_pipeline(prog)
        t_set = time.perf_counter() - t0
        t0 = time.perf_counter()
        array_run = run_array_pipeline(prog)
        t_array = time.perf_counter() - t0
        assert not pipeline_mismatches(set_run, array_run)
        rows.append(
            {
                "points": n1 * n2,
                "pairs": len(array_run.rd),
                "wavefronts": array_run.schedule.num_phases,
                "t_set_s": round(t_set, 4),
                "t_array_s": round(t_array, 4),
                "speedup": round(t_set / t_array, 2),
            }
        )
    report("End-to-end sweep: program -> exact Rd -> schedule", rows)
    record_bench("end_to_end_uniform", rows)

    big = rows[-1]
    assert big["points"] >= 10**5
    assert big["speedup"] >= 10.0, (
        f"array-native pipeline only {big['speedup']}x faster end-to-end "
        f"at {big['points']} points"
    )


def test_plan_facade_overhead(report):
    """Facade contract: cold plan() <5% over the bare pipeline; cached ≥10×.

    The bare pipeline is exactly what the pinned dataflow strategy runs for a
    single-statement perfect nest — analysis on the vector engine, then the
    CSR wavefront schedule off the iteration arrays — so the delta measures
    only the facade itself (fingerprinting, registry walk, Plan assembly).
    The two sides are measured *interleaved*, best-of-5, and the assertion
    carries a 10 ms absolute slack: on a quiet machine the measured overhead
    is ≈2.5%, but sub-second wall-clock comparisons on shared CI runners
    need headroom against noisy neighbours (the recorded row always carries
    the true measured ratio).
    """
    from repro.workloads.synthetic import large_uniform_loop

    n1, n2 = SIZES[-1]
    config = PlanConfig(engine="vector", strategies=("dataflow",))

    def bare():
        prog = large_uniform_loop(n1, n2)
        analysis = DependenceAnalysis(prog, {}, engine="vector")
        return dataflow_schedule(
            f"{prog.name}-REC-dataflow",
            analysis.iteration_space_array,
            analysis.iteration_dependences,
            label="s",
            engine="vector",
        )

    def cold():
        return plan(large_uniform_loop(n1, n2), config=config, cache=False)

    # Interleave the two measurements so a load spike hits both sides alike.
    t_bare = t_cold = float("inf")
    bare_schedule = cold_plan = None
    for _ in range(5):
        t0 = time.perf_counter()
        bare_schedule = bare()
        t_bare = min(t_bare, time.perf_counter() - t0)
        t0 = time.perf_counter()
        cold_plan = cold()
        t_cold = min(t_cold, time.perf_counter() - t0)

    # Same work, same result: the facade may not change the schedule.
    assert cold_plan.schedule.num_phases == bare_schedule.num_phases
    assert all(
        pa.name == pb.name and len(pa) == len(pb)
        for pa, pb in zip(cold_plan.schedule.phases, bare_schedule.phases)
    )

    cache = PlanCache()
    warm_prog = large_uniform_loop(n1, n2)
    t0 = time.perf_counter()
    first = plan(warm_prog, config=config, cache=cache)
    t_first = time.perf_counter() - t0
    t0 = time.perf_counter()
    again = plan(large_uniform_loop(n1, n2), config=config, cache=cache)
    t_cached = time.perf_counter() - t0
    assert again is first  # identity: the cached re-plan skips re-analysis

    rows = [
        {
            "points": n1 * n2,
            "t_bare_s": round(t_bare, 4),
            "t_plan_cold_s": round(t_cold, 4),
            "facade_overhead": round(t_cold / t_bare - 1.0, 4),
            "t_plan_cached_s": round(t_cached, 6),
            "cache_speedup": round(t_first / t_cached, 1),
        }
    ]
    report("Planning facade: cold overhead and cached re-plan", rows)
    record_bench("plan_facade", rows)

    assert t_cold <= 1.05 * t_bare + 0.010, (
        f"plan() facade overhead {t_cold / t_bare - 1.0:.1%} exceeds 5% "
        f"({t_cold:.4f}s vs {t_bare:.4f}s bare)"
    )
    assert t_first / t_cached >= 10.0, (
        f"cached re-plan only {t_first / t_cached:.1f}x faster than cold"
    )


def test_process_backend_speedup(report):
    """Execution contract of the shared-memory process pool: >1× (target ≥2×)
    over the serial backend at 4 workers, 10⁵ points, compute-heavy kernel.

    The schedule is the vectorised dataflow wavefront plan of
    ``large_uniform_loop`` — 200 DOALL phases whose :class:`ArrayPhase` rows
    ship to the persistent workers as strided slices (attach-once shared
    memory, barrier per phase).  Timings are end-to-end per run, *including*
    pool start-up and the shared-memory copy-in/copy-out, so the recorded
    speedup is what a caller of ``plan(...).execute(backend="process")``
    actually observes.
    """
    import numpy as np

    from repro.ir.semantics import compute_heavy_semantics
    from repro.runtime import execute
    from repro.runtime.process import process_unavailable_reason
    from repro.workloads.synthetic import large_uniform_loop

    reason = process_unavailable_reason()
    if reason is not None:
        import pytest

        pytest.skip(f"process backend unavailable: {reason}")

    workers = 4
    rows = []
    for n1, n2 in SIZES[1:]:  # 10⁴ warm-up row, 10⁵ gated row
        prog = large_uniform_loop(n1, n2, semantics=compute_heavy_semantics)
        config = PlanConfig(engine="vector", strategies=("dataflow",))
        p = plan(prog, config=config, cache=False)

        t0 = time.perf_counter()
        serial = execute(prog, p.schedule, {}, backend="serial", seed=None)
        t_serial = time.perf_counter() - t0
        t0 = time.perf_counter()
        proc = execute(
            prog, p.schedule, {}, backend="process", workers=workers, seed=None
        )
        t_process = time.perf_counter() - t0
        # The two backends must agree exactly before their timings mean anything.
        assert all(
            np.array_equal(serial.store[name], proc.store[name])
            for name in serial.store
        )
        assert proc.instances_executed == p.schedule.total_work
        # On a single-core host the sub-1× "speedup" is expected (there is
        # nothing to parallelise onto) and must not be mistaken for a
        # regression: mark the row explicitly instead of recording it
        # indistinguishably from a gated multi-core measurement.
        multicore = (os.cpu_count() or 1) >= 2
        row = {
            "points": n1 * n2,
            "phases": p.schedule.num_phases,
            "workers": workers,
            "cpu_count": os.cpu_count(),
            "t_serial_s": round(t_serial, 4),
            "t_process_s": round(t_process, 4),
            "speedup": round(t_serial / t_process, 2),
            "gated": multicore,
        }
        if not multicore:
            row["gate_skip_reason"] = (
                "cpu_count == 1: no parallel speedup is possible, "
                "row recorded for trajectory only"
            )
        rows.append(row)
    report("Process-backend sweep: serial vs shared-memory pool", rows)
    record_bench("process_backend", rows)

    big = rows[-1]
    assert big["points"] >= 10**5
    if big["gated"] or os.environ.get("REPRO_REQUIRE_PROCESS_SPEEDUP"):
        assert big["speedup"] > 1.0, (
            f"process backend only {big['speedup']}x the serial backend at "
            f"{big['points']} points with {workers} workers "
            f"({os.cpu_count()} CPUs visible)"
        )


def test_statement_level_speedup(report):
    """§3.3 contract: the array-native statement level is ≥5× the tuple path
    at 10⁵ statement instances, with bit-identical schedules."""
    from repro.workloads.synthetic import large_cholesky_nest

    set_config = PlanConfig(engine="set", strategies=("dataflow",))
    vec_config = PlanConfig(engine="vector", strategies=("dataflow",))

    rows = []
    #: n sweep of the triangular nest: ~10³, ~10⁴ and ~10⁵ statement instances.
    for n in (45, 141, 447):
        t0 = time.perf_counter()
        vec_plan = plan(large_cholesky_nest(n), config=vec_config, cache=False)
        t_vector = time.perf_counter() - t0
        t0 = time.perf_counter()
        set_plan = plan(large_cholesky_nest(n), config=set_config, cache=False)
        t_set = time.perf_counter() - t0
        # The two engines must agree exactly before their timings mean anything:
        # same unified space, same Rd, same wavefronts, same instance order.
        assert set_plan.statement_space.unified == vec_plan.statement_space.unified
        assert set_plan.statement_space.rd == vec_plan.statement_space.rd
        assert set_plan.schedule.num_phases == vec_plan.schedule.num_phases
        for ps, pv in zip(set_plan.schedule.phases, vec_plan.schedule.phases):
            assert ps.name == pv.name
            assert ps.instances() == pv.instances()
        rows.append(
            {
                "instances": len(vec_plan.statement_space),
                "unified_pairs": len(vec_plan.statement_space.rd),
                "wavefronts": vec_plan.schedule.num_phases,
                "t_set_s": round(t_set, 4),
                "t_vector_s": round(t_vector, 4),
                "speedup": round(t_set / t_vector, 2),
            }
        )
    report("Statement-level sweep: program -> unified Rd -> schedule", rows)
    record_bench("statement_level", rows)

    big = rows[-1]
    assert big["instances"] >= 10**5
    assert big["speedup"] >= 5.0, (
        f"array-native statement level only {big['speedup']}x faster "
        f"at {big['instances']} statement instances"
    )


def test_triangular_end_to_end(report):
    from repro.workloads.synthetic import large_triangular_loop

    # Equivalence of the two paths through the non-rectangular join at 10⁴.
    prog = large_triangular_loop(141)
    assert not pipeline_mismatches(run_set_pipeline(prog), run_array_pipeline(prog))

    # Array-path wall-clock at 10⁵ points (the set path would take minutes:
    # its dataflow peeling alone is O(steps · |Rd|) over Python sets).
    rows = []
    for n in (141, 447):
        prog = large_triangular_loop(n)
        t0 = time.perf_counter()
        array_run = run_array_pipeline(prog)
        t_array = time.perf_counter() - t0
        assert array_run.schedule.num_phases == n  # one wavefront per diagonal row
        rows.append(
            {
                "n": n,
                "points": n * (n + 1) // 2,
                "pairs": len(array_run.rd),
                "wavefronts": array_run.schedule.num_phases,
                "t_array_s": round(t_array, 4),
            }
        )
    report("Triangular end-to-end sweep (array path)", rows)
    record_bench("end_to_end_triangular", rows)
    assert rows[-1]["points"] >= 10**5
