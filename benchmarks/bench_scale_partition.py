"""E-scale — scaling sweep of the vectorized partitioning engine.

Not a paper artifact: this benchmark guards the performance contract of the
array-backed partitioning path.  It sweeps iteration-space sizes from 10³ to
10⁵ points (10⁶ with ``REPRO_SCALE_XL=1``; the set engine is skipped there —
it would take minutes) over the hot path of Algorithm 1's concrete branch —
three-set partition (eq. 5) followed by dataflow wavefront peeling — running
both the set-based engine and the vectorized engine on the same uniform
dependence workload (:func:`repro.workloads.synthetic.scale_partition_case`).

Asserted contract: at ≥10⁵ points the vectorized engine is ≥5× faster in
wall-clock, and both engines produce identical P1/P2/P3/W sets and identical
wavefronts.
"""

import os
import time

from repro.core.dataflow import dataflow_partition
from repro.core.partition import three_set_partition

from conftest import emit, run_once

#: (n1, n2) sweep: 10³, 10⁴ and 10⁵ iteration points.
SIZES = [(40, 25), (125, 80), (500, 200)]
XL_SIZE = (1250, 800)  # 10⁶ points, vector engine only


def hot_path(space, rd, engine):
    """The measured hot path: eq. 5 partition + dataflow peeling."""
    partition = three_set_partition(space, rd, engine=engine)
    waves = dataflow_partition(space, rd, engine=engine)
    return partition, waves


def test_scale_partition_speedup(benchmark, report):
    from repro.workloads.synthetic import scale_partition_case

    rows = []
    for n1, n2 in SIZES:
        space, rd = scale_partition_case(n1, n2)
        t0 = time.perf_counter()
        set_partition, set_waves = hot_path(space, rd, "set")
        t_set = time.perf_counter() - t0
        t0 = time.perf_counter()
        vec_partition, vec_waves = hot_path(space, rd, "vector")
        t_vector = time.perf_counter() - t0
        # The two engines must agree exactly before their timings mean anything.
        assert vec_partition.p1 == set_partition.p1
        assert vec_partition.p2 == set_partition.p2
        assert vec_partition.p3 == set_partition.p3
        assert vec_partition.w == set_partition.w
        assert vec_waves.wavefronts == set_waves.wavefronts
        rows.append(
            {
                "points": n1 * n2,
                "pairs": len(rd),
                "wavefronts": vec_waves.num_steps,
                "t_set_s": round(t_set, 4),
                "t_vector_s": round(t_vector, 4),
                "speedup": round(t_set / t_vector, 2),
            }
        )
    if os.environ.get("REPRO_SCALE_XL"):
        n1, n2 = XL_SIZE
        space, rd = scale_partition_case(n1, n2)
        t0 = time.perf_counter()
        _, waves = hot_path(space, rd, "vector")
        t_vector = time.perf_counter() - t0
        rows.append(
            {
                "points": n1 * n2,
                "pairs": len(rd),
                "wavefronts": waves.num_steps,
                "t_set_s": None,
                "t_vector_s": round(t_vector, 4),
                "speedup": None,
            }
        )
    report("Scaling sweep: three-set partition + dataflow peeling", rows)

    big = rows[len(SIZES) - 1]
    assert big["points"] >= 10**5
    assert big["speedup"] >= 5.0, (
        f"vectorized engine only {big['speedup']}x faster at {big['points']} points"
    )

    # Record the vectorized hot path at the largest swept size under
    # pytest-benchmark as well.
    space, rd = scale_partition_case(*SIZES[-1])
    run_once(benchmark, hot_path, space, rd, "vector")
