"""E7 — Figure 3, top-left: Example 1 speedups (REC vs PDM vs PL, 1-4 CPUs).

Paper shape: REC is the best scheme at every thread count (super-linear below
3 threads thanks to the simplified subscript arithmetic of the WHILE chains);
PDM and PL trail it.  The simulation reproduces the ordering and the scaling;
absolute Itanium numbers are not claimed (see DESIGN.md §2).
"""

from repro.analysis.experiments import run_figure3_experiment
from repro.analysis.report import format_speedups

from conftest import emit, run_once


def test_figure3_example1_speedups(benchmark, report):
    result = run_once(benchmark, run_figure3_experiment, "ex1", {"N1": 40, "N2": 120})
    report("Figure 3 / Example 1 speedups", result)
    print(format_speedups(result))
    speedups = result["speedups"]
    # REC wins at every processor count
    for k, p in enumerate(result["processors"]):
        assert result["winner_at"][p] == "REC"
    # REC is super-linear at low thread counts (subscript simplification)
    assert speedups["REC"][1] > 2.0
    # all schemes scale with the processor count
    for values in speedups.values():
        assert values[-1] > 1.5
