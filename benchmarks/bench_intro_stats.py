"""E12 — §1 statistics: non-uniform / coupled-subscript fractions on a corpus.

The SPECfp95 sources are unavailable; the corpus generator produces loops with
a known composition calibrated to the paper's numbers (45% coupled pairs) and
the classifier's measured fractions are compared against the generation
ground truth (methodology reproduction, see DESIGN.md §2).
"""

from repro.analysis.experiments import run_intro_statistics

from conftest import emit, run_once


def test_intro_statistics(benchmark, report):
    result = run_once(benchmark, run_intro_statistics, loops=40, seed=20040815)
    report("§1 statistics on the synthetic corpus", result)
    measured = result["measured"]
    generated = result["generated"]
    assert abs(measured["coupled_fraction"] - generated["coupled_fraction"]) < 1e-9
    assert 0.0 < measured["coupled_fraction"] < 1.0
