"""E9 — Figure 3, bottom-left: Example 3 speedups (REC vs PAR vs DOACROSS).

Paper shape: REC performs best because it has the least synchronization (two
DOALL phases); inner-loop parallelization (PAR) pays one barrier per outer
iteration; DOACROSS pays per-iteration synchronization.
"""

from repro.analysis.experiments import run_figure3_experiment
from repro.analysis.report import format_speedups

from conftest import emit, run_once


def test_figure3_example3_speedups(benchmark, report):
    result = run_once(benchmark, run_figure3_experiment, "ex3", {"N": 40})
    report("Figure 3 / Example 3 speedups", result)
    print(format_speedups(result))
    speedups = result["speedups"]
    for p in result["processors"]:
        assert result["winner_at"][p] == "REC"
    # REC has the fewest phases (least synchronization)
    assert result["phases"]["REC"] <= min(result["phases"]["PAR"], result["phases"]["DOACROSS"])
    # DOACROSS trails PAR and REC at 4 CPUs (most synchronization)
    assert speedups["DOACROSS"][-1] <= speedups["REC"][-1]
