"""E-symbolic — the symbolic O(1)-in-N planning + compiled-kernel contracts.

Not a paper artifact: this benchmark guards the two performance contracts of
the ``symbolic`` strategy and its ``compiled`` execution backend.

* ``test_symbolic_plan_is_o1_in_n`` — planning a symbolic-eligible workload
  at **10⁸ iteration points** returns in **< 100 ms** without enumerating the
  iteration space or the dependence pairs: the plan is built from the
  closed-form three-set partition (``symbolic_three_set_partition``), the
  DOALL bounds come from ``codegen.bounds`` range arithmetic, and the Lemma 1
  chains are lattice cosets (start + k·T strided arrays), so nothing in the
  pipeline is proportional to N.  Asserted structurally too: the shared
  ``DependenceAnalysis`` must not have materialised its point or pair arrays.

* ``test_compiled_backend_speedup`` — on a 10⁶-point workload the generated
  NumPy kernel (``compiled`` backend) beats the interpreting ``serial``
  backend by **≥ 10×** wall-clock with a **bit-identical** final store, and a
  second execution of the same plan hits the fingerprint-keyed kernel cache.

Rows are appended to ``BENCH_scale.json`` via the run_id-keyed trajectory
recorder shared with ``bench_scale_partition.py``.
"""

import time

import numpy as np

from repro.core.strategy import PlanConfig, plan
from repro.runtime import execute, execute_sequential

from bench_scale_partition import record_bench

#: The O(1)-planning gate size: 10⁴ × 10⁴ = 10⁸ iteration points.
PLAN_N = (10_000, 10_000)
#: The kernel-speedup gate size: 10³ × 10³ = 10⁶ iteration points (the serial
#: interpreter at 10⁸ would take half an hour; the claim is size-stable).
EXEC_N = (1_000, 1_000)

SYMBOLIC = PlanConfig(strategies=("symbolic",))


def test_symbolic_plan_is_o1_in_n(report):
    from repro.workloads.synthetic import large_uniform_loop

    # Warm the import graph and the symbolic set algebra on a tiny instance so
    # the timed run measures planning, not first-touch module loading.
    plan(large_uniform_loop(8, 8), config=SYMBOLIC, cache=False)

    n1, n2 = PLAN_N
    t_plan = float("inf")
    p = None
    for _ in range(3):
        prog = large_uniform_loop(n1, n2)
        t0 = time.perf_counter()
        p = plan(prog, config=SYMBOLIC, cache=False)
        t_plan = min(t_plan, time.perf_counter() - t0)

    assert p.strategy == "symbolic"
    assert p.schedule.total_work == n1 * n2  # |P1| + |P2| + |P3| = |Φ|
    # O(1) structurally: the shared analysis never materialised the iteration
    # space or enumerated dependence pairs (both are lazy cached properties —
    # enumeration would leave them in the instance __dict__).
    assert "iteration_space_array" not in vars(p.analysis)
    assert "pair_dependences" not in vars(p.analysis)

    rows = [
        {
            "points": n1 * n2,
            "phases": p.schedule.num_phases,
            "strategy": p.strategy,
            "t_plan_s": round(t_plan, 4),
        }
    ]
    report("Symbolic planning at 10^8 points", rows)
    record_bench("symbolic_plan", rows)

    assert t_plan < 0.1, (
        f"symbolic plan() took {t_plan:.3f}s at {n1 * n2} points — "
        f"the O(1)-in-N contract allows < 100 ms"
    )


def test_compiled_backend_speedup(report):
    from repro.workloads.synthetic import large_uniform_loop

    n1, n2 = EXEC_N
    prog = large_uniform_loop(n1, n2)
    p = plan(prog, config=SYMBOLIC, cache=False)

    t0 = time.perf_counter()
    serial = execute(prog, p.schedule, {}, backend="serial", seed=None)
    t_serial = time.perf_counter() - t0

    t0 = time.perf_counter()
    compiled = execute(prog, p.schedule, {}, backend="compiled")
    t_compiled = time.perf_counter() - t0

    # Bit-identical to both the serial backend and the sequential reference
    # before the timings mean anything.
    ref = execute_sequential(prog, {})
    assert set(ref) == set(compiled.store)
    assert all(np.array_equal(ref[k], compiled.store[k]) for k in ref)
    assert all(np.array_equal(serial.store[k], compiled.store[k]) for k in ref)
    assert compiled.meta.get("kernel") is True
    assert compiled.instances_executed == p.schedule.total_work

    # The second execution of the same plan reuses the compiled module.
    again = execute(prog, p.schedule, {}, backend="compiled")
    assert again.meta["kernel_cache"] == "hit"
    assert all(np.array_equal(ref[k], again.store[k]) for k in ref)

    speedup = t_serial / t_compiled
    rows = [
        {
            "points": n1 * n2,
            "phases": p.schedule.num_phases,
            "t_serial_s": round(t_serial, 4),
            "t_compiled_s": round(t_compiled, 4),
            "speedup": round(speedup, 1),
            "kernel_cache_second_run": again.meta["kernel_cache"],
        }
    ]
    report("Compiled kernel vs serial interpreter", rows)
    record_bench("symbolic_compiled", rows)

    assert speedup >= 10.0, (
        f"compiled kernel only {speedup:.1f}x the serial backend at "
        f"{n1 * n2} points — the contract requires >= 10x"
    )
