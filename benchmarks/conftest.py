"""Shared fixtures and helpers for the benchmark harness.

Every benchmark file reproduces one table or figure of the paper (see the
per-experiment index in DESIGN.md).  The measured artifacts — partition sizes,
chain lengths, speedup tables — are printed so they can be compared with the
paper and recorded in EXPERIMENTS.md; pytest-benchmark additionally times the
reproduction itself.

The problem sizes default to scaled-down versions of the paper's parameters so
the exact (enumeration-based) dependence analysis completes in seconds; the
claims being checked (who wins, where the crossovers are, which sets are
empty) are size-stable, and EXPERIMENTS.md records the parameters used.
"""

import json
import os
import platform
import uuid

import pytest

#: One id per bench session, stamped onto every recorded row so rows written
#: by different runs (and different hosts) stay distinguishable in the
#: perf-trajectory files.
RUN_ID = uuid.uuid4().hex[:12]


def machine_fingerprint():
    """The host facts that make a recorded timing comparable to another."""
    return {
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "python": platform.python_version(),
    }


def stamp_rows(rows):
    """Stamp bench rows with the session ``run_id`` and machine fingerprint."""
    fp = machine_fingerprint()
    return [{**row, "run_id": RUN_ID, "machine": fp} for row in rows]


def emit(title, payload):
    """Print one experiment's reproduced numbers in a stable, greppable form."""
    print(f"\n=== {title} ===")
    print(json.dumps(payload, indent=2, default=str))


@pytest.fixture
def report():
    return emit


def run_once(benchmark, fn, *args, **kwargs):
    """Run an expensive reproduction exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
