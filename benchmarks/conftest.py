"""Shared fixtures and helpers for the benchmark harness.

Every benchmark file reproduces one table or figure of the paper (see the
per-experiment index in DESIGN.md).  The measured artifacts — partition sizes,
chain lengths, speedup tables — are printed so they can be compared with the
paper and recorded in EXPERIMENTS.md; pytest-benchmark additionally times the
reproduction itself.

The problem sizes default to scaled-down versions of the paper's parameters so
the exact (enumeration-based) dependence analysis completes in seconds; the
claims being checked (who wins, where the crossovers are, which sets are
empty) are size-stable, and EXPERIMENTS.md records the parameters used.
"""

import json

import pytest


def emit(title, payload):
    """Print one experiment's reproduced numbers in a stable, greppable form."""
    print(f"\n=== {title} ===")
    print(json.dumps(payload, indent=2, default=str))


@pytest.fixture
def report():
    return emit


def run_once(benchmark, fn, *args, **kwargs):
    """Run an expensive reproduction exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
