"""E11 — Theorem 1: the chain-length bound log_a(L) + 1.

Measured longest recurrence chain vs the bound for several iteration-space
sizes of the Example 1 loop (a = det T = 3).
"""

from repro.analysis.experiments import run_theorem1_check

from conftest import emit, run_once


def test_theorem1_bound_holds(benchmark, report):
    result = run_once(benchmark, run_theorem1_check, ((10, 10), (20, 30), (40, 50), (60, 80)))
    report("Theorem 1: longest chain vs bound", result)
    assert result["all_hold"] is True
