"""E-serving — warm-vs-cold request latency through the plan server.

Not a paper artifact: this benchmark guards the serving layer's amortisation
contract.  A cold one-shot request pays ``plan()`` (dependence analysis,
strategy selection, schedule construction) plus — on the ``process`` backend
— a full worker fork inside ``execute()``.  A warm request against a
memory-resident :class:`~repro.serving.PlanServer` pays neither: the plan
comes out of the shared :class:`PlanCache` and the execution attaches a
fresh shared-memory descriptor table to the already-running pool.

Gate: for repeated (program, params) requests on the process backend, the
warm-path latency must be **≥ 10×** faster than the cold one-shot path,
with served results bit-identical to ``execute_sequential``.  The workload
is the corpus entry with the largest planning cost (a deep rectangular
nest): planning dominates execution there, which is exactly the request
profile a plan-serving daemon exists for.

Rows are appended to ``BENCH_scale.json`` via the run_id-keyed trajectory
recorder shared with ``bench_scale_partition.py``.
"""

import threading
import time

import numpy as np
import pytest

from repro.core.strategy import plan
from repro.runtime import execute, execute_sequential
from repro.runtime.backends import ExecConfig
from repro.runtime.process import process_unavailable_reason
from repro.serving import PlanServer
from repro.serving.transport import TransportClient, TransportServer
from repro.workloads.corpus import selection_corpus

from bench_scale_partition import record_bench

pytestmark = pytest.mark.skipif(
    process_unavailable_reason() is not None,
    reason=f"process backend unavailable: {process_unavailable_reason()}",
)

#: CI guard: the smoke pool never uses more than 2 workers.
WORKERS = 2
COLD_RUNS = 3
WARM_RUNS = 5


def _planning_heaviest_entry():
    """The corpus entry whose plan cost dominates — measured, not assumed."""
    best, best_t = None, 0.0
    for entry in selection_corpus(size="small"):
        t0 = time.perf_counter()
        plan(entry.program, params=entry.params, cache=False)
        t_plan = time.perf_counter() - t0
        if t_plan > best_t:
            best, best_t = entry, t_plan
    return best


def test_warm_requests_amortise_cold_planning(report):
    entry = _planning_heaviest_entry()
    prog, params = entry.program, dict(entry.params)
    cfg = ExecConfig(backend="process", workers=WORKERS)
    ref = execute_sequential(prog, params)

    # -- cold: one-shot plan() + execute(), fresh pool forked every time ----
    t_cold = float("inf")
    for _ in range(COLD_RUNS):
        t0 = time.perf_counter()
        p = plan(prog, params=params, cache=False)
        cold = execute(prog, p.schedule, params, config=cfg)
        t_cold = min(t_cold, time.perf_counter() - t0)
    assert all(np.array_equal(ref[k], cold.store[k]) for k in ref)

    # -- warm: repeated requests against one memory-resident server ---------
    with PlanServer(default_exec=cfg) as srv:
        first = srv.request(prog, params=params, timeout=120)  # pays the warm-up
        t_warm = float("inf")
        for _ in range(WARM_RUNS):
            t0 = time.perf_counter()
            resp = srv.request(prog, params=params, timeout=120)
            t_warm = min(t_warm, time.perf_counter() - t0)
            assert resp.plan_cache_hit and resp.pool_reused
            assert resp.result.meta.get("pool") == "injected"
            assert all(np.array_equal(ref[k], resp.result.store[k]) for k in ref)
    assert not first.plan_cache_hit  # the warm-up really was the cold miss

    speedup = t_cold / t_warm
    rows = [
        {
            "workload": entry.name if hasattr(entry, "name") else entry.family,
            "strategy": p.strategy,
            "backend": "process",
            "workers": WORKERS,
            "t_cold_s": round(t_cold, 4),
            "t_warm_s": round(t_warm, 4),
            "speedup": round(speedup, 1),
        }
    ]
    report("Warm server request vs cold one-shot plan()+execute()", rows)
    record_bench("serving", rows)

    assert speedup >= 10.0, (
        f"warm serving path only {speedup:.1f}x the cold one-shot path "
        f"(cold {t_cold * 1e3:.1f} ms, warm {t_warm * 1e3:.1f} ms) — "
        f"the serving contract requires >= 10x on repeat-plan requests"
    )


#: Wire-path measurement: M concurrent TCP clients, R warm requests each.
CLIENTS = 4
REQUESTS_PER_CLIENT = 8


def test_wire_path_throughput_and_overhead(report):
    """Throughput + p50/p99 over concurrent TCP clients; the warm wire
    overhead against the in-process path is *recorded*, not gated — the
    wire pays marshalling + loopback, the contract is only that results
    stay bit-identical and the row lands in the trajectory."""
    entry = _planning_heaviest_entry()
    prog, params = entry.program, dict(entry.params)
    cfg = ExecConfig(backend="process", workers=WORKERS)
    ref = execute_sequential(prog, params)

    latencies = []
    windows = []
    failures = []
    lock = threading.Lock()

    with TransportServer(default_exec=cfg, max_pending=64) as ts:
        host, port = ts.address
        srv = ts.plan_server

        # in-process warm baseline on the very same (shared) server
        srv.request(prog, params=params, timeout=120)  # warm-up
        t_local = float("inf")
        for _ in range(WARM_RUNS):
            t0 = time.perf_counter()
            srv.request(prog, params=params, timeout=120)
            t_local = min(t_local, time.perf_counter() - t0)

        def client(seed: int) -> None:
            try:
                with TransportClient(host, port, rng_seed=seed) as c:
                    c.request(prog, params=params, timeout=120)  # conn warm-up
                    mine = []
                    start = time.perf_counter()
                    for _ in range(REQUESTS_PER_CLIENT):
                        t0 = time.perf_counter()
                        resp = c.request(prog, params=params, timeout=120)
                        mine.append(time.perf_counter() - t0)
                        if not all(
                            np.array_equal(ref[k], resp.result.store[k])
                            for k in ref
                        ):
                            failures.append(f"client {seed}: store diverged")
                    end = time.perf_counter()
                with lock:
                    latencies.extend(mine)
                    windows.append((start, end))
            except Exception as exc:  # noqa: BLE001 - surfaced via assert
                failures.append(f"client {seed}: {exc!r}")

        threads = [
            threading.Thread(target=client, args=(s,), daemon=True)
            for s in range(CLIENTS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(600)

    assert not failures, failures
    assert len(latencies) == CLIENTS * REQUESTS_PER_CLIENT
    wall = max(e for _, e in windows) - min(s for s, _ in windows)
    p50, p99 = np.percentile(latencies, [50, 99])
    rows = [
        {
            "workload": entry.name if hasattr(entry, "name") else entry.family,
            "backend": "process",
            "workers": WORKERS,
            "clients": CLIENTS,
            "requests": len(latencies),
            "throughput_rps": round(len(latencies) / wall, 1),
            "p50_ms": round(p50 * 1e3, 2),
            "p99_ms": round(p99 * 1e3, 2),
            "t_warm_local_ms": round(t_local * 1e3, 2),
            "wire_overhead_ms": round((p50 - t_local) * 1e3, 2),
        }
    ]
    report(
        f"TCP wire path, {CLIENTS} concurrent clients "
        f"(overhead vs in-process recorded, not gated)",
        rows,
    )
    record_bench("serving_wire", rows)
