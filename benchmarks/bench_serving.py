"""E-serving — warm-vs-cold request latency through the plan server.

Not a paper artifact: this benchmark guards the serving layer's amortisation
contract.  A cold one-shot request pays ``plan()`` (dependence analysis,
strategy selection, schedule construction) plus — on the ``process`` backend
— a full worker fork inside ``execute()``.  A warm request against a
memory-resident :class:`~repro.serving.PlanServer` pays neither: the plan
comes out of the shared :class:`PlanCache` and the execution attaches a
fresh shared-memory descriptor table to the already-running pool.

Gate: for repeated (program, params) requests on the process backend, the
warm-path latency must be **≥ 10×** faster than the cold one-shot path,
with served results bit-identical to ``execute_sequential``.  The workload
is the corpus entry with the largest planning cost (a deep rectangular
nest): planning dominates execution there, which is exactly the request
profile a plan-serving daemon exists for.

Rows are appended to ``BENCH_scale.json`` via the run_id-keyed trajectory
recorder shared with ``bench_scale_partition.py``.
"""

import time

import numpy as np
import pytest

from repro.core.strategy import plan
from repro.runtime import execute, execute_sequential
from repro.runtime.backends import ExecConfig
from repro.runtime.process import process_unavailable_reason
from repro.serving import PlanServer
from repro.workloads.corpus import selection_corpus

from bench_scale_partition import record_bench

pytestmark = pytest.mark.skipif(
    process_unavailable_reason() is not None,
    reason=f"process backend unavailable: {process_unavailable_reason()}",
)

#: CI guard: the smoke pool never uses more than 2 workers.
WORKERS = 2
COLD_RUNS = 3
WARM_RUNS = 5


def _planning_heaviest_entry():
    """The corpus entry whose plan cost dominates — measured, not assumed."""
    best, best_t = None, 0.0
    for entry in selection_corpus(size="small"):
        t0 = time.perf_counter()
        plan(entry.program, params=entry.params, cache=False)
        t_plan = time.perf_counter() - t0
        if t_plan > best_t:
            best, best_t = entry, t_plan
    return best


def test_warm_requests_amortise_cold_planning(report):
    entry = _planning_heaviest_entry()
    prog, params = entry.program, dict(entry.params)
    cfg = ExecConfig(backend="process", workers=WORKERS)
    ref = execute_sequential(prog, params)

    # -- cold: one-shot plan() + execute(), fresh pool forked every time ----
    t_cold = float("inf")
    for _ in range(COLD_RUNS):
        t0 = time.perf_counter()
        p = plan(prog, params=params, cache=False)
        cold = execute(prog, p.schedule, params, config=cfg)
        t_cold = min(t_cold, time.perf_counter() - t0)
    assert all(np.array_equal(ref[k], cold.store[k]) for k in ref)

    # -- warm: repeated requests against one memory-resident server ---------
    with PlanServer(default_exec=cfg) as srv:
        first = srv.request(prog, params=params, timeout=120)  # pays the warm-up
        t_warm = float("inf")
        for _ in range(WARM_RUNS):
            t0 = time.perf_counter()
            resp = srv.request(prog, params=params, timeout=120)
            t_warm = min(t_warm, time.perf_counter() - t0)
            assert resp.plan_cache_hit and resp.pool_reused
            assert resp.result.meta.get("pool") == "injected"
            assert all(np.array_equal(ref[k], resp.result.store[k]) for k in ref)
    assert not first.plan_cache_hit  # the warm-up really was the cold miss

    speedup = t_cold / t_warm
    rows = [
        {
            "workload": entry.name if hasattr(entry, "name") else entry.family,
            "strategy": p.strategy,
            "backend": "process",
            "workers": WORKERS,
            "t_cold_s": round(t_cold, 4),
            "t_warm_s": round(t_warm, 4),
            "speedup": round(speedup, 1),
        }
    ]
    report("Warm server request vs cold one-shot plan()+execute()", rows)
    record_bench("serving", rows)

    assert speedup >= 10.0, (
        f"warm serving path only {speedup:.1f}x the cold one-shot path "
        f"(cold {t_cold * 1e3:.1f} ms, warm {t_warm * 1e3:.1f} ms) — "
        f"the serving contract requires >= 10x on repeat-plan requests"
    )
