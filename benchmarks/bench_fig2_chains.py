"""E2 — Figure 2: monotonic chain splitting of the 1-D loop a(2I) = a(21-I).

Paper artifact: the chain 6 -> 9 -> 3 -> 15 splits into monotonic chains
6 -> 9, 3 -> 9, 3 -> 15; P1 is the initial iterations {1..6} plus the
independent iterations {7,12,14,16,18,20}; the intermediate set is empty.
"""

from repro.analysis.experiments import run_figure2_chains

from conftest import emit, run_once


def test_figure2_monotonic_chains(benchmark, report):
    result = run_once(benchmark, run_figure2_chains, 20)
    report("Figure 2 (N=20): partition sets", result)
    assert result["independent"] == [7, 12, 14, 16, 18, 20]
    assert result["initial"] == [1, 2, 3, 4, 5, 6]
    assert result["P2"] == []
    assert {(6, 9), (3, 9), (3, 15)} <= set(result["monotonic_pairs"])
