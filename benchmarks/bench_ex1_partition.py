"""E3 — Example 1: REC partition of the figure-1 loop.

Paper artifact: the Example 1 listing (initial / intermediate+WHILE / final
partitions) and the chain-length bound 1 + log3(sqrt(N1^2 + N2^2)) from
Theorem 1 with det(T) = 3.  Run at a scaled-down N1 x N2 (the paper uses
300 x 1000 for timing only); the structural claims are size-independent.
"""

from repro.analysis.experiments import run_example1_partition

from conftest import emit, run_once


def test_example1_recurrence_partition(benchmark, report):
    result = run_once(benchmark, run_example1_partition, 30, 100)
    report("Example 1 (N1=30, N2=100): REC partition", result)
    assert result["scheme"] == "recurrence-chains"
    assert result["phases"] == 3
    assert result["validated"] is True
    assert result["det_T"] == 3.0
    assert result["longest_chain"] <= result["theorem1_bound"]
