"""E5 — Example 3: the imperfectly nested Chen & Yew loop.

Paper artifact: the recurrence partitioning finds an *empty* intermediate set,
so the loop becomes two sequences of DOALL nests (P1 then P3) and
"theoretically can finish in two iteration time".
"""

from repro.analysis.experiments import run_example3_partition

from conftest import emit, run_once


def test_example3_empty_intermediate_set(benchmark, report):
    result = run_once(benchmark, run_example3_partition, 40)
    report("Example 3 (N=40): statement-level partition", result)
    assert result["P2"] == 0
    assert result["phases"] == 2
    assert result["validated"] is True
