"""E8 — Figure 3, top-right: Example 2 speedups (REC vs UNIQUE, 1-4 CPUs).

Paper shape: REC outperforms UNIQUE because it generates a shorter sequence of
fully parallel regions (3 partitions vs 5 unique sets, one of them sequential).
"""

from repro.analysis.experiments import run_figure3_experiment
from repro.analysis.report import format_speedups

from conftest import emit, run_once


def test_figure3_example2_speedups(benchmark, report):
    result = run_once(benchmark, run_figure3_experiment, "ex2", {"N": 60})
    report("Figure 3 / Example 2 speedups", result)
    print(format_speedups(result))
    speedups = result["speedups"]
    for p in result["processors"]:
        assert result["winner_at"][p] == "REC"
    assert result["phases"]["REC"] <= result["phases"]["UNIQUE"]
