"""E1 — Figure 1: the dependence structure of the running example loop.

Paper artifact: figure 1 shows the 10x10 iteration space with direct
dependences of distances (2,2), (4,4), (6,6).  The benchmark reproduces the
exact dependence set and checks those facts.
"""

from repro.analysis.experiments import run_figure1_dependences

from conftest import emit, run_once


def test_figure1_dependence_structure(benchmark, report):
    result = run_once(benchmark, run_figure1_dependences, 10, 10)
    report("Figure 1 (N1=N2=10): exact dependences", result)
    assert result["distances"] == [(2, 2), (4, 4), (6, 6)]
    assert result["direct_dependences"] == 18
    assert result["uniform"] is False
    assert result["single_coupled_pair"] is True
