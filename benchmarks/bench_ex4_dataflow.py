"""E6 — Example 4: dataflow partitioning of the Cholesky kernel.

Paper artifact: with NMAT=250, M=4, N=40, NRHS=3 the compiler needs 238
dataflow partitioning steps.  The number of steps does not depend on NMAT
(the L dimension carries no dependences — checked by a unit test), so the
benchmark runs a reduced NMAT and the paper's M/N/NRHS; the step count is
recorded against the paper's 238 in EXPERIMENTS.md.
"""

from repro.analysis.experiments import run_example4_dataflow

from conftest import emit, run_once


def test_example4_dataflow_steps(benchmark, report):
    result = run_once(benchmark, run_example4_dataflow, nmat=1, m=4, n=40, nrhs=1)
    report("Example 4 (Cholesky, NMAT=1, M=4, N=40, NRHS=1): dataflow steps", result)
    assert result["scheme"] == "dataflow"
    # same order of magnitude as the paper's 238 steps
    assert 100 <= result["partitioning_steps"] <= 400
