"""E4 — Example 2: REC partition of Ju & Chaudhary's loop.

Paper artifact: at N=12 the intermediate set contains the single iteration
(2, 6) (so the WHILE loop disappears); the REC partition yields 3 fully
parallel phases versus the 5 sequential unique sets of the UNIQUE scheme.
"""

from repro.analysis.experiments import run_example2_partition
from repro.baselines import unique_sets_schedule
from repro.core import recurrence_chain_partition
from repro.workloads import example2_loop

from conftest import emit, run_once


def test_example2_partition_n12(benchmark, report):
    result = run_once(benchmark, run_example2_partition, 12)
    report("Example 2 (N=12): REC partition", result)
    assert result["P2_points"] == [(2, 6)]
    assert result["phases"] == 3
    assert result["validated"] is True


def test_example2_rec_fewer_phases_than_unique(report):
    prog = example2_loop(30)
    rec = recurrence_chain_partition(prog)
    unique = unique_sets_schedule(prog, {})
    report(
        "Example 2 (N=30): phase counts",
        {"REC": rec.schedule.num_phases, "UNIQUE": unique.num_phases},
    )
    assert rec.schedule.num_phases <= unique.num_phases
