"""Synthetic non-uniform loop generator.

Property-based tests and the statistics experiment need a stream of loop nests
with controlled characteristics (coupled vs separable subscripts, uniform vs
non-uniform distances, loop depth, bound sizes).  The generator produces
2-D perfect nests of the same family as the paper's examples:

    DO I1 = 1, N1
      DO I2 = 1, N2
        X[ I·A + a ] = X[ I·B + b ]

with small random integer matrices A, B and offsets a, b.  The matrices are
kept within a configurable magnitude so that subscripts stay inside a modest
array and the exact analyser stays fast, and the generator reports the ground
truth classification (uniform iff A == B) so classifier tests have labels.

Besides the random generator, the module provides the **large-N scaling
entries** used by ``benchmarks/bench_scale_partition.py``:
:func:`large_uniform_loop` (a single-uniform-pair program with arbitrarily
large bounds) and :func:`scale_partition_case` (its iteration space and exact
dependence relation built directly as numpy arrays, sidestepping the exact
analyser so 10⁵–10⁶-point spaces are cheap to set up).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..ir.builder import aref, assign, loop, program
from ..ir.nodes import ArrayRef
from ..ir.program import LoopProgram
from ..isl.affine import AffineExpr
from ..isl.enumerate_points import iteration_points
from ..isl.relations import FiniteRelation

__all__ = [
    "SyntheticLoopSpec",
    "random_coupled_loop",
    "generate_corpus_programs",
    "large_uniform_loop",
    "large_triangular_loop",
    "large_cholesky_nest",
    "scale_partition_case",
]


@dataclass(frozen=True)
class SyntheticLoopSpec:
    """Ground-truth description of one generated loop."""

    program: LoopProgram
    A: Tuple[Tuple[int, int], Tuple[int, int]]
    a: Tuple[int, int]
    B: Tuple[Tuple[int, int], Tuple[int, int]]
    b: Tuple[int, int]
    coupled: bool
    uniform: bool
    full_rank: bool
    bounds: Tuple[int, int]


def _subscript_exprs(
    M: Sequence[Sequence[int]], offset: Sequence[int], names: Sequence[str]
) -> List[AffineExpr]:
    exprs = []
    for col in range(len(offset)):
        coeffs = {names[row]: M[row][col] for row in range(len(names)) if M[row][col] != 0}
        exprs.append(AffineExpr.build(coeffs, offset[col]))
    return exprs


def _det2(M: Sequence[Sequence[int]]) -> int:
    return M[0][0] * M[1][1] - M[0][1] * M[1][0]


def random_coupled_loop(
    rng: random.Random,
    n1: int = 12,
    n2: int = 12,
    coeff_range: int = 3,
    offset_range: int = 6,
    force_uniform: Optional[bool] = None,
    force_full_rank: bool = False,
    name: str = "synthetic",
) -> SyntheticLoopSpec:
    """Generate one random 2-D coupled-subscript loop with known ground truth.

    ``force_uniform=True`` copies A into B (guaranteeing uniform distances),
    ``force_uniform=False`` re-draws B until it differs from A;
    ``force_full_rank=True`` re-draws until both matrices are invertible.
    """

    def draw_matrix() -> Tuple[Tuple[int, int], Tuple[int, int]]:
        while True:
            M = tuple(
                tuple(rng.randint(-coeff_range, coeff_range) for _ in range(2))
                for _ in range(2)
            )
            if any(any(x != 0 for x in row) for row in M):
                if not force_full_rank or _det2(M) != 0:
                    return M

    A = draw_matrix()
    if force_uniform is True:
        B = A
    else:
        B = draw_matrix()
        while force_uniform is False and B == A:
            B = draw_matrix()
    a = (rng.randint(0, offset_range), rng.randint(0, offset_range))
    b = (rng.randint(0, offset_range), rng.randint(0, offset_range))

    names = ("I1", "I2")
    # Shift subscripts so every access is non-negative inside the bounds.
    max_extent = (coeff_range * (n1 + n2) + offset_range) * 2 + 4
    shift = coeff_range * (n1 + n2) + offset_range + 2
    write_subs = [e + shift for e in _subscript_exprs(A, a, names)]
    read_subs = [e + shift for e in _subscript_exprs(B, b, names)]

    body = assign(
        "s",
        ArrayRef("x", tuple(write_subs)),
        [ArrayRef("x", tuple(read_subs))],
    )
    prog = program(
        name,
        loop("I1", 1, n1, loop("I2", 1, n2, body)),
        array_shapes={"x": (2 * max_extent + shift, 2 * max_extent + shift)},
    )
    # "Coupled" in the paper's sense: some loop index feeds more than one
    # subscript dimension, or some dimension mixes several indices, in either
    # reference of the pair.
    def is_coupled(M) -> bool:
        rows_mixed = any(sum(1 for x in row if x != 0) >= 2 for row in M)
        cols_mixed = any(
            sum(1 for r in range(2) if M[r][c] != 0) >= 2 for c in range(2)
        )
        return rows_mixed or cols_mixed

    coupled = is_coupled(A) or is_coupled(B)
    return SyntheticLoopSpec(
        program=prog,
        A=A,
        a=a,
        B=B,
        b=b,
        coupled=coupled,
        uniform=(A == B),
        full_rank=(_det2(A) != 0 and _det2(B) != 0),
        bounds=(n1, n2),
    )


def large_uniform_loop(
    n1: int, n2: int, name: str = "large-uniform", semantics=None
) -> LoopProgram:
    """A 2-D nest with one uniform coupled pair, usable at very large bounds.

        DO I1 = 1, n1
          DO I2 = 1, n2
            x(I1+1, I2+1) = x(I1, I2)

    The single flow dependence is ``(i1, i2) -> (i1+1, i2+1)``, so the exact
    relation is known in closed form (see :func:`scale_partition_case`) and the
    program scales to the 10⁵–10⁶-iteration spaces the vectorised partitioning
    engine targets without paying the exact analyser's pair enumeration.

    ``semantics`` overrides the statement's executable meaning (e.g.
    :func:`repro.ir.semantics.compute_heavy_semantics` for the
    process-backend speedup benchmark, where per-instance compute must
    dominate interpreter dispatch).
    """
    body = assign(
        "s", aref("x", "I1+1", "I2+1"), [aref("x", "I1", "I2")],
        semantics=semantics,
    )
    return program(
        name,
        loop("I1", 1, n1, loop("I2", 1, n2, body)),
        array_shapes={"x": (n1 + 2, n2 + 2)},
    )


def large_triangular_loop(n: int, name: str = "large-triangular") -> LoopProgram:
    """A triangular 2-D nest with one uniform pair, usable at very large bounds.

        DO I1 = 1, n
          DO I2 = 1, I1
            x(I1+1, I2+1) = x(I1, I2)

    The iteration space has ``n·(n+1)/2`` points (``n = 447`` is the smallest
    bound reaching 10⁵), and
    the inner bound depends on the outer index, so the exact analyser's
    **non-rectangular path** — bounding-box enumeration + constraint filtering
    followed by the address join — is exercised at scale, unlike
    :func:`large_uniform_loop` whose domains are dense boxes.  The single flow
    dependence ``(i1, i2) -> (i1+1, i2+1)`` never leaves the triangle
    (``i2 ≤ i1`` implies ``i2+1 ≤ i1+1``), so every interior point is both a
    source and a target.
    """
    body = assign("s", aref("x", "I1+1", "I2+1"), [aref("x", "I1", "I2")])
    return program(
        name,
        loop("I1", 1, n, loop("I2", 1, "I1", body)),
        array_shapes={"x": (n + 2, n + 2)},
    )


def large_cholesky_nest(n: int, name: str = "large-cholesky-nest") -> LoopProgram:
    """A multi-statement triangular imperfect nest, usable at very large bounds.

        DO I = 1, n
          DO J = 1, I
            s1:  tmp(I, J) = a(J, J)     ! panel update reads the diagonal
          ENDDO
          s2:  a(I, I) = tmp(I, I)       ! diagonal update consumes s1's element
        ENDDO

    The shape of one step of a Cholesky factorization — a triangular panel
    update reading the diagonal element, then the diagonal update — reduced to
    a single coupled array so the dependence structure stays exactly
    analysable:

    * flow ``s2(j) → s1(i, j)`` for every ``j < i`` through ``a(j, j)``
      (≈ ``n²/2`` pairs — one unified dependence per panel instance),
    * flow/anti ``s1(i, i) ↔ s2(i)`` through ``tmp(i, i)`` and ``a(i, i)``
      (the intra-row coupling that forces statement level; merged into one
      forward pair per row after orientation).

    The statement-level dataflow partition is three wavefronts — all
    ``s1(i, i)``, then every ``s2``, then the off-diagonal panel — so the
    end-to-end cost at 10⁵⁺ instances is dominated by the §3.3 unified-space
    construction and the Rd mapping, exactly the path the array-native
    statement level vectorises (``n = 447`` is the smallest bound whose
    ``n·(n+1)/2 + n`` instances reach 10⁵).  The nest is imperfect *and*
    non-rectangular, so both the statement mapping and the bounding-box
    domain enumeration are exercised at scale.
    """
    s1 = assign("s1", aref("tmp", "I", "J"), [aref("a", "J", "J")])
    s2 = assign("s2", aref("a", "I", "I"), [aref("tmp", "I", "I")])
    return program(
        name,
        loop("I", 1, n, loop("J", 1, "I", s1), s2),
        array_shapes={"tmp": (n + 1, n + 1), "a": (n + 1, n + 1)},
    )


def scale_partition_case(
    n1: int, n2: int, distance: Tuple[int, int] = (1, 1)
) -> Tuple[np.ndarray, FiniteRelation]:
    """The large-N scaling workload of the partitioning benchmarks.

    Returns the ``(n1·n2, 2)`` iteration-space array of the ``1..n1 × 1..n2``
    box together with the exact, forward-oriented uniform dependence relation
    ``{ i -> i + distance }`` (pairs whose target leaves the box are dropped).
    Everything is built vectorised, so 10⁶-point cases materialise in
    milliseconds; the relation matches what
    :class:`~repro.dependence.analysis.DependenceAnalysis` derives for
    :func:`large_uniform_loop` when ``distance == (1, 1)`` (cross-checked by a
    test).
    """
    d = np.asarray(distance, dtype=np.int64)
    if not (d[0] > 0 or (d[0] == 0 and d[1] > 0)):
        raise ValueError(
            f"distance {tuple(distance)} must be lexicographically positive "
            f"(the relation must be oriented forward)"
        )
    space = iteration_points([(1, n1), (1, n2)])
    shifted = space + d
    inside = (
        (shifted >= np.array([1, 1], dtype=np.int64))
        & (shifted <= np.array([n1, n2], dtype=np.int64))
    ).all(axis=1)
    return space, FiniteRelation.from_arrays(space[inside], shifted[inside])


def generate_corpus_programs(
    seed: int,
    count: int,
    uniform_fraction: float = 0.5,
    n1: int = 10,
    n2: int = 10,
) -> List[SyntheticLoopSpec]:
    """A reproducible batch of synthetic loops with a given uniform fraction."""
    rng = random.Random(seed)
    specs = []
    for k in range(count):
        uniform = rng.random() < uniform_fraction
        specs.append(
            random_coupled_loop(
                rng,
                n1=n1,
                n2=n2,
                force_uniform=uniform,
                name=f"synthetic-{k}",
            )
        )
    return specs
