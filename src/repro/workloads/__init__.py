"""repro.workloads — the loops the experiments run on.

* :mod:`repro.workloads.examples` — the paper's example loops (figure 1,
  figure 2, Examples 2–4 including the Cholesky kernel);
* :mod:`repro.workloads.synthetic` — random coupled-subscript loop generator
  with ground-truth labels;
* :mod:`repro.workloads.corpus` — the SPECfp95-like synthetic corpus used by
  the statistics experiment (E12), plus the seeded selection corpus (program
  families + LU/SOR kernels) that calibrates the strategy-selection table.
"""

from .corpus import (
    CORPUS_SIZES,
    DEFAULT_CORPUS_SEED,
    SPECFP95_LIKE,
    CorpusComposition,
    CorpusEntry,
    build_corpus,
    corpus_families,
    family_entries,
    lu_kernel,
    selection_corpus,
    sor_kernel,
)
from .examples import (
    PAPER_EXAMPLES,
    cholesky_loop,
    example2_loop,
    example3_loop,
    figure1_loop,
    figure2_loop,
    paper_example,
)
from .synthetic import SyntheticLoopSpec, generate_corpus_programs, random_coupled_loop

__all__ = [
    "figure1_loop",
    "figure2_loop",
    "example2_loop",
    "example3_loop",
    "cholesky_loop",
    "paper_example",
    "PAPER_EXAMPLES",
    "SyntheticLoopSpec",
    "random_coupled_loop",
    "generate_corpus_programs",
    "CorpusComposition",
    "SPECFP95_LIKE",
    "build_corpus",
    "CorpusEntry",
    "corpus_families",
    "family_entries",
    "selection_corpus",
    "lu_kernel",
    "sor_kernel",
    "DEFAULT_CORPUS_SEED",
    "CORPUS_SIZES",
]
