"""A synthetic benchmark corpus standing in for the SPECfp95 static study.

§1 of the paper motivates the technique with static statistics gathered over
SPECfp95 and a 12-benchmark study by Shen, Li & Yew:

* more than 46 % of the nested loops contain non-uniform data dependences,
* about 45 % of two-dimensional array reference pairs have coupled linear
  subscripts,
* about 12.8 % of the coupled subscripts generate non-uniform dependences.

The original benchmark sources are proprietary and not available offline, so
the reproducible artifact is the *classifier* (which of a corpus' loops are
coupled / uniform / non-uniform) plus a corpus generator whose composition is
calibrated to the published percentages.  The statistics experiment (E12) runs
the classifier over the generated corpus and checks that it recovers the
generation fractions — i.e. the measurement methodology is validated even
though the original inputs cannot be.

Beyond the composition study, the module hosts the **selection corpus**: named,
seeded program *families* spanning the feature axes the strategy selectors in
:mod:`repro.core.strategy` rank on — deep rectangular and triangular nests,
imperfect nests, non-uniform / coupled / separable dependences, parametric
bounds, and real kernels (:func:`lu_kernel`, :func:`sor_kernel` alongside the
paper's Cholesky).  ``benchmarks/bench_strategy_selection.py`` sweeps every
registered strategy over :func:`selection_corpus` to regenerate the calibrated
table the default ``table`` selector loads.
"""

from __future__ import annotations

import random
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence, Tuple

from ..ir.builder import aref, assign, loop, program
from ..ir.program import LoopProgram
from .synthetic import (
    SyntheticLoopSpec,
    large_cholesky_nest,
    large_triangular_loop,
    random_coupled_loop,
)

__all__ = [
    "CorpusComposition",
    "SPECFP95_LIKE",
    "build_corpus",
    "CorpusEntry",
    "corpus_families",
    "family_entries",
    "selection_corpus",
    "lu_kernel",
    "sor_kernel",
    "DEFAULT_CORPUS_SEED",
    "CORPUS_SIZES",
]


@dataclass(frozen=True)
class CorpusComposition:
    """Target composition of a synthetic corpus.

    ``coupled_fraction`` — fraction of loops whose reference pairs couple loop
    indices in both references (the remainder use separable, single-index
    subscripts);
    ``nonuniform_given_coupled`` — among coupled loops, the fraction whose
    coefficient matrices differ (producing non-uniform distances).
    """

    name: str
    loops: int
    coupled_fraction: float
    nonuniform_given_coupled: float

    @property
    def expected_nonuniform_fraction(self) -> float:
        return self.coupled_fraction * self.nonuniform_given_coupled


#: Composition calibrated to the paper's §1 numbers: roughly 45 % of reference
#: pairs coupled, and enough of those non-uniform that ≈46 % of loops carry a
#: non-uniform dependence is plausible at loop granularity.  We keep the two
#: published knobs and derive the third.
SPECFP95_LIKE = CorpusComposition(
    name="specfp95-like",
    loops=200,
    coupled_fraction=0.45,
    nonuniform_given_coupled=0.5,
)


def build_corpus(
    composition: CorpusComposition = SPECFP95_LIKE,
    seed: int = 20040815,
    n1: int = 8,
    n2: int = 8,
) -> List[SyntheticLoopSpec]:
    """Generate a corpus with the requested composition (deterministic)."""
    rng = random.Random(seed)
    specs: List[SyntheticLoopSpec] = []
    for k in range(composition.loops):
        coupled = rng.random() < composition.coupled_fraction
        if coupled:
            uniform = rng.random() >= composition.nonuniform_given_coupled
            spec = random_coupled_loop(
                rng, n1=n1, n2=n2, force_uniform=uniform, name=f"{composition.name}-{k}"
            )
        else:
            # Separable subscripts: diagonal matrices (each subscript uses a
            # single distinct loop index), always uniform.
            spec = _separable_loop(rng, n1, n2, name=f"{composition.name}-{k}")
        specs.append(spec)
    return specs


def _separable_loop(
    rng: random.Random, n1: int, n2: int, name: str
) -> SyntheticLoopSpec:
    """A loop whose subscripts are separable (X[I1+c1, I2+c2] both sides)."""
    from ..ir.builder import aref, assign, loop, program
    from ..ir.nodes import ArrayRef

    c1, c2 = rng.randint(0, 3), rng.randint(0, 3)
    d1, d2 = rng.randint(0, 3), rng.randint(0, 3)
    size = n1 + n2 + 10
    body = assign(
        "s",
        aref("x", f"I1+{c1}", f"I2+{c2}"),
        [aref("x", f"I1+{d1}", f"I2+{d2}")],
    )
    prog = program(
        name,
        loop("I1", 1, n1, loop("I2", 1, n2, body)),
        array_shapes={"x": (size, size)},
    )
    A = ((1, 0), (0, 1))
    return SyntheticLoopSpec(
        program=prog,
        A=A,
        a=(c1, c2),
        B=A,
        b=(d1, d2),
        coupled=False,
        uniform=True,
        full_rank=True,
        bounds=(n1, n2),
    )


# ---------------------------------------------------------------------------
# real kernels
# ---------------------------------------------------------------------------


def lu_kernel(n: int, name: str = "lu") -> LoopProgram:
    """Right-looking LU factorization without pivoting (one array, no pivots).

        DO K = 1, n
          DO I = K+1, n
            s1:  a(I, K) = f(a(I, K), a(K, K))          ! column scale
            DO J = K+1, n
              s2:  a(I, J) = f(a(I, J), a(I, K), a(K, J))  ! trailing update

    An imperfect, non-rectangular (trapezoidal) depth-3 nest whose dependences
    are the classic LU pattern: each elimination step K writes the trailing
    submatrix the next step reads.
    """
    s1 = assign("s1", aref("a", "I", "K"), [aref("a", "I", "K"), aref("a", "K", "K")])
    s2 = assign(
        "s2",
        aref("a", "I", "J"),
        [aref("a", "I", "J"), aref("a", "I", "K"), aref("a", "K", "J")],
    )
    return program(
        name,
        loop("K", 1, n, loop("I", "K+1", n, s1, loop("J", "K+1", n, s2))),
        array_shapes={"a": (n + 1, n + 1)},
    )


def sor_kernel(n: int, name: str = "sor") -> LoopProgram:
    """Gauss–Seidel successive over-relaxation on an (n+2)² grid.

        DO I = 1, n
          DO J = 1, n
            s:  u(I+1, J+1) = f(u(I, J+1), u(I+1, J), u(I+2, J+1),
                                u(I+1, J+2), u(I+1, J+1))

    A perfect rectangular nest with several *uniform* dependence pairs (flow
    from the west/north neighbours, anti to the east/south) — the wavefront
    workload uniformization schemes and tiling are built for.
    """
    body = assign(
        "s",
        aref("u", "I+1", "J+1"),
        [
            aref("u", "I", "J+1"),
            aref("u", "I+1", "J"),
            aref("u", "I+2", "J+1"),
            aref("u", "I+1", "J+2"),
            aref("u", "I+1", "J+1"),
        ],
    )
    return program(
        name,
        loop("I", 1, n, loop("J", 1, n, body)),
        array_shapes={"u": (n + 3, n + 3)},
    )


# ---------------------------------------------------------------------------
# the selection corpus: seeded, parameterized program families
# ---------------------------------------------------------------------------

#: Seed every corpus consumer (bench, tests, CI smoke) defaults to.
DEFAULT_CORPUS_SEED = 20040815

#: Named size presets for :func:`selection_corpus`: per-family loop bounds.
#: ``small`` keeps every program under ~300 points (CI smoke / unit tests);
#: ``medium`` is the calibration size the checked-in table is generated at.
CORPUS_SIZES: Dict[str, Dict[str, int]] = {
    "small": {
        "deep-rectangular": 5,
        "triangular": 8,
        "imperfect": 6,
        "nonuniform-coupled": 8,
        "coupled-uniform": 8,
        "separable": 8,
        "reversal-1d": 16,
        "parametric": 8,
        "lu": 6,
        "sor": 8,
    },
    "medium": {
        "deep-rectangular": 8,
        "triangular": 16,
        "imperfect": 10,
        "nonuniform-coupled": 40,
        "coupled-uniform": 12,
        "separable": 12,
        "reversal-1d": 40,
        "parametric": 40,
        "lu": 9,
        "sor": 12,
    },
}
# The ``medium`` bounds of the non-uniform families are deliberately in the
# scaling regime the paper's figure-3 experiments run at (n ≳ 40): below
# that, barrier and phase-start overheads dominate the simulated times and
# misrank the schemes relative to their asymptotic behaviour.


@dataclass(frozen=True)
class CorpusEntry:
    """One selection-corpus program: family, unique name, concrete params."""

    family: str
    name: str
    program: LoopProgram
    params: Dict[str, int] = field(default_factory=dict)


def _family_deep_rectangular(seed: int, n: int) -> List[CorpusEntry]:
    """Depth-3 rectangular nests with one uniform pair (dense-box spaces)."""
    entries = []
    for tag, write_subs in (
        ("diag", ("I1+1", "I2+1", "I3+1")),
        ("plane", ("I1+1", "I2", "I3+1")),
    ):
        body = assign("s", aref("x", *write_subs), [aref("x", "I1", "I2", "I3")])
        prog = program(
            f"deep-rect-{tag}",
            loop("I1", 1, n, loop("I2", 1, n, loop("I3", 1, n, body))),
            array_shapes={"x": (n + 2, n + 2, n + 2)},
        )
        entries.append(CorpusEntry("deep-rectangular", f"deep-rect-{tag}", prog))
    return entries


def _family_triangular(seed: int, n: int) -> List[CorpusEntry]:
    """Triangular 2-D nests (inner bound = outer index), uniform pair."""
    tri = large_triangular_loop(n, name="triangular-diag")
    body = assign("s", aref("x", "I1+1", "I2"), [aref("x", "I1", "I2")])
    col = program(
        "triangular-col",
        loop("I1", 1, n, loop("I2", 1, "I1", body)),
        array_shapes={"x": (n + 2, n + 2)},
    )
    return [
        CorpusEntry("triangular", "triangular-diag", tri),
        CorpusEntry("triangular", "triangular-col", col),
    ]


def _family_imperfect(seed: int, n: int) -> List[CorpusEntry]:
    """Imperfect nests: the scaled Cholesky panel plus a row-sweep/diagonal mix."""
    chol = large_cholesky_nest(n, name="imperfect-chol-panel")
    s1 = assign("s1", aref("x", "I", "J"), [aref("x", "I-1", "J")])
    s2 = assign("s2", aref("y", "I"), [aref("x", "I", "I")])
    sweep = program(
        "imperfect-row-sweep",
        loop("I", 1, n, loop("J", 1, n, s1), s2),
        array_shapes={"x": (n + 1, n + 1), "y": (n + 1,)},
    )
    return [
        CorpusEntry("imperfect", "imperfect-chol-panel", chol),
        CorpusEntry("imperfect", "imperfect-row-sweep", sweep),
    ]


def _family_nonuniform_coupled(seed: int, n: int) -> List[CorpusEntry]:
    """Random full-rank coupled pairs with differing matrices (non-uniform)."""
    rng = random.Random(seed)
    entries = []
    for k in range(3):
        spec = random_coupled_loop(
            rng, n1=n, n2=n, force_uniform=False, force_full_rank=True,
            name=f"nonuniform-coupled-{k}",
        )
        entries.append(
            CorpusEntry("nonuniform-coupled", spec.program.name, spec.program)
        )
    return entries


def _family_coupled_uniform(seed: int, n: int) -> List[CorpusEntry]:
    """Coupled subscripts with identical matrices (uniform distances).

    The first entry is deterministic with a guaranteed in-range distance —
    ``x(I1+I2, I2) = x(I1+I2-1, I2-1)`` carries the uniform dependence
    ``(0, 1)`` through a coupled first dimension; the second is a random
    full-rank uniform pair (whose solutions may leave the bounds — the
    dependence-free coupled bucket is a real corpus point too).
    """
    body = assign(
        "s", aref("x", "I1+I2", "I2"), [aref("x", "I1+I2-1", "I2-1")]
    )
    shift = program(
        "coupled-uniform-shift",
        loop("I1", 1, n, loop("I2", 1, n, body)),
        array_shapes={"x": (2 * n + 2, n + 2)},
    )
    rng = random.Random(seed + 1)
    spec = random_coupled_loop(
        rng, n1=n, n2=n, force_uniform=True, force_full_rank=True,
        name="coupled-uniform-rand",
    )
    return [
        CorpusEntry("coupled-uniform", "coupled-uniform-shift", shift),
        CorpusEntry("coupled-uniform", spec.program.name, spec.program),
    ]


def _family_separable(seed: int, n: int) -> List[CorpusEntry]:
    """Separable single-index subscripts (always uniform)."""
    rng = random.Random(seed + 2)
    entries = []
    for k in range(2):
        spec = _separable_loop(rng, n, n, name=f"separable-{k}")
        entries.append(CorpusEntry("separable", spec.program.name, spec.program))
    return entries


def _family_reversal_1d(seed: int, n: int) -> List[CorpusEntry]:
    """Figure 2's 1-D family: ``a(2*I) = a(n+1-I)`` — short monotonic chains."""
    body = assign("s", aref("a", "2*I"), [aref("a", f"{n + 1}-I")])
    prog = program(
        f"reversal-{n}",
        loop("I", 1, n, body),
        array_shapes={"a": (2 * n + 2,)},
    )
    return [CorpusEntry("reversal-1d", f"reversal-{n}", prog)]


def _family_parametric(seed: int, n: int) -> List[CorpusEntry]:
    """Symbolic-bound programs planned at concrete params (shapes sized to n)."""
    body = assign("s", aref("x", "I1+1", "I2+1"), [aref("x", "I1", "I2")])
    stencil = program(
        "parametric-stencil",
        loop("I1", 1, "N", loop("I2", 1, "N", body)),
        parameters=("N",),
        array_shapes={"x": (n + 2, n + 2)},
    )
    nu_body = assign(
        "s", aref("a", "3*I1+1", "2*I1+I2-1"), [aref("a", "I1+3", "I2+1")]
    )
    nonuniform = program(
        "parametric-nonuniform",
        loop("I1", 1, "N", loop("I2", 1, "N", nu_body)),
        parameters=("N",),
        array_shapes={"a": (3 * n + 4, 3 * n + 4)},
    )
    return [
        CorpusEntry("parametric", "parametric-stencil", stencil, {"N": n}),
        CorpusEntry("parametric", "parametric-nonuniform", nonuniform, {"N": n}),
    ]


def _family_lu(seed: int, n: int) -> List[CorpusEntry]:
    return [CorpusEntry("lu", "lu-kernel", lu_kernel(n, name="lu-kernel"))]


def _family_sor(seed: int, n: int) -> List[CorpusEntry]:
    return [CorpusEntry("sor", "sor-kernel", sor_kernel(n, name="sor-kernel"))]


_FAMILIES: "OrderedDict[str, Callable[[int, int], List[CorpusEntry]]]" = OrderedDict(
    [
        ("deep-rectangular", _family_deep_rectangular),
        ("triangular", _family_triangular),
        ("imperfect", _family_imperfect),
        ("nonuniform-coupled", _family_nonuniform_coupled),
        ("coupled-uniform", _family_coupled_uniform),
        ("separable", _family_separable),
        ("reversal-1d", _family_reversal_1d),
        ("parametric", _family_parametric),
        ("lu", _family_lu),
        ("sor", _family_sor),
    ]
)


def corpus_families() -> Tuple[str, ...]:
    """The selection-corpus family names, in sweep order."""
    return tuple(_FAMILIES)


def family_entries(
    family: str, seed: int = DEFAULT_CORPUS_SEED, n: int | None = None,
    size: str = "small",
) -> List[CorpusEntry]:
    """The entries of one family at an explicit bound ``n`` (or a size preset)."""
    if family not in _FAMILIES:
        raise KeyError(
            f"unknown corpus family {family!r}; choose from {', '.join(_FAMILIES)}"
        )
    if n is None:
        n = CORPUS_SIZES[size][family]
    return _FAMILIES[family](seed, n)


def selection_corpus(
    seed: int = DEFAULT_CORPUS_SEED, size: str = "small"
) -> List[CorpusEntry]:
    """The full seeded selection corpus at a named size preset.

    Deterministic: the same ``(seed, size)`` always yields the same programs,
    so the calibrated table regenerated from it is reproducible bit-for-bit.
    """
    if size not in CORPUS_SIZES:
        raise KeyError(
            f"unknown corpus size {size!r}; choose from {', '.join(CORPUS_SIZES)}"
        )
    entries: List[CorpusEntry] = []
    for family in _FAMILIES:
        entries.extend(family_entries(family, seed=seed, size=size))
    return entries
