"""A synthetic benchmark corpus standing in for the SPECfp95 static study.

§1 of the paper motivates the technique with static statistics gathered over
SPECfp95 and a 12-benchmark study by Shen, Li & Yew:

* more than 46 % of the nested loops contain non-uniform data dependences,
* about 45 % of two-dimensional array reference pairs have coupled linear
  subscripts,
* about 12.8 % of the coupled subscripts generate non-uniform dependences.

The original benchmark sources are proprietary and not available offline, so
the reproducible artifact is the *classifier* (which of a corpus' loops are
coupled / uniform / non-uniform) plus a corpus generator whose composition is
calibrated to the published percentages.  The statistics experiment (E12) runs
the classifier over the generated corpus and checks that it recovers the
generation fractions — i.e. the measurement methodology is validated even
though the original inputs cannot be.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..ir.program import LoopProgram
from .synthetic import SyntheticLoopSpec, random_coupled_loop

__all__ = ["CorpusComposition", "SPECFP95_LIKE", "build_corpus"]


@dataclass(frozen=True)
class CorpusComposition:
    """Target composition of a synthetic corpus.

    ``coupled_fraction`` — fraction of loops whose reference pairs couple loop
    indices in both references (the remainder use separable, single-index
    subscripts);
    ``nonuniform_given_coupled`` — among coupled loops, the fraction whose
    coefficient matrices differ (producing non-uniform distances).
    """

    name: str
    loops: int
    coupled_fraction: float
    nonuniform_given_coupled: float

    @property
    def expected_nonuniform_fraction(self) -> float:
        return self.coupled_fraction * self.nonuniform_given_coupled


#: Composition calibrated to the paper's §1 numbers: roughly 45 % of reference
#: pairs coupled, and enough of those non-uniform that ≈46 % of loops carry a
#: non-uniform dependence is plausible at loop granularity.  We keep the two
#: published knobs and derive the third.
SPECFP95_LIKE = CorpusComposition(
    name="specfp95-like",
    loops=200,
    coupled_fraction=0.45,
    nonuniform_given_coupled=0.5,
)


def build_corpus(
    composition: CorpusComposition = SPECFP95_LIKE,
    seed: int = 20040815,
    n1: int = 8,
    n2: int = 8,
) -> List[SyntheticLoopSpec]:
    """Generate a corpus with the requested composition (deterministic)."""
    rng = random.Random(seed)
    specs: List[SyntheticLoopSpec] = []
    for k in range(composition.loops):
        coupled = rng.random() < composition.coupled_fraction
        if coupled:
            uniform = rng.random() >= composition.nonuniform_given_coupled
            spec = random_coupled_loop(
                rng, n1=n1, n2=n2, force_uniform=uniform, name=f"{composition.name}-{k}"
            )
        else:
            # Separable subscripts: diagonal matrices (each subscript uses a
            # single distinct loop index), always uniform.
            spec = _separable_loop(rng, n1, n2, name=f"{composition.name}-{k}")
        specs.append(spec)
    return specs


def _separable_loop(
    rng: random.Random, n1: int, n2: int, name: str
) -> SyntheticLoopSpec:
    """A loop whose subscripts are separable (X[I1+c1, I2+c2] both sides)."""
    from ..ir.builder import aref, assign, loop, program
    from ..ir.nodes import ArrayRef

    c1, c2 = rng.randint(0, 3), rng.randint(0, 3)
    d1, d2 = rng.randint(0, 3), rng.randint(0, 3)
    size = n1 + n2 + 10
    body = assign(
        "s",
        aref("x", f"I1+{c1}", f"I2+{c2}"),
        [aref("x", f"I1+{d1}", f"I2+{d2}")],
    )
    prog = program(
        name,
        loop("I1", 1, n1, loop("I2", 1, n2, body)),
        array_shapes={"x": (size, size)},
    )
    A = ((1, 0), (0, 1))
    return SyntheticLoopSpec(
        program=prog,
        A=A,
        a=(c1, c2),
        B=A,
        b=(d1, d2),
        coupled=False,
        uniform=True,
        full_rank=True,
        bounds=(n1, n2),
    )
