"""The paper's example loops, encoded in the IR.

Each factory returns a :class:`~repro.ir.program.LoopProgram` matching one of
the loops used in the paper:

* :func:`figure1_loop`   — the running 2-D example (fig. 1 / Example 1):
  ``a(3*I1+1, 2*I1+I2-1) = a(I1+3, I2+1)`` with bounds ``1..N1 × 1..N2``.
* :func:`figure2_loop`   — the 1-D loop ``a(2*I) = a(21-I)`` with ``I = 1..20``
  whose chains illustrate monotonic-chain splitting (fig. 2).
* :func:`example2_loop`  — Ju & Chaudhary's loop (Example 2):
  ``a(2*I+3, J+1) = a(I+2*J+1, I+J+3)`` with bounds ``1..N × 1..N``.
* :func:`example3_loop`  — Chen & Yew's imperfectly nested loop (Example 3).
* :func:`cholesky_loop`  — the NASA-benchmark Cholesky kernel (Example 4),
  two imperfectly nested loop nests with multiple coupled subscripts.

Array shapes are sized generously so that every affine subscript evaluated
inside the iteration space lands inside the array (the runtime executors index
real numpy arrays).
"""

from __future__ import annotations

from typing import Mapping, Optional, Tuple

from ..ir.builder import aref, assign, loop, program
from ..ir.program import LoopProgram

__all__ = [
    "figure1_loop",
    "figure2_loop",
    "example2_loop",
    "example3_loop",
    "cholesky_loop",
    "PAPER_EXAMPLES",
    "paper_example",
]


def figure1_loop(n1: Optional[int] = None, n2: Optional[int] = None) -> LoopProgram:
    """Figure 1 / Example 1: the running non-uniform 2-D loop.

    DO I1 = 1, N1
      DO I2 = 1, N2
        a(3*I1+1, 2*I1+I2-1) = a(I1+3, I2+1)

    When ``n1``/``n2`` are given, the bounds are concrete; otherwise they stay
    the symbolic parameters ``N1``/``N2``.
    """
    upper1 = n1 if n1 is not None else "N1"
    upper2 = n2 if n2 is not None else "N2"
    params = tuple(p for p, v in (("N1", n1), ("N2", n2)) if v is None)
    shape_n1 = (n1 or 1000) + 1
    shape_n2 = (n2 or 1000) + 1
    body = assign(
        "s",
        aref("a", "3*I1+1", "2*I1+I2-1"),
        [aref("a", "I1+3", "I2+1")],
    )
    return program(
        "figure1",
        loop("I1", 1, upper1, loop("I2", 1, upper2, body)),
        parameters=params,
        array_shapes={"a": (3 * shape_n1 + 2, 2 * shape_n1 + shape_n2 + 2)},
    )


def figure2_loop(n: int = 20) -> LoopProgram:
    """Figure 2: the 1-D loop ``a(2*I) = a(21-I)``, I = 1..20.

    The dependence solutions are ``{i -> j | 2i = 21 - j}``; splitting them
    into monotonic chains gives chains of length two whose interior is empty,
    so the whole loop partitions into two fully parallel sets.
    """
    body = assign("s", aref("a", "2*I"), [aref("a", f"{n + 1}-I")])
    return program(
        "figure2",
        loop("I", 1, n, body),
        array_shapes={"a": (2 * n + 2,)},
    )


def example2_loop(n: Optional[int] = None) -> LoopProgram:
    """Example 2 (Ju & Chaudhary): ``a(2*I+3, J+1) = a(I+2*J+1, I+J+3)``.

    DO I = 1, N
      DO J = 1, N
        a(2*I+3, J+1) = a(I+2*J+1, I+J+3)
    """
    upper = n if n is not None else "N"
    params = () if n is not None else ("N",)
    size = (n or 300) + 1
    body = assign(
        "s",
        aref("a", "2*I+3", "J+1"),
        [aref("a", "I+2*J+1", "I+J+3")],
    )
    return program(
        "example2",
        loop("I", 1, upper, loop("J", 1, upper, body)),
        parameters=params,
        array_shapes={"a": (3 * size + 4, 2 * size + 4)},
    )


def example3_loop(n: Optional[int] = None) -> LoopProgram:
    """Example 3 (Chen & Yew): an imperfectly nested loop.

    DO I = 1, N
      DO J = 1, I
        DO K = J, I
          ... = a(I+2*K+5, 4*K-J)        (statement s1, read only)
        ENDDO
        a(I-J, I+J) = ...                (statement s2, write only)
      ENDDO
    ENDDO

    The only cross-statement reference pair is (read in s1, write in s2); the
    recurrence-chain partitioning finds an empty intermediate set so the loop
    becomes two sequences of DOALL nests (P1 then P3).
    """
    upper = n if n is not None else "N"
    params = () if n is not None else ("N",)
    size = (n or 300) + 1
    s1 = assign("s1", aref("tmp", "I", "J", "K"), [aref("a", "I+2*K+5", "4*K-J")])
    s2 = assign("s2", aref("a", "I-J", "I+J"), [])
    return program(
        "example3",
        loop("I", 1, upper, loop("J", 1, "I", loop("K", "J", "I", s1), s2)),
        parameters=params,
        array_shapes={
            "a": (3 * size + 6, 4 * size + 2),
            "tmp": (size + 1, size + 1, size + 1),
        },
    )


def cholesky_loop(
    nmat: int = 250, m: int = 4, n: int = 40, nrhs: int = 3
) -> LoopProgram:
    """Example 4: the NASA Cholesky kernel (two imperfectly nested loop nests).

    The kernel is encoded with concrete parameters (the paper uses NMAT=250,
    M=4, N=40, NRHS=3).  The ``MAX``/``MIN`` bounds of the original Fortran
    (``I0 = MAX(-M, -J)``, ``MIN(M, N-K)``) are expressed with multi-expression
    loop bounds; the backward substitution loop ``DO K = N, 0, -1`` is written
    with ``stride=-1`` and the whole program is unit-stride normalized before
    being returned, so downstream analyses always see the program model of §2.

    The middle index of ``a`` is shifted by ``+M`` (a constant offset) so every
    subscript evaluated inside the iteration space is non-negative and the
    dense-array executors can index numpy arrays directly; a constant shift
    changes no dependence.
    """
    from ..ir.normalize import normalize_program

    shift = m

    s3 = assign(
        "s3",
        aref("a", "L", f"I+{shift}", "J"),
        [
            aref("a", "L", f"I+{shift}", "J"),
            aref("a", "L", f"JJ+{shift}", "I+J"),
            aref("a", "L", f"I+JJ+{shift}", "J"),
        ],
    )
    s2 = assign(
        "s2",
        aref("a", "L", f"I+{shift}", "J"),
        [aref("a", "L", f"I+{shift}", "J"), aref("a", "L", f"{shift}", "I+J")],
    )
    s4 = assign("s4", aref("epss", "L"), [aref("a", "L", f"{shift}", "J")])
    s5 = assign(
        "s5",
        aref("a", "L", f"{shift}", "J"),
        [aref("a", "L", f"{shift}", "J"), aref("a", "L", f"JJ+{shift}", "J")],
    )
    s1 = assign(
        "s1",
        aref("a", "L", f"{shift}", "J"),
        [aref("epss", "L"), aref("a", "L", f"{shift}", "J")],
    )
    s8 = assign(
        "s8",
        aref("b", "I", "L", "K"),
        [aref("b", "I", "L", "K"), aref("a", "L", f"{shift}", "K")],
    )
    s7 = assign(
        "s7",
        aref("b", "I", "L", "K+JJ"),
        [aref("b", "I", "L", "K+JJ"), aref("a", "L", f"-JJ+{shift}", "K+JJ"), aref("b", "I", "L", "K")],
    )
    s9 = assign(
        "s9",
        aref("b", "I", "L", "K2"),
        [aref("b", "I", "L", "K2"), aref("a", "L", f"{shift}", "K2")],
    )
    s6 = assign(
        "s6",
        aref("b", "I", "L", "K2-JJ2"),
        [aref("b", "I", "L", "K2-JJ2"), aref("a", "L", f"-JJ2+{shift}", "K2"), aref("b", "I", "L", "K2")],
    )

    # First nest: factorization.  I0 = MAX(-M, -J) appears in the lower bounds
    # of the I loop and (via I0 - I = MAX(-M-I, -J-I)) of the innermost JJ loop.
    nest1 = loop(
        "J",
        0,
        n,
        loop(
            "I",
            [f"-{m}", "-J"],
            -1,
            loop("JJ", [f"-{m}-I", "-J-I"], -1, loop("L", 0, nmat, s3)),
            loop("L2", 0, nmat, _relabel(s2, "L", "L2")),
        ),
        loop("L3", 0, nmat, _relabel(s4, "L", "L3")),
        loop(
            "JJ3",
            [f"-{m}", "-J"],
            -1,
            loop("L4", 0, nmat, _relabel(_relabel(s5, "JJ", "JJ3"), "L", "L4")),
        ),
        loop("L5", 0, nmat, _relabel(s1, "L", "L5")),
    )

    # Second nest: forward substitution (K ascending) then backward substitution
    # (K descending, encoded with stride -1 over the same range).
    nest2 = loop(
        "I",
        0,
        nrhs,
        loop(
            "K",
            0,
            n,
            loop("L", 0, nmat, s8),
            loop("JJ", 1, [f"{m}", f"{n}-K"], loop("L6", 0, nmat, _relabel(s7, "L", "L6"))),
        ),
        loop(
            "K2",
            n,
            0,
            loop("L7", 0, nmat, _relabel(s9, "L", "L7")),
            loop("JJ2", 1, [f"{m}", "K2"], loop("L8", 0, nmat, _relabel(s6, "L", "L8"))),
            stride=-1,
        ),
    )
    prog = program(
        "cholesky",
        nest1,
        nest2,
        array_shapes={
            "a": (nmat + 1, 2 * m + 2, n + m + 2),
            "b": (nrhs + 1, nmat + 1, n + m + 2),
            "epss": (nmat + 1,),
        },
    )
    return normalize_program(prog)


def _relabel(stmt, old_index: str, new_index: str):
    """Rename a loop index inside a statement's subscripts (helper for reuse)."""
    from ..ir.nodes import ArrayRef, Statement

    def fix(ref: ArrayRef) -> ArrayRef:
        return ArrayRef(ref.array, tuple(s.rename({old_index: new_index}) for s in ref.subscripts))

    return Statement(
        stmt.label,
        tuple(fix(r) for r in stmt.writes),
        tuple(fix(r) for r in stmt.reads),
        stmt.semantics,
    )


PAPER_EXAMPLES = {
    "figure1": figure1_loop,
    "figure2": figure2_loop,
    "example2": example2_loop,
    "example3": example3_loop,
    "cholesky": cholesky_loop,
}


def paper_example(name: str, **kwargs) -> LoopProgram:
    """Factory lookup by name (``figure1``, ``figure2``, ``example2``, ...)."""
    if name not in PAPER_EXAMPLES:
        raise KeyError(f"unknown paper example {name!r}; choose from {sorted(PAPER_EXAMPLES)}")
    return PAPER_EXAMPLES[name](**kwargs)
