"""Wire transport for the plan server: framing, TCP server, retrying client.

The in-process :class:`~repro.serving.PlanServer` speaks plain dataclasses;
this package puts it on a socket without touching it:

* :mod:`~repro.serving.transport.wire` — a length-prefixed binary protocol
  (JSON header + raw NumPy payloads, protocol-versioned) marshalling
  :class:`~repro.serving.api.PlanRequest` / ``PlanResponse`` and the loop
  nest IR,
* :mod:`~repro.serving.transport.tcp` — :class:`TransportServer`, accepting
  concurrent TCP clients, feeding the server's admission queue with the
  ``reject`` policy (a full queue answers ``busy`` frames instead of pinning
  a thread) and streaming responses back per-ticket,
* :mod:`~repro.serving.transport.client` — :class:`TransportClient`, the
  same submit/result API as the in-process path plus capped
  exponential-backoff retry honouring the server's ``retry_after_ms`` hint.
"""

from .client import TransportClient, WireTicket
from .tcp import TransportServer
from .wire import (
    PROTOCOL_VERSION,
    FrameKind,
    ProtocolVersionMismatch,
    RemoteServingError,
    WireError,
)

__all__ = [
    "FrameKind",
    "PROTOCOL_VERSION",
    "ProtocolVersionMismatch",
    "RemoteServingError",
    "TransportClient",
    "TransportServer",
    "WireError",
    "WireTicket",
]
