"""The TCP face of the plan server: accept, decode, admit, stream back.

Threading model (one box per arrow owner)::

    client sockets --> accept thread --> one reader thread per connection
        reader: read_frame -> decode -> AdmissionQueue.submit(policy="reject")
                 |- full queue  -> BUSY frame (queued to the writer)
                 |- bad frame   -> ERROR frame
                 '- admitted    -> Ticket.add_done_callback(hand to writer)
    serving thread (PlanServer._serve) completes tickets
        '- done-callback enqueues the *ticket* to the connection's writer
    one writer thread per connection: marshal + send frames in order

The serving thread never marshals or touches a socket — its done-callback is
a queue append, so a slow client cannot stall the batch loop.  Admission
uses the ``reject`` policy regardless of the queue's in-process default: a
remote client must receive :class:`~repro.serving.policy.ServerBusy`
structured back-pressure (it retries with backoff, see
:class:`~repro.serving.transport.client.TransportClient`) rather than pin a
reader thread against a full queue.

Shutdown ordering (``close()``): stop accepting; half-close every
connection's read side so no new requests are admitted; wait for in-flight
tickets to finish streaming out (bounded by ``timeout``); close the sockets
and join every thread.  The owned :class:`~repro.serving.PlanServer` (when
this transport created it) is stopped *after* the connections drain, so its
close-then-drain contract serves every admitted request first and pool
shutdown still unlinks every shared-memory segment.
"""

from __future__ import annotations

import socket
import threading
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Tuple

from ..policy import ServerBusy
from ..queue import ServerClosed, Ticket
from ..server import PlanServer
from . import wire
from .wire import FrameKind, ProtocolVersionMismatch, WireError

__all__ = ["TransportServer"]

#: Writer-queue items: ("frame", kind, header, payloads) | ("ticket", ticket)
_QueueItem = Tuple[Any, ...]


class _Connection:
    """One accepted client: a reader thread, a writer thread, a send queue."""

    def __init__(self, sock: socket.socket, transport: "TransportServer", name: str):
        self.sock = sock
        self.transport = transport
        self.name = name
        self.rfile = sock.makefile("rb")
        self.wfile = sock.makefile("wb")
        self._out: Deque[_QueueItem] = deque()
        self._lock = threading.Lock()
        self._has_work = threading.Condition(self._lock)
        self._inflight = 0
        self._reader_done = False
        self._dead = False
        self.reader = threading.Thread(
            target=self._read_loop, name=f"{name}-reader", daemon=True
        )
        self.writer = threading.Thread(
            target=self._write_loop, name=f"{name}-writer", daemon=True
        )

    def start(self) -> None:
        self.reader.start()
        self.writer.start()

    # -- reader -----------------------------------------------------------------

    def _read_loop(self) -> None:
        try:
            while True:
                try:
                    kind, header, payloads = wire.read_frame(self.rfile)
                except ProtocolVersionMismatch as exc:
                    self._enqueue_error(None, exc)
                    break
                except WireError as exc:
                    self._enqueue_error(None, exc)
                    break
                except (EOFError, OSError, ValueError):
                    break  # client hung up (ValueError: makefile closed under us)
                if kind != FrameKind.REQUEST:
                    self._enqueue_error(
                        header.get("request_id"),
                        WireError(f"server expects request frames, got {kind.name}"),
                    )
                    continue
                self._handle_request(header, payloads)
        finally:
            with self._lock:
                self._reader_done = True
                self._has_work.notify_all()

    def _handle_request(self, header: Dict[str, Any], payloads: List[bytes]) -> None:
        request_id = header.get("request_id")
        try:
            request = wire.decode_request(header, payloads)
        except Exception as exc:  # noqa: BLE001 - decode errors go to the peer
            self._enqueue_error(request_id, exc)
            return
        try:
            ticket = self.transport.plan_server.submit(request, policy="reject")
        except ServerBusy as busy:
            self._enqueue(("frame", FrameKind.BUSY, wire.busy_frame(request.request_id, busy), ()))
            return
        except ServerClosed as exc:
            self._enqueue_error(request.request_id, exc)
            return
        with self._lock:
            self._inflight += 1
        ticket.add_done_callback(self._ticket_done)

    def _ticket_done(self, ticket: Ticket) -> None:
        # Runs on the serving thread: hand off, never marshal or send here.
        self._enqueue(("ticket", ticket))

    # -- writer -----------------------------------------------------------------

    def _enqueue(self, item: _QueueItem) -> None:
        with self._lock:
            self._out.append(item)
            self._has_work.notify_all()

    def _enqueue_error(self, request_id: Optional[str], error: BaseException) -> None:
        self._enqueue(
            ("frame", FrameKind.ERROR, wire.error_frame(request_id, error), ())
        )

    def _write_loop(self) -> None:
        while True:
            with self._lock:
                while not self._out and not self._dead and not (
                    self._reader_done and self._inflight == 0
                ):
                    self._has_work.wait()
                if self._dead or (
                    not self._out and self._reader_done and self._inflight == 0
                ):
                    return  # drained (or force-closed) and no more can arrive
                item = self._out.popleft()
            try:
                self._write_item(item)
            except (OSError, ValueError):
                # The peer is gone.  Ticket items already balanced their
                # in-flight count in _write_item's finally; drop the backlog
                # (the work completed server-side, nothing references it).
                with self._lock:
                    self._dead = True
                    for queued in self._out:
                        if queued[0] == "ticket":
                            self._inflight -= 1
                    self._out.clear()
                    self._has_work.notify_all()
                return

    def _write_item(self, item: _QueueItem) -> None:
        if item[0] == "frame":
            _, kind, header, payloads = item
            wire.write_frame(self.wfile, kind, header, payloads)
            return
        ticket: Ticket = item[1]
        try:
            if ticket.error is not None:
                header = wire.error_frame(ticket.request.request_id, ticket.error)
                kind, payloads = FrameKind.ERROR, ()
            else:
                header, payloads = wire.response_frame(ticket.result(timeout=0))
                kind = FrameKind.RESPONSE
        except Exception as exc:  # noqa: BLE001 - marshalling failure -> peer
            header = wire.error_frame(ticket.request.request_id, exc)
            kind, payloads = FrameKind.ERROR, ()
        try:
            wire.write_frame(self.wfile, kind, header, payloads)
        finally:
            with self._lock:
                self._inflight -= 1
                self._has_work.notify_all()

    # -- shutdown ---------------------------------------------------------------

    def begin_close(self) -> None:
        """Half-close: stop reading new requests, keep streaming responses."""
        try:
            self.sock.shutdown(socket.SHUT_RD)
        except OSError:
            pass

    def join(self, timeout: Optional[float]) -> None:
        self.reader.join(timeout)
        self.writer.join(timeout)

    def force_close(self) -> None:
        # shutdown() first: it unblocks a reader parked in recv, which a
        # cross-thread close() of the buffered makefile would deadlock on.
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        with self._lock:
            self._dead = True
            self._has_work.notify_all()
        self.reader.join(1.0)
        self.writer.join(1.0)
        for closer in (self.wfile.close, self.rfile.close, self.sock.close):
            try:
                closer()
            except (OSError, ValueError):
                pass


class TransportServer:
    """Serve a :class:`~repro.serving.PlanServer` over TCP.

    Pass an existing (started or not) ``plan_server`` to share it with
    in-process submitters, or omit it and the transport creates and owns one
    from ``**server_kwargs`` (stopped again on :meth:`close`).  ``port=0``
    binds an ephemeral port; read :attr:`address` after :meth:`start`.
    """

    def __init__(
        self,
        plan_server: Optional[PlanServer] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        backlog: int = 64,
        **server_kwargs: Any,
    ):
        if plan_server is not None and server_kwargs:
            raise ValueError(
                "pass either an existing plan_server or PlanServer kwargs, not both"
            )
        self._owns_server = plan_server is None
        self.plan_server = plan_server or PlanServer(**server_kwargs)
        self.host = host
        self.port = port
        self.backlog = backlog
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._connections: List[_Connection] = []
        self._conn_lock = threading.Lock()
        self._closing = False
        self._closed = False
        self._conn_seq = 0

    # -- lifecycle --------------------------------------------------------------

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` — available after :meth:`start`."""
        if self._listener is None:
            raise RuntimeError("transport not started")
        return self._listener.getsockname()[:2]

    def start(self) -> "TransportServer":
        if self._closed:
            raise RuntimeError("transport already closed")
        if self._listener is not None:
            return self
        self.plan_server.start()
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self.port))
        listener.listen(self.backlog)
        # A blocked accept() is not reliably woken by close() from another
        # thread; poll with a short timeout so close() always terminates the
        # accept loop.
        listener.settimeout(0.1)
        self._listener = listener
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-transport-accept", daemon=True
        )
        self._accept_thread.start()
        return self

    def __enter__(self) -> "TransportServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    def _accept_loop(self) -> None:
        assert self._listener is not None
        while not self._closing:
            try:
                sock, _addr = self._listener.accept()
            except socket.timeout:
                continue  # re-check the closing flag
            except OSError:
                return  # listener closed
            sock.settimeout(None)  # accepted sockets must block normally
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            with self._conn_lock:
                if self._closing:
                    sock.close()
                    return
                self._conn_seq += 1
                conn = _Connection(
                    sock, self, name=f"repro-transport-conn{self._conn_seq}"
                )
                self._connections.append(conn)
            conn.start()

    def close(self, timeout: Optional[float] = 30.0) -> None:
        """Drain and shut down; see the module docstring for the ordering."""
        if self._closed:
            return
        self._closing = True
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout)
        with self._conn_lock:
            connections = list(self._connections)
        for conn in connections:
            conn.begin_close()
        for conn in connections:
            conn.join(timeout)  # writers exit once in-flight tickets stream out
        for conn in connections:
            conn.force_close()
        if self._owns_server:
            self.plan_server.stop()
        self._closed = True

    def stats(self) -> Dict[str, object]:
        """Transport occupancy plus the underlying server's counters."""
        with self._conn_lock:
            live = sum(1 for c in self._connections if c.reader.is_alive())
            total = self._conn_seq
        return {
            "connections_live": live,
            "connections_total": total,
            "server": self.plan_server.stats(),
        }
