"""Framing and marshalling: dataclasses + NumPy stores on a byte stream.

One frame on the wire::

    +--------+---------+------+-------------+----------------+---------...
    | magic  | version | kind | header_len  | header (JSON)  | payloads
    | 4 B    | u16 BE  | u8   | u32 BE      | header_len B   | raw bytes
    +--------+---------+------+-------------+----------------+---------...

The JSON header carries everything structured — request/response fields, the
loop-nest IR, plan/exec configs — plus an ``arrays`` list of payload specs
(``name`` / ``dtype`` / ``shape`` / ``nbytes``).  The payloads are the raw
``ndarray.tobytes()`` bodies, concatenated in spec order, so array data never
passes through JSON and round-trips bit-identically (dtype and shape are
pinned by the spec, C order enforced on send).

Frame kinds: ``REQUEST`` and ``RESPONSE`` carry the serving payloads;
``BUSY`` is the structured back-pressure answer
(:class:`~repro.serving.policy.ServerBusy` as a header); ``ERROR`` reports a
serving- or protocol-side failure and re-raises client-side as
:class:`RemoteServingError`.  A version mismatch is detected on *every*
frame (the version rides the fixed prelude) and raised as
:class:`ProtocolVersionMismatch` — the server answers one ``ERROR`` frame
before hanging up so old clients fail with a message, not a reset.

Deliberate marshalling refusals (clear errors, not silent drops): statement
``semantics`` callables, ``ExecConfig.cost_model`` objects and non-JSON
``meta`` values cannot cross the wire.
"""

from __future__ import annotations

import enum
import json
import struct
from dataclasses import asdict
from fractions import Fraction
from typing import Any, Dict, IO, List, Optional, Tuple

import numpy as np

from ...analysis.features import ProgramFeatures
from ...core.strategy import PlanConfig, SelectionReport
from ...ir.nodes import ArrayRef, Loop, Statement
from ...ir.program import LoopProgram
from ...isl.affine import AffineExpr
from ...runtime.backends import ExecConfig, PhaseStats, RunResult
from ..api import PlanRequest, PlanResponse
from ..policy import ServerBusy

__all__ = [
    "FrameKind",
    "PROTOCOL_VERSION",
    "ProtocolVersionMismatch",
    "RemoteServingError",
    "WireError",
    "read_frame",
    "write_frame",
    "request_frame",
    "response_frame",
    "busy_frame",
    "error_frame",
    "decode_request",
    "decode_response",
    "program_to_dict",
    "program_from_dict",
]

#: First bytes of every frame — a cheap "is this even our protocol" check.
MAGIC = b"RPLN"

#: Bumped on any incompatible change to the frame layout or header schema.
PROTOCOL_VERSION = 1

#: magic, version, kind, header length.
_PRELUDE = struct.Struct(">4sHBI")

#: Refuse absurd headers before allocating for them (a stray HTTP request
#: hitting the port must not look like a 1 GiB header).
_MAX_HEADER_BYTES = 64 * 1024 * 1024


class WireError(RuntimeError):
    """Malformed frame, unknown kind, or unmarshallable payload."""


class ProtocolVersionMismatch(WireError):
    """The peer speaks a different protocol version."""

    def __init__(self, theirs: int, ours: int = PROTOCOL_VERSION):
        super().__init__(
            f"peer protocol version {theirs} != ours {ours}; "
            "upgrade the older side"
        )
        self.theirs = theirs
        self.ours = ours


class RemoteServingError(RuntimeError):
    """An ``ERROR`` frame, re-raised client-side with the remote detail."""

    def __init__(self, error_type: str, message: str):
        super().__init__(f"{error_type}: {message}")
        self.error_type = error_type
        self.remote_message = message


class FrameKind(enum.IntEnum):
    REQUEST = 1
    RESPONSE = 2
    ERROR = 3
    BUSY = 4


# ---------------------------------------------------------------------------
# frame I/O
# ---------------------------------------------------------------------------


def write_frame(
    stream: IO[bytes],
    kind: FrameKind,
    header: Dict[str, Any],
    payloads: Tuple[bytes, ...] = (),
) -> None:
    """Serialise one frame onto ``stream`` (caller flushes)."""
    header_bytes = json.dumps(header, separators=(",", ":")).encode("utf-8")
    stream.write(
        _PRELUDE.pack(MAGIC, PROTOCOL_VERSION, int(kind), len(header_bytes))
    )
    stream.write(header_bytes)
    for body in payloads:
        stream.write(body)
    stream.flush()


def _read_exactly(stream: IO[bytes], n: int) -> bytes:
    chunks: List[bytes] = []
    remaining = n
    while remaining:
        chunk = stream.read(remaining)
        if not chunk:
            raise EOFError(f"peer closed mid-frame ({remaining} bytes short)")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_frame(stream: IO[bytes]) -> Tuple[FrameKind, Dict[str, Any], List[bytes]]:
    """Read one frame; raises :class:`EOFError` on a cleanly closed stream.

    The payload bodies are returned in header-spec order; use
    :func:`arrays_from_payloads` to rebuild the ndarrays.
    """
    prelude = stream.read(_PRELUDE.size)
    if not prelude:
        raise EOFError("connection closed")
    if len(prelude) < _PRELUDE.size:
        prelude += _read_exactly(stream, _PRELUDE.size - len(prelude))
    magic, version, kind_raw, header_len = _PRELUDE.unpack(prelude)
    if magic != MAGIC:
        raise WireError(f"bad magic {magic!r} (not a plan-server peer?)")
    if version != PROTOCOL_VERSION:
        raise ProtocolVersionMismatch(version)
    try:
        kind = FrameKind(kind_raw)
    except ValueError:
        raise WireError(f"unknown frame kind {kind_raw}") from None
    if header_len > _MAX_HEADER_BYTES:
        raise WireError(f"header length {header_len} exceeds sanity bound")
    try:
        header = json.loads(_read_exactly(stream, header_len).decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise WireError(f"undecodable frame header: {exc}") from None
    payloads = [
        _read_exactly(stream, int(spec["nbytes"]))
        for spec in header.get("arrays", [])
    ]
    return kind, header, payloads


# ---------------------------------------------------------------------------
# ndarray specs
# ---------------------------------------------------------------------------


def array_specs(
    store: Optional[Dict[str, np.ndarray]],
) -> Tuple[List[Dict[str, Any]], Tuple[bytes, ...]]:
    """Payload specs + raw bodies for a store (``None`` -> no payloads)."""
    if store is None:
        return [], ()
    specs: List[Dict[str, Any]] = []
    bodies: List[bytes] = []
    for name in sorted(store):
        arr = np.ascontiguousarray(store[name])
        specs.append(
            {
                "name": name,
                "dtype": arr.dtype.str,
                "shape": list(arr.shape),
                "nbytes": arr.nbytes,
            }
        )
        bodies.append(arr.tobytes())
    return specs, tuple(bodies)


def arrays_from_payloads(
    specs: List[Dict[str, Any]], payloads: List[bytes]
) -> Dict[str, np.ndarray]:
    """Rebuild the store, dtype and shape pinned by the specs."""
    if len(specs) != len(payloads):
        raise WireError(
            f"frame carries {len(payloads)} payloads for {len(specs)} specs"
        )
    store: Dict[str, np.ndarray] = {}
    for spec, body in zip(specs, payloads):
        dtype = np.dtype(spec["dtype"])
        shape = tuple(int(s) for s in spec["shape"])
        expected = dtype.itemsize * int(np.prod(shape, dtype=np.int64)) if shape else dtype.itemsize
        if len(body) != int(spec["nbytes"]) or len(body) != expected:
            raise WireError(
                f"array {spec['name']!r}: payload is {len(body)} bytes, "
                f"spec says {spec['nbytes']} for {dtype} {shape}"
            )
        store[spec["name"]] = np.frombuffer(body, dtype=dtype).reshape(shape).copy()
    return store


# ---------------------------------------------------------------------------
# IR marshalling
# ---------------------------------------------------------------------------


def _frac_to_wire(f: Fraction) -> List[int]:
    f = Fraction(f)
    return [f.numerator, f.denominator]


def _frac_from_wire(v: Any) -> Fraction:
    return Fraction(int(v[0]), int(v[1]))


def affine_to_dict(expr: AffineExpr) -> Dict[str, Any]:
    return {
        "coeffs": [[name, _frac_to_wire(c)] for name, c in expr.coeffs],
        "constant": _frac_to_wire(expr.constant),
    }


def affine_from_dict(d: Dict[str, Any]) -> AffineExpr:
    return AffineExpr.build(
        {name: _frac_from_wire(c) for name, c in d["coeffs"]},
        _frac_from_wire(d["constant"]),
    )


def _ref_to_dict(ref: ArrayRef) -> Dict[str, Any]:
    return {
        "array": ref.array,
        "subscripts": [affine_to_dict(s) for s in ref.subscripts],
    }


def _ref_from_dict(d: Dict[str, Any]) -> ArrayRef:
    return ArrayRef(
        d["array"], tuple(affine_from_dict(s) for s in d["subscripts"])
    )


def _node_to_dict(node: Any) -> Dict[str, Any]:
    if isinstance(node, Statement):
        if node.semantics is not None:
            raise WireError(
                f"statement {node.label!r} carries a semantics callable; "
                "callables cannot be marshalled — serve programs with "
                "default semantics (semantics=None)"
            )
        return {
            "node": "statement",
            "label": node.label,
            "writes": [_ref_to_dict(r) for r in node.writes],
            "reads": [_ref_to_dict(r) for r in node.reads],
        }
    if isinstance(node, Loop):
        return {
            "node": "loop",
            "index": node.index,
            "lower": [affine_to_dict(b) for b in node.lower],
            "upper": [affine_to_dict(b) for b in node.upper],
            "body": [_node_to_dict(child) for child in node.body],
            "stride": node.stride,
        }
    raise WireError(f"unmarshallable IR node {type(node).__name__}")


def _node_from_dict(d: Dict[str, Any]) -> Any:
    if d["node"] == "statement":
        return Statement(
            d["label"],
            tuple(_ref_from_dict(r) for r in d["writes"]),
            tuple(_ref_from_dict(r) for r in d["reads"]),
            None,
        )
    if d["node"] == "loop":
        return Loop(
            d["index"],
            tuple(affine_from_dict(b) for b in d["lower"]),
            tuple(affine_from_dict(b) for b in d["upper"]),
            tuple(_node_from_dict(child) for child in d["body"]),
            int(d["stride"]),
        )
    raise WireError(f"unknown IR node kind {d['node']!r}")


def program_to_dict(program: LoopProgram) -> Dict[str, Any]:
    return {
        "name": program.name,
        "body": [_node_to_dict(node) for node in program.body],
        "parameters": list(program.parameters),
        "array_shapes": {
            name: list(shape) for name, shape in program.array_shapes.items()
        },
    }


def program_from_dict(d: Dict[str, Any]) -> LoopProgram:
    return LoopProgram(
        name=d["name"],
        body=tuple(_node_from_dict(node) for node in d["body"]),
        parameters=tuple(d["parameters"]),
        array_shapes={
            name: tuple(int(s) for s in shape)
            for name, shape in d["array_shapes"].items()
        },
    )


# ---------------------------------------------------------------------------
# config marshalling
# ---------------------------------------------------------------------------


def exec_config_to_dict(cfg: Optional[ExecConfig]) -> Optional[Dict[str, Any]]:
    if cfg is None:
        return None
    if cfg.cost_model is not None:
        raise WireError(
            "ExecConfig.cost_model objects cannot be marshalled; "
            "configure the simulated backend server-side"
        )
    return {
        "backend": cfg.backend,
        "workers": cfg.workers,
        "seed": cfg.seed,
        "lock_free": cfg.lock_free,
        "mp_context": cfg.mp_context,
    }


def exec_config_from_dict(d: Optional[Dict[str, Any]]) -> Optional[ExecConfig]:
    if d is None:
        return None
    return ExecConfig(
        backend=d["backend"],
        workers=int(d["workers"]),
        seed=d["seed"],
        lock_free=bool(d["lock_free"]),
        mp_context=d["mp_context"],
    )


def plan_config_to_dict(cfg: Optional[PlanConfig]) -> Optional[Dict[str, Any]]:
    if cfg is None:
        return None
    return {
        "engine": cfg.engine,
        "bulk_size_threshold": cfg.bulk_size_threshold,
        "force_dataflow": cfg.force_dataflow,
        "strategies": list(cfg.strategies) if cfg.strategies is not None else None,
        "selector": cfg.selector,
        "rng_seed": cfg.rng_seed,
        "exec_config": exec_config_to_dict(cfg.exec_config),
    }


def plan_config_from_dict(d: Optional[Dict[str, Any]]) -> Optional[PlanConfig]:
    if d is None:
        return None
    return PlanConfig(
        engine=d["engine"],
        bulk_size_threshold=d["bulk_size_threshold"],
        force_dataflow=bool(d["force_dataflow"]),
        strategies=tuple(d["strategies"]) if d["strategies"] is not None else None,
        selector=d["selector"],
        rng_seed=d["rng_seed"],
        exec_config=exec_config_from_dict(d["exec_config"]),
    )


def _selection_to_dict(sel: Optional[SelectionReport]) -> Optional[Dict[str, Any]]:
    if sel is None:
        return None
    return {
        "selector": sel.selector,
        "order": list(sel.order),
        "scores": [[s, v, r] for s, v, r in sel.scores],
        "features": asdict(sel.features) if isinstance(sel.features, ProgramFeatures) else None,
        "bucket": sel.bucket,
        "source": sel.source,
    }


def _selection_from_dict(d: Optional[Dict[str, Any]]) -> Optional[SelectionReport]:
    if d is None:
        return None
    return SelectionReport(
        selector=d["selector"],
        order=tuple(d["order"]),
        scores=tuple((s, float(v), r) for s, v, r in d["scores"]),
        features=(
            ProgramFeatures(**d["features"]) if d["features"] is not None else None
        ),
        bucket=d["bucket"],
        source=d["source"],
    )


# ---------------------------------------------------------------------------
# request / response frames
# ---------------------------------------------------------------------------


def request_frame(req: PlanRequest) -> Tuple[Dict[str, Any], Tuple[bytes, ...]]:
    """Header + payloads for one :class:`PlanRequest`."""
    specs, bodies = array_specs(req.store)
    header = {
        "request_id": req.request_id,
        "program": program_to_dict(req.program),
        "params": {k: int(v) for k, v in dict(req.params).items()},
        "config": plan_config_to_dict(req.config),
        "exec_config": exec_config_to_dict(req.exec_config),
        "has_store": req.store is not None,
        "arrays": specs,
    }
    return header, bodies


def decode_request(header: Dict[str, Any], payloads: List[bytes]) -> PlanRequest:
    store = (
        arrays_from_payloads(header["arrays"], payloads)
        if header["has_store"]
        else None
    )
    return PlanRequest(
        program=program_from_dict(header["program"]),
        params=dict(header["params"]),
        config=plan_config_from_dict(header["config"]),
        exec_config=exec_config_from_dict(header["exec_config"]),
        store=store,
        request_id=header["request_id"],
    )


def _json_safe_meta(meta: Dict[str, Any]) -> Dict[str, Any]:
    out: Dict[str, Any] = {}
    for key, value in meta.items():
        try:
            json.dumps(value)
        except (TypeError, ValueError):
            out[key] = repr(value)  # observability value, not a round-trip one
        else:
            out[key] = value
    return out


def response_frame(resp: PlanResponse) -> Tuple[Dict[str, Any], Tuple[bytes, ...]]:
    """Header + payloads for one :class:`PlanResponse`."""
    result = resp.result
    specs, bodies = array_specs(result.store)
    header = {
        "request_id": resp.request_id,
        "strategy": resp.strategy,
        "scheme": resp.scheme,
        "backend": resp.backend,
        "selection": _selection_to_dict(resp.selection),
        "explain": resp.explain,
        "plan_cache_hit": resp.plan_cache_hit,
        "pool_reused": resp.pool_reused,
        "batch_size": resp.batch_size,
        "timings": dict(resp.timings),
        "result": {
            "backend": result.backend,
            "workers": result.workers,
            "elapsed_s": result.elapsed_s,
            "meta": _json_safe_meta(dict(result.meta)),
            "phase_stats": [asdict(p) for p in result.phase_stats],
            "has_store": result.store is not None,
        },
        "arrays": specs,
    }
    return header, bodies


def decode_response(header: Dict[str, Any], payloads: List[bytes]) -> PlanResponse:
    rd = header["result"]
    store = (
        arrays_from_payloads(header["arrays"], payloads)
        if rd["has_store"]
        else None
    )
    result = RunResult(
        store=store,
        backend=rd["backend"],
        workers=int(rd["workers"]),
        phase_stats=tuple(PhaseStats(**p) for p in rd["phase_stats"]),
        elapsed_s=float(rd["elapsed_s"]),
        meta=dict(rd["meta"]),
    )
    return PlanResponse(
        request_id=header["request_id"],
        strategy=header["strategy"],
        scheme=header["scheme"],
        backend=header["backend"],
        result=result,
        selection=_selection_from_dict(header["selection"]),
        explain=header["explain"],
        plan_cache_hit=bool(header["plan_cache_hit"]),
        pool_reused=bool(header["pool_reused"]),
        batch_size=int(header["batch_size"]),
        timings={k: float(v) for k, v in header["timings"].items()},
    )


def busy_frame(request_id: str, busy: ServerBusy) -> Dict[str, Any]:
    return {"request_id": request_id, **busy.to_header()}


def error_frame(
    request_id: Optional[str], error: BaseException
) -> Dict[str, Any]:
    return {
        "request_id": request_id,
        "error_type": type(error).__name__,
        "message": str(error),
    }
