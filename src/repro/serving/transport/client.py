"""TCP client with the in-process submit/result API plus busy-retry.

:class:`TransportClient` mirrors :class:`~repro.serving.PlanServer`'s client
face — ``submit(request) -> ticket`` and the blocking ``request(...)``
convenience — over a socket.  One reader thread demultiplexes incoming
frames to their tickets by ``request_id``, so many threads can share one
connection and responses may arrive in any order.

Back-pressure handling: a ``busy`` frame does **not** fail the ticket.  The
client re-sends the same request after a delay of::

    max(retry_after_ms, base_backoff * 2**attempt)  capped at max_backoff
    + uniform jitter of up to half the delay

— capped exponential backoff seeded by the server's own hint, with jitter so
a herd of rejected clients spreads out instead of re-stampeding in
lock-step.  A rejected submission was never admitted server-side, so a
retry can neither lose nor duplicate a response; after ``max_retries``
rejections the ticket fails with the last :class:`ServerBusy`.
"""

from __future__ import annotations

import random
import socket
import threading
from typing import Dict, Mapping, Optional

import numpy as np

from ...core.strategy import PlanConfig
from ...ir.program import LoopProgram
from ...runtime.backends import ExecConfig
from ..api import PlanRequest, PlanResponse
from ..policy import ServerBusy
from . import wire
from .wire import FrameKind, ProtocolVersionMismatch, RemoteServingError, WireError

__all__ = ["TransportClient", "WireTicket"]


class WireTicket:
    """Client-side handle on one wire request (the :class:`Ticket` twin)."""

    def __init__(self, request: PlanRequest):
        self.request = request
        self.attempts = 0
        self._done = threading.Event()
        self._response: Optional[PlanResponse] = None
        self._error: Optional[BaseException] = None

    @property
    def done(self) -> bool:
        return self._done.is_set()

    def _complete(self, response: PlanResponse) -> None:
        self._response = response
        self._done.set()

    def _fail(self, error: BaseException) -> None:
        self._error = error
        self._done.set()

    def result(self, timeout: Optional[float] = None) -> PlanResponse:
        if not self._done.wait(timeout):
            raise TimeoutError(
                f"request {self.request.request_id} not answered within {timeout}s"
            )
        if self._error is not None:
            raise self._error
        assert self._response is not None
        return self._response


class TransportClient:
    """One TCP connection to a :class:`~repro.serving.transport.TransportServer`.

    ``max_retries`` bounds busy-frame re-submissions per request;
    ``rng_seed`` pins the jitter for reproducible tests.
    """

    def __init__(
        self,
        host: str,
        port: int,
        connect_timeout: Optional[float] = 10.0,
        max_retries: int = 12,
        base_backoff_s: float = 0.01,
        max_backoff_s: float = 1.0,
        rng_seed: Optional[int] = None,
    ):
        self.max_retries = max_retries
        self.base_backoff_s = base_backoff_s
        self.max_backoff_s = max_backoff_s
        self._rng = random.Random(rng_seed)
        self._sock = socket.create_connection((host, port), timeout=connect_timeout)
        self._sock.settimeout(None)
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._rfile = self._sock.makefile("rb")
        self._wfile = self._sock.makefile("wb")
        self._send_lock = threading.Lock()
        self._pending: Dict[str, WireTicket] = {}
        self._pending_lock = threading.Lock()
        self._timers: Dict[str, threading.Timer] = {}
        self._closed = False
        self._broken: Optional[BaseException] = None
        self._reader = threading.Thread(
            target=self._read_loop, name="repro-transport-client", daemon=True
        )
        self._reader.start()

    # -- client API -------------------------------------------------------------

    def submit(self, request: PlanRequest) -> WireTicket:
        """Send one request; returns immediately with a :class:`WireTicket`."""
        if self._closed:
            raise ConnectionError("transport client is closed")
        if self._broken is not None:
            raise ConnectionError(
                f"connection to plan server is down: {self._broken}"
            )
        ticket = WireTicket(request)
        with self._pending_lock:
            self._pending[request.request_id] = ticket
        try:
            self._send(ticket)
        except BaseException:
            with self._pending_lock:
                self._pending.pop(request.request_id, None)
            raise
        return ticket

    def request(
        self,
        program: LoopProgram,
        params: Optional[Mapping[str, int]] = None,
        config: Optional[PlanConfig] = None,
        exec_config: Optional[ExecConfig] = None,
        store: Optional[Dict[str, np.ndarray]] = None,
        timeout: Optional[float] = 60.0,
    ) -> PlanResponse:
        """Blocking convenience — same signature as ``PlanServer.request``."""
        ticket = self.submit(
            PlanRequest(
                program=program,
                params=dict(params or {}),
                config=config,
                exec_config=exec_config,
                store=store,
            )
        )
        return ticket.result(timeout)

    def close(self) -> None:
        """Drop the connection; in-flight tickets fail with ConnectionError."""
        if self._closed:
            return
        self._closed = True
        with self._pending_lock:
            timers = list(self._timers.values())
            self._timers.clear()
        for timer in timers:
            timer.cancel()
        # shutdown() unblocks the reader thread (a plain close() of the
        # buffered makefile would deadlock against its in-progress read).
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._reader.join(5.0)
        for closer in (self._wfile.close, self._rfile.close, self._sock.close):
            try:
                closer()
            except (OSError, ValueError):
                pass
        self._fail_all(ConnectionError("transport client closed"))

    def __enter__(self) -> "TransportClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- sending / retry --------------------------------------------------------

    def _send(self, ticket: WireTicket) -> None:
        header, payloads = wire.request_frame(ticket.request)
        ticket.attempts += 1
        with self._send_lock:
            wire.write_frame(self._wfile, FrameKind.REQUEST, header, payloads)

    def _retry_later(self, ticket: WireTicket, busy: ServerBusy) -> None:
        if ticket.attempts > self.max_retries:
            self._finish(ticket.request.request_id, error=busy)
            return
        delay = max(
            busy.retry_after_ms / 1000.0,
            self.base_backoff_s * (2 ** (ticket.attempts - 1)),
        )
        delay = min(delay, self.max_backoff_s)
        delay += self._rng.uniform(0, delay / 2)
        timer = threading.Timer(delay, self._resend, args=(ticket,))
        timer.daemon = True
        with self._pending_lock:
            if self._closed:
                return
            self._timers[ticket.request.request_id] = timer
        timer.start()

    def _resend(self, ticket: WireTicket) -> None:
        with self._pending_lock:
            self._timers.pop(ticket.request.request_id, None)
            if self._closed or ticket.request.request_id not in self._pending:
                return
        try:
            self._send(ticket)
        except (OSError, ValueError) as exc:
            self._finish(ticket.request.request_id, error=exc)

    # -- receiving --------------------------------------------------------------

    def _read_loop(self) -> None:
        try:
            while True:
                kind, header, payloads = wire.read_frame(self._rfile)
                self._dispatch(kind, header, payloads)
        except (EOFError, OSError, ValueError):
            self._fail_all(ConnectionError("connection to plan server lost"))
        except ProtocolVersionMismatch as exc:
            self._fail_all(exc)
        except WireError as exc:
            self._fail_all(exc)

    def _dispatch(self, kind: FrameKind, header: Dict, payloads) -> None:
        request_id = header.get("request_id")
        if kind == FrameKind.RESPONSE:
            response = wire.decode_response(header, payloads)
            ticket = self._take(request_id)
            if ticket is None:
                return  # late duplicate/unknown id: drop, never mis-deliver
            self._finish_ticket(ticket, self._with_client_store(ticket, response))
            return
        if kind == FrameKind.BUSY:
            with self._pending_lock:
                ticket = self._pending.get(request_id)
            if ticket is not None:
                self._retry_later(ticket, ServerBusy.from_header(header))
            return
        if kind == FrameKind.ERROR:
            error: BaseException
            if header.get("error_type") == "ProtocolVersionMismatch":
                error = RemoteServingError("ProtocolVersionMismatch", header["message"])
            else:
                error = RemoteServingError(
                    header.get("error_type", "RemoteError"), header.get("message", "")
                )
            if request_id is None:
                self._fail_all(error)
            else:
                self._finish(request_id, error=error)
            return
        raise WireError(f"client received unexpected frame kind {kind}")

    def _with_client_store(
        self, ticket: WireTicket, response: PlanResponse
    ) -> PlanResponse:
        """Write results back into the caller's own arrays, like in-process.

        ``execute(store=...)`` mutates the caller's store in place; the wire
        path preserves that contract by copying the returned arrays into the
        request's store objects and pointing the response at them.
        """
        client_store = ticket.request.store
        remote_store = response.result.store
        if client_store is None or remote_store is None:
            return response
        for name, arr in remote_store.items():
            if name in client_store:
                client_store[name][...] = arr
                remote_store[name] = client_store[name]
        return response

    # -- ticket bookkeeping -----------------------------------------------------

    def _take(self, request_id: Optional[str]) -> Optional[WireTicket]:
        with self._pending_lock:
            self._timers.pop(request_id, None)
            return self._pending.pop(request_id, None)

    def _finish(
        self,
        request_id: Optional[str],
        response: Optional[PlanResponse] = None,
        error: Optional[BaseException] = None,
    ) -> None:
        ticket = self._take(request_id)
        if ticket is None:
            return
        if error is not None:
            ticket._fail(error)
        else:
            assert response is not None
            ticket._complete(response)

    @staticmethod
    def _finish_ticket(ticket: WireTicket, response: PlanResponse) -> None:
        ticket._complete(response)

    def _fail_all(self, error: BaseException) -> None:
        self._broken = error  # later submits fail fast instead of timing out
        with self._pending_lock:
            tickets = list(self._pending.values())
            self._pending.clear()
            timers = list(self._timers.values())
            self._timers.clear()
        for timer in timers:
            timer.cancel()
        for ticket in tickets:
            ticket._fail(error)
