"""Admission queue of the plan server: tickets, batching, back-pressure.

Clients on any thread :meth:`~AdmissionQueue.submit` a request and get a
:class:`Ticket` back immediately; the single serving thread pulls work with
:meth:`~AdmissionQueue.next_batch`, which blocks for the *first* pending
request and then drains (without further waiting) up to ``max_batch`` more.
Small executions submitted close together therefore ride the same batch —
the server plans/attaches/executes them back-to-back against the live worker
pool, so per-request overhead (and the pool's per-phase barrier set-up)
amortises across the batch.

Back-pressure: ``max_pending`` bounds the queue.  On saturation the
configured :mod:`policy <repro.serving.policy>` decides who absorbs the
pressure — ``"block"`` (the in-process default) parks the submitting thread
until the serving loop drains room, ``"reject"`` raises
:class:`~repro.serving.policy.ServerBusy` with a structured retry hint (what
the wire transport sends back to remote clients).  A per-call override lets
one queue serve both faces: ``submit(req, policy="reject")``.

Shutdown contract: :meth:`~AdmissionQueue.close` stops new admissions
(subsequent submits raise :class:`ServerClosed`, and blocked submitters wake
up with it) but leaves already-admitted requests in the queue — the serving
loop keeps calling ``next_batch`` until it returns an empty batch *and*
:attr:`~AdmissionQueue.closed` is set, which is the drain-on-shutdown path.
:meth:`~AdmissionQueue.fail_pending` is the no-drain alternative: every
waiting ticket gets a :class:`ServerClosed`.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Callable, Deque, Dict, List, Optional

from .api import PlanRequest, PlanResponse
from .policy import ADMISSION_POLICIES, ServerBusy, retry_after_ms_hint

__all__ = ["AdmissionQueue", "ServerBusy", "ServerClosed", "Ticket"]


class ServerClosed(RuntimeError):
    """Raised by submits after close, and into tickets dropped un-served."""


class Ticket:
    """A client's handle on one admitted request.

    The serving thread completes it exactly once with either a
    :class:`~repro.serving.api.PlanResponse` or an exception;
    :meth:`result` blocks the client until then.  The wire transport
    registers :meth:`add_done_callback` instead of blocking, so responses
    stream back per-ticket as the serving thread finishes them.
    """

    def __init__(self, request: PlanRequest):
        self.request = request
        self._done = threading.Event()
        self._response: Optional[PlanResponse] = None
        self._error: Optional[BaseException] = None
        self._callbacks: List[Callable[["Ticket"], None]] = []
        self._cb_lock = threading.Lock()

    # -- serving side -----------------------------------------------------------

    def set_result(self, response: PlanResponse) -> None:
        self._response = response
        self._done.set()
        self._run_callbacks()

    def set_exception(self, error: BaseException) -> None:
        self._error = error
        self._done.set()
        self._run_callbacks()

    def _run_callbacks(self) -> None:
        with self._cb_lock:
            callbacks, self._callbacks = self._callbacks, []
        for cb in callbacks:
            cb(self)

    # -- client side ------------------------------------------------------------

    @property
    def done(self) -> bool:
        return self._done.is_set()

    @property
    def error(self) -> Optional[BaseException]:
        """The serving-side exception, if the request failed (``None`` else)."""
        return self._error

    def add_done_callback(self, callback: Callable[["Ticket"], None]) -> None:
        """Run ``callback(self)`` when the ticket completes.

        Runs on the completing (serving) thread — callbacks must be quick
        hand-offs (e.g. enqueue to a writer), never blocking work.  A
        callback added after completion runs immediately on the caller.
        """
        with self._cb_lock:
            if not self._done.is_set():
                self._callbacks.append(callback)
                return
        callback(self)

    def result(self, timeout: Optional[float] = None) -> PlanResponse:
        """The response, blocking up to ``timeout`` seconds.

        Re-raises the serving-side exception if the request failed, and
        :class:`TimeoutError` if the server has not answered in time.
        """
        if not self._done.wait(timeout):
            raise TimeoutError(
                f"request {self.request.request_id} not served within {timeout}s"
            )
        if self._error is not None:
            raise self._error
        assert self._response is not None
        return self._response


class AdmissionQueue:
    """FIFO admission with bounded batch hand-off to the serving thread.

    ``max_pending=None`` keeps the historical unbounded behaviour; with a
    bound, ``policy`` picks the saturation behaviour (``"block"`` or
    ``"reject"``, see :mod:`repro.serving.policy`).
    """

    def __init__(
        self,
        max_batch: int = 8,
        max_pending: Optional[int] = None,
        policy: str = "block",
    ):
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_pending is not None and max_pending < 1:
            raise ValueError("max_pending must be >= 1 (or None for unbounded)")
        if policy not in ADMISSION_POLICIES:
            raise ValueError(
                f"unknown admission policy {policy!r}; use one of "
                f"{ADMISSION_POLICIES}"
            )
        self.max_batch = max_batch
        self.max_pending = max_pending
        self.policy = policy
        self._pending: Deque[Ticket] = deque()
        self._lock = threading.Lock()
        self._available = threading.Condition(self._lock)  # items to drain
        self._space = threading.Condition(self._lock)  # room to admit
        self._closed = False
        # -- counters (guarded by self._lock) --
        self._high_water = 0
        self._admitted = 0
        self._rejected = 0
        self._batched = 0

    @property
    def closed(self) -> bool:
        return self._closed

    def __len__(self) -> int:
        with self._lock:
            return len(self._pending)

    def _full(self) -> bool:
        return (
            self.max_pending is not None and len(self._pending) >= self.max_pending
        )

    def submit(self, request: PlanRequest, policy: Optional[str] = None) -> Ticket:
        """Admit ``request``; raises :class:`ServerClosed` after close.

        On a full bounded queue the effective policy (``policy`` argument,
        else the queue default) applies: ``"block"`` waits for room (waking
        with :class:`ServerClosed` if the queue closes first), ``"reject"``
        raises :class:`~repro.serving.policy.ServerBusy` immediately.
        """
        effective = policy if policy is not None else self.policy
        if effective not in ADMISSION_POLICIES:
            raise ValueError(
                f"unknown admission policy {effective!r}; use one of "
                f"{ADMISSION_POLICIES}"
            )
        ticket = Ticket(request)
        with self._lock:
            while True:
                if self._closed:
                    raise ServerClosed("plan server is shutting down")
                if not self._full():
                    break
                if effective == "reject":
                    self._rejected += 1
                    assert self.max_pending is not None
                    raise ServerBusy(
                        retry_after_ms=retry_after_ms_hint(
                            len(self._pending), self.max_pending, self.max_batch
                        ),
                        depth=len(self._pending),
                        capacity=self.max_pending,
                    )
                self._space.wait()
            self._pending.append(ticket)
            self._admitted += 1
            self._high_water = max(self._high_water, len(self._pending))
            self._available.notify()
        return ticket

    def next_batch(self, timeout: Optional[float] = None) -> List[Ticket]:
        """Up to ``max_batch`` tickets; waits ``timeout`` for the first one.

        Returns an empty list on timeout or when closed-and-empty — the
        serving loop treats ``[] and closed`` as the drain-complete signal.
        Draining notifies blocked submitters that room opened up.
        """
        with self._lock:
            if not self._pending and not self._closed:
                self._available.wait(timeout)
            batch: List[Ticket] = []
            while self._pending and len(batch) < self.max_batch:
                batch.append(self._pending.popleft())
            if batch:
                self._batched += len(batch)
                self._space.notify(len(batch))
            return batch

    def close(self) -> None:
        """Refuse new admissions; pending tickets stay queued for draining.

        Blocked submitters wake and raise :class:`ServerClosed` — their
        requests were never admitted, so drain-on-shutdown does not see them.
        """
        with self._lock:
            self._closed = True
            self._available.notify_all()
            self._space.notify_all()

    def fail_pending(self, error: Optional[BaseException] = None) -> int:
        """Complete every still-queued ticket with ``error`` (no-drain stop).

        Returns how many tickets were failed.  Frees the whole queue, so any
        submitter still blocked on a full queue re-checks immediately (and
        raises :class:`ServerClosed` when the queue was closed first, the
        ``stop(drain=False)`` ordering).
        """
        with self._lock:
            dropped = list(self._pending)
            self._pending.clear()
            self._space.notify_all()
        for ticket in dropped:
            ticket.set_exception(error or ServerClosed("plan server stopped"))
        return len(dropped)

    def stats(self) -> Dict[str, object]:
        """Back-pressure observability: depth, high-water mark and totals."""
        with self._lock:
            return {
                "depth": len(self._pending),
                "capacity": self.max_pending,
                "policy": self.policy,
                "high_water": self._high_water,
                "admitted": self._admitted,
                "rejected": self._rejected,
                "batched": self._batched,
            }
