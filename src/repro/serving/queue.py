"""Admission queue of the plan server: tickets, batching, drain-on-close.

Clients on any thread :meth:`~AdmissionQueue.submit` a request and get a
:class:`Ticket` back immediately; the single serving thread pulls work with
:meth:`~AdmissionQueue.next_batch`, which blocks for the *first* pending
request and then drains (without further waiting) up to ``max_batch`` more.
Small executions submitted close together therefore ride the same batch —
the server plans/attaches/executes them back-to-back against the live worker
pool, so per-request overhead (and the pool's per-phase barrier set-up)
amortises across the batch.

Shutdown contract: :meth:`~AdmissionQueue.close` stops new admissions
(subsequent submits raise :class:`ServerClosed`) but leaves already-admitted
requests in the queue — the serving loop keeps calling ``next_batch`` until
it returns an empty batch *and* :attr:`~AdmissionQueue.closed` is set, which
is the drain-on-shutdown path.  :meth:`~AdmissionQueue.fail_pending` is the
no-drain alternative: every waiting ticket gets a :class:`ServerClosed`.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Deque, List, Optional, Tuple

from .api import PlanRequest, PlanResponse

__all__ = ["AdmissionQueue", "ServerClosed", "Ticket"]


class ServerClosed(RuntimeError):
    """Raised by submits after close, and into tickets dropped un-served."""


class Ticket:
    """A client's handle on one admitted request.

    The serving thread completes it exactly once with either a
    :class:`~repro.serving.api.PlanResponse` or an exception;
    :meth:`result` blocks the client until then.
    """

    def __init__(self, request: PlanRequest):
        self.request = request
        self._done = threading.Event()
        self._response: Optional[PlanResponse] = None
        self._error: Optional[BaseException] = None

    # -- serving side -----------------------------------------------------------

    def set_result(self, response: PlanResponse) -> None:
        self._response = response
        self._done.set()

    def set_exception(self, error: BaseException) -> None:
        self._error = error
        self._done.set()

    # -- client side ------------------------------------------------------------

    @property
    def done(self) -> bool:
        return self._done.is_set()

    def result(self, timeout: Optional[float] = None) -> PlanResponse:
        """The response, blocking up to ``timeout`` seconds.

        Re-raises the serving-side exception if the request failed, and
        :class:`TimeoutError` if the server has not answered in time.
        """
        if not self._done.wait(timeout):
            raise TimeoutError(
                f"request {self.request.request_id} not served within {timeout}s"
            )
        if self._error is not None:
            raise self._error
        assert self._response is not None
        return self._response


class AdmissionQueue:
    """FIFO admission with bounded batch hand-off to the serving thread."""

    def __init__(self, max_batch: int = 8):
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        self.max_batch = max_batch
        self._pending: Deque[Ticket] = deque()
        self._lock = threading.Lock()
        self._available = threading.Condition(self._lock)
        self._closed = False

    @property
    def closed(self) -> bool:
        return self._closed

    def __len__(self) -> int:
        with self._lock:
            return len(self._pending)

    def submit(self, request: PlanRequest) -> Ticket:
        """Admit ``request``; raises :class:`ServerClosed` after close."""
        ticket = Ticket(request)
        with self._lock:
            if self._closed:
                raise ServerClosed("plan server is shutting down")
            self._pending.append(ticket)
            self._available.notify()
        return ticket

    def next_batch(self, timeout: Optional[float] = None) -> List[Ticket]:
        """Up to ``max_batch`` tickets; waits ``timeout`` for the first one.

        Returns an empty list on timeout or when closed-and-empty — the
        serving loop treats ``[] and closed`` as the drain-complete signal.
        """
        with self._lock:
            if not self._pending and not self._closed:
                self._available.wait(timeout)
            batch: List[Ticket] = []
            while self._pending and len(batch) < self.max_batch:
                batch.append(self._pending.popleft())
            return batch

    def close(self) -> None:
        """Refuse new admissions; pending tickets stay queued for draining."""
        with self._lock:
            self._closed = True
            self._available.notify_all()

    def fail_pending(self, error: Optional[BaseException] = None) -> int:
        """Complete every still-queued ticket with ``error`` (no-drain stop).

        Returns how many tickets were failed.
        """
        with self._lock:
            dropped = list(self._pending)
            self._pending.clear()
        for ticket in dropped:
            ticket.set_exception(error or ServerClosed("plan server stopped"))
        return len(dropped)
