"""The memory-resident plan server.

One :class:`PlanServer` keeps the three amortisable assets of this codebase
alive across requests instead of rebuilding them inside every call:

* a thread-safe :class:`~repro.core.strategy.PlanCache` — repeated
  ``(program, params, config)`` requests skip dependence analysis, strategy
  selection and schedule construction entirely;
* the process-wide compiled-kernel cache (``codegen.python_source``) — the
  ``compiled`` backend and symbolic plans reuse generated kernels;
* persistent :class:`~repro.runtime.process.ProcessPool` workers — the
  ``process`` backend re-ships only a fresh shared-memory descriptor table
  per request (``execute(pool=...)``) instead of re-forking workers.

Threading model: clients submit from any number of threads; ONE serving
thread owns every pool and drains the admission queue in batches (see
:mod:`repro.serving.queue`), so pool control messages are never interleaved.
Ownership/shutdown ordering: ``stop()`` first closes admissions, then (by
default) drains already-accepted requests, then joins the serving thread,
and only then shuts pools down — each pool shutdown closes *and unlinks* its
current segment, so a cleanly stopped server leaves nothing in ``/dev/shm``.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Dict, Mapping, Optional, Tuple

import numpy as np

from ..core.strategy import Plan, PlanCache, PlanConfig, plan
from ..ir.program import LoopProgram
from ..runtime.backends import ExecConfig, execute
from ..runtime.process import ProcessPool
from .api import PlanRequest, PlanResponse
from .queue import AdmissionQueue, ServerClosed, Ticket

__all__ = ["PlanServer"]

#: Pool-cache key: (program fingerprint, worker count, mp start method).
PoolKey = Tuple[str, int, Optional[str]]


class PlanServer:
    """Serve planned parallel executions from warm caches and live workers.

    Parameters
    ----------
    default_exec:
        Backend/worker defaults applied to requests that carry no
        ``exec_config`` (library default: serial backend).
    max_batch:
        Admission-queue batch bound — how many queued requests one serving
        iteration drains back-to-back (`PlanResponse.batch_size` reports the
        actual size).
    plan_cache:
        Share an existing :class:`PlanCache` (e.g. the process default); a
        private one is created when omitted.
    max_pools:
        LRU bound on distinct persistent pools, one per (program
        fingerprint, workers, start method); the evicted pool is shut down.
    max_pending:
        Admission bound (``None`` = unbounded, the historical behaviour).
        With a bound, a full queue pushes back on submitters per
        ``admission_policy``.
    admission_policy:
        Default saturation behaviour: ``"block"`` (park the submitting
        thread until room opens — the in-process default) or ``"reject"``
        (raise :class:`~repro.serving.policy.ServerBusy` with a retry hint —
        what the wire transport uses per-submit regardless of this default).
    """

    def __init__(
        self,
        default_exec: Optional[ExecConfig] = None,
        max_batch: int = 8,
        plan_cache: Optional[PlanCache] = None,
        max_pools: int = 4,
        poll_interval_s: float = 0.05,
        max_pending: Optional[int] = None,
        admission_policy: str = "block",
    ):
        if max_pools < 1:
            raise ValueError("max_pools must be >= 1")
        self.default_exec = default_exec or ExecConfig()
        self.max_pools = max_pools
        self.plan_cache = plan_cache if plan_cache is not None else PlanCache()
        self.poll_interval_s = poll_interval_s
        self._queue = AdmissionQueue(
            max_batch=max_batch, max_pending=max_pending, policy=admission_policy
        )
        self._pools: "OrderedDict[PoolKey, ProcessPool]" = OrderedDict()
        self._thread: Optional[threading.Thread] = None
        self._started = False
        self._stopped = False
        self._stats_lock = threading.Lock()
        self._requests_served = 0
        self._requests_failed = 0
        self._batches = 0
        self._pools_created = 0
        self._pools_reused = 0
        self._pools_evicted = 0

    # -- lifecycle --------------------------------------------------------------

    def start(self) -> "PlanServer":
        """Spawn the serving thread (idempotent; returns ``self``)."""
        if self._stopped:
            raise ServerClosed("plan server already stopped")
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._serve, name="repro-plan-server", daemon=True
            )
            self._started = True
            self._thread.start()
        return self

    def stop(self, drain: bool = True, timeout: Optional[float] = 30.0) -> None:
        """Shut down: close admissions, drain (or fail) pending work, join
        the serving thread, then tear every pool down (segments unlinked).

        ``drain=False`` completes still-queued tickets with
        :class:`ServerClosed` instead of serving them.  Idempotent.
        """
        if self._stopped:
            return
        self._stopped = True
        self._queue.close()
        if not drain:
            self._queue.fail_pending()
        if self._thread is not None:
            self._thread.join(timeout)
        # the serving thread has exited: pools are safe to touch from here
        for pool in self._pools.values():
            pool.shutdown()
        self._pools.clear()

    def __enter__(self) -> "PlanServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    # -- client API -------------------------------------------------------------

    def submit(self, request: PlanRequest, policy: Optional[str] = None) -> Ticket:
        """Admit a request; returns immediately with a :class:`Ticket`.

        ``policy`` overrides the queue's saturation default for this call
        (the transport submits with ``policy="reject"`` so a remote client
        gets a busy frame instead of pinning a server thread).
        """
        if not self._started:
            raise ServerClosed("plan server not started (call start())")
        return self._queue.submit(request, policy=policy)

    def request(
        self,
        program: LoopProgram,
        params: Optional[Mapping[str, int]] = None,
        config: Optional[PlanConfig] = None,
        exec_config: Optional[ExecConfig] = None,
        store: Optional[Dict[str, np.ndarray]] = None,
        timeout: Optional[float] = 60.0,
    ) -> PlanResponse:
        """Blocking convenience: submit one request and wait for its response."""
        ticket = self.submit(
            PlanRequest(
                program=program,
                params=dict(params or {}),
                config=config,
                exec_config=exec_config,
                store=store,
            )
        )
        return ticket.result(timeout)

    def stats(self) -> Dict[str, object]:
        """Serving counters plus the live cache/pool occupancy."""
        with self._stats_lock:
            return {
                "requests_served": self._requests_served,
                "requests_failed": self._requests_failed,
                "batches": self._batches,
                "queue": self._queue.stats(),
                "plan_cache": self.plan_cache.stats(),
                "pools": {
                    "size": len(self._pools),
                    "created": self._pools_created,
                    "reused": self._pools_reused,
                    "evicted": self._pools_evicted,
                },
            }

    # -- serving thread ---------------------------------------------------------

    def _serve(self) -> None:
        queue = self._queue
        while True:
            batch = queue.next_batch(timeout=self.poll_interval_s)
            if not batch:
                if queue.closed:
                    return
                continue
            with self._stats_lock:
                self._batches += 1
            for ticket in batch:
                self._serve_one(ticket, len(batch))

    def _serve_one(self, ticket: Ticket, batch_size: int) -> None:
        try:
            response = self._handle(ticket.request, batch_size)
        except BaseException as exc:  # noqa: BLE001 - must reach the client
            with self._stats_lock:
                self._requests_failed += 1
            ticket.set_exception(exc)
        else:
            with self._stats_lock:
                self._requests_served += 1
            ticket.set_result(response)

    def _handle(self, req: PlanRequest, batch_size: int) -> PlanResponse:
        t0 = time.perf_counter()
        hits_before = self.plan_cache.stats()["hits"]
        p = plan(req.program, params=req.params, config=req.config, cache=self.plan_cache)
        cache_hit = self.plan_cache.stats()["hits"] > hits_before
        t_plan = time.perf_counter()

        exec_cfg = req.exec_config or self.default_exec
        pool: Optional[ProcessPool] = None
        pool_reused = False
        if exec_cfg.backend == "process":
            pool, pool_reused = self._pool_for(p, exec_cfg)
        try:
            result = execute(
                req.program,
                p.schedule,
                req.params,
                store=req.store,
                config=exec_cfg,
                pool=pool,
            )
        finally:
            if pool is not None and pool.broken:
                self._evict_pool(pool)
        t_exec = time.perf_counter()

        return PlanResponse(
            request_id=req.request_id,
            strategy=p.strategy,
            scheme=p.scheme,
            backend=result.backend,
            result=result,
            selection=p.selection,
            explain=p.explain(),
            plan_cache_hit=cache_hit,
            pool_reused=pool_reused,
            batch_size=batch_size,
            timings={
                "plan_s": t_plan - t0,
                "execute_s": t_exec - t_plan,
                "total_s": t_exec - t0,
            },
        )

    # -- pool management (serving thread only) ----------------------------------

    def _pool_for(self, p: Plan, cfg: ExecConfig) -> Tuple[ProcessPool, bool]:
        """The persistent pool for this plan's program shape, LRU-cached.

        A broken pool (dead or errored worker) is never reused — it is shut
        down and replaced, so one crashed request cannot poison the next.
        """
        key: PoolKey = (p.fingerprint, int(cfg.workers), cfg.mp_context)
        pool = self._pools.get(key)
        if pool is not None and pool.broken:
            self._evict_pool(pool)
            pool = None
        if pool is not None:
            self._pools.move_to_end(key)
            with self._stats_lock:
                self._pools_reused += 1
            return pool, True
        pool = ProcessPool(
            p.program, workers=int(cfg.workers), mp_context=cfg.mp_context
        )
        self._pools[key] = pool
        with self._stats_lock:
            self._pools_created += 1
        while len(self._pools) > self.max_pools:
            _, evicted = self._pools.popitem(last=False)
            evicted.shutdown()
            with self._stats_lock:
                self._pools_evicted += 1
        return pool, False

    def _evict_pool(self, pool: ProcessPool) -> None:
        for key, cached in list(self._pools.items()):
            if cached is pool:
                del self._pools[key]
        try:
            pool.shutdown()
        finally:
            with self._stats_lock:
                self._pools_evicted += 1
