"""Memory-resident plan serving: warm caches + persistent worker pools.

The one-shot front door (``plan(...)`` then ``execute(...)``) re-pays
planning and — on the ``process`` backend — a full worker fork on every
call.  This package keeps those assets alive across requests:

>>> from repro.serving import PlanServer
>>> from repro.runtime.backends import ExecConfig
>>> from repro.workloads.paper import figure1_program          # doctest: +SKIP
>>> with PlanServer(default_exec=ExecConfig(backend="process", workers=2)) as srv:
...     first = srv.request(prog, params)                      # doctest: +SKIP
...     again = srv.request(prog, params)                      # doctest: +SKIP
>>> again.plan_cache_hit and again.pool_reused                 # doctest: +SKIP
True

See :mod:`repro.serving.server` for the threading/ownership model,
:mod:`repro.serving.queue` for admission batching and the drain-on-shutdown
contract, and :mod:`repro.serving.api` for the request/response payloads.
"""

from .api import PlanRequest, PlanResponse
from .policy import ServerBusy
from .queue import AdmissionQueue, ServerClosed, Ticket
from .server import PlanServer

__all__ = [
    "AdmissionQueue",
    "PlanRequest",
    "PlanResponse",
    "PlanServer",
    "ServerBusy",
    "ServerClosed",
    "Ticket",
]
