"""Admission back-pressure policy: what happens when the queue is full.

A bounded :class:`~repro.serving.queue.AdmissionQueue` has to answer one
question on saturation — *who absorbs the pressure?*

``block``
    The submitting thread waits for room.  The right default **in-process**:
    callers are threads of the same program, blocking them is free flow
    control and nothing is lost.

``reject``
    The submitter gets :class:`ServerBusy` immediately, with a retry hint.
    The right policy **on the wire**: a remote client holding a TCP
    connection must not pin a server thread while it waits, so the server
    pushes the wait back to the client, which retries with capped
    exponential backoff + jitter (see
    :class:`repro.serving.transport.client.TransportClient`).

The retry hint scales with how oversubscribed the queue is: a queue at
capacity suggests one batch-drain interval, a deeply backed-up queue
proportionally more, so retrying clients naturally spread out instead of
stampeding the instant one slot frees.
"""

from __future__ import annotations

from typing import Dict

__all__ = ["ADMISSION_POLICIES", "ServerBusy", "retry_after_ms_hint"]

#: Recognised queue saturation policies.
ADMISSION_POLICIES = ("block", "reject")

#: Suggested wait per queued-batch of backlog (the serving loop's drain
#: cadence is a few milliseconds per small request; this is deliberately a
#: coarse, conservative hint — the client's backoff does the fine tuning).
_BASE_RETRY_MS = 25


def retry_after_ms_hint(depth: int, capacity: int, max_batch: int) -> int:
    """A positive retry hint proportional to the backlog, in batches."""
    backlog_batches = max(1, -(-max(depth, 1) // max(max_batch, 1)))
    return _BASE_RETRY_MS * backlog_batches


class ServerBusy(RuntimeError):
    """The admission queue is at capacity and the policy is ``reject``.

    Carries the structured facts a client needs to back off sensibly; the
    wire layer sends them verbatim in a ``busy`` frame.
    """

    def __init__(self, retry_after_ms: int, depth: int, capacity: int):
        super().__init__(
            f"admission queue full ({depth}/{capacity} pending); "
            f"retry in >= {retry_after_ms} ms"
        )
        self.retry_after_ms = int(retry_after_ms)
        self.depth = int(depth)
        self.capacity = int(capacity)

    def to_header(self) -> Dict[str, int]:
        return {
            "retry_after_ms": self.retry_after_ms,
            "depth": self.depth,
            "capacity": self.capacity,
        }

    @staticmethod
    def from_header(header: Dict[str, int]) -> "ServerBusy":
        return ServerBusy(
            retry_after_ms=int(header["retry_after_ms"]),
            depth=int(header["depth"]),
            capacity=int(header["capacity"]),
        )
