"""Request/response payloads of the plan-serving daemon.

The wire format of :class:`~repro.serving.server.PlanServer` is deliberately
thin: a request carries the loop nest IR plus the knobs the one-shot
:func:`repro.core.strategy.plan` / :func:`repro.runtime.backends.execute`
pair already takes, and a response carries the unified
:class:`~repro.runtime.backends.RunResult` plus the planning provenance
(:class:`~repro.core.strategy.SelectionReport`, ``explain()`` text) and the
serving-side amortisation facts (plan-cache hit, pool reuse, batch size).
Nothing is serialised — the server is memory-resident, in-process, and the
payloads are plain dataclasses so a transport layer can be bolted on later
without touching the server.
"""

from __future__ import annotations

import uuid
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

import numpy as np

from ..core.strategy import PlanConfig, SelectionReport
from ..ir.program import LoopProgram
from ..runtime.backends import ExecConfig, RunResult

__all__ = ["PlanRequest", "PlanResponse"]


def _new_request_id() -> str:
    return uuid.uuid4().hex


@dataclass(frozen=True)
class PlanRequest:
    """One unit of admission: plan ``program`` at ``params`` and execute it.

    ``store`` (when given) is the client's own arrays; the executed results
    are written back into it, mirroring ``execute(store=...)``.  When omitted
    the server builds the program's canonical store
    (:func:`repro.runtime.backends.make_store`).  ``config`` tunes planning,
    ``exec_config`` picks the backend/worker count — both default to the
    library defaults, and for the ``process`` backend the server swaps in its
    persistent worker pool instead of forking a fresh one.
    """

    program: LoopProgram
    params: Mapping[str, int] = field(default_factory=dict)
    config: Optional[PlanConfig] = None
    exec_config: Optional[ExecConfig] = None
    store: Optional[Dict[str, np.ndarray]] = None
    request_id: str = field(default_factory=_new_request_id)


@dataclass(frozen=True)
class PlanResponse:
    """What the server hands back for one :class:`PlanRequest`.

    ``result.store`` holds the executed arrays (the request's own store when
    one was supplied).  ``plan_cache_hit`` / ``pool_reused`` expose whether
    the warm paths fired; ``batch_size`` is how many requests the admission
    queue drained into the same serving batch (barrier amortisation is
    observable, not just claimed).  ``timings`` has ``plan_s`` /
    ``execute_s`` / ``total_s`` wall-clock seconds.
    """

    request_id: str
    strategy: str
    scheme: str
    backend: str
    result: RunResult
    selection: Optional[SelectionReport]
    explain: str
    plan_cache_hit: bool
    pool_reused: bool
    batch_size: int
    timings: Dict[str, float] = field(default_factory=dict)
