"""Classic conservative dependence tests: GCD and Banerjee bounds.

The recurrence-chain partitioner itself relies on *exact* dependences, but the
paper positions it against the classic compile-time tests, and the statistics
experiment (E12) needs a cheap classifier for large synthetic corpora.  Both
tests answer "can the dependence equation have a solution?" conservatively:

* :func:`gcd_test` — a linear diophantine equation ``Σ c_k x_k = c0`` has an
  integer solution iff ``gcd(c_k) | c0``; applied per array dimension.  If any
  dimension fails, the references are independent.
* :func:`banerjee_test` — bounds the LHS−RHS expression over the (rational)
  iteration box; if 0 lies outside ``[min, max]`` there is no solution.

Both may report "maybe dependent" for actually-independent pairs (that is what
conservative means), but must never report "independent" for a dependent pair —
a property the test suite checks against the exact analyser.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from math import gcd
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..isl.affine import AffineExpr
from .pair import ReferencePair

__all__ = ["DependenceTestResult", "gcd_test", "banerjee_test", "combined_test"]


@dataclass(frozen=True)
class DependenceTestResult:
    """Outcome of a conservative dependence test."""

    independent: bool
    reason: str

    def __bool__(self) -> bool:  # truthy == "provably independent"
        return self.independent


def _difference_expressions(pair: ReferencePair) -> List[AffineExpr]:
    """Per-dimension expressions ``src_subscript(i) − dst_subscript(j)``.

    Source iteration variables keep their names; target iteration variables are
    renamed with a ``'`` suffix so the two sides do not collide even when the
    statements share loop index names (same-statement pairs always do).
    """
    rename = {name: name + "'" for name in pair.target_indices}
    out = []
    for s_sub, t_sub in zip(pair.source_ref.subscripts, pair.target_ref.subscripts):
        out.append(s_sub - t_sub.rename(rename))
    if len(pair.source_ref.subscripts) != len(pair.target_ref.subscripts):
        raise ValueError("reference pair with mismatched array ranks")
    return out


def gcd_test(pair: ReferencePair) -> DependenceTestResult:
    """Per-dimension GCD test.  ``independent=True`` means provably no solution."""
    for dim, expr in enumerate(_difference_expressions(pair)):
        scaled = expr.scaled_to_integer()
        coeffs = [int(c) for _, c in scaled.coeffs]
        constant = int(scaled.constant)
        if not coeffs:
            if constant != 0:
                return DependenceTestResult(True, f"dimension {dim}: constant mismatch")
            continue
        g = 0
        for c in coeffs:
            g = gcd(g, abs(c))
        if g != 0 and constant % g != 0:
            return DependenceTestResult(
                True, f"dimension {dim}: gcd {g} does not divide {constant}"
            )
    return DependenceTestResult(False, "gcd test cannot disprove a solution")


def _variable_ranges(
    pair: ReferencePair, params: Mapping[str, int]
) -> Dict[str, Tuple[Fraction, Fraction]]:
    """Rational ranges for source variables and primed target variables."""
    ranges: Dict[str, Tuple[Fraction, Fraction]] = {}

    def add(ctx, suffix: str):
        domain = ctx.domain().bind_parameters(params)
        for v in domain.variables:
            lo, hi = domain.variable_bounds(v)
            if lo is None or hi is None:
                raise ValueError(f"unbounded loop variable {v}")
            ranges[v + suffix] = (Fraction(lo), Fraction(hi))

    add(pair.source_ctx, "")
    add(pair.target_ctx, "'")
    return ranges


def banerjee_test(pair: ReferencePair, params: Mapping[str, int]) -> DependenceTestResult:
    """Banerjee bounds test over the rectangular hull of the iteration domains."""
    try:
        ranges = _variable_ranges(pair, params)
    except ValueError as exc:
        return DependenceTestResult(False, f"cannot bound variables: {exc}")
    for dim, expr in enumerate(_difference_expressions(pair)):
        lo = expr.constant
        hi = expr.constant
        for name, coeff in expr.coeffs:
            if name not in ranges:
                # Parameter occurring directly in a subscript: cannot bound.
                return DependenceTestResult(False, f"unbounded symbol {name}")
            vlo, vhi = ranges[name]
            if coeff > 0:
                lo += coeff * vlo
                hi += coeff * vhi
            else:
                lo += coeff * vhi
                hi += coeff * vlo
        if lo > 0 or hi < 0:
            return DependenceTestResult(
                True, f"dimension {dim}: range [{lo}, {hi}] excludes 0"
            )
    return DependenceTestResult(False, "banerjee bounds include 0 in every dimension")


def combined_test(pair: ReferencePair, params: Mapping[str, int]) -> DependenceTestResult:
    """GCD then Banerjee; independent when either one disproves the dependence."""
    g = gcd_test(pair)
    if g.independent:
        return g
    b = banerjee_test(pair, params)
    if b.independent:
        return b
    return DependenceTestResult(False, "neither GCD nor Banerjee disproves the dependence")
