"""Exact dependence computation for concrete loop bounds.

This is the package's stand-in for running the Omega library on the
dependence problem: for concrete parameter values it computes the *exact*
set of directly dependent iteration pairs of every reference pair — no
approximation, no direction-vector abstraction.

The implementation is address-matching rather than equation-solving: for a
reference pair ``(write W in S1, read/write R in S2)`` it

1. enumerates the iteration domains of S1 and S2 (numpy grids filtered by the
   domain constraints — vectorised, exact integer arithmetic),
2. evaluates both references' subscript vectors for every iteration
   (one integer matrix multiply each),
3. joins the two address tables: every pair of iterations that touches
   the same array element is a direct dependence.

This is mathematically identical to enumerating the integer solutions of
``i·A + a = j·B + b`` inside Φ (eq. 2/3) and costs O(|Φ|) time and memory,
which comfortably covers the paper's problem sizes (3·10⁵ iterations).

Two join engines implement step 3.  The original **hash join** builds a
Python dict keyed by address tuples — O(|Φ|) per-point tuple boxing and
hashing, the dominant end-to-end cost at ≥10⁵ points.  The **sort/merge
join** encodes each address vector into a scalar int64 key with
:class:`~repro.isl.relations.PointCodec` and joins with ``np.argsort`` +
``np.searchsorted`` — the same sorted-key idiom as the vectorised
partitioners — and hands the matched rows to
:meth:`~repro.isl.relations.FiniteRelation.from_arrays` without ever forming
a Python tuple pair.  ``engine="auto"`` (default) uses the sort join and
falls back to the hash join only when the address box would overflow int64
keys; both engines produce identical relations (covered by tests).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..ir.program import StatementContext
from ..isl.enumerate_points import filter_box_numpy, iteration_points
from ..isl.relations import FiniteRelation, PointCodec
from .pair import ReferencePair

__all__ = ["enumerate_domain", "reference_addresses", "exact_pair_dependences"]


def enumerate_domain(
    ctx: StatementContext,
    params: Mapping[str, int],
    parameters: Sequence[str] = (),
) -> np.ndarray:
    """All iteration points of a statement's domain as an ``(n, depth)`` array.

    The domain may be non-rectangular (triangular bounds); a bounding box is
    built from the per-variable Fourier–Motzkin bounds and then filtered by the
    exact constraints, all vectorised.
    """
    domain = ctx.domain(parameters).bind_parameters(params)
    if not domain.variables:
        return np.zeros((1, 0), dtype=np.int64)
    box = []
    for v in domain.variables:
        lo, hi = domain.variable_bounds(v)
        if lo is None or hi is None:
            raise ValueError(
                f"statement {ctx.statement.label}: variable {v} is unbounded "
                f"with params {dict(params)}"
            )
        if lo > hi:
            return np.zeros((0, len(domain.variables)), dtype=np.int64)
        box.append((lo, hi))
    candidates = iteration_points(box)
    mask = filter_box_numpy(domain, candidates)
    return candidates[mask]


def reference_addresses(
    ref,
    index_order: Sequence[str],
    points: np.ndarray,
) -> np.ndarray:
    """Subscript vectors of ``ref`` for every iteration point (``(n, rank)``).

    Raises :class:`ValueError` if some subscript evaluates to a non-integer
    (cannot happen for integral coefficient matrices, which the IR validator
    enforces).
    """
    A, a = ref.coefficient_matrix(index_order)
    if A and any(c.denominator != 1 for row in A for c in row):
        raise ValueError(f"non-integer subscript coefficients in {ref}")
    if any(c.denominator != 1 for c in a):
        raise ValueError(f"non-integer subscript offsets in {ref}")
    A_np = np.array([[int(c) for c in row] for row in A], dtype=np.int64).reshape(
        len(index_order), len(a)
    )
    a_np = np.array([int(c) for c in a], dtype=np.int64)
    if points.shape[1] != len(index_order):
        raise ValueError("points dimensionality does not match the index order")
    return points @ A_np + a_np


def _hash_join(
    src_points: np.ndarray, src_addr: np.ndarray, dst_points: np.ndarray, dst_addr: np.ndarray
) -> List[Tuple[Tuple[int, ...], Tuple[int, ...]]]:
    """Join source and target iterations on equal address vectors (dict-based).

    The original per-point engine: kept as the reference implementation (the
    sort join is tested against it) and as the fallback when the address box
    overflows int64 lexicographic keys.
    """
    table: Dict[Tuple[int, ...], List[int]] = {}
    for idx, addr in enumerate(map(tuple, src_addr.tolist())):
        table.setdefault(addr, []).append(idx)
    pairs: List[Tuple[Tuple[int, ...], Tuple[int, ...]]] = []
    for jdx, addr in enumerate(map(tuple, dst_addr.tolist())):
        for idx in table.get(addr, ()):  # pragma: no branch
            pairs.append((tuple(src_points[idx].tolist()), tuple(dst_points[jdx].tolist())))
    return pairs


def _sort_join(
    src_addr: np.ndarray, dst_addr: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Row indices ``(src_idx, dst_idx)`` of all address matches, vectorised.

    Encodes both address tables into scalar int64 keys with a shared
    :class:`PointCodec`, sorts the source keys once, and expands the
    ``searchsorted`` hit ranges of every target key into explicit index pairs
    — a sort/merge equi-join with no per-point Python objects.  Raises
    :class:`ValueError` when the address box overflows int64 keys (callers
    fall back to :func:`_hash_join`).
    """
    codec = PointCodec.for_arrays(src_addr, dst_addr)
    src_keys = codec.encode(src_addr)
    dst_keys = codec.encode(dst_addr)
    order = np.argsort(src_keys, kind="stable")
    sorted_keys = src_keys[order]
    left = np.searchsorted(sorted_keys, dst_keys, side="left")
    right = np.searchsorted(sorted_keys, dst_keys, side="right")
    counts = right - left
    total = int(counts.sum())
    if total == 0:
        empty = np.zeros(0, dtype=np.int64)
        return empty, empty.copy()
    dst_idx = np.repeat(np.arange(len(dst_keys), dtype=np.int64), counts)
    # Per-match offset inside each target's hit range [left[j], right[j]).
    within = np.arange(total, dtype=np.int64) - np.repeat(
        np.cumsum(counts) - counts, counts
    )
    src_idx = order[np.repeat(left, counts) + within]
    return src_idx, dst_idx


def exact_pair_dependences(
    pair: ReferencePair,
    params: Mapping[str, int],
    parameters: Sequence[str] = (),
    include_self: bool = False,
    engine: str = "auto",
    domains: Optional[Mapping[str, np.ndarray]] = None,
) -> FiniteRelation:
    """Exact direct dependences of one reference pair for concrete bounds.

    The result maps iterations of the *source* statement to iterations of the
    *target* statement (the orientation of eq. 2; lexicographic orientation is
    applied later by the partitioners).  Pairs where both iterations are the
    same instance of the same statement are excluded unless ``include_self``.

    ``engine`` selects the join: ``"sort"`` (vectorised sort/merge join,
    array-backed result), ``"hash"`` (the original dict join, eager tuple
    pairs) or ``"auto"`` (sort join, hash fallback on int64 key overflow).
    Both produce identical relations.

    ``domains`` optionally maps statement labels to pre-enumerated
    ``(n, depth)`` domain arrays (lexicographic row order, as
    :func:`enumerate_domain` returns).  A program with ``p`` reference pairs
    enumerates each statement's domain ``O(p)`` times without it;
    :class:`~repro.dependence.analysis.DependenceAnalysis` passes its
    per-statement cache so every domain is enumerated exactly once.
    """
    if engine not in ("auto", "sort", "hash"):
        raise ValueError(f"unknown join engine {engine!r}; use 'auto', 'sort' or 'hash'")

    def domain_of(ctx) -> np.ndarray:
        label = ctx.statement.label
        if domains is not None and label in domains:
            return domains[label]
        return enumerate_domain(ctx, params, parameters)

    src_points = domain_of(pair.source_ctx)
    dst_points = domain_of(pair.target_ctx)
    if len(src_points) == 0 or len(dst_points) == 0:
        return FiniteRelation(frozenset(), src_points.shape[1], dst_points.shape[1])
    src_addr = reference_addresses(pair.source_ref, pair.source_indices, src_points)
    dst_addr = reference_addresses(pair.target_ref, pair.target_indices, dst_points)
    same_statement = pair.source_ctx.statement.label == pair.target_ctx.statement.label
    drop_self = not include_self and same_statement

    if engine != "hash":
        try:
            src_idx, dst_idx = _sort_join(src_addr, dst_addr)
        except ValueError:
            if engine == "sort":
                raise
        else:
            src_rows = src_points[src_idx]
            dst_rows = dst_points[dst_idx]
            if drop_self and src_rows.shape[1] == dst_rows.shape[1]:
                keep = (src_rows != dst_rows).any(axis=1)
                src_rows, dst_rows = src_rows[keep], dst_rows[keep]
            elif drop_self:
                # Same statement implies equal depth; a rank mismatch here
                # would mean inconsistent contexts, so keep the guard explicit.
                raise ValueError("self-pair filtering requires equal point ranks")
            return FiniteRelation.from_arrays(src_rows, dst_rows)

    pairs = _hash_join(src_points, src_addr, dst_points, dst_addr)
    if drop_self:
        pairs = [(a, b) for a, b in pairs if a != b]
    return FiniteRelation(
        frozenset(pairs), src_points.shape[1], dst_points.shape[1]
    )
