"""Reference pairs and their dependence equations.

A *reference pair* is two affine references to the same array, at least one of
which is a write.  Each pair induces the dependence equation (eq. 2)

    i · A + a  =  j · B + b

between the iteration vector ``i`` of the statement containing the first
reference and ``j`` of the statement containing the second.  This module
packages the pair together with the coefficient matrices/offsets and the
classification the partitioning algorithm needs:

* *coupled* — loop indices occur in the subscripts of both references,
* *square & full rank* — A and B are square (loop depth == array rank) and
  invertible, which is the precondition of Lemma 1 (recurrence form, disjoint
  monotonic chains),
* *uniform* — A == B, in which case the dependence distance is the constant
  ``(a − b)·B⁻¹`` and the loop falls into classic uniform-dependence territory.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import List, Optional, Sequence, Tuple

from ..ir.nodes import ArrayRef
from ..ir.program import StatementContext
from ..isl.linalg import RationalMatrix, mat_det, mat_rank, mat_shape, mat_sub

__all__ = ["ReferencePair"]


@dataclass(frozen=True)
class ReferencePair:
    """One candidate dependence equation between two references."""

    source_ctx: StatementContext
    source_ref: ArrayRef
    target_ctx: StatementContext
    target_ref: ArrayRef

    # -- basic facts --------------------------------------------------------

    @property
    def array(self) -> str:
        return self.source_ref.array

    @property
    def source_indices(self) -> Tuple[str, ...]:
        return self.source_ctx.index_names

    @property
    def target_indices(self) -> Tuple[str, ...]:
        return self.target_ctx.index_names

    def is_output_pair(self) -> bool:
        """True for write/write pairs (output dependences)."""
        return (
            self.source_ref in self.source_ctx.statement.writes
            and self.target_ref in self.target_ctx.statement.writes
        )

    # -- matrix form ----------------------------------------------------------

    def matrices(self) -> Tuple[List[List[Fraction]], List[Fraction], List[List[Fraction]], List[Fraction]]:
        """Return ``(A, a, B, b)`` of the dependence equation ``i·A + a = j·B + b``."""
        A, a = self.source_ref.coefficient_matrix(self.source_indices)
        B, b = self.target_ref.coefficient_matrix(self.target_indices)
        return A, a, B, b

    def is_coupled(self) -> bool:
        """Loop indices occur in both references' subscripts.

        This is the precondition for the dependence equation to relate the two
        iteration vectors at all; the stricter terminology of the paper's
        statistics ("coupled subscripts") is provided by
        :meth:`has_coupled_subscript_dimensions`.
        """
        return bool(self.source_ref.variables()) and bool(self.target_ref.variables())

    def has_coupled_subscript_dimensions(self) -> bool:
        """True when subscripts are *coupled* in the paper's §1 sense.

        Either some loop index appears in more than one subscript dimension of
        a reference, or some dimension's subscript mixes several loop indices —
        i.e. at least one of the coefficient matrices is not a (generalized)
        one-index-per-dimension matrix.  Separable references such as
        ``a(I+1, J)`` / ``a(I, J-2)`` are not coupled and can only produce
        uniform distances.
        """

        def coupled(ref: ArrayRef, indices) -> bool:
            M, _offset = ref.coefficient_matrix(indices)
            if not M:
                return False
            rows_mixed = any(sum(1 for x in row if x != 0) >= 2 for row in M)
            cols = len(M[0])
            cols_mixed = any(
                sum(1 for row in M if row[c] != 0) >= 2 for c in range(cols)
            )
            return rows_mixed or cols_mixed

        return coupled(self.source_ref, self.source_indices) or coupled(
            self.target_ref, self.target_indices
        )

    def is_square_full_rank(self) -> bool:
        """A and B are square and invertible (precondition of Lemma 1)."""
        A, _a, B, _b = self.matrices()
        ra, ca = mat_shape(A)
        rb, cb = mat_shape(B)
        if ra != ca or rb != cb or ra != rb or ra == 0:
            return False
        return mat_det(A) != 0 and mat_det(B) != 0

    def is_uniform(self) -> bool:
        """True when the pair can only generate a constant distance (A == B).

        This is the matrix-level sufficient condition; the exhaustive
        definition-level check lives in :mod:`repro.dependence.distance`.
        """
        A, _a, B, _b = self.matrices()
        if mat_shape(A) != mat_shape(B):
            return False
        diff = mat_sub(A, B)
        return all(all(x == 0 for x in row) for row in diff)

    def ranks(self) -> Tuple[int, int]:
        A, _a, B, _b = self.matrices()
        return mat_rank(A), mat_rank(B)

    # -- recurrence form (Lemma 1 / §3.2) ---------------------------------------

    def recurrence(self) -> Optional[Tuple[RationalMatrix, Tuple[Fraction, ...]]]:
        """Return ``(T, u)`` with ``j = i·T + u``, or ``None`` if B is not invertible.

        The dependence equation is ``i·A + a = j·B + b`` (eq. 2), so solving for
        the second index vector gives ``j = i·(A·B⁻¹) + (a−b)·B⁻¹``.  We return
        ``T = A·B⁻¹`` and ``u = (a−b)·B⁻¹``; the map for the other direction is
        the inverse affine map ``i = (j − u)·T⁻¹`` (the paper's Lemma 1 writes
        the same maps with the roles of A and B swapped).  ``None`` is returned
        when B is singular or the matrices are not square.
        """
        A, a, B, b = self.matrices()
        rb, cb = mat_shape(B)
        ra, ca = mat_shape(A)
        if rb != cb or ra != ca or ra != rb or rb == 0:
            return None
        if mat_det(B) == 0:
            return None
        B_inv = RationalMatrix.from_rows(B).inverse()
        T = RationalMatrix.from_rows(A) @ B_inv
        diff = [x - y for x, y in zip(a, b)]
        u = tuple(B_inv.row_apply(diff))
        return T, u

    def __str__(self) -> str:
        return (
            f"{self.source_ctx.statement.label}:{self.source_ref} <-> "
            f"{self.target_ctx.statement.label}:{self.target_ref}"
        )
