"""Symbolic dependence relations (the Omega-style representation).

For perfect loop nests this module builds the dependence relation of eq. 4 as
a :class:`~repro.isl.relations.UnionRelation` whose pieces are convex sets over
``(i, j)`` variables:

    Rd = ⋃ { i -> j :  (i·A + a = j·B + b  ∨  i·B + b = j·A + a)
                        ∧ i ∈ Φ ∧ j ∈ Φ ∧ i ≺ j }

i.e. the union over both orientations of the dependence equation and over the
disjuncts of the (non-convex) lexicographic order, always mapping the
lexicographically earlier iteration to the later one — exactly the relation
Algorithm 1 starts from.  The symbolic relation drives the set-algebraic
derivation of the partition (and carries symbolic parameters); the exact
enumeration in :mod:`repro.dependence.exact` provides the concrete pairs used
for execution and validation, and the two are cross-checked in the tests.
"""

from __future__ import annotations

from typing import List, Mapping, Sequence, Tuple

from ..ir.program import LoopProgram
from ..isl.affine import AffineExpr
from ..isl.convex import Constraint, ConvexSet
from ..isl.lexorder import lex_lt_constraints
from ..isl.relations import ConvexRelation, UnionRelation
from .pair import ReferencePair

__all__ = [
    "source_target_names",
    "symbolic_pair_relation",
    "symbolic_dependence_relation",
]


def source_target_names(index_names: Sequence[str]) -> Tuple[Tuple[str, ...], Tuple[str, ...]]:
    """Fresh variable names for the source (unprimed) and target (primed) sides."""
    src = tuple(index_names)
    dst = tuple(name + "'" for name in index_names)
    return src, dst


def _equation_constraints(
    pair: ReferencePair,
    src_names: Sequence[str],
    dst_names: Sequence[str],
    swap: bool,
) -> List[Constraint]:
    """Subscript equalities with the source bound to A (swap=False) or B (swap=True)."""
    src_rename = dict(zip(pair.source_indices, src_names))
    dst_rename = dict(zip(pair.target_indices, dst_names))
    constraints = []
    for s_sub, t_sub in zip(pair.source_ref.subscripts, pair.target_ref.subscripts):
        if not swap:
            lhs = s_sub.rename(src_rename)
            rhs = t_sub.rename(dst_rename)
        else:
            lhs = t_sub.rename(src_rename)
            rhs = s_sub.rename(dst_rename)
        constraints.append(Constraint.eq(lhs, rhs))
    return constraints


def symbolic_pair_relation(
    pair: ReferencePair,
    parameters: Sequence[str] = (),
    orient: bool = True,
) -> UnionRelation:
    """The dependence relation of one reference pair over a perfect nest.

    Requires the two statements to share the same loop-index space (true for
    perfect nests with a single statement, the setting of the paper's §3.1–3.2
    scheme).  With ``orient=True`` (the default) the relation maps the
    lexicographically earlier iteration to the later one.
    """
    if pair.source_indices != pair.target_indices:
        raise ValueError(
            "symbolic_pair_relation requires both references under the same loop nest; "
            "use the statement-level extension for imperfect nests"
        )
    src_names, dst_names = source_target_names(pair.source_indices)
    src_domain = pair.source_ctx.domain(parameters)
    dst_domain = pair.target_ctx.domain(parameters).rename_variables(
        dict(zip(pair.target_indices, dst_names))
    )

    pieces: List[ConvexRelation] = []
    orientations = (False, True)
    lex_disjuncts = (
        lex_lt_constraints(src_names, dst_names) if orient else [[]]
    )
    for swap in orientations:
        equation = _equation_constraints(pair, src_names, dst_names, swap)
        for disjunct in lex_disjuncts:
            constraints = (
                list(equation)
                + list(src_domain.constraints)
                + list(dst_domain.constraints)
                + list(disjunct)
            )
            pieces.append(
                ConvexRelation.from_constraints(src_names, dst_names, constraints, parameters)
            )
    return UnionRelation.from_pieces(pieces)


def symbolic_dependence_relation(
    prog: LoopProgram,
    parameters: Sequence[str] | None = None,
) -> UnionRelation:
    """The combined symbolic relation Rd of a perfect single-statement nest.

    Unions the relations of every coupled reference pair of the program.  All
    statements must live under the same perfect nest (same index space).
    """
    params = tuple(parameters if parameters is not None else prog.parameters)
    contexts = prog.statement_contexts()
    if not contexts:
        raise ValueError(f"program {prog.name!r} has no statements")
    index_names = contexts[0].index_names
    for ctx in contexts:
        if ctx.index_names != index_names:
            raise ValueError(
                "symbolic_dependence_relation handles perfect nests only; "
                "use the statement-level extension for imperfect nests"
            )
    src_names, dst_names = source_target_names(index_names)
    relation = UnionRelation.empty(src_names, dst_names)
    seen = set()
    for ctx1, r1, ctx2, r2 in prog.reference_pairs():
        pair = ReferencePair(ctx1, r1, ctx2, r2)
        # The symmetric orientation is built into symbolic_pair_relation, so
        # analysing both (r1, r2) and (r2, r1) would duplicate every piece.
        key = frozenset([(ctx1.statement.label, str(r1)), (ctx2.statement.label, str(r2))])
        if key in seen:
            continue
        seen.add(key)
        if not pair.is_coupled():
            continue
        relation = relation.union(symbolic_pair_relation(pair, params))
    return relation
