"""Whole-program dependence analysis.

:class:`DependenceAnalysis` ties the pieces of this package together: it
enumerates the coupled reference pairs of a program, runs the exact analyser
on each for concrete parameter values, and exposes the views the partitioners
consume:

* per statement-pair finite relations (imperfect nests, statement level),
* the combined iteration-level relation ``Rd`` of a perfect nest, oriented so
  every pair maps the lexicographically earlier iteration to the later one
  (eq. 4),
* the symbolic union relation for code generation,
* summary facts: is there a single coupled pair?  is it square and full rank?
  are the dependences uniform?

Results are cached; the analysis object is intended to be created once per
(program, parameter binding) and passed around.

For large concrete spaces the analysis feeds the vectorised partitioning
engine: :attr:`DependenceAnalysis.iteration_space_array` exposes the
enumerated space as an ``(n, depth)`` int64 array (no per-point tuple
boxing), and the orientation of the combined relation switches to the bulk
array path once it reaches
:data:`~repro.isl.relations.BULK_SIZE_THRESHOLD` pairs (see
:meth:`~repro.isl.relations.FiniteRelation.oriented_forward`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..ir.program import LoopProgram, StatementContext
from ..isl.relations import FiniteRelation, UnionRelation
from .exact import enumerate_domain, exact_pair_dependences
from .pair import ReferencePair
from .symbolic import symbolic_dependence_relation
from .distance import classify_pair, is_uniform_relation

__all__ = ["DependenceAnalysis", "StatementPairDependence"]


@dataclass(frozen=True)
class StatementPairDependence:
    """Exact dependences of one reference pair, with its classification."""

    pair: ReferencePair
    relation: FiniteRelation

    @property
    def source_label(self) -> str:
        return self.pair.source_ctx.statement.label

    @property
    def target_label(self) -> str:
        return self.pair.target_ctx.statement.label

    def is_empty(self) -> bool:
        return self.relation.is_empty()


@dataclass
class DependenceAnalysis:
    """Exact dependence analysis of a loop program at concrete parameter values."""

    program: LoopProgram
    params: Mapping[str, int] = field(default_factory=dict)

    def __post_init__(self):
        missing = [p for p in self.program.parameters if p not in self.params]
        if missing:
            raise ValueError(
                f"program {self.program.name!r} has unbound parameters {missing}; "
                f"pass concrete values in params"
            )

    # -- reference pairs --------------------------------------------------------

    @cached_property
    def reference_pairs(self) -> List[ReferencePair]:
        """Candidate dependence equations: same array, at least one write.

        Each unordered reference pair is analysed once (the exact analyser and
        the symbolic relation handle both orientations internally).
        """
        pairs: List[ReferencePair] = []
        seen = set()
        for ctx1, r1, ctx2, r2 in self.program.reference_pairs():
            key = frozenset(
                [(ctx1.statement.label, str(r1)), (ctx2.statement.label, str(r2))]
            )
            if key in seen:
                continue
            seen.add(key)
            pairs.append(ReferencePair(ctx1, r1, ctx2, r2))
        return pairs

    @cached_property
    def coupled_pairs(self) -> List[ReferencePair]:
        return [p for p in self.reference_pairs if p.is_coupled()]

    # -- exact dependences -------------------------------------------------------

    @cached_property
    def pair_dependences(self) -> List[StatementPairDependence]:
        """Exact direct dependences of every reference pair (source→target of eq. 2)."""
        out = []
        for pair in self.reference_pairs:
            rel = exact_pair_dependences(pair, self.params, self.program.parameters)
            out.append(StatementPairDependence(pair, rel))
        return out

    def nonempty_pair_dependences(self) -> List[StatementPairDependence]:
        return [d for d in self.pair_dependences if not d.is_empty()]

    @cached_property
    def iteration_dependences(self) -> FiniteRelation:
        """Combined iteration-level relation Rd of a perfect nest (eq. 4).

        Every dependence pair is oriented from the lexicographically earlier to
        the later iteration; self-dependences (same iteration) are dropped.
        Only valid when all statements share the same loop-index space.
        """
        contexts = self.program.statement_contexts()
        index_names = contexts[0].index_names if contexts else ()
        for ctx in contexts:
            if ctx.index_names != index_names:
                raise ValueError(
                    "iteration_dependences requires a perfect nest; use the "
                    "statement-level extension (repro.core.statement) instead"
                )
        combined = FiniteRelation(frozenset(), len(index_names), len(index_names))
        for dep in self.pair_dependences:
            combined = combined.union(dep.relation)
        return combined.oriented_forward()

    @cached_property
    def iteration_space_array(self) -> np.ndarray:
        """All iteration points of the (perfect) nest as an ``(n, depth)`` array.

        Lexicographic row order.  This is the natural input of the vectorised
        partitioning engine — :func:`repro.core.partition.three_set_partition`
        and :func:`repro.core.dataflow.dataflow_partition` accept it directly,
        skipping the per-point tuple materialisation of
        :attr:`iteration_space_points`.
        """
        contexts = self.program.statement_contexts()
        if not contexts:
            return np.zeros((0, 0), dtype=np.int64)
        return np.asarray(
            enumerate_domain(contexts[0], self.params, self.program.parameters),
            dtype=np.int64,
        )

    @cached_property
    def iteration_space_points(self) -> List[Tuple[int, ...]]:
        """All iteration points of the (perfect) nest, in lexicographic order."""
        return [tuple(p) for p in self.iteration_space_array.tolist()]

    # -- symbolic view ------------------------------------------------------------

    def symbolic_relation(self) -> UnionRelation:
        """The symbolic Rd (perfect nests), still carrying symbolic parameters."""
        return symbolic_dependence_relation(self.program)

    # -- summary facts -------------------------------------------------------------

    @cached_property
    def classifications(self):
        return [classify_pair(p) for p in self.coupled_pairs]

    def has_single_coupled_pair(self) -> bool:
        """True when exactly one coupled reference pair generates dependences."""
        nonempty = [
            d for d in self.pair_dependences if d.pair.is_coupled() and not d.is_empty()
        ]
        return len(nonempty) == 1

    def single_coupled_pair(self) -> Optional[ReferencePair]:
        nonempty = [
            d for d in self.pair_dependences if d.pair.is_coupled() and not d.is_empty()
        ]
        if len(nonempty) == 1:
            return nonempty[0].pair
        return None

    def is_uniform(self) -> bool:
        """Exhaustive uniformity check of the combined relation (perfect nests)."""
        return is_uniform_relation(self.iteration_dependences, self.iteration_space_points)

    def has_dependences(self) -> bool:
        return any(not d.is_empty() for d in self.pair_dependences)

    def summary(self) -> Dict[str, object]:
        """A small dict of headline facts, convenient for reports and tests."""
        rel = None
        try:
            rel = self.iteration_dependences
        except ValueError:
            pass
        return {
            "program": self.program.name,
            "params": dict(self.params),
            "n_reference_pairs": len(self.reference_pairs),
            "n_coupled_pairs": len(self.coupled_pairs),
            "n_direct_dependences": (len(rel) if rel is not None else None),
            "single_coupled_pair": self.has_single_coupled_pair(),
            "uniform": (self.is_uniform() if rel is not None else None),
        }
