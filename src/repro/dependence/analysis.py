"""Whole-program dependence analysis.

:class:`DependenceAnalysis` ties the pieces of this package together: it
enumerates the coupled reference pairs of a program, runs the exact analyser
on each for concrete parameter values, and exposes the views the partitioners
consume:

* per statement-pair finite relations (imperfect nests, statement level),
* the combined iteration-level relation ``Rd`` of a perfect nest, oriented so
  every pair maps the lexicographically earlier iteration to the later one
  (eq. 4),
* the symbolic union relation for code generation,
* summary facts: is there a single coupled pair?  is it square and full rank?
  are the dependences uniform?

Results are cached; the analysis object is intended to be created once per
(program, parameter binding) and passed around.

The analysis is **array-native end to end** for concrete spaces: the exact
analyser joins address tables on sorted int64 keys and returns array-backed
relations (:mod:`repro.dependence.exact`),
:attr:`DependenceAnalysis.iteration_space_array` exposes the enumerated space
as an ``(n, depth)`` int64 array (no per-point tuple boxing), the combined
relation of :attr:`DependenceAnalysis.iteration_dependences` is built by
array concatenation + ``np.unique`` instead of repeated frozenset unions, and
the uniformity check runs on the array form.  ``engine="set"`` forces the
original per-point set path everywhere (the two are equivalent and the tests
compare them); ``engine="vector"`` refuses the hash-join fallback.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from ..ir.program import LoopProgram
from ..isl.relations import FiniteRelation, UnionRelation, readonly_view
from .exact import enumerate_domain, exact_pair_dependences
from .pair import ReferencePair
from .symbolic import symbolic_dependence_relation
from .distance import classify_pair, is_uniform_relation

__all__ = ["DependenceAnalysis", "StatementPairDependence", "ImperfectNestError"]


class ImperfectNestError(ValueError):
    """The program is not a perfect nest, so no single iteration-level Rd exists.

    A subclass of :class:`ValueError` (the exception historically raised), so
    existing ``except ValueError`` callers keep working; :meth:`DependenceAnalysis.summary`
    catches exactly this class and lets genuine errors propagate.
    """


@dataclass(frozen=True)
class StatementPairDependence:
    """Exact dependences of one reference pair, with its classification."""

    pair: ReferencePair
    relation: FiniteRelation

    @property
    def source_label(self) -> str:
        return self.pair.source_ctx.statement.label

    @property
    def target_label(self) -> str:
        return self.pair.target_ctx.statement.label

    def is_empty(self) -> bool:
        return self.relation.is_empty()


@dataclass
class DependenceAnalysis:
    """Exact dependence analysis of a loop program at concrete parameter values.

    ``engine`` selects the representation strategy: ``"auto"`` (default) and
    ``"vector"`` run the sort/merge address join and combine relations on the
    array form; ``"set"`` reproduces the original per-point path (dict hash
    join, frozenset unions) — both produce identical relations.
    """

    program: LoopProgram
    params: Mapping[str, int] = field(default_factory=dict)
    engine: str = "auto"

    def __post_init__(self):
        if self.engine not in ("auto", "set", "vector"):
            raise ValueError(
                f"unknown engine {self.engine!r}; use 'auto', 'set' or 'vector'"
            )
        missing = [p for p in self.program.parameters if p not in self.params]
        if missing:
            raise ValueError(
                f"program {self.program.name!r} has unbound parameters {missing}; "
                f"pass concrete values in params"
            )

    @property
    def _join_engine(self) -> str:
        """The exact-analyser join engine implied by :attr:`engine`."""
        return {"auto": "auto", "set": "hash", "vector": "sort"}[self.engine]

    # -- reference pairs --------------------------------------------------------

    @cached_property
    def reference_pairs(self) -> List[ReferencePair]:
        """Candidate dependence equations: same array, at least one write.

        Each unordered reference pair is analysed once (the exact analyser and
        the symbolic relation handle both orientations internally).
        """
        pairs: List[ReferencePair] = []
        seen = set()
        for ctx1, r1, ctx2, r2 in self.program.reference_pairs():
            key = frozenset(
                [(ctx1.statement.label, str(r1)), (ctx2.statement.label, str(r2))]
            )
            if key in seen:
                continue
            seen.add(key)
            pairs.append(ReferencePair(ctx1, r1, ctx2, r2))
        return pairs

    @cached_property
    def coupled_pairs(self) -> List[ReferencePair]:
        return [p for p in self.reference_pairs if p.is_coupled()]

    # -- exact dependences -------------------------------------------------------

    @cached_property
    def pair_dependences(self) -> List[StatementPairDependence]:
        """Exact direct dependences of every reference pair (source→target of eq. 2).

        Every pair join reads its two statements' domains from the shared
        per-statement cache (:meth:`statement_domain_array`), so each domain
        is enumerated once per analysis instead of once per pair orientation.
        """
        out = []
        for pair in self.reference_pairs:
            for ctx in (pair.source_ctx, pair.target_ctx):
                self.statement_domain_array(ctx.statement.label)
            rel = exact_pair_dependences(
                pair,
                self.params,
                self.program.parameters,
                engine=self._join_engine,
                domains=self._domain_cache,
            )
            out.append(StatementPairDependence(pair, rel))
        return out

    @cached_property
    def _domain_cache(self) -> Dict[str, np.ndarray]:
        return {}

    def statement_domain_array(self, label: str) -> np.ndarray:
        """One statement's iteration domain as ``(n, depth)`` int64 rows.

        Lexicographic row order (:func:`~repro.dependence.exact.enumerate_domain`),
        cached per statement — shared by every reference-pair join and by the
        statement-level space builder (:mod:`repro.core.statement`), so the
        possibly non-rectangular enumeration runs once per statement.
        """
        cache = self._domain_cache
        if label not in cache:
            # Read-only: the same array is handed to every pair join and to
            # the statement-space builder; an in-place edit through any of
            # them must raise, not silently corrupt the shared cache.
            cache[label] = readonly_view(
                enumerate_domain(
                    self.program.context_of(label), self.params, self.program.parameters
                )
            )
        return cache[label]

    def nonempty_pair_dependences(self) -> List[StatementPairDependence]:
        return [d for d in self.pair_dependences if not d.is_empty()]

    @cached_property
    def iteration_dependences(self) -> FiniteRelation:
        """Combined iteration-level relation Rd of a perfect nest (eq. 4).

        Every dependence pair is oriented from the lexicographically earlier to
        the later iteration; self-dependences (same iteration) are dropped.
        Only valid when all statements share the same loop-index space; raises
        :class:`ImperfectNestError` otherwise.

        On the array path the per-pair relations are combined by concatenating
        their ``(src, dst)`` arrays and deduplicating with ``np.unique`` — one
        vectorised pass instead of one frozenset union per reference pair —
        and the result stays array-backed through ``oriented_forward``.
        """
        contexts = self.program.statement_contexts()
        index_names = contexts[0].index_names if contexts else ()
        for ctx in contexts:
            if ctx.index_names != index_names:
                raise ImperfectNestError(
                    "iteration_dependences requires a perfect nest; use the "
                    "statement-level extension (repro.core.statement) instead"
                )
        nonempty = [
            dep.relation for dep in self.pair_dependences if not dep.relation.is_empty()
        ]
        if self.engine != "set" and nonempty:
            arrays = [rel.as_arrays() for rel in nonempty]
            combined = FiniteRelation.from_arrays(
                np.concatenate([src for src, _ in arrays]),
                np.concatenate([dst for _, dst in arrays]),
            )
            return combined.oriented_forward()
        # Set path (engine="set", or nothing to combine): the original
        # frozenset-union fold, kept as the measurable baseline.
        combined = FiniteRelation(frozenset(), len(index_names), len(index_names))
        for dep in self.pair_dependences:
            combined = FiniteRelation.from_pairs(combined.pairs | dep.relation.pairs)
        return combined.oriented_forward()

    @cached_property
    def iteration_space_array(self) -> np.ndarray:
        """All iteration points of the (perfect) nest as an ``(n, depth)`` array.

        Lexicographic row order.  This is the natural input of the vectorised
        partitioning engine — :func:`repro.core.partition.three_set_partition`
        and :func:`repro.core.dataflow.dataflow_partition` accept it directly,
        skipping the per-point tuple materialisation of
        :attr:`iteration_space_points`.
        """
        contexts = self.program.statement_contexts()
        if not contexts:
            return np.zeros((0, 0), dtype=np.int64)
        return np.asarray(
            self.statement_domain_array(contexts[0].statement.label), dtype=np.int64
        )

    @cached_property
    def iteration_space_points(self) -> List[Tuple[int, ...]]:
        """All iteration points of the (perfect) nest, in lexicographic order."""
        return [tuple(p) for p in self.iteration_space_array.tolist()]

    # -- symbolic view ------------------------------------------------------------

    def symbolic_relation(self) -> UnionRelation:
        """The symbolic Rd (perfect nests), still carrying symbolic parameters."""
        return symbolic_dependence_relation(self.program)

    # -- summary facts -------------------------------------------------------------

    @cached_property
    def classifications(self):
        return [classify_pair(p) for p in self.coupled_pairs]

    def has_single_coupled_pair(self) -> bool:
        """True when exactly one coupled reference pair generates dependences."""
        nonempty = [
            d for d in self.pair_dependences if d.pair.is_coupled() and not d.is_empty()
        ]
        return len(nonempty) == 1

    def single_coupled_pair(self) -> Optional[ReferencePair]:
        nonempty = [
            d for d in self.pair_dependences if d.pair.is_coupled() and not d.is_empty()
        ]
        if len(nonempty) == 1:
            return nonempty[0].pair
        return None

    def is_uniform(self) -> bool:
        """Exhaustive uniformity check of the combined relation (perfect nests).

        Runs on the array form (:func:`~repro.dependence.distance.is_uniform_relation_arrays`)
        unless ``engine="set"`` forces the original per-point check.
        """
        if self.engine == "set":
            return is_uniform_relation(
                self.iteration_dependences, self.iteration_space_points
            )
        return is_uniform_relation(self.iteration_dependences, self.iteration_space_array)

    def has_dependences(self) -> bool:
        return any(not d.is_empty() for d in self.pair_dependences)

    def summary(self) -> Dict[str, object]:
        """A small dict of headline facts, convenient for reports and tests.

        An imperfect nest has no single iteration-level relation — that is an
        expected shape, reported as ``None`` entries.  Any other failure of
        :attr:`iteration_dependences` is a genuine error and propagates.
        """
        rel = None
        try:
            rel = self.iteration_dependences
        except ImperfectNestError:
            pass
        return {
            "program": self.program.name,
            "params": dict(self.params),
            "n_reference_pairs": len(self.reference_pairs),
            "n_coupled_pairs": len(self.coupled_pairs),
            "n_direct_dependences": (len(rel) if rel is not None else None),
            "single_coupled_pair": self.has_single_coupled_pair(),
            "uniform": (self.is_uniform() if rel is not None else None),
        }
