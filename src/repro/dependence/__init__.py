"""repro.dependence — exact and conservative data-dependence analysis.

* :mod:`repro.dependence.pair` — reference pairs and their coefficient
  matrices (A, a, B, b) and recurrence form (T, u);
* :mod:`repro.dependence.exact` — exact dependence pairs for concrete bounds
  (the Omega-equivalent used by the partitioners and validators);
* :mod:`repro.dependence.symbolic` — the symbolic Rd as a union of convex
  relations (eq. 4);
* :mod:`repro.dependence.tests` — conservative GCD and Banerjee tests;
* :mod:`repro.dependence.distance` — distance/direction vectors and the
  uniform/non-uniform classification of §2;
* :mod:`repro.dependence.analysis` — the whole-program driver.
"""

from .analysis import DependenceAnalysis, ImperfectNestError, StatementPairDependence
from .distance import (
    PairClassification,
    classify_pair,
    direction_vectors,
    distance_vectors,
    is_uniform_relation,
    is_uniform_relation_arrays,
)
from .exact import enumerate_domain, exact_pair_dependences, reference_addresses
from .pair import ReferencePair
from .symbolic import symbolic_dependence_relation, symbolic_pair_relation
from .tests import DependenceTestResult, banerjee_test, combined_test, gcd_test

__all__ = [
    "DependenceAnalysis",
    "ImperfectNestError",
    "StatementPairDependence",
    "ReferencePair",
    "exact_pair_dependences",
    "enumerate_domain",
    "reference_addresses",
    "symbolic_dependence_relation",
    "symbolic_pair_relation",
    "gcd_test",
    "banerjee_test",
    "combined_test",
    "DependenceTestResult",
    "distance_vectors",
    "direction_vectors",
    "is_uniform_relation",
    "is_uniform_relation_arrays",
    "classify_pair",
    "PairClassification",
]
