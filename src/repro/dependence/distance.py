"""Dependence distances, direction vectors, and uniformity classification.

§2 of the paper defines a loop's dependences as *uniform* when shifting any
dependent pair by an arbitrary vector ``c`` yields another dependent pair as
long as both ends stay inside the iteration space, and *non-uniform*
otherwise.  This module implements:

* distance / direction vector extraction from an exact dependence relation,
* the exhaustive (definition-level) uniformity check for concrete bounds,
* the cheap matrix-level classification used on large corpora
  (a coupled pair with ``A == B`` is uniform; different matrices of full rank
  generate iteration-dependent distances, i.e. non-uniform dependences).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Set, Tuple, Union

import numpy as np

from ..isl.relations import FiniteRelation, PointCodec, in_sorted
from .pair import ReferencePair

__all__ = [
    "distance_vectors",
    "direction_vectors",
    "is_uniform_relation",
    "is_uniform_relation_arrays",
    "classify_pair",
    "PairClassification",
]

Point = Tuple[int, ...]


def distance_vectors(relation: FiniteRelation) -> Set[Point]:
    """All distance vectors ``target − source`` of the relation."""
    return relation.distances()


def direction_vectors(relation: FiniteRelation) -> Set[Tuple[str, ...]]:
    """Direction vectors: the sign pattern ('<', '=', '>') per dimension."""
    out: Set[Tuple[str, ...]] = set()
    for d in relation.distances():
        out.add(tuple("<" if x > 0 else (">" if x < 0 else "=") for x in d))
    return out


def is_uniform_relation(
    relation: FiniteRelation, space_points: Union[np.ndarray, Iterable[Point]]
) -> bool:
    """Exhaustive uniformity check (the definition in §2).

    ``relation`` must contain the *direct* dependences within the iteration
    space whose points are ``space_points``.  The dependences are uniform iff
    for every dependent pair ``(i, j)`` and every shift ``c`` such that both
    ``i+c`` and ``j+c`` lie in the space, ``(i+c, j+c)`` is also dependent.
    Equivalently (and much cheaper): for every distance vector ``d`` in the
    relation, every point ``p`` with ``p+d`` in the space must satisfy
    ``(p, p+d) ∈ relation``.

    ``space_points`` may be an ``(n, dim)`` int array, in which case the check
    runs on the vectorised array form (:func:`is_uniform_relation_arrays`).
    """
    if isinstance(space_points, np.ndarray):
        try:
            return is_uniform_relation_arrays(relation, space_points)
        except ValueError:
            # Key overflow or heterogeneous dims: per-point fallback below.
            space_points = [tuple(p) for p in space_points.tolist()]
    points = set(tuple(p) for p in space_points)
    pair_set = set(relation.pairs)
    for d in relation.distances():
        for p in points:
            q = tuple(x + y for x, y in zip(p, d))
            if q in points and (p, q) not in pair_set:
                return False
    return True


def is_uniform_relation_arrays(relation: FiniteRelation, space: np.ndarray) -> bool:
    """Uniformity check on the array form, no per-point Python objects.

    Uses a counting argument equivalent to the definition: for a distance
    ``d``, the relation's **in-space** pairs with that distance are always a
    subset of the valid placements ``{(p, p+d) : p ∈ Φ, p+d ∈ Φ}``, so the
    dependences are uniform iff for every distance appearing in the relation
    the two cardinalities agree.  Pairs with an endpoint outside ``space``
    contribute their distance but not their count — exactly matching the
    per-point definition check.  Raises :class:`ValueError` when the point box
    overflows int64 lexicographic keys.
    """
    space = np.asarray(space, dtype=np.int64)
    if relation.is_empty():
        return True
    if relation.dim_in != relation.dim_out:
        raise ValueError("uniformity requires a homogeneous relation")
    if relation.dim_in == 0:
        # Rank-0 space: the only possible pair is () -> (), trivially uniform.
        return True
    if len(space):
        # The space is a *set* of points: duplicate rows must not inflate the
        # valid-placement counts (the tuple path dedups via set()).
        space = np.unique(space, axis=0)
    src, dst = relation.as_arrays()
    codec = PointCodec.for_arrays(space, src, dst)
    space_keys = np.unique(codec.encode(space))
    pair_in_space = in_sorted(codec.encode(src), space_keys) & in_sorted(
        codec.encode(dst), space_keys
    )
    diffs = dst - src
    have: dict = {}
    if pair_in_space.any():
        in_dists, in_counts = np.unique(
            diffs[pair_in_space], axis=0, return_counts=True
        )
        have = dict(zip(map(tuple, in_dists.tolist()), in_counts.tolist()))
    for d in np.unique(diffs, axis=0):
        shifted = space + d
        in_box = codec.contains(shifted)
        valid = int(in_sorted(codec.encode(shifted[in_box]), space_keys).sum())
        if valid != have.get(tuple(d.tolist()), 0):
            return False
    return True


@dataclass(frozen=True)
class PairClassification:
    """Static classification of a reference pair."""

    coupled: bool
    uniform_by_matrix: bool
    square_full_rank: bool
    ranks: Tuple[int, int]

    @property
    def non_uniform_candidate(self) -> bool:
        """Coupled references with differing coefficient matrices — the loops
        the recurrence-chain partitioner targets."""
        return self.coupled and not self.uniform_by_matrix


def classify_pair(pair: ReferencePair) -> PairClassification:
    """Matrix-level classification (no enumeration, works with symbolic bounds)."""
    return PairClassification(
        coupled=pair.is_coupled(),
        uniform_by_matrix=pair.is_uniform(),
        square_full_rank=pair.is_square_full_rank(),
        ranks=pair.ranks(),
    )
