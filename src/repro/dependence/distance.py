"""Dependence distances, direction vectors, and uniformity classification.

§2 of the paper defines a loop's dependences as *uniform* when shifting any
dependent pair by an arbitrary vector ``c`` yields another dependent pair as
long as both ends stay inside the iteration space, and *non-uniform*
otherwise.  This module implements:

* distance / direction vector extraction from an exact dependence relation,
* the exhaustive (definition-level) uniformity check for concrete bounds,
* the cheap matrix-level classification used on large corpora
  (a coupled pair with ``A == B`` is uniform; different matrices of full rank
  generate iteration-dependent distances, i.e. non-uniform dependences).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Set, Tuple

from ..isl.relations import FiniteRelation
from .pair import ReferencePair

__all__ = [
    "distance_vectors",
    "direction_vectors",
    "is_uniform_relation",
    "classify_pair",
    "PairClassification",
]

Point = Tuple[int, ...]


def distance_vectors(relation: FiniteRelation) -> Set[Point]:
    """All distance vectors ``target − source`` of the relation."""
    return relation.distances()


def direction_vectors(relation: FiniteRelation) -> Set[Tuple[str, ...]]:
    """Direction vectors: the sign pattern ('<', '=', '>') per dimension."""
    out: Set[Tuple[str, ...]] = set()
    for d in relation.distances():
        out.add(tuple("<" if x > 0 else (">" if x < 0 else "=") for x in d))
    return out


def is_uniform_relation(relation: FiniteRelation, space_points: Iterable[Point]) -> bool:
    """Exhaustive uniformity check (the definition in §2).

    ``relation`` must contain the *direct* dependences within the iteration
    space whose points are ``space_points``.  The dependences are uniform iff
    for every dependent pair ``(i, j)`` and every shift ``c`` such that both
    ``i+c`` and ``j+c`` lie in the space, ``(i+c, j+c)`` is also dependent.
    Equivalently (and much cheaper): for every distance vector ``d`` in the
    relation, every point ``p`` with ``p+d`` in the space must satisfy
    ``(p, p+d) ∈ relation``.
    """
    points = set(tuple(p) for p in space_points)
    pair_set = set(relation.pairs)
    for d in relation.distances():
        for p in points:
            q = tuple(x + y for x, y in zip(p, d))
            if q in points and (p, q) not in pair_set:
                return False
    return True


@dataclass(frozen=True)
class PairClassification:
    """Static classification of a reference pair."""

    coupled: bool
    uniform_by_matrix: bool
    square_full_rank: bool
    ranks: Tuple[int, int]

    @property
    def non_uniform_candidate(self) -> bool:
        """Coupled references with differing coefficient matrices — the loops
        the recurrence-chain partitioner targets."""
        return self.coupled and not self.uniform_by_matrix


def classify_pair(pair: ReferencePair) -> PairClassification:
    """Matrix-level classification (no enumeration, works with symbolic bounds)."""
    return PairClassification(
        coupled=pair.is_coupled(),
        uniform_by_matrix=pair.is_uniform(),
        square_full_rank=pair.is_square_full_rank(),
        ranks=pair.ranks(),
    )
