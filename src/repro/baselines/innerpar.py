"""Inner-loop parallelization baseline ("PAR" in figure 3, Example 3).

The simplest credible competitor: keep the outermost loop sequential and run
the iterations of the inner loops of each outer iteration in parallel, which
is what a dependence test such as the POWER test licenses for Example 3 (the
outer ``I`` loop carries the dependences, the inner ``J``/``K`` loops do not).
The schedule has one phase (one barrier) per outer-loop iteration; the units
of a phase are the statement instances sharing that outer iteration value.

The scheme is safe whenever the outermost loop carries every dependence, which
the constructor verifies against the exact relation and reports loudly if
violated (in that case a coarser sequential prefix is used).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..core.schedule import ExecutionUnit, Instance, ParallelPhase, Schedule
from ..core.statement import build_statement_space
from ..dependence.analysis import DependenceAnalysis
from ..ir.program import LoopProgram

__all__ = ["inner_parallel_schedule"]

Point = Tuple[int, ...]


def inner_parallel_schedule(
    program: LoopProgram,
    params: Optional[Mapping[str, int]] = None,
    analysis: Optional[DependenceAnalysis] = None,
    sequential_depth: int = 1,
) -> Schedule:
    """Outer ``sequential_depth`` loops sequential, everything inside parallel.

    Statement instances are grouped by the first ``sequential_depth``
    components of their iteration vector; groups execute in ascending order
    (one phase each), and within a group every instance is its own unit.
    If some dependence is not carried by the sequential outer levels the
    offending instances are merged into a single sequential unit so the
    schedule stays correct (and the loss of parallelism is visible instead of
    silently producing wrong code).
    """
    params = dict(params or {})
    analysis = analysis or DependenceAnalysis(program, params)
    stmt_space = build_statement_space(program, params, analysis)

    def outer_key(instance: Instance) -> Tuple[int, ...]:
        _label, iteration = instance
        return tuple(iteration[:sequential_depth])

    groups: Dict[Tuple[int, ...], List[Instance]] = {}
    for inst in stmt_space.instances:
        groups.setdefault(outer_key(inst), []).append(inst)

    # Safety check: every dependence must either stay inside one instance or go
    # from a strictly smaller outer key to a larger one (carried by the outer
    # loops) — otherwise the two instances must share a sequential unit.
    instance_of = stmt_space.instance_of()
    conflicting: Dict[Tuple[int, ...], bool] = {}
    for src, dst in stmt_space.rd.pairs:
        for src_inst in instance_of[src]:
            for dst_inst in instance_of[dst]:
                if outer_key(src_inst) >= outer_key(dst_inst):
                    conflicting[outer_key(dst_inst)] = True
                    conflicting[outer_key(src_inst)] = True

    phases: List[ParallelPhase] = []
    for key in sorted(groups):
        members = groups[key]
        if conflicting.get(key):
            units: Tuple[ExecutionUnit, ...] = (ExecutionUnit.block(members),)
        else:
            units = tuple(ExecutionUnit.block([inst]) for inst in members)
        phases.append(ParallelPhase(f"outer{key}", units))
    return Schedule.from_phases(
        f"{program.name}-PAR",
        phases,
        scheme="inner-parallel",
        sequential_depth=sequential_depth,
    )
