"""DOACROSS / dependence-uniformization baselines (Tzen & Ni '93, Chen & Yew '96).

These schemes keep the original loop structure and insert point-to-point
synchronization: the dependence distances are covered by a small set of basic
dependence vectors (BDV) and iteration ``i`` may start once the iterations
``i − v`` (for every BDV ``v``) have completed.  The achievable parallelism is
therefore wavefront parallelism over the *uniformized* dependence graph, paid
for with per-iteration synchronization that is more expensive than the barrier
synchronization of DOALL phases — both effects the paper's Example 3
comparison relies on (DOACROSS trails the two-phase DOALL code REC produces).

The reproduction models a DOACROSS execution as a wavefront schedule over the
relation ``{ i → i+v | v ∈ BDV, both in Φ }``: one phase per wavefront level,
single-iteration units.  The extra cost of the per-iteration P/V
synchronization relative to barriers is expressed through the cost model used
when simulating the schedule (see the figure-3 benchmarks).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from ..core.dataflow import dataflow_partition
from ..core.schedule import ExecutionUnit, Instance, ParallelPhase, Schedule
from ..dependence.analysis import DependenceAnalysis
from ..ir.program import LoopProgram
from ..isl.relations import FiniteRelation
from .lattice import pseudo_distance_matrix

__all__ = ["basic_dependence_vectors", "uniformized_relation", "doacross_schedule"]

Point = Tuple[int, ...]


def basic_dependence_vectors(rd: FiniteRelation, dim: int) -> List[Point]:
    """Basic dependence vectors covering every observed distance.

    The published schemes choose a cone basis of the distance set; the pseudo
    distance matrix (lexicographically positive, integrally covering) is a
    faithful stand-in with the same role: every real distance is a combination
    of the returned vectors, so synchronizing on them preserves every real
    dependence.
    """
    return pseudo_distance_matrix(sorted(rd.distances()), dim)


def uniformized_relation(
    space: Sequence[Point], vectors: Sequence[Point]
) -> FiniteRelation:
    """The uniform relation ``{ i → i+v | v ∈ vectors, i and i+v in Φ }``."""
    phi = set(tuple(p) for p in space)
    pairs = set()
    for p in phi:
        for v in vectors:
            q = tuple(x + d for x, d in zip(p, v))
            if q in phi and q != p:
                pairs.add((p, q))
    dim = len(space[0]) if space else 0
    return FiniteRelation(frozenset(pairs), dim, dim)


def doacross_schedule(
    program: LoopProgram,
    params: Optional[Mapping[str, int]] = None,
    analysis: Optional[DependenceAnalysis] = None,
) -> Schedule:
    """Schedule a program under BDV-synchronized DOACROSS execution.

    Works at iteration level for perfect nests and at statement level (unified
    index vectors) otherwise, so the imperfectly nested Example 3 can be
    scheduled the way Chen & Yew's paper schedules it.
    """
    params = dict(params or {})
    analysis = analysis or DependenceAnalysis(program, params)

    contexts = program.statement_contexts()
    index_names = contexts[0].index_names if contexts else ()
    perfect = all(ctx.index_names == index_names for ctx in contexts)

    if perfect:
        labels = [s.label for s in program.statements()]
        space = analysis.iteration_space_points
        rd = analysis.iteration_dependences
        vectors = basic_dependence_vectors(rd, len(index_names))
        # The wavefront levels are computed over the uniformized relation *plus*
        # the exact one: the BDV edges add the artificial serialization the
        # scheme pays for, and keeping the exact edges guarantees correctness
        # even where an intermediate point i+v falls outside the iteration
        # space (single BDV steps alone would then lose the ordering).
        uniform = uniformized_relation(space, vectors).union(rd)
        levels = dataflow_partition(space, uniform)
        phases = []
        for k, wave in enumerate(levels.wavefronts):
            units = []
            for p in sorted(wave):
                units.append(
                    ExecutionUnit.block([(label, p) for label in labels])
                )
            phases.append(ParallelPhase(f"doacross-wave-{k}", tuple(units)))
    else:
        from ..core.statement import build_statement_space

        stmt_space = build_statement_space(program, params, analysis)
        points = sorted(stmt_space.points)
        vectors = basic_dependence_vectors(stmt_space.rd, stmt_space.width)
        uniform = uniformized_relation(points, vectors).union(stmt_space.rd)
        levels = dataflow_partition(points, uniform)
        back = stmt_space.instance_of()
        phases = []
        for k, wave in enumerate(levels.wavefronts):
            units = []
            for p in sorted(wave):
                units.append(ExecutionUnit.block(back[p]))
            phases.append(ParallelPhase(f"doacross-wave-{k}", tuple(units)))

    return Schedule.from_phases(
        f"{program.name}-DOACROSS",
        phases,
        scheme="doacross",
        basic_dependence_vectors=[list(v) for v in vectors],
        waves=len(phases),
    )
