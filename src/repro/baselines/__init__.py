"""repro.baselines — the comparison schemes of the paper's §4/§5.

* :mod:`repro.baselines.pdm` — pseudo distance matrix uniformization
  (Yu & D'Hollander, ICPP'00), the scheme REC is positioned against;
* :mod:`repro.baselines.pl` — partitioning & labeling / direction-vector
  uniformization (D'Hollander '92, Wolf & Lam '91);
* :mod:`repro.baselines.unique_sets` — unique-sets oriented partitioning
  (Ju & Chaudhary '97);
* :mod:`repro.baselines.doacross` — BDV-synchronized DOACROSS execution
  (Tzen & Ni '93, Chen & Yew '96);
* :mod:`repro.baselines.tiling` — minimum-distance tiling (Punyamurtula et al. '99);
* :mod:`repro.baselines.innerpar` — inner-loop parallelization ("PAR");
* :mod:`repro.baselines.lattice` — the shared distance-lattice machinery.

Every scheme produces a :class:`~repro.core.schedule.Schedule`, so the same
validators, simulator and benchmarks apply to all of them.
"""

from .doacross import basic_dependence_vectors, doacross_schedule, uniformized_relation
from .innerpar import inner_parallel_schedule
from .lattice import DistanceLattice, direction_basis, pseudo_distance_matrix
from .pdm import PDMPartition, pdm_partition, pdm_schedule
from .pl import PLPartition, pl_partition, pl_schedule
from .tiling import minimum_distances, tiling_schedule
from .unique_sets import UniqueSets, unique_sets_partition, unique_sets_schedule

__all__ = [
    "pdm_schedule",
    "pdm_partition",
    "PDMPartition",
    "pl_schedule",
    "pl_partition",
    "PLPartition",
    "unique_sets_schedule",
    "unique_sets_partition",
    "UniqueSets",
    "doacross_schedule",
    "basic_dependence_vectors",
    "uniformized_relation",
    "tiling_schedule",
    "minimum_distances",
    "inner_parallel_schedule",
    "DistanceLattice",
    "pseudo_distance_matrix",
    "direction_basis",
]
