"""Partitioning & labeling / direction-vector uniformization baseline ("PL").

The PL curve of figure 3 corresponds to the classic uniform-dependence
machinery (D'Hollander '92 partitioning and labeling, Wolf & Lam unimodular
transformations): the non-uniform distances are abstracted into *direction
vectors*, which — as the paper's related-work section explains — is equivalent
to covering the dependences with the primitive (gcd-reduced) basis of the
vector space the distances span.  That lattice is denser than the PDM's, so
more artificial dependences are introduced, the sequential chains (labels)
inside each partition are longer, and there are fewer independent partitions —
which is why PL trails PDM and REC in figure 3.

Mechanically the scheme is the same coset construction as PDM with a different
generator set; see :mod:`repro.baselines.lattice`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar, List, Mapping, Optional, Tuple

from ..core.schedule import ExecutionUnit, Instance, ParallelPhase, Schedule
from ..dependence.analysis import DependenceAnalysis
from ..ir.program import LoopProgram
from ..isl.relations import FiniteRelation
from .lattice import DistanceLattice, direction_basis
from .pdm import PDMPartition

__all__ = ["PLPartition", "pl_partition", "pl_schedule"]

Point = Tuple[int, ...]


@dataclass(frozen=True)
class PLPartition(PDMPartition):
    """The PL coset partition (direction-vector lattice).

    Structurally identical to :class:`~repro.baselines.pdm.PDMPartition` —
    the ``pdm`` field holds the primitive direction basis instead of the
    pseudo distance matrix — but carried as its own type so consumers (the
    strategy-registry diagnostics, reports) can tell the two uniformization
    schemes apart without inspecting which lattice generated the cosets.
    """

    scheme: ClassVar[str] = "pl"


def pl_partition(space, rd: FiniteRelation) -> PLPartition:
    """Coset partition under the primitive direction-vector lattice."""
    dim = len(space[0]) if space else rd.dim_in
    basis = direction_basis(sorted(rd.distances()), dim)
    lattice = DistanceLattice.from_vectors(basis, dim)
    cosets = lattice.cosets(space)
    return PLPartition(pdm=tuple(basis), cosets=cosets, lattice=lattice)


def pl_schedule(
    program: LoopProgram,
    params: Optional[Mapping[str, int]] = None,
    analysis: Optional[DependenceAnalysis] = None,
) -> Schedule:
    """Schedule a perfect-nest program under the PL (direction vector) scheme."""
    params = dict(params or {})
    analysis = analysis or DependenceAnalysis(program, params)
    labels = [s.label for s in program.statements()]
    space = analysis.iteration_space_points
    rd = analysis.iteration_dependences
    partition = pl_partition(space, rd)

    units = []
    for key in sorted(partition.cosets):
        members = partition.cosets[key]
        instances: List[Instance] = []
        for point in members:
            for label in labels:
                instances.append((label, point))
        units.append(ExecutionUnit.block(instances))
    phase = ParallelPhase("PL partitions (labels executed in order)", (tuple(units)))
    return Schedule.from_phases(
        f"{program.name}-PL",
        [phase],
        scheme="pl",
        basis=[list(v) for v in partition.pdm],
        parallel_sets=partition.num_parallel_sets,
        longest_chain=partition.longest_chain,
    )
