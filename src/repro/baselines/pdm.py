"""The pseudo-distance-matrix (PDM) partitioning baseline (Yu & D'Hollander, ICPP 2000).

The PDM scheme uniformizes non-uniform dependences: it derives a small set of
lexicographically positive *pseudo distance vectors* whose integer
combinations cover every real dependence distance, and then partitions the
iteration space as if those vectors were real uniform distances.  Iterations
in different lattice cosets of the PDM are independent and run fully in
parallel (the outermost DOALL the scheme advertises); iterations within a
coset are executed sequentially in lexicographic order, which serializes both
the real dependences and the *artificial* ones the covering introduces — the
over-serialization the recurrence-chain paper improves on.

At statement level (imperfect nests / multiple statements) the scheme is
applied per uniformizable dimension group; this reproduction applies it to the
iteration vectors of perfect nests and, for imperfect programs such as the
Cholesky kernel, to each statement's iteration domain with the dependence
distances projected onto the shared outer loops — enough to reproduce the
paper's Example 4 comparison, where PDM parallelizes the outermost ``L`` /
``I`` loops and wins on load balance beyond 3 threads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar, Dict, List, Mapping, Optional, Sequence, Tuple

from ..core.schedule import ExecutionUnit, Instance, ParallelPhase, Schedule
from ..dependence.analysis import DependenceAnalysis
from ..ir.program import LoopProgram
from ..isl.relations import FiniteRelation
from .lattice import DistanceLattice, pseudo_distance_matrix

__all__ = ["PDMPartition", "pdm_partition", "pdm_schedule"]

Point = Tuple[int, ...]


@dataclass(frozen=True)
class PDMPartition:
    """The PDM partition: pseudo distance vectors and the resulting cosets.

    ``scheme`` names the uniformization scheme that produced the partition;
    the PL baseline's :class:`~repro.baselines.pl.PLPartition` subclass
    overrides it so registry diagnostics report the right scheme even though
    both schemes share the coset mechanics.
    """

    scheme: ClassVar[str] = "pdm"

    pdm: Tuple[Point, ...]
    cosets: Mapping[Point, List[Point]]
    lattice: DistanceLattice

    @property
    def num_parallel_sets(self) -> int:
        return len(self.cosets)

    @property
    def longest_chain(self) -> int:
        return max((len(c) for c in self.cosets.values()), default=0)

    def covers(self, distances) -> bool:
        return self.lattice.covers(distances)


def pdm_partition(space: Sequence[Point], rd: FiniteRelation) -> PDMPartition:
    """Build the PDM and the coset partition for a concrete iteration space."""
    if space:
        dim = len(space[0])
    else:
        dim = rd.dim_in
    distances = sorted(rd.distances())
    pdm = pseudo_distance_matrix(distances, dim)
    lattice = DistanceLattice.from_vectors(pdm, dim)
    cosets = lattice.cosets(space)
    return PDMPartition(pdm=tuple(pdm), cosets=cosets, lattice=lattice)


def pdm_schedule(
    program: LoopProgram,
    params: Optional[Mapping[str, int]] = None,
    analysis: Optional[DependenceAnalysis] = None,
) -> Schedule:
    """Schedule a perfect-nest program under the PDM scheme.

    The schedule is a single parallel phase (the outermost DOALL over cosets);
    each coset is one sequential unit in lexicographic order.  For programs
    with several statements the units carry every statement instance of the
    iterations in the coset, still in sequential program order.
    """
    params = dict(params or {})
    analysis = analysis or DependenceAnalysis(program, params)

    contexts = program.statement_contexts()
    index_names = contexts[0].index_names if contexts else ()
    perfect = all(ctx.index_names == index_names for ctx in contexts)

    if perfect:
        labels = [s.label for s in program.statements()]
        space = analysis.iteration_space_points
        rd = analysis.iteration_dependences
        partition = pdm_partition(space, rd)
        units = []
        for key in sorted(partition.cosets):
            members = partition.cosets[key]
            instances: List[Instance] = []
            for point in members:
                for label in labels:
                    instances.append((label, point))
            units.append(ExecutionUnit.block(instances))
    else:
        # Statement-level PDM: uniformize over the unified statement index
        # vectors of §3.3, so instances whose unified difference lies in the
        # pseudo-distance lattice share a sequential unit and the remaining
        # (outermost) dimensions stay fully parallel — this is what the
        # paper's Example 4 PDM code achieves with its DOALL over L and I.
        from ..core.statement import build_statement_space

        stmt_space = build_statement_space(program, params, analysis)
        partition = pdm_partition(sorted(stmt_space.points), stmt_space.rd)
        back = stmt_space.instance_of()
        units = []
        for key in sorted(partition.cosets):
            members = partition.cosets[key]
            instances = []
            for point in members:
                instances.extend(back[point])
            units.append(ExecutionUnit.block(instances))

    phase = ParallelPhase("PDM cosets (outermost DOALL)", tuple(units))
    return Schedule.from_phases(
        f"{program.name}-PDM",
        [phase],
        scheme="pdm",
        pseudo_distance_matrix=[list(v) for v in partition.pdm],
        parallel_sets=partition.num_parallel_sets,
        longest_chain=partition.longest_chain,
    )
