"""Unique-sets oriented partitioning baseline (Ju & Chaudhary, 1997).

The unique-sets scheme also works from the exact dependence information of a
single coupled reference pair, but instead of recurrence chains it splits the
dependence convex hulls into *head* and *tail* sets per recurrence equation
("flow" for the first orientation of the equation, "anti" for the second) and
intersects them, yielding up to five unique sets that are executed as a
sequence of loop nests.  For the paper's Example 2 this produces five phases,
one of which is sequential; the recurrence-chain scheme produces only three
fully parallel partitions, which is exactly the comparison §4/§5 make.

This reproduction keeps the scheme's observable structure:

* iterations touched only as dependence *sources* form the head sets (split by
  flow/anti orientation),
* iterations touched only as *targets* form the tail sets (same split),
* iterations that are both source and target form the intersection set, which
  is executed sequentially (its internal chains are not analysed further —
  that is the very refinement the recurrence-chain paper adds),
* untouched iterations join the first phase.

Phases execute in the order: independent ∪ flow-heads, anti-heads,
intersection (sequential), flow-tails, anti-tails — mirroring the five
DOALL nests of the published example.  Every real dependence is respected
because sources always execute in an earlier phase than their targets, and
the intersection phase is internally sequential in lexicographic order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Set, Tuple

from ..core.schedule import ExecutionUnit, Instance, ParallelPhase, Schedule
from ..dependence.analysis import DependenceAnalysis
from ..ir.program import LoopProgram
from ..isl.lexorder import lex_lt
from ..isl.relations import FiniteRelation

__all__ = ["UniqueSets", "unique_sets_partition", "unique_sets_schedule"]

Point = Tuple[int, ...]


@dataclass(frozen=True)
class UniqueSets:
    """The five unique sets of the Ju & Chaudhary scheme (concrete form)."""

    independent: FrozenSet[Point]
    flow_head: FrozenSet[Point]
    anti_head: FrozenSet[Point]
    intersection: FrozenSet[Point]
    flow_tail: FrozenSet[Point]
    anti_tail: FrozenSet[Point]

    def phases(self) -> List[Tuple[str, FrozenSet[Point], bool]]:
        """(name, points, is_sequential) in execution order."""
        return [
            ("independent + flow heads", self.independent | self.flow_head, False),
            ("anti heads", self.anti_head, False),
            ("head/tail intersection (sequential)", self.intersection, True),
            ("flow tails", self.flow_tail, False),
            ("anti tails", self.anti_tail, False),
        ]

    def counts(self) -> Dict[str, int]:
        return {name: len(points) for name, points, _ in self.phases()}


def unique_sets_partition(space: Sequence[Point], rd: FiniteRelation) -> UniqueSets:
    """Split the iteration space into the unique sets.

    ``rd`` is the oriented (earlier → later) exact relation.  The flow/anti
    split follows the write-to-read direction: a pair whose source is the
    lexicographically earlier iteration of the *write* reference is flow, the
    reverse orientation is anti.  Working from the oriented relation we use
    the sign convention that pairs whose source is also a pure source of the
    relation (never a target) are "flow-like"; the distinction only affects
    which head/tail bucket an iteration lands in, not the safety argument.
    """
    phi = set(tuple(p) for p in space)
    relation = rd.restrict(domain=phi, rng=phi)
    dom = relation.domain()
    ran = relation.range()
    touched = dom | ran
    independent = frozenset(phi - touched)
    heads = (dom - ran)
    tails = (ran - dom)
    intersection = frozenset(dom & ran)

    # Flow/anti split of heads and tails: a head whose every outgoing target is
    # lexicographically *adjacent forward* in the first orientation is flow;
    # we approximate the published split by parity of the orientation that
    # produced the pair — heads whose smallest target is closer than the
    # midpoint of its targets' span go to flow, the rest to anti.  The split
    # is structural only (both head phases precede every dependent target).
    succ = relation.successor_map()
    flow_head: Set[Point] = set()
    anti_head: Set[Point] = set()
    for h in heads:
        targets = succ.get(h, [])
        if targets and lex_lt(h, targets[0]) and len(targets) == 1:
            flow_head.add(h)
        else:
            anti_head.add(h)
    pred = relation.predecessor_map()
    flow_tail: Set[Point] = set()
    anti_tail: Set[Point] = set()
    for t in tails:
        sources = pred.get(t, [])
        if sources and len(sources) == 1:
            flow_tail.add(t)
        else:
            anti_tail.add(t)
    return UniqueSets(
        independent=independent,
        flow_head=frozenset(flow_head),
        anti_head=frozenset(anti_head),
        intersection=intersection,
        flow_tail=frozenset(flow_tail),
        anti_tail=frozenset(anti_tail),
    )


def unique_sets_schedule(
    program: LoopProgram,
    params: Optional[Mapping[str, int]] = None,
    analysis: Optional[DependenceAnalysis] = None,
) -> Schedule:
    """Schedule a perfect-nest program under the unique-sets scheme."""
    params = dict(params or {})
    analysis = analysis or DependenceAnalysis(program, params)
    labels = [s.label for s in program.statements()]
    space = analysis.iteration_space_points
    rd = analysis.iteration_dependences
    sets = unique_sets_partition(space, rd)

    phases: List[ParallelPhase] = []
    for name, points, sequential in sets.phases():
        if not points:
            continue
        ordered = sorted(points)
        if sequential:
            instances: List[Instance] = []
            for p in ordered:
                for label in labels:
                    instances.append((label, p))
            units: Tuple[ExecutionUnit, ...] = (ExecutionUnit.block(instances),)
        else:
            units = tuple(
                ExecutionUnit.block([(label, p) for label in labels]) for p in ordered
            )
        phases.append(ParallelPhase(name, units))
    return Schedule.from_phases(
        f"{program.name}-UNIQUE",
        phases,
        scheme="unique-sets",
        set_sizes=sets.counts(),
    )
