"""Minimum-distance tiling baseline (Punyamurtula, Chaudhary, Ju & Roy, 1999).

The minimum-distance scheme observes that iterations closer together than the
minimum dependence distance in every dimension cannot depend on each other, so
the iteration space can be tiled with tiles of that size: the iterations of a
tile run fully in parallel (innermost parallelism) and the tiles themselves
execute under the original sequential order (or a DOACROSS scheme for the
inter-tile dependences — the reproduction uses the stricter sequential tile
order, which is sufficient for the comparisons the paper makes: the scheme's
parallelism per synchronization step is bounded by the tile volume, e.g. a
factor ≈ 4 for Example 2, whereas the REC partitioning exposes whole-set
parallelism).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..core.schedule import ExecutionUnit, Instance, ParallelPhase, Schedule
from ..dependence.analysis import DependenceAnalysis
from ..ir.program import LoopProgram
from ..isl.relations import FiniteRelation

__all__ = ["minimum_distances", "tiling_schedule"]

Point = Tuple[int, ...]


def minimum_distances(rd: FiniteRelation, dim: int) -> Tuple[int, ...]:
    """Per-dimension minimum positive dependence distance (1 when none).

    The tile extent in dimension ``k`` is the smallest positive ``|d_k|`` over
    all dependence distances with ``d_k != 0``; dimensions never involved in a
    dependence get an unbounded extent, represented here by a large extent that
    in practice means "the whole dimension fits in one tile".
    """
    mins: List[Optional[int]] = [None] * dim
    for d in rd.distances():
        for k, x in enumerate(d):
            if x != 0:
                ax = abs(int(x))
                if mins[k] is None or ax < mins[k]:
                    mins[k] = ax
    return tuple(m if m is not None else 0 for m in mins)


def tiling_schedule(
    program: LoopProgram,
    params: Optional[Mapping[str, int]] = None,
    analysis: Optional[DependenceAnalysis] = None,
) -> Schedule:
    """Schedule a perfect-nest program under minimum-distance tiling.

    Tiles are visited in lexicographic order (one phase per tile); the
    iterations inside a tile are the parallel units of that phase.
    """
    params = dict(params or {})
    analysis = analysis or DependenceAnalysis(program, params)
    labels = [s.label for s in program.statements()]
    space = analysis.iteration_space_points
    rd = analysis.iteration_dependences
    if not space:
        return Schedule.from_phases(f"{program.name}-TILE", [], scheme="min-distance-tiling")
    dim = len(space[0])
    extents = minimum_distances(rd, dim)
    lows = [min(p[k] for p in space) for k in range(dim)]
    highs = [max(p[k] for p in space) for k in range(dim)]
    sizes = tuple(
        (e if e and e > 0 else (highs[k] - lows[k] + 1)) for k, e in enumerate(extents)
    )

    def tile_of(p: Point) -> Point:
        return tuple((p[k] - lows[k]) // sizes[k] for k in range(dim))

    tiles: Dict[Point, List[Point]] = {}
    for p in space:
        tiles.setdefault(tile_of(p), []).append(p)

    phases = []
    for tile_key in sorted(tiles):
        members = sorted(tiles[tile_key])
        units = tuple(
            ExecutionUnit.block([(label, p) for label in labels]) for p in members
        )
        phases.append(ParallelPhase(f"tile{tile_key}", units))
    return Schedule.from_phases(
        f"{program.name}-TILE",
        phases,
        scheme="min-distance-tiling",
        tile_size=list(sizes),
        tiles=len(tiles),
    )
