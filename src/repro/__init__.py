"""repro — a reproduction of "Non-Uniform Dependences Partitioned by Recurrence
Chains" (Yijun Yu & Erik H. D'Hollander, ICPP 2004).

The package parallelizes loop nests whose coupled affine array subscripts
produce *non-uniform* dependence distances.  The central idea (recurrence
chain partitioning) splits the iteration space into an initial fully parallel
set, an intermediate set of disjoint monotonic recurrence chains executed as
WHILE loops, and a final fully parallel set — exposing outermost DOALL
parallelism that uniformization-based schemes (PDM, direction vectors) and
DOACROSS-style schemes cannot reach.

Sub-packages
============

================  ============================================================
``repro.isl``     exact integer sets, relations, Fourier–Motzkin, diophantine
                  solving (the Omega-library substitute)
``repro.ir``      the loop-nest IR (affine bounds, affine references)
``repro.dependence``  exact and conservative dependence analysis
``repro.core``    the paper's contribution: three-set partitioning, recurrence
                  chains, dataflow partitioning, Algorithm 1, Theorem 1 — and
                  the unified planning facade (``plan``/``PlanConfig``/``Plan``)
``repro.codegen`` DOALL/WHILE code generation (Python and pseudo-Fortran)
``repro.runtime`` executors, SMP cost-model simulator, validation, metrics
``repro.baselines``  PDM, PL, unique sets, DOACROSS, tiling, inner-DOALL
``repro.workloads``  the paper's example loops and synthetic corpora
``repro.analysis``   program features, statistics, experiment harness, reporting
``repro.serving``    the memory-resident plan server (warm caches, persistent
                  worker pools, admission batching)
================  ============================================================

Quick start
===========

Everything goes through one entry point: :func:`repro.plan` selects the best
applicable partitioning strategy (Algorithm 1's recurrence-chain and dataflow
branches, falling back to the six baseline schemes), and returns an
executable :class:`~repro.core.strategy.Plan`:

>>> import repro
>>> prog = repro.workloads.figure1_loop(10, 10)
>>> p = repro.plan(prog)
>>> p.strategy
'recurrence-chains'
>>> p.schedule.num_phases
3
>>> p.validate().ok
True

Re-planning the same loop nest hits the LRU plan cache and returns the
identical object (the serving scenario — no re-analysis):

>>> repro.plan(repro.workloads.figure1_loop(10, 10)) is p
True

Strategy selection is feature-driven: ``plan()`` reduces the nest to a
:class:`~repro.analysis.features.ProgramFeatures` record and a **selector**
ranks the strategy chain with it.  The default ``table`` selector looks the
program's feature bucket up in the corpus-calibrated win table
(``feature_rules`` ranks by each strategy's ``score(features)`` hook,
``fixed`` replays the historical registration-order chain bit-identically).
``Plan.explain()`` shows the features and the selection scores:

>>> print(p.explain())  # doctest: +ELLIPSIS
plan for 'figure1' (params {}, engine 'auto'):
  selector 'table' (calibrated workload table)
  features: depth=2 statements=1 (perfect, rect), 100 points, 18 dependences...
  bucket: perfect|1cp|coupled|nonuniform|rect|d2|dep
  - score recurrence-chains 1.00: calibrated: 1.00x the bucket's best simulated time
  - score dataflow 0.99: calibrated: 1.01x the bucket's best simulated time
...

:class:`~repro.core.strategy.PlanConfig` centralises every knob — the
set/vector engine, the bulk-threshold override, the selector, the pinned
strategy order:

>>> forced = repro.plan(prog, config=repro.PlanConfig(strategies=("pdm",)))
>>> forced.scheme
'pdm'
>>> imperfect = repro.plan(repro.workloads.example3_loop(8))
>>> imperfect.strategy
'dataflow'
>>> imperfect.selection.bucket  # uncalibrated bucket -> feature-rule fallback
'imperfect|mcp|coupled|mixed|nonrect|d3|free'

Execution mirrors planning: every executor is a registered backend behind
one entry point.  ``p.execute(backend="process", workers=2)`` runs the
schedule on a **shared-memory process pool** — the program's arrays live in
one ``multiprocessing.shared_memory`` segment that every worker attaches
once, phases end in real barriers, and the result is the unified
:class:`~repro.runtime.backends.RunResult` with per-phase counters.  Every
backend declares an availability probe (``None`` means usable); the rare
host without POSIX shared memory falls back to the thread pool here:

>>> pool = "process" if repro.runtime.get_backend("process").available() is None else "threaded"
>>> run = p.execute(backend=pool, workers=2)
>>> run.workers, run.instances_executed
(2, 100)
>>> serial = p.execute(backend="serial")
>>> all((run.store[a] == serial.store[a]).all() for a in run.store)
True

The registered backends (``repro.runtime.backend_names()``):

>>> repro.runtime.backend_names()
('serial', 'threaded', 'process', 'simulated', 'compiled')

For many requests, don't loop over one-shot calls — stand up the
memory-resident :class:`~repro.serving.PlanServer`.  It shares one
thread-safe plan cache across all client threads and, on the ``process``
backend, keeps the forked worker pool alive between requests (each request
re-ships only a tiny shared-memory descriptor table).  Repeat requests
report the warm paths they rode:

>>> with repro.serving.PlanServer() as server:
...     cold = server.request(prog)
...     warm = server.request(prog)
>>> (cold.plan_cache_hit, warm.plan_cache_hit)
(False, True)
>>> all((warm.result.store[a] == serial.store[a]).all() for a in warm.result.store)
True

Plans execute (``p.execute(threads=4)`` for the GIL-bound thread pool) and
generate source (``p.codegen(target="python")``); the historical entry
points — ``repro.core.recurrence_chain_partition``, the per-scheme
``*_schedule`` functions, ``repro.runtime.execute_schedule`` and
``repro.runtime.execute_schedule_threaded`` — remain as thin shims over the
same machinery.
"""

from . import (
    analysis,
    baselines,
    codegen,
    core,
    dependence,
    ir,
    isl,
    runtime,
    serving,
    workloads,
)
from .core.strategy import (
    DEFAULT_SELECTOR,
    PartitionStrategy,
    Plan,
    PlanCache,
    PlanConfig,
    SelectionReport,
    StrategySelector,
    default_plan_cache,
    plan,
    selector_names,
    strategy_names,
    strategy_table,
)
from .runtime.backends import (
    ExecConfig,
    ExecutionBackend,
    RunResult,
    backend_names,
    backend_table,
)

__version__ = "1.2.0"

__all__ = [
    "analysis",
    "baselines",
    "core",
    "codegen",
    "dependence",
    "ir",
    "isl",
    "runtime",
    "serving",
    "workloads",
    "plan",
    "Plan",
    "PlanConfig",
    "PlanCache",
    "PartitionStrategy",
    "SelectionReport",
    "StrategySelector",
    "DEFAULT_SELECTOR",
    "default_plan_cache",
    "selector_names",
    "strategy_names",
    "strategy_table",
    "ExecConfig",
    "ExecutionBackend",
    "RunResult",
    "backend_names",
    "backend_table",
    "__version__",
]
