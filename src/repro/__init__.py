"""repro — a reproduction of "Non-Uniform Dependences Partitioned by Recurrence
Chains" (Yijun Yu & Erik H. D'Hollander, ICPP 2004).

The package parallelizes loop nests whose coupled affine array subscripts
produce *non-uniform* dependence distances.  The central idea (recurrence
chain partitioning) splits the iteration space into an initial fully parallel
set, an intermediate set of disjoint monotonic recurrence chains executed as
WHILE loops, and a final fully parallel set — exposing outermost DOALL
parallelism that uniformization-based schemes (PDM, direction vectors) and
DOACROSS-style schemes cannot reach.

Sub-packages
============

================  ============================================================
``repro.isl``     exact integer sets, relations, Fourier–Motzkin, diophantine
                  solving (the Omega-library substitute)
``repro.ir``      the loop-nest IR (affine bounds, affine references)
``repro.dependence``  exact and conservative dependence analysis
``repro.core``    the paper's contribution: three-set partitioning, recurrence
                  chains, dataflow partitioning, Algorithm 1, Theorem 1
``repro.codegen`` DOALL/WHILE code generation (Python and pseudo-Fortran)
``repro.runtime`` executors, SMP cost-model simulator, validation, metrics
``repro.baselines``  PDM, PL, unique sets, DOACROSS, tiling, inner-DOALL
``repro.workloads``  the paper's example loops and synthetic corpora
``repro.analysis``   statistics, experiment harness, reporting
================  ============================================================

Quick start
===========

>>> from repro.workloads import figure1_loop
>>> from repro.core import recurrence_chain_partition
>>> from repro.runtime import validate_schedule
>>> prog = figure1_loop(10, 10)
>>> result = recurrence_chain_partition(prog)
>>> result.schedule.num_phases
3
>>> validate_schedule(prog, result.schedule, {}).ok
True
"""

from . import analysis, baselines, codegen, core, dependence, ir, isl, runtime, workloads

__version__ = "1.0.0"

__all__ = [
    "analysis",
    "baselines",
    "core",
    "codegen",
    "dependence",
    "ir",
    "isl",
    "runtime",
    "workloads",
    "__version__",
]
