"""Loop-nest IR nodes.

The reproduction works on a small intermediate representation of (possibly
imperfectly) nested DO loops with affine bounds and affine array subscripts —
the program model of §2 of the paper:

* :class:`Loop` — a normalized counted loop ``DO index = lower, upper`` whose
  bounds are affine expressions of outer loop indices and symbolic parameters,
  with a body of nested loops and statements.
* :class:`Statement` — a single assignment-style statement with one or more
  write references and read references to arrays, each an :class:`ArrayRef`
  with affine subscripts.
* :class:`ArrayRef` — a reference ``X[e_1, ..., e_d]`` with affine subscript
  expressions, convertible to the matrix form ``I·A + a`` used by the
  dependence equations.

The IR is deliberately minimal: it captures exactly the information the
dependence analysis and the partitioning algorithms consume, nothing more.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..isl.affine import AffineExpr

__all__ = ["ArrayRef", "Statement", "Loop", "Node"]


@dataclass(frozen=True)
class ArrayRef:
    """An affine array reference ``array[sub_1, ..., sub_d]``."""

    array: str
    subscripts: Tuple[AffineExpr, ...]

    @staticmethod
    def make(array: str, subscripts: Sequence) -> "ArrayRef":
        return ArrayRef(array, tuple(AffineExpr.from_any(s) for s in subscripts))

    @property
    def rank(self) -> int:
        """Number of array dimensions referenced."""
        return len(self.subscripts)

    def variables(self) -> Tuple[str, ...]:
        """Loop index variables occurring in the subscripts (in first-seen order)."""
        seen: List[str] = []
        for s in self.subscripts:
            for v in s.variables:
                if v not in seen:
                    seen.append(v)
        return tuple(seen)

    def coefficient_matrix(
        self, index_order: Sequence[str]
    ) -> Tuple[List[List[Fraction]], List[Fraction]]:
        """Return ``(A, a)`` such that the subscript vector equals ``i·A + a``.

        ``A`` has one row per loop index in ``index_order`` and one column per
        array dimension; ``a`` is the constant offset vector.  Symbols that are
        neither loop indices nor constants (i.e. parameters) are not allowed in
        subscripts for the matrix form and raise ``ValueError``.
        """
        rows = len(index_order)
        cols = len(self.subscripts)
        A = [[Fraction(0)] * cols for _ in range(rows)]
        a = [Fraction(0)] * cols
        index_pos = {name: k for k, name in enumerate(index_order)}
        for col, sub in enumerate(self.subscripts):
            a[col] = sub.constant
            for name, coeff in sub.coeffs:
                if name not in index_pos:
                    raise ValueError(
                        f"subscript {sub} of {self.array} uses symbol {name!r} "
                        f"outside the loop index order {tuple(index_order)}"
                    )
                A[index_pos[name]][col] = coeff
        return A, a

    def evaluate(self, env: Mapping[str, int]) -> Tuple[int, ...]:
        """Concrete subscript values under an iteration-point environment."""
        out = []
        for s in self.subscripts:
            v = s.evaluate(env)
            if v.denominator != 1:
                raise ValueError(f"non-integer subscript value {v} for {self}")
            out.append(int(v))
        return tuple(out)

    def __str__(self) -> str:
        return f"{self.array}({', '.join(str(s) for s in self.subscripts)})"


# Statement semantics: a callable (arrays, env, read_values) -> value written.
SemanticsFn = Callable[[Mapping[str, "object"], Mapping[str, int], Sequence[float]], float]


@dataclass(frozen=True)
class Statement:
    """An assignment statement with affine array references.

    ``writes`` and ``reads`` list the array references; ``label`` identifies the
    statement (used for statement-level partitioning and reporting).  The
    optional ``semantics`` callable defines the executable meaning of the
    statement for the runtime validators: it receives the array store, the
    iteration environment and the list of values read (in ``reads`` order) and
    returns the value to store through each write reference.  When omitted, an
    order-sensitive default is used (see :mod:`repro.ir.semantics`).
    """

    label: str
    writes: Tuple[ArrayRef, ...]
    reads: Tuple[ArrayRef, ...] = ()
    semantics: Optional[SemanticsFn] = field(default=None, compare=False)

    @staticmethod
    def assign(
        label: str,
        write: ArrayRef,
        reads: Sequence[ArrayRef] = (),
        semantics: Optional[SemanticsFn] = None,
    ) -> "Statement":
        return Statement(label, (write,), tuple(reads), semantics)

    def references(self) -> Tuple[ArrayRef, ...]:
        return self.writes + self.reads

    def arrays(self) -> Tuple[str, ...]:
        seen: List[str] = []
        for r in self.references():
            if r.array not in seen:
                seen.append(r.array)
        return tuple(seen)

    def __str__(self) -> str:
        w = ", ".join(str(r) for r in self.writes)
        r = ", ".join(str(r) for r in self.reads)
        return f"{self.label}: {w} = f({r})"


@dataclass(frozen=True)
class Loop:
    """A counted loop with affine bounds and a nested body.

    ``lower`` and ``upper`` are non-empty tuples of affine expressions: the
    loop runs from the *maximum* of the lower bounds to the *minimum* of the
    upper bounds, which models Fortran bounds like ``DO I = MAX(-M, -J), -1``
    and ``DO JJ = 1, MIN(M, N-K)`` exactly (both occur in the Cholesky
    kernel of Example 4 and in the paper's generated listings).
    """

    index: str
    lower: Tuple[AffineExpr, ...]
    upper: Tuple[AffineExpr, ...]
    body: Tuple["Node", ...] = ()
    stride: int = 1

    @staticmethod
    def make(index: str, lower, upper, body: Sequence["Node"] = (), stride: int = 1) -> "Loop":
        return Loop(
            index,
            _bound_tuple(lower),
            _bound_tuple(upper),
            tuple(body),
            stride,
        )

    @property
    def single_lower(self) -> AffineExpr:
        """The lower bound when it is a single expression (raises otherwise)."""
        if len(self.lower) != 1:
            raise ValueError(f"loop {self.index} has a MAX lower bound")
        return self.lower[0]

    @property
    def single_upper(self) -> AffineExpr:
        """The upper bound when it is a single expression (raises otherwise)."""
        if len(self.upper) != 1:
            raise ValueError(f"loop {self.index} has a MIN upper bound")
        return self.upper[0]

    def evaluate_bounds(self, env: Mapping[str, int]) -> Tuple[int, int]:
        """Concrete ``(lo, hi)`` bounds under an environment (MAX/MIN applied)."""
        lows = [b.evaluate(env) for b in self.lower]
        highs = [b.evaluate(env) for b in self.upper]
        for v in lows + highs:
            if v.denominator != 1:
                raise ValueError(f"non-integer bound value for loop {self.index}")
        return int(max(lows)), int(min(highs))

    def is_normalized(self) -> bool:
        """Unit-stride loops are "normalized" in the sense of §2."""
        return self.stride == 1

    def statements(self) -> List[Statement]:
        out: List[Statement] = []
        for node in self.body:
            if isinstance(node, Statement):
                out.append(node)
            else:
                out.extend(node.statements())
        return out

    def inner_loops(self) -> List["Loop"]:
        out: List[Loop] = []
        for node in self.body:
            if isinstance(node, Loop):
                out.append(node)
                out.extend(node.inner_loops())
        return out

    def __str__(self) -> str:
        lo = str(self.lower[0]) if len(self.lower) == 1 else "MAX(" + ", ".join(map(str, self.lower)) + ")"
        hi = str(self.upper[0]) if len(self.upper) == 1 else "MIN(" + ", ".join(map(str, self.upper)) + ")"
        head = f"DO {self.index} = {lo}, {hi}"
        if self.stride != 1:
            head += f", {self.stride}"
        return head


def _bound_tuple(value) -> Tuple[AffineExpr, ...]:
    """Coerce a bound specification into a non-empty tuple of affine expressions."""
    if isinstance(value, (list, tuple)):
        items = tuple(AffineExpr.from_any(v) for v in value)
    else:
        items = (AffineExpr.from_any(value),)
    if not items:
        raise ValueError("a loop bound needs at least one expression")
    return items


Node = Union[Loop, Statement]
