"""The :class:`LoopProgram` container and its static analysis helpers.

A :class:`LoopProgram` is a sequence of top-level IR nodes (loops and
statements) plus the symbolic parameters appearing in bounds (``N``, ``N1``,
``M``, ...) and the shapes of the arrays it touches.  It provides the
queries the partitioning algorithms need:

* the enclosing-loop chain and iteration domain of every statement,
* the iteration space Φ of a perfect nest (eq. 1),
* coupled reference pairs (the inputs of the dependence equation, eq. 2),
* sequential execution order of statement instances (used as the ground truth
  by the runtime validators).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from ..isl.affine import AffineExpr
from ..isl.convex import Constraint, ConvexSet
from .nodes import ArrayRef, Loop, Node, Statement

__all__ = ["LoopProgram", "StatementContext"]


@dataclass(frozen=True)
class StatementContext:
    """A statement together with its enclosing loops and syntactic position.

    ``position`` is the sequence of child indices from the program root down to
    the statement (used by the statement-level index mapping of §3.3) and
    ``loops`` is the chain of enclosing :class:`Loop` nodes, outermost first.
    """

    statement: Statement
    loops: Tuple[Loop, ...]
    position: Tuple[int, ...]

    @property
    def depth(self) -> int:
        return len(self.loops)

    @property
    def index_names(self) -> Tuple[str, ...]:
        return tuple(l.index for l in self.loops)

    def domain(self, parameters: Sequence[str] = ()) -> ConvexSet:
        """The iteration domain of this statement as a convex set."""
        cons: List[Constraint] = []
        for loop in self.loops:
            for lo in loop.lower:
                cons.append(Constraint.ge(AffineExpr.variable(loop.index), lo))
            for hi in loop.upper:
                cons.append(Constraint.le(AffineExpr.variable(loop.index), hi))
        return ConvexSet.from_constraints(self.index_names, cons, parameters)


@dataclass(frozen=True)
class LoopProgram:
    """A whole loop program: top-level nodes, parameters, and array shapes."""

    name: str
    body: Tuple[Node, ...]
    parameters: Tuple[str, ...] = ()
    array_shapes: Mapping[str, Tuple[int, ...]] = field(default_factory=dict)

    @staticmethod
    def single_nest(
        name: str,
        loops: Sequence[Loop],
        parameters: Sequence[str] = (),
        array_shapes: Optional[Mapping[str, Tuple[int, ...]]] = None,
    ) -> "LoopProgram":
        """Build a program from an outermost loop (already containing its body)."""
        return LoopProgram(
            name=name,
            body=tuple(loops),
            parameters=tuple(parameters),
            array_shapes=dict(array_shapes or {}),
        )

    # -- traversal -------------------------------------------------------------

    def statements(self) -> List[Statement]:
        return [ctx.statement for ctx in self.statement_contexts()]

    def statement_contexts(self) -> List[StatementContext]:
        """All statements with their enclosing loops, in syntactic order."""
        out: List[StatementContext] = []

        def walk(nodes: Sequence[Node], loops: Tuple[Loop, ...], pos: Tuple[int, ...]):
            for k, node in enumerate(nodes):
                if isinstance(node, Statement):
                    out.append(StatementContext(node, loops, pos + (k,)))
                else:
                    walk(node.body, loops + (node,), pos + (k,))

        walk(self.body, (), ())
        return out

    def loops(self) -> List[Loop]:
        """All loops in the program, outermost first, syntactic order."""
        out: List[Loop] = []

        def walk(nodes: Sequence[Node]):
            for node in nodes:
                if isinstance(node, Loop):
                    out.append(node)
                    walk(node.body)

        walk(self.body)
        return out

    def context_of(self, label: str) -> StatementContext:
        for ctx in self.statement_contexts():
            if ctx.statement.label == label:
                return ctx
        raise KeyError(f"no statement labelled {label!r}")

    def arrays(self) -> Tuple[str, ...]:
        seen: List[str] = []
        for s in self.statements():
            for a in s.arrays():
                if a not in seen:
                    seen.append(a)
        return tuple(seen)

    # -- shape / structure queries ----------------------------------------------

    def is_perfect_nest(self) -> bool:
        """True when the program is one perfectly nested loop with statements
        only at the innermost level."""
        if len(self.body) != 1 or not isinstance(self.body[0], Loop):
            return False
        node = self.body[0]
        while True:
            inner_loops = [n for n in node.body if isinstance(n, Loop)]
            stmts = [n for n in node.body if isinstance(n, Statement)]
            if len(inner_loops) == 0:
                return len(stmts) >= 1
            if len(inner_loops) == 1 and not stmts:
                node = inner_loops[0]
                continue
            return False

    def perfect_nest_loops(self) -> List[Loop]:
        """The loop chain of a perfect nest (raises if the nest is imperfect)."""
        if not self.is_perfect_nest():
            raise ValueError(f"program {self.name!r} is not a perfect loop nest")
        chain: List[Loop] = []
        node = self.body[0]
        while isinstance(node, Loop):
            chain.append(node)
            inner = [n for n in node.body if isinstance(n, Loop)]
            if not inner:
                break
            node = inner[0]
        return chain

    def index_names(self) -> Tuple[str, ...]:
        """Loop index names of a perfect nest, outermost first."""
        return tuple(l.index for l in self.perfect_nest_loops())

    # -- iteration space ---------------------------------------------------------

    def iteration_space(self) -> ConvexSet:
        """The iteration space Φ of a perfect nest (eq. 1) as a convex set."""
        loops = self.perfect_nest_loops()
        cons: List[Constraint] = []
        names = tuple(l.index for l in loops)
        for loop in loops:
            if not loop.is_normalized():
                raise ValueError(
                    f"loop {loop.index} has stride {loop.stride}; normalize first"
                )
            for lo in loop.lower:
                cons.append(Constraint.ge(AffineExpr.variable(loop.index), lo))
            for hi in loop.upper:
                cons.append(Constraint.le(AffineExpr.variable(loop.index), hi))
        return ConvexSet.from_constraints(names, cons, self.parameters)

    def iteration_space_bound(self, params: Mapping[str, int]) -> ConvexSet:
        """Iteration space with parameters substituted by concrete values."""
        return self.iteration_space().bind_parameters(params)

    # -- reference pairs -----------------------------------------------------------

    def reference_pairs(self) -> List[Tuple[StatementContext, ArrayRef, StatementContext, ArrayRef]]:
        """All ordered pairs of references to the same array where at least one
        is a write (the candidate dependence equations of eq. 2)."""
        pairs = []
        contexts = self.statement_contexts()
        for ctx1 in contexts:
            for ctx2 in contexts:
                for w in ctx1.statement.writes:
                    for other in ctx2.statement.writes + ctx2.statement.reads:
                        if w.array != other.array:
                            continue
                        # The pair of a write reference with itself is kept:
                        # different iterations instantiating the same write can
                        # still touch the same element (output dependences);
                        # the exact analyser excludes the identical-iteration
                        # solutions.
                        pairs.append((ctx1, w, ctx2, other))
        return pairs

    def coupled_reference_pairs(self) -> List[Tuple[StatementContext, ArrayRef, StatementContext, ArrayRef]]:
        """Reference pairs whose subscripts actually share loop indices.

        The paper calls subscripts *coupled* when loop index variables appear
        in both references of the pair (potentially in several dimensions);
        uncoupled pairs cannot produce loop-carried dependences of interest.
        """
        out = []
        for ctx1, r1, ctx2, r2 in self.reference_pairs():
            if set(r1.variables()) or set(r2.variables()):
                out.append((ctx1, r1, ctx2, r2))
        return out

    # -- sequential order -----------------------------------------------------------

    def sequential_iterations(self, params: Mapping[str, int]) -> List[Tuple[str, Tuple[int, ...]]]:
        """The full sequential execution order of statement instances.

        Returns ``(statement label, iteration vector)`` pairs in program order —
        the ground truth used by executors and validators.  Loop bounds are
        evaluated with the given parameter values; non-rectangular (triangular)
        bounds are handled because bounds may reference outer indices.
        """
        schedule: List[Tuple[str, Tuple[int, ...]]] = []

        def run(nodes: Sequence[Node], env: Dict[str, int], ivec: Tuple[int, ...]):
            for node in nodes:
                if isinstance(node, Statement):
                    schedule.append((node.label, ivec))
                else:
                    lo, hi = node.evaluate_bounds({**params, **env})
                    step = node.stride
                    values = range(lo, hi + (1 if step > 0 else -1), step)
                    for value in values:
                        env2 = dict(env)
                        env2[node.index] = value
                        run(node.body, env2, ivec + (value,))

        run(self.body, {}, ())
        return schedule

    def __str__(self) -> str:
        lines = [f"program {self.name}"]

        def emit(nodes: Sequence[Node], indent: int):
            for node in nodes:
                if isinstance(node, Statement):
                    lines.append("  " * indent + str(node))
                else:
                    lines.append("  " * indent + str(node))
                    emit(node.body, indent + 1)
                    lines.append("  " * indent + "ENDDO")

        emit(self.body, 1)
        return "\n".join(lines)
