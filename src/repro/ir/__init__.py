"""repro.ir — the loop-nest intermediate representation.

Programs are (possibly imperfectly) nested normalized DO loops with affine
bounds, containing assignment statements with affine array references — the
program model of §2 of the paper.  See :mod:`repro.ir.nodes` for the node
types, :mod:`repro.ir.builder` for the convenient construction helpers used by
the workload definitions, :mod:`repro.ir.normalize` for stride normalization
and :mod:`repro.ir.validate` for well-formedness checking.
"""

from .builder import E, aref, assign, loop, parse_affine, program
from .nodes import ArrayRef, Loop, Node, Statement
from .normalize import is_normalized, normalize_loop, normalize_program
from .program import LoopProgram, StatementContext
from .semantics import DEFAULT_SEMANTICS, order_sensitive_semantics, sum_semantics
from .validate import ValidationError, check_program, validate_program

__all__ = [
    "ArrayRef",
    "Statement",
    "Loop",
    "Node",
    "LoopProgram",
    "StatementContext",
    "E",
    "aref",
    "assign",
    "loop",
    "program",
    "parse_affine",
    "normalize_program",
    "normalize_loop",
    "is_normalized",
    "validate_program",
    "check_program",
    "ValidationError",
    "DEFAULT_SEMANTICS",
    "order_sensitive_semantics",
    "sum_semantics",
]
