"""Loop normalization.

The program model of §2 assumes every loop has been *normalized* to a unit
stride.  Real kernels (e.g. the Cholesky back-substitution loop
``DO K = N, 0, -1``) do not arrive that way, so this pass rewrites

    DO i = L, U, s          (s != 0)

into

    DO i' = 1, count        (count = floor((U - L)/s) + 1)

substituting ``i := L + (i' - 1) * s`` in every nested bound and subscript.
Negative strides are handled the same way — the substitution reverses the
traversal direction, which preserves the *set* of iterations.  Reversal
changes the sequential execution order, so callers that care about original
ordering (all the partitioners do) must run dependence analysis on the
normalized program, which is exactly what the pipeline does.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..isl.affine import AffineExpr
from .nodes import ArrayRef, Loop, Node, Statement
from .program import LoopProgram

__all__ = ["normalize_program", "normalize_loop", "is_normalized"]


def is_normalized(prog: LoopProgram) -> bool:
    """True when every loop in the program has stride 1."""
    return all(l.stride == 1 for l in prog.loops())


def normalize_loop(node: Loop, substitution: Dict[str, AffineExpr]) -> Loop:
    """Normalize one loop (and, recursively, its body)."""
    lower = tuple(b.substitute(substitution) for b in node.lower)
    upper = tuple(b.substitute(substitution) for b in node.upper)
    stride = node.stride
    if stride == 0:
        raise ValueError(f"loop {node.index} has zero stride")
    if stride == 1:
        new_body = _normalize_body(node.body, substitution)
        return Loop(node.index, lower, upper, new_body, 1)

    # i runs L, L+s, ..., so with i' = 1..count we substitute i = L + (i'-1)*s.
    # The count uses integer floor division of (U - L) / s which is affine only
    # when (U - L) is a constant; for symbolic bounds we keep the exact rational
    # expression (the workloads that need normalization have constant bounds).
    if len(lower) != 1 or len(upper) != 1:
        raise ValueError(
            f"cannot normalize loop {node.index}: MIN/MAX bounds with non-unit stride"
        )
    span = upper[0] - lower[0]
    if not span.is_constant():
        raise ValueError(
            f"cannot normalize loop {node.index} with symbolic non-unit stride bounds"
        )
    count = int(span.constant) // stride + 1
    if count < 0:
        count = 0
    new_index = node.index
    replacement = lower[0] + AffineExpr.variable(new_index) * stride - stride
    inner_subst = dict(substitution)
    inner_subst[node.index] = replacement
    new_body = _normalize_body(node.body, inner_subst)
    return Loop(
        new_index,
        (AffineExpr.constant_expr(1),),
        (AffineExpr.constant_expr(count),),
        new_body,
        1,
    )


def _normalize_body(body: Sequence[Node], substitution: Dict[str, AffineExpr]) -> Tuple[Node, ...]:
    out: List[Node] = []
    for node in body:
        if isinstance(node, Statement):
            out.append(_substitute_statement(node, substitution))
        else:
            out.append(normalize_loop(node, substitution))
    return tuple(out)


def _substitute_statement(stmt: Statement, substitution: Dict[str, AffineExpr]) -> Statement:
    if not substitution:
        return stmt

    def fix(ref: ArrayRef) -> ArrayRef:
        return ArrayRef(ref.array, tuple(s.substitute(substitution) for s in ref.subscripts))

    return Statement(
        stmt.label,
        tuple(fix(r) for r in stmt.writes),
        tuple(fix(r) for r in stmt.reads),
        stmt.semantics,
    )


def normalize_program(prog: LoopProgram) -> LoopProgram:
    """Normalize every loop of the program to unit stride."""
    new_body = _normalize_body(prog.body, {})
    return LoopProgram(
        name=prog.name,
        body=new_body,
        parameters=prog.parameters,
        array_shapes=dict(prog.array_shapes),
    )
