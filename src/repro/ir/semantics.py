"""Executable statement semantics used by the runtime validators.

The partitioning schemes are *semantics preserving* transformations: any
schedule they produce must compute exactly the same array contents as the
original sequential loop.  To test that, every statement needs an executable
meaning.  Two standard semantics are provided:

* :func:`order_sensitive_semantics` (the default) — the written value is a
  non-commutative, order-sensitive integer function of the values read and of
  the iteration vector.  If a schedule executes two dependent iterations in
  the wrong order, or misses/duplicates an iteration, the final array contents
  differ from the sequential run with overwhelming probability, so the
  validator catches the bug.
* :func:`sum_semantics` — a simple accumulating semantics for benchmarks where
  raw arithmetic throughput matters more than detection strength.
* :func:`compute_heavy_semantics` — the order-sensitive mixing iterated for a
  fixed number of rounds, giving each statement instance a realistic amount of
  per-point compute.  The interpreter's per-instance dispatch is a few
  microseconds — far below the paper's real loop bodies — which makes runtime
  *overheads* dominate any executor measurement; the process-backend
  benchmarks use this kernel so the measured speedup reflects the schedule's
  parallelism rather than dispatch cost.  Module-level (and deliberately
  closure-free) so it pickles under every multiprocessing start method.

Both are pure functions of their arguments; all arithmetic is integer so the
comparison against the sequential reference is exact (no floating point
tolerance games).
"""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = [
    "order_sensitive_semantics",
    "sum_semantics",
    "compute_heavy_semantics",
    "COMPUTE_HEAVY_ROUNDS",
    "DEFAULT_SEMANTICS",
]

# A large prime keeps the mixed values bounded while preserving the
# "different order => different value" property with high probability.
_MODULUS = 2_147_483_647  # 2^31 - 1 (Mersenne prime)


def order_sensitive_semantics(
    arrays: Mapping[str, object],
    env: Mapping[str, int],
    read_values: Sequence[int],
) -> int:
    """Order-sensitive integer mixing of the read values and iteration vector.

    The value depends on the *sequence* of updates that produced the read
    values (multiplication by 31 chains them non-commutatively with the
    iteration contribution), which is what makes ordering violations visible.
    """
    acc = 17
    for v in read_values:
        # Multiply the read value into the accumulator (coefficient != 1) so
        # that chaining two updates in different orders cannot cancel out.
        acc = (31 * (acc + int(v))) % _MODULUS
    for k, name in enumerate(sorted(env)):
        acc = (acc + (k + 2) * int(env[name])) % _MODULUS
    return acc


def sum_semantics(
    arrays: Mapping[str, object],
    env: Mapping[str, int],
    read_values: Sequence[int],
) -> int:
    """Accumulating semantics: written value = sum of reads + 1."""
    return int(sum(int(v) for v in read_values) + 1)


#: Mixing rounds of :func:`compute_heavy_semantics` — sized so one instance
#: costs tens of microseconds of pure-Python integer arithmetic (roughly the
#: work of a small real loop body under the interpreter).
COMPUTE_HEAVY_ROUNDS = 250


def compute_heavy_semantics(
    arrays: Mapping[str, object],
    env: Mapping[str, int],
    read_values: Sequence[int],
) -> int:
    """Order-sensitive mixing iterated :data:`COMPUTE_HEAVY_ROUNDS` times.

    Same detection property as :func:`order_sensitive_semantics` (the first
    round *is* that function's chain), then keeps mixing the accumulator so
    each statement instance performs a fixed, compute-bound amount of work.
    Deterministic, integer-exact, and picklable (module-level, no closure):
    the exact-equality validation story is unchanged, only the per-instance
    cost grows.
    """
    acc = 17
    for v in read_values:
        acc = (31 * (acc + int(v))) % _MODULUS
    for k, name in enumerate(sorted(env)):
        acc = (acc + (k + 2) * int(env[name])) % _MODULUS
    for _ in range(COMPUTE_HEAVY_ROUNDS):
        acc = (31 * acc + 7) % _MODULUS
    return acc


DEFAULT_SEMANTICS = order_sensitive_semantics
