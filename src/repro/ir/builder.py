"""Convenience builders and a tiny affine-expression parser.

Workload definitions read much better as::

    loop("I1", 1, "N1",
        loop("I2", 1, "N2",
            assign("s", aref("a", "3*I1+1", "2*I1+I2-1"),
                        [aref("a", "I1+3", "I2+1")])))

than as nested dataclass constructors, so this module provides:

* :func:`parse_affine` — parse strings like ``"2*I1+I2-1"`` or ``"N-3"`` into
  :class:`~repro.isl.affine.AffineExpr` (integers, identifiers, ``+ - *`` and
  parentheses; multiplication must involve at least one constant factor so
  that the result stays affine),
* :func:`aref`, :func:`assign`, :func:`loop`, :func:`program` — thin wrappers
  over the IR node constructors that accept strings anywhere an affine
  expression is expected.
"""

from __future__ import annotations

import re
from fractions import Fraction
from typing import List, Mapping, Optional, Sequence, Tuple, Union

from ..isl.affine import AffineExpr
from .nodes import ArrayRef, Loop, Node, Statement
from .program import LoopProgram

__all__ = ["parse_affine", "aref", "assign", "loop", "program", "E"]

_TOKEN_RE = re.compile(r"\s*(?:(\d+)|([A-Za-z_][A-Za-z_0-9]*)|(.))")


class _Parser:
    """Recursive-descent parser for affine expressions."""

    def __init__(self, text: str):
        self.tokens: List[Tuple[str, str]] = []
        pos = 0
        while pos < len(text):
            m = _TOKEN_RE.match(text, pos)
            if not m:
                break
            pos = m.end()
            if m.group(1):
                self.tokens.append(("int", m.group(1)))
            elif m.group(2):
                self.tokens.append(("name", m.group(2)))
            else:
                ch = m.group(3)
                if ch.strip():
                    self.tokens.append(("op", ch))
        self.pos = 0
        self.text = text

    def peek(self) -> Optional[Tuple[str, str]]:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def next(self) -> Tuple[str, str]:
        tok = self.peek()
        if tok is None:
            raise ValueError(f"unexpected end of expression in {self.text!r}")
        self.pos += 1
        return tok

    def expect(self, value: str) -> None:
        tok = self.next()
        if tok[1] != value:
            raise ValueError(f"expected {value!r}, found {tok[1]!r} in {self.text!r}")

    # grammar: expr := term (('+'|'-') term)* ;  term := factor ('*' factor)* ;
    #          factor := int | name | '-' factor | '(' expr ')'

    def parse(self) -> AffineExpr:
        result = self.expr()
        if self.peek() is not None:
            raise ValueError(f"trailing input in affine expression {self.text!r}")
        return result

    def expr(self) -> AffineExpr:
        value = self.term()
        while True:
            tok = self.peek()
            if tok and tok[0] == "op" and tok[1] in "+-":
                self.next()
                rhs = self.term()
                value = value + rhs if tok[1] == "+" else value - rhs
            else:
                return value

    def term(self) -> AffineExpr:
        value = self.factor()
        while True:
            tok = self.peek()
            if tok and tok[0] == "op" and tok[1] == "*":
                self.next()
                rhs = self.factor()
                value = _affine_mul(value, rhs, self.text)
            else:
                return value

    def factor(self) -> AffineExpr:
        tok = self.next()
        if tok[0] == "int":
            return AffineExpr.constant_expr(int(tok[1]))
        if tok[0] == "name":
            return AffineExpr.variable(tok[1])
        if tok == ("op", "-"):
            return -self.factor()
        if tok == ("op", "+"):
            return self.factor()
        if tok == ("op", "("):
            inner = self.expr()
            self.expect(")")
            return inner
        raise ValueError(f"unexpected token {tok[1]!r} in affine expression {self.text!r}")


def _affine_mul(a: AffineExpr, b: AffineExpr, text: str) -> AffineExpr:
    if a.is_constant():
        return b * a.constant
    if b.is_constant():
        return a * b.constant
    raise ValueError(f"non-affine product in expression {text!r}")


def parse_affine(text: Union[str, int, Fraction, AffineExpr]) -> AffineExpr:
    """Parse a string into an affine expression (pass-through for non-strings)."""
    if isinstance(text, AffineExpr):
        return text
    if isinstance(text, (int, Fraction)):
        return AffineExpr.constant_expr(text)
    return _Parser(str(text)).parse()


# Short alias used pervasively in the workload definitions.
E = parse_affine


def aref(array: str, *subscripts) -> ArrayRef:
    """Build an :class:`ArrayRef`, parsing string subscripts."""
    return ArrayRef(array, tuple(parse_affine(s) for s in subscripts))


def assign(
    label: str,
    write: ArrayRef,
    reads: Sequence[ArrayRef] = (),
    semantics=None,
) -> Statement:
    """Build an assignment statement ``write = f(reads)``."""
    return Statement(label, (write,), tuple(reads), semantics)


def loop(index: str, lower, upper, *body: Node, stride: int = 1) -> Loop:
    """Build a loop node, parsing string bounds.

    ``lower``/``upper`` may be a single bound or a list/tuple of bounds — a
    list lower bound means ``MAX(...)``, a list upper bound means ``MIN(...)``.
    """
    def bounds(value):
        if isinstance(value, (list, tuple)):
            return tuple(parse_affine(v) for v in value)
        return (parse_affine(value),)

    return Loop(index, bounds(lower), bounds(upper), tuple(body), stride)


def program(
    name: str,
    *body: Node,
    parameters: Sequence[str] = (),
    array_shapes: Optional[Mapping[str, Tuple[int, ...]]] = None,
) -> LoopProgram:
    """Build a :class:`LoopProgram` from top-level nodes."""
    return LoopProgram(
        name=name,
        body=tuple(body),
        parameters=tuple(parameters),
        array_shapes=dict(array_shapes or {}),
    )
