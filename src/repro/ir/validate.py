"""Static well-formedness checks for loop programs.

Running the partitioners on a malformed program produces confusing downstream
errors (e.g. a subscript mentioning an index of a *sibling* loop would silently
yield an empty coefficient matrix).  :func:`validate_program` catches these
early and reports every problem at once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Set

from .nodes import ArrayRef, Loop, Statement
from .program import LoopProgram

__all__ = ["ValidationError", "validate_program", "check_program"]


@dataclass(frozen=True)
class ValidationError:
    """One validation finding: where and what."""

    where: str
    message: str

    def __str__(self) -> str:
        return f"{self.where}: {self.message}"


def validate_program(prog: LoopProgram) -> List[ValidationError]:
    """Return the list of validation findings (empty list == well formed)."""
    errors: List[ValidationError] = []
    params = set(prog.parameters)

    # 1. unique statement labels
    seen_labels: Set[str] = set()
    for stmt in prog.statements():
        if stmt.label in seen_labels:
            errors.append(ValidationError(stmt.label, "duplicate statement label"))
        seen_labels.add(stmt.label)

    # 2. unique loop indices along each nesting path; bounds only use outer symbols
    def walk(nodes, enclosing: List[Loop]):
        enclosing_names = [l.index for l in enclosing]
        for node in nodes:
            if isinstance(node, Loop):
                where = f"loop {node.index}"
                if node.index in enclosing_names:
                    errors.append(ValidationError(where, "re-uses an enclosing loop index"))
                if node.stride == 0:
                    errors.append(ValidationError(where, "zero stride"))
                allowed = set(enclosing_names) | params
                for side, exprs in (("lower", node.lower), ("upper", node.upper)):
                    for expr in exprs:
                        bad = [v for v in expr.variables if v not in allowed]
                        if bad:
                            errors.append(
                                ValidationError(
                                    where,
                                    f"{side} bound {expr} uses symbols {bad} that are neither "
                                    f"outer loop indices nor parameters",
                                )
                            )
                walk(node.body, enclosing + [node])
            else:
                _check_statement(node, enclosing_names, params, errors, prog)

    walk(prog.body, [])
    return errors


def _check_statement(
    stmt: Statement,
    enclosing_names: Sequence[str],
    params: Set[str],
    errors: List[ValidationError],
    prog: LoopProgram,
) -> None:
    where = f"statement {stmt.label}"
    if not stmt.writes:
        errors.append(ValidationError(where, "statement has no write reference"))
    allowed = set(enclosing_names) | params
    for ref in stmt.writes + stmt.reads:
        for sub in ref.subscripts:
            bad = [v for v in sub.variables if v not in allowed]
            if bad:
                errors.append(
                    ValidationError(
                        where,
                        f"subscript {sub} of {ref.array} uses symbols {bad} that are "
                        f"neither enclosing loop indices nor parameters",
                    )
                )
            if not sub.is_integral():
                errors.append(
                    ValidationError(
                        where, f"subscript {sub} of {ref.array} has non-integer coefficients"
                    )
                )
    # 3. consistent array ranks, and shapes when declared
    for ref in stmt.writes + stmt.reads:
        shape = prog.array_shapes.get(ref.array)
        if shape is not None and len(shape) != ref.rank:
            errors.append(
                ValidationError(
                    where,
                    f"{ref.array} is declared with {len(shape)} dimensions but "
                    f"referenced with {ref.rank} subscripts",
                )
            )


def check_program(prog: LoopProgram) -> None:
    """Raise ``ValueError`` with all findings when the program is malformed."""
    errors = validate_program(prog)
    if errors:
        details = "\n  ".join(str(e) for e in errors)
        raise ValueError(f"invalid loop program {prog.name!r}:\n  {details}")
