"""Shared-memory array stores for the ``process`` execution backend.

The process backend (see :mod:`repro.runtime.process`) must give several
worker processes *shared mutable* access to the program's arrays — the same
memory behaviour the paper's OpenMP runs have — without pickling array
contents back and forth.  This module provides the layout layer:

* :class:`ArrayDescriptor` — one array's placement inside the segment, the
  ``(name, shape, dtype, offset)`` quadruple that is the *only* thing shipped
  to a worker about an array (a few dozen bytes, never the data);
* :class:`SharedArrayStore` — all arrays of a store packed into **one**
  ``multiprocessing.shared_memory`` segment.  The creating side copies the
  initial contents in and owns the segment's lifetime (``unlink``); workers
  :meth:`attach` once by segment name and build numpy views straight onto the
  shared buffer, so every element written by any process is immediately
  visible to all of them.

Layout: arrays are packed in sorted-name order, each offset aligned to
:data:`ALIGNMENT` bytes (cache-line aligned, and safe for any numpy dtype).
The descriptor table is computed once by the creator and shipped to workers
verbatim — both sides derive their views from the same quadruples, so there
is no schema to keep in sync.
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Dict, Mapping, Optional, Tuple

import numpy as np

__all__ = ["ALIGNMENT", "ArrayDescriptor", "SharedArrayStore", "shared_memory_unavailable_reason"]

#: Per-array alignment inside the segment (one cache line).
ALIGNMENT = 64


@dataclass(frozen=True)
class ArrayDescriptor:
    """Where one array lives inside the shared segment.

    ``dtype`` is the numpy dtype string (``"int64"``), not the dtype object,
    so the descriptor pickles to a few bytes and is stable across processes.
    """

    name: str
    shape: Tuple[int, ...]
    dtype: str
    offset: int

    @property
    def nbytes(self) -> int:
        return int(np.prod(self.shape, dtype=np.int64)) * np.dtype(self.dtype).itemsize


def _align(offset: int) -> int:
    return (offset + ALIGNMENT - 1) // ALIGNMENT * ALIGNMENT


def _layout(store: Mapping[str, np.ndarray]) -> Tuple[Tuple[ArrayDescriptor, ...], int]:
    """Pack the store's arrays into descriptors; returns (table, total bytes)."""
    table = []
    offset = 0
    for name in sorted(store):
        arr = np.ascontiguousarray(store[name])
        offset = _align(offset)
        table.append(
            ArrayDescriptor(
                name=name,
                shape=tuple(int(d) for d in arr.shape),
                dtype=arr.dtype.str,
                offset=offset,
            )
        )
        offset += arr.nbytes
    return tuple(table), max(offset, 1)


def _views(
    buf: memoryview, table: Tuple[ArrayDescriptor, ...]
) -> Dict[str, np.ndarray]:
    """Numpy views onto the shared buffer, one per descriptor."""
    views: Dict[str, np.ndarray] = {}
    for d in table:
        views[d.name] = np.ndarray(
            d.shape, dtype=np.dtype(d.dtype), buffer=buf, offset=d.offset
        )
    return views


class SharedArrayStore:
    """A ``name -> numpy array`` store backed by one shared-memory segment.

    Create with :meth:`from_store` (copies the initial contents in and owns
    the segment) or :meth:`attach` (a worker mapping an existing segment by
    name; never owns it).  :attr:`arrays` are writable numpy views onto the
    shared buffer — mutations are visible to every attached process with no
    copying or pickling.
    """

    def __init__(
        self,
        shm: shared_memory.SharedMemory,
        descriptors: Tuple[ArrayDescriptor, ...],
        owner: bool,
    ):
        self._shm = shm
        self.descriptors = tuple(descriptors)
        self.owner = owner
        self._closed = False
        self._unlinked = False
        self.arrays: Dict[str, np.ndarray] = _views(shm.buf, self.descriptors)

    # -- construction -----------------------------------------------------------

    @classmethod
    def from_store(cls, store: Mapping[str, np.ndarray]) -> "SharedArrayStore":
        """Create a segment sized for ``store`` and copy its contents in."""
        table, total = _layout(store)
        shm = shared_memory.SharedMemory(create=True, size=total)
        out = cls(shm, table, owner=True)
        for name, arr in store.items():
            out.arrays[name][...] = arr
        return out

    @classmethod
    def attach(
        cls, shm_name: str, descriptors: Tuple[ArrayDescriptor, ...]
    ) -> "SharedArrayStore":
        """Map an existing segment by name (the worker side; attach once).

        The mapping is deliberately *not* resource-tracked: the creating side
        owns the segment's lifetime.  If attaching workers registered it too,
        a worker with its own tracker would warn about (and try to unlink)
        segments the owner already destroyed, while a worker sharing the
        parent's forked tracker would — worse — have its per-attach
        ``unregister`` erase the *owner's* registration.  Python 3.13 has
        ``track=False`` for exactly this; on older versions registration is
        suppressed during the ``SharedMemory`` constructor call.
        """
        try:
            shm = shared_memory.SharedMemory(name=shm_name, track=False)
        except TypeError:  # pragma: no cover - Python < 3.13
            from multiprocessing import resource_tracker

            original_register = resource_tracker.register
            resource_tracker.register = lambda *args, **kwargs: None
            try:
                shm = shared_memory.SharedMemory(name=shm_name)
            finally:
                resource_tracker.register = original_register
        return cls(shm, descriptors, owner=False)

    # -- the wire-format identity of the store ----------------------------------

    @property
    def shm_name(self) -> str:
        return self._shm.name

    def copy_out(self, into: Optional[Dict[str, np.ndarray]] = None) -> Dict[str, np.ndarray]:
        """Copy every array out of shared memory.

        ``into`` (when given) receives the contents in place — the process
        backend uses this to fill the caller's original store, preserving the
        other backends' mutate-the-given-store contract.
        """
        if into is None:
            return {name: arr.copy() for name, arr in self.arrays.items()}
        for name, arr in self.arrays.items():
            into[name][...] = arr
        return into

    # -- lifetime ---------------------------------------------------------------

    def close(self) -> None:
        """Drop this process's mapping (views become invalid).  Idempotent —
        crash-cleanup paths may run it after a normal teardown already did."""
        if self._closed:
            return
        self._closed = True
        self.arrays = {}
        self._shm.close()

    def unlink(self) -> None:
        """Destroy the segment (owner only; call after every worker closed).

        Idempotent, and tolerant of the segment already being gone — the
        ``try/finally`` teardown paths in :mod:`repro.runtime.process` must be
        able to call this unconditionally without masking the original error.
        """
        if not self.owner or self._unlinked:
            return
        self._unlinked = True
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already destroyed
            pass

    def __enter__(self) -> "SharedArrayStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
        if self.owner:
            self.unlink()

    def __repr__(self) -> str:
        return (
            f"SharedArrayStore({self.shm_name!r}, {len(self.descriptors)} arrays, "
            f"{'owner' if self.owner else 'attached'})"
        )


def shared_memory_unavailable_reason() -> Optional[str]:
    """``None`` when POSIX shared memory works here, else a human reason.

    Probes by creating (and immediately destroying) a tiny segment — the only
    reliable check for a missing or unwritable ``/dev/shm``.
    """
    try:
        probe = shared_memory.SharedMemory(create=True, size=8)
    except Exception as exc:  # pragma: no cover - environment dependent
        return f"shared memory unavailable: {exc}"
    probe.close()
    probe.unlink()
    return None
