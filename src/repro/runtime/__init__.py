"""repro.runtime — executing, simulating and measuring partitioned schedules.

* :mod:`repro.runtime.executor` — sequential reference execution, schedule
  execution with shuffled intra-phase order, exact semantic validation;
* :mod:`repro.runtime.threaded` — real thread-pool execution with phase
  barriers (correctness under true concurrency);
* :mod:`repro.runtime.simulator` — the deterministic SMP cost model behind the
  figure-3 speedup reproductions;
* :mod:`repro.runtime.metrics` — parallelism metrics, speedup tables and
  scheme comparisons.
"""

from .executor import (
    ArrayStore,
    ValidationReport,
    execute_schedule,
    execute_sequential,
    make_store,
    validate_schedule,
)
from .metrics import SpeedupTable, compare_schemes, crossover_points, schedule_parallelism
from .simulator import CostModel, SimulationResult, simulate_schedule, speedup_curve
from .threaded import ThreadedRun, execute_schedule_threaded

__all__ = [
    "ArrayStore",
    "make_store",
    "execute_sequential",
    "execute_schedule",
    "validate_schedule",
    "ValidationReport",
    "execute_schedule_threaded",
    "ThreadedRun",
    "CostModel",
    "SimulationResult",
    "simulate_schedule",
    "speedup_curve",
    "SpeedupTable",
    "compare_schemes",
    "crossover_points",
    "schedule_parallelism",
]
