"""repro.runtime — executing, simulating and measuring partitioned schedules.

* :mod:`repro.runtime.backends` — the **execution-backend registry**: one
  :func:`~repro.runtime.backends.execute` entry point over the registered
  ``serial`` / ``threaded`` / ``process`` / ``simulated`` backends, all
  returning a unified :class:`~repro.runtime.backends.RunResult`;
* :mod:`repro.runtime.executor` — sequential reference execution, exact
  semantic validation, and the historical ``execute_schedule`` shim;
* :mod:`repro.runtime.threaded` — the thread-pool backend (correctness under
  true concurrency) and the historical ``execute_schedule_threaded`` shim;
* :mod:`repro.runtime.process` / :mod:`repro.runtime.shm` — the
  shared-memory process pool: arrays in one ``multiprocessing.shared_memory``
  segment, attach-once workers, phase barriers — wall-clock speedups on
  multi-core hosts;
* :mod:`repro.runtime.simulator` — the deterministic SMP cost model behind the
  figure-3 speedup reproductions;
* :mod:`repro.runtime.metrics` — parallelism metrics, speedup tables and
  scheme comparisons, plus :func:`~repro.runtime.metrics.run_metrics` /
  :func:`~repro.runtime.metrics.measured_speedups` over RunResults.
"""

from .backends import (
    BackendUnavailable,
    ExecConfig,
    ExecutionBackend,
    PhaseStats,
    RunResult,
    backend_names,
    backend_table,
    execute,
    get_backend,
    register_backend,
)
from .executor import (
    ArrayStore,
    ValidationReport,
    execute_schedule,
    execute_sequential,
    make_store,
    validate_schedule,
)
from .metrics import (
    SpeedupTable,
    compare_schemes,
    crossover_points,
    measured_speedups,
    run_metrics,
    schedule_parallelism,
)
from .simulator import CostModel, SimulationResult, simulate_schedule, speedup_curve
from .threaded import ThreadedRun, execute_schedule_threaded

__all__ = [
    "ArrayStore",
    "make_store",
    "execute_sequential",
    "execute_schedule",
    "validate_schedule",
    "ValidationReport",
    "execute",
    "ExecConfig",
    "ExecutionBackend",
    "PhaseStats",
    "RunResult",
    "BackendUnavailable",
    "register_backend",
    "get_backend",
    "backend_names",
    "backend_table",
    "execute_schedule_threaded",
    "ThreadedRun",
    "CostModel",
    "SimulationResult",
    "simulate_schedule",
    "speedup_curve",
    "SpeedupTable",
    "compare_schemes",
    "crossover_points",
    "run_metrics",
    "measured_speedups",
    "schedule_parallelism",
]
