"""The shared-memory process pool behind the ``process`` execution backend.

This is the executor the ROADMAP asked for: real wall-clock parallelism for
the phase/barrier schedules.  :mod:`repro.runtime.threaded` proves
*correctness* under concurrency but the GIL serialises the Python statement
interpreter; here each phase's work is executed by a pool of **processes**
sharing the program's arrays through one ``multiprocessing.shared_memory``
segment (see :mod:`repro.runtime.shm`), so DOALL phases genuinely overlap on
multi-core hosts while keeping the shared-mutable-array semantics the paper's
OpenMP runs have.

Protocol (attach per store, barrier per phase):

1. the parent starts ``workers`` persistent processes, handing each only the
   program (statement contexts are rebuilt worker-side) — workers outlive any
   particular store, which is what lets a serving daemon keep one pool warm
   across many requests (:mod:`repro.serving`);
2. per store, the parent packs the arrays into a
   :class:`~repro.runtime.shm.SharedArrayStore` and broadcasts an ``attach``
   control message carrying only the segment *name* and the ``(name, shape,
   dtype, offset)`` descriptor table; each worker maps the segment **once**
   and builds numpy views onto the shared buffer (an internal barrier makes
   every worker consume exactly one control message);
3. per phase, the parent ships each worker one strided slice of the phase's
   rows — an :class:`~repro.core.schedule.ArrayPhase` point slice, a
   :class:`~repro.core.schedule.UnifiedArrayPhase` ``(stmt_ids, rows)`` slice,
   or a CSR-encoded slice of a unit phase's chains — as plain int64 arrays
   (slice-level messages, never per-point objects);
4. the parent collects one acknowledgement per shipped task before moving to
   the next phase — exactly the barrier of the generated code — and finally
   copies the shared arrays back into the caller's store, broadcasts
   ``detach`` and unlinks the segment.  The attach/detach lifetime is wrapped
   in ``try/finally`` on the owner, so a worker crash mid-phase can never
   leak the segment.

Worker assignment within a phase is first-come-first-served off a single
queue; a partition-derived schedule is race-free inside a phase, so any
assignment produces the sequential result bit for bit.
"""

from __future__ import annotations

import multiprocessing as mp
import queue as queue_module
import time
import traceback
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.schedule import ArrayPhase, UnifiedArrayPhase
from ..ir.program import LoopProgram
from .executor import _execute_instance_env
from .shm import ArrayDescriptor, SharedArrayStore

__all__ = ["ProcessPool", "default_mp_context", "process_unavailable_reason"]

#: Seconds between liveness checks while waiting on phase acknowledgements.
_POLL_S = 1.0


def default_mp_context(method: Optional[str] = None) -> mp.context.BaseContext:
    """The multiprocessing context the pool uses.

    ``fork`` is preferred (workers inherit the program — and any non-picklable
    statement semantics — for free); platforms without it fall back to
    ``spawn``, which requires the program to be picklable (module-level
    semantics callables, as all built-in semantics are).
    """
    if method is None:
        method = "fork" if "fork" in mp.get_all_start_methods() else "spawn"
    return mp.get_context(method)


def process_unavailable_reason() -> Optional[str]:
    """``None`` when the process backend can run here, else a human reason."""
    from .shm import shared_memory_unavailable_reason

    reason = shared_memory_unavailable_reason()
    if reason is not None:
        return reason
    if not mp.get_all_start_methods():  # pragma: no cover - cannot happen on CPython
        return "no multiprocessing start method available"
    return None


# ---------------------------------------------------------------------------
# worker side
# ---------------------------------------------------------------------------


# One statement instance against the shared views: the same dispatch body
# as every other backend (see executor._execute_instance_env — sharing it is
# what keeps the backends bit-identical).
_execute_env = _execute_instance_env


def _run_rows_task(task, contexts, arrays) -> int:
    """An :class:`ArrayPhase` slice: (label, (n, dim) rows)."""
    _, label, rows = task
    ctx = contexts[label]
    stmt, index_names = ctx.statement, ctx.index_names
    for row in rows.tolist():
        _execute_env(stmt, dict(zip(index_names, row)), arrays)
    return len(rows)


def _run_unified_task(task, contexts, arrays) -> int:
    """A :class:`UnifiedArrayPhase` slice: unified rows + parallel stmt ids."""
    _, labels, depths, stmt_ids, rows = task
    stmts = [contexts[label] for label in labels]
    executed = 0
    for sid, row in zip(stmt_ids.tolist(), rows.tolist()):
        ctx = stmts[sid]
        env = dict(zip(ctx.index_names, row[1 : 2 * depths[sid] : 2]))
        _execute_env(ctx.statement, env, arrays)
        executed += 1
    return executed


def _run_units_task(task, contexts, arrays) -> int:
    """A CSR-encoded slice of a unit phase (e.g. WHILE chains).

    ``unit_offsets`` delimits the units inside the flat ``(stmt_ids, rows)``
    arrays; instances inside a unit execute in order (a chain is sequential by
    construction), units in the slice run back to back on this worker.
    """
    _, labels, depths, stmt_ids, rows, unit_offsets = task
    stmts = [contexts[label] for label in labels]
    executed = 0
    offsets = unit_offsets.tolist()
    ids = stmt_ids.tolist()
    pts = rows.tolist()
    for u in range(len(offsets) - 1):
        for k in range(offsets[u], offsets[u + 1]):
            ctx = stmts[ids[k]]
            env = dict(zip(ctx.index_names, pts[k][: depths[ids[k]]]))
            _execute_env(ctx.statement, env, arrays)
            executed += 1
    return executed


_TASK_RUNNERS = {
    "rows": _run_rows_task,
    "unified": _run_unified_task,
    "units": _run_units_task,
}


def _worker_main(
    worker_id: int,
    program: LoopProgram,
    tasks,
    results,
    barrier,
) -> None:
    """Worker loop: swap stores on ``attach``/``detach`` control messages,
    execute phase tasks against the current store, exit on the ``None``
    sentinel.

    Control messages are broadcast one-per-worker; the barrier holds every
    worker until all of them consumed theirs, so no worker can steal a
    sibling's attach off the shared queue.
    """
    contexts = {ctx.statement.label: ctx for ctx in program.statement_contexts()}
    store: Optional[SharedArrayStore] = None
    try:
        while True:
            task = tasks.get()
            if task is None:
                break
            kind = task[0]
            if kind == "attach":
                if store is not None:
                    store.close()
                store = SharedArrayStore.attach(task[1], task[2])
                results.put(("ok", worker_id, 0, 0.0))
                barrier.wait()
                continue
            if kind == "detach":
                if store is not None:
                    store.close()
                    store = None
                results.put(("ok", worker_id, 0, 0.0))
                barrier.wait()
                continue
            try:
                t0 = time.perf_counter()
                arrays = store.arrays if store is not None else None
                if arrays is None:
                    raise RuntimeError("phase task received with no store attached")
                executed = _TASK_RUNNERS[kind](task, contexts, arrays)
                results.put(("ok", worker_id, executed, time.perf_counter() - t0))
            except Exception:
                results.put(("error", worker_id, traceback.format_exc(), 0.0))
    finally:
        if store is not None:
            store.close()


# ---------------------------------------------------------------------------
# parent side: phase encoding
# ---------------------------------------------------------------------------


def _split_array_phase(phase: ArrayPhase, workers: int, rng) -> List[tuple]:
    """Strided row slices of an ArrayPhase, one task per (nonempty) worker."""
    points = phase.points
    if rng is not None:
        order = list(range(len(points)))
        rng.shuffle(order)
        points = points[np.asarray(order, dtype=np.int64)]
    return [
        ("rows", phase.label, np.ascontiguousarray(points[k::workers]))
        for k in range(workers)
        if len(points[k::workers])
    ]


def _split_unified_phase(phase: UnifiedArrayPhase, workers: int, rng) -> List[tuple]:
    """Strided (stmt_ids, rows) slices of a UnifiedArrayPhase."""
    ids, rows = phase.stmt_ids, phase.rows
    if rng is not None:
        order = list(range(len(rows)))
        rng.shuffle(order)
        perm = np.asarray(order, dtype=np.int64)
        ids, rows = ids[perm], rows[perm]
    return [
        (
            "unified",
            phase.labels,
            phase.depths,
            np.ascontiguousarray(ids[k::workers]),
            np.ascontiguousarray(rows[k::workers]),
        )
        for k in range(workers)
        if len(rows[k::workers])
    ]


def _split_unit_phase(phase, labels, depths, label_ids, workers: int, rng) -> List[tuple]:
    """CSR-encode a generic unit phase (chains, blocks) into per-worker tasks.

    Units are distributed round-robin; each worker's units are flattened into
    ``(stmt_ids, rows, unit_offsets)`` int64 arrays — rows are iteration
    vectors padded to the program's maximum nesting depth, so the message is a
    single rectangular array regardless of how the statements nest.
    """
    units = list(phase.units)
    if rng is not None:
        rng.shuffle(units)
    width = max(depths) if depths else 1
    tasks = []
    for k in range(workers):
        mine = units[k::workers]
        if not mine:
            continue
        ids: List[int] = []
        rows: List[List[int]] = []
        offsets = [0]
        for unit in mine:
            for label, iteration in unit.instances:
                ids.append(label_ids[label])
                rows.append(list(iteration) + [0] * (width - len(iteration)))
            offsets.append(len(ids))
        tasks.append(
            (
                "units",
                labels,
                depths,
                np.asarray(ids, dtype=np.int64),
                np.asarray(rows, dtype=np.int64).reshape(len(ids), width),
                np.asarray(offsets, dtype=np.int64),
            )
        )
    return tasks


# ---------------------------------------------------------------------------
# the pool
# ---------------------------------------------------------------------------


def _drain_queue(q) -> None:
    """Discard everything buffered in an mp queue (best effort)."""
    try:
        while True:
            q.get_nowait()
    except Exception:
        pass


class ProcessPool:
    """A persistent pool of workers executing one program's schedules.

    Workers start once and outlive any particular store: per execution the
    parent :meth:`attach_store` packs the caller's arrays into a fresh shared
    segment and broadcasts only its descriptor table, so a serving daemon can
    keep one warm pool across many requests and pay per request only the
    segment pack + two control round-trips (never a worker fork).  Passing
    ``store`` to the constructor attaches it immediately — the historical
    one-shot shape.  Use as a context manager; :meth:`run_phase` blocks until
    every shipped task acknowledged — the phase barrier.

    A worker death or in-flight failure marks the pool :attr:`broken`
    (acknowledgements may be lost, so reuse would be unsound); every teardown
    path still closes and unlinks the owner's segment.
    """

    def __init__(
        self,
        program: LoopProgram,
        store: Optional[Dict[str, np.ndarray]] = None,
        workers: int = 1,
        mp_context: Optional[str] = None,
    ):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self.program = program
        self._ctx = default_mp_context(mp_context)
        self.shared: Optional[SharedArrayStore] = None
        self._broken = False
        self._tasks = self._ctx.Queue()
        self._results = self._ctx.Queue()
        self._barrier = self._ctx.Barrier(workers)
        self._procs = []
        # Label table for unit-phase encoding, shared across phases.
        contexts = program.statement_contexts()
        self._labels = tuple(ctx.statement.label for ctx in contexts)
        self._depths = tuple(ctx.depth for ctx in contexts)
        self._label_ids = {label: i for i, label in enumerate(self._labels)}
        try:
            for wid in range(workers):
                p = self._ctx.Process(
                    target=_worker_main,
                    args=(wid, program, self._tasks, self._results, self._barrier),
                    daemon=True,
                )
                p.start()
                self._procs.append(p)
            if store is not None:
                self.attach_store(store)
        except Exception:
            self.shutdown()
            raise

    @property
    def start_method(self) -> str:
        """The multiprocessing start method the pool's workers use."""
        return self._ctx.get_start_method()

    @property
    def broken(self) -> bool:
        """True once a worker died or failed mid-flight — reuse is unsound."""
        return self._broken or any(not p.is_alive() for p in self._procs)

    # -- per-store lifetime -----------------------------------------------------

    def attach_store(self, store: Dict[str, np.ndarray]) -> SharedArrayStore:
        """Pack ``store`` into a fresh shared segment and map it pool-wide.

        Ships each worker one ``("attach", shm_name, descriptors)`` control
        message — a few dozen bytes per array, never the data — and waits for
        every acknowledgement.  The segment is destroyed on the spot if the
        broadcast fails, so a half-attached store can never leak.
        """
        if self.shared is not None:
            raise RuntimeError(
                "a store is already attached; detach_store() it first"
            )
        if self.broken:
            raise RuntimeError("pool is broken (a worker died); start a new pool")
        shared = SharedArrayStore.from_store(store)
        try:
            self._broadcast(("attach", shared.shm_name, shared.descriptors))
        except Exception:
            shared.close()
            shared.unlink()
            raise
        self.shared = shared
        return shared

    def detach_store(self) -> None:
        """Unmap the current store pool-wide and destroy its segment.

        Always closes and unlinks the owner's segment — even when the pool is
        broken and the worker round-trip is skipped — so crash paths cannot
        leak ``/dev/shm`` entries.  No-op without an attached store.
        """
        shared, self.shared = self.shared, None
        if shared is None:
            return
        try:
            if not self.broken:
                self._broadcast(("detach",))
        finally:
            shared.close()
            shared.unlink()

    def _broadcast(self, msg: tuple) -> None:
        """Ship one control message per worker and collect every ack.

        The worker-side barrier guarantees each worker consumes exactly one
        message before any returns to the task loop.
        """
        for _ in self._procs:
            self._tasks.put(msg)
        for _ in self._procs:
            self._collect()

    # -- phase execution --------------------------------------------------------

    def phase_tasks(self, phase, rng=None) -> List[tuple]:
        """Encode one schedule phase into per-worker task messages."""
        if isinstance(phase, ArrayPhase):
            return _split_array_phase(phase, self.workers, rng)
        if isinstance(phase, UnifiedArrayPhase):
            return _split_unified_phase(phase, self.workers, rng)
        return _split_unit_phase(
            phase, self._labels, self._depths, self._label_ids, self.workers, rng
        )

    def run_phase(self, phase, rng=None) -> Tuple[int, int]:
        """Execute one phase across the pool; returns (instances, tasks).

        Blocks until every shipped task has been acknowledged — the barrier
        between phases.  A worker exception is re-raised here with the remote
        traceback; a dead worker raises instead of hanging the barrier.
        """
        if self.shared is None:
            raise RuntimeError("no store attached; call attach_store() first")
        tasks = self.phase_tasks(phase, rng)
        for task in tasks:
            self._tasks.put(task)
        executed = 0
        for _ in range(len(tasks)):
            ack = self._collect()
            executed += ack
        return executed, len(tasks)

    def _collect(self) -> int:
        while True:
            try:
                msg = self._results.get(timeout=_POLL_S)
            except queue_module.Empty:
                dead = [p for p in self._procs if not p.is_alive()]
                if dead:
                    self._broken = True
                    raise RuntimeError(
                        f"process backend worker(s) died: "
                        f"{[p.exitcode for p in dead]}"
                    ) from None
                continue
            if msg[0] == "error":
                # Unacknowledged sibling tasks may still be in flight; reuse
                # would interleave their acks into the next phase's barrier.
                self._broken = True
                raise RuntimeError(
                    f"process backend worker {msg[1]} failed:\n{msg[2]}"
                )
            return msg[2]

    # -- results and lifetime ---------------------------------------------------

    def copy_out(self, into: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
        """Copy the shared arrays back into the caller's store (in place)."""
        if self.shared is None:
            raise RuntimeError("no store attached; nothing to copy out")
        return self.shared.copy_out(into)

    def shutdown(self, join_timeout: float = 5.0, kill_timeout: float = 1.0) -> None:
        """Stop the workers, drop the queues, and destroy the segment.

        Escalates worker teardown — sentinel + ``join(join_timeout)``, then
        ``terminate()`` (SIGTERM), then ``kill()`` (SIGKILL, which a wedged or
        signal-ignoring worker cannot block).  The queues are drained and
        their feeder threads cancelled so a wedged worker cannot leak queue
        threads, and the ``finally`` always closes and unlinks the shared
        segment — shutdown never leaves a ``/dev/shm`` entry behind.
        """
        try:
            try:
                for _ in self._procs:
                    self._tasks.put(None)
            except Exception:  # pragma: no cover - queue feeder already gone
                pass
            for p in self._procs:
                p.join(timeout=join_timeout)
            stuck = [p for p in self._procs if p.is_alive()]
            for p in stuck:
                p.terminate()
            for p in stuck:
                p.join(timeout=kill_timeout)
            for p in stuck:
                if p.is_alive():
                    p.kill()
            for p in stuck:
                p.join(timeout=kill_timeout)
        finally:
            for q in (self._tasks, self._results):
                _drain_queue(q)
                q.close()
                q.cancel_join_thread()
            shared, self.shared = self.shared, None
            if shared is not None:
                try:
                    shared.close()
                finally:
                    shared.unlink()

    def __enter__(self) -> "ProcessPool":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()
