"""A deterministic SMP cost-model simulator for partitioned schedules.

The paper's figure 3 measures speedups on a 4-CPU Itanium SMP with the Intel
OpenMP backend.  We do not have that machine; what we *can* reproduce is the
shape of the speedup curves, which is governed by quantities the schedule and
a small overhead model expose:

* the work of each phase and the length of its longest unit (critical path),
* how evenly the phase's units pack onto ``p`` processors (load imbalance),
* a barrier cost per phase boundary,
* a per-unit scheduling/loop-bound-evaluation overhead (the paper attributes
  REC's super-linear single-thread speedups to *simplified subscript
  calculation* inside the WHILE chains, and its drop beyond 3 threads to
  *loop bounds calculation overhead* — both are explicit knobs here),
* a per-instance cost factor per schedule (so a scheme that simplifies the
  subscript arithmetic can be modelled as executing instances slightly
  cheaper than the original sequential loop).

The simulator performs classic LPT-style list scheduling of the units of each
phase onto ``p`` identical processors and sums phase makespans plus overheads.
It is deterministic, fast, and exercised by both the benchmarks (figure 3
reproduction) and the property tests (monotonicity, work conservation).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..core.schedule import Schedule

__all__ = ["CostModel", "SimulationResult", "simulate_schedule", "speedup_curve"]


@dataclass(frozen=True)
class CostModel:
    """Per-event costs (arbitrary time units; only ratios matter).

    The defaults model a light-weight OpenMP runtime: iterations cost 1.0,
    barriers cost a few iterations, per-unit dispatch costs a fraction of an
    iteration.  ``instance_cost_factor`` scales the work of the schedule being
    simulated relative to the sequential baseline (values < 1 model the
    subscript-simplification effect of the WHILE chains; values > 1 model
    extra bound/guard evaluation in generated code).
    """

    iteration_cost: float = 1.0
    barrier_cost: float = 5.0
    unit_overhead: float = 0.02
    phase_start_overhead: float = 2.0
    instance_cost_factor: float = 1.0
    #: extra per-unit cost that grows with the number of convex-set bound
    #: expressions the generated loop has to evaluate (the "loop bounds
    #: calculation overhead" of §4); schedules record this in their metadata.
    bound_evaluation_cost: float = 0.0

    def sequential_time(self, total_work: int) -> float:
        """Time of the original sequential loop (no overheads, factor 1)."""
        return total_work * self.iteration_cost


@dataclass(frozen=True)
class SimulationResult:
    """Outcome of simulating one schedule on ``processors`` CPUs."""

    schedule: str
    processors: int
    parallel_time: float
    sequential_time: float
    phase_times: Tuple[float, ...]
    busy_time: float

    @property
    def speedup(self) -> float:
        return self.sequential_time / self.parallel_time if self.parallel_time else float("inf")

    @property
    def efficiency(self) -> float:
        return self.speedup / self.processors

    @property
    def utilization(self) -> float:
        return self.busy_time / (self.parallel_time * self.processors) if self.parallel_time else 0.0


def _phase_makespan(
    unit_costs: Sequence[float], processors: int, unit_overhead: float
) -> float:
    """LPT list scheduling of independent units onto identical processors."""
    if not unit_costs:
        return 0.0
    loads = [0.0] * max(1, processors)
    heapq.heapify(loads)
    for cost in sorted(unit_costs, reverse=True):
        lightest = heapq.heappop(loads)
        heapq.heappush(loads, lightest + cost + unit_overhead)
    return max(loads)


def simulate_schedule(
    schedule: Schedule,
    processors: int,
    cost_model: Optional[CostModel] = None,
    sequential_work: Optional[int] = None,
) -> SimulationResult:
    """Simulate a schedule on ``processors`` CPUs under the cost model.

    ``sequential_work`` defaults to the schedule's own total work; pass the
    original loop's instance count when the schemes being compared execute a
    different number of instances (e.g. guard-filtered DOALL nests).
    """
    cm = cost_model or CostModel()
    if processors < 1:
        raise ValueError("processors must be >= 1")
    phase_times: List[float] = []
    busy = 0.0
    for phase in schedule.phases:
        unit_costs = [
            u.work * cm.iteration_cost * cm.instance_cost_factor + cm.bound_evaluation_cost
            for u in phase.units
        ]
        busy += sum(unit_costs)
        makespan = _phase_makespan(unit_costs, processors, cm.unit_overhead)
        phase_times.append(cm.phase_start_overhead + makespan + cm.barrier_cost)
    parallel_time = sum(phase_times)
    seq_work = sequential_work if sequential_work is not None else schedule.total_work
    return SimulationResult(
        schedule=schedule.name,
        processors=processors,
        parallel_time=parallel_time,
        sequential_time=cm.sequential_time(seq_work),
        phase_times=tuple(phase_times),
        busy_time=busy,
    )


def speedup_curve(
    schedule: Schedule,
    processors: Sequence[int] = (1, 2, 3, 4),
    cost_model: Optional[CostModel] = None,
    sequential_work: Optional[int] = None,
) -> Dict[int, float]:
    """Speedup for each processor count — one figure-3 series."""
    return {
        p: simulate_schedule(schedule, p, cost_model, sequential_work).speedup
        for p in processors
    }
