"""Parallelism metrics and speedup-report helpers.

Small, pure functions that the benchmarks and the analysis reports share:
critical path / average parallelism of a schedule, speedup tables over thread
counts, and comparisons between schemes (who wins at each processor count,
where curves cross).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..core.schedule import Schedule
from .simulator import CostModel, speedup_curve

__all__ = [
    "schedule_parallelism",
    "SpeedupTable",
    "compare_schemes",
    "crossover_points",
    "run_metrics",
    "measured_speedups",
]


def schedule_parallelism(schedule: Schedule) -> Dict[str, float]:
    """Work, span, average parallelism and phase count of a schedule.

    An empty schedule (no phases, zero span) reports an average parallelism
    of 0.0 — not NaN, which would poison downstream aggregation.
    """
    work = schedule.total_work
    span = schedule.span
    return {
        "work": float(work),
        "span": float(span),
        "average_parallelism": (work / span) if span else 0.0,
        "phases": float(schedule.num_phases),
        "max_width": float(schedule.max_parallelism),
    }


@dataclass(frozen=True)
class SpeedupTable:
    """Speedups of several schemes over a common processor range."""

    processors: Tuple[int, ...]
    series: Mapping[str, Mapping[int, float]]

    def winner(self, p: int) -> str:
        """The scheme with the highest speedup at ``p`` processors.

        A scheme whose series has no entry for ``p`` counts as 0.0 speedup
        (it simply cannot win there) instead of raising ``KeyError``.
        """
        return max(self.series, key=lambda name: self.series[name].get(p, 0.0))

    def row(self, name: str) -> List[float]:
        return [self.series[name][p] for p in self.processors]

    def as_rows(self) -> List[Tuple[str, List[float]]]:
        return [(name, self.row(name)) for name in self.series]

    def format(self, precision: int = 2) -> str:
        """A fixed-width text table (the benchmarks print these)."""
        header = "scheme".ljust(14) + "".join(f"p={p}".rjust(9) for p in self.processors)
        lines = [header]
        for name, values in self.as_rows():
            lines.append(
                name.ljust(14) + "".join(f"{v:.{precision}f}".rjust(9) for v in values)
            )
        return "\n".join(lines)


def compare_schemes(
    schedules: Mapping[str, Schedule],
    processors: Sequence[int] = (1, 2, 3, 4),
    cost_models: Optional[Mapping[str, CostModel]] = None,
    sequential_work: Optional[int] = None,
) -> SpeedupTable:
    """Simulate several schemes and collect their speedup curves.

    ``cost_models`` optionally gives each scheme its own cost model (e.g. the
    REC WHILE chains run with ``instance_cost_factor < 1``); schemes without an
    entry use the default model.
    """
    series: Dict[str, Dict[int, float]] = {}
    for name, schedule in schedules.items():
        cm = (cost_models or {}).get(name)
        series[name] = speedup_curve(schedule, processors, cm, sequential_work)
    return SpeedupTable(tuple(processors), series)


def run_metrics(result) -> Dict[str, object]:
    """Headline counters of one :class:`~repro.runtime.backends.RunResult`.

    Works for every backend: measured runs report real wall-clock, the
    simulated backend reports modelled time units (its ``meta`` marks it).
    ``phase_time_s`` is the sum of per-phase times; the gap to ``elapsed_s``
    is the run's setup/teardown overhead (pool start-up, shared-memory copy
    in/out), which the process backend amortises over the schedule.
    """
    phase_time = sum(result.phase_elapsed())
    return {
        "backend": result.backend,
        "workers": result.workers,
        "phases": result.phases_executed,
        "instances": result.instances_executed,
        "elapsed_s": result.elapsed_s,
        "phase_time_s": phase_time,
        "overhead_s": max(result.elapsed_s - phase_time, 0.0),
        "instances_per_s": (
            result.instances_executed / result.elapsed_s if result.elapsed_s else 0.0
        ),
    }


def measured_speedups(
    runs: Mapping[str, "object"], baseline: str = "serial"
) -> Dict[str, float]:
    """Wall-clock speedup of each run over the named baseline run.

    ``runs`` maps display names to :class:`~repro.runtime.backends.RunResult`
    objects of the *same* schedule (e.g. ``{"serial": ..., "process@4":
    ...}``); the measured analogue of the simulator's
    :func:`speedup_curve`.
    """
    base = runs[baseline].elapsed_s
    return {
        name: (base / r.elapsed_s) if r.elapsed_s else float("inf")
        for name, r in runs.items()
    }


def crossover_points(
    table: SpeedupTable, first: str, second: str
) -> List[int]:
    """Processor counts at which the winner between two schemes changes.

    Returns the list of ``p`` where the sign of ``speedup(first) −
    speedup(second)`` differs from the sign at ``p − 1`` (used to check the
    paper's "REC drops below PDM beyond 3 threads" claim for Example 4).
    """
    crossings: List[int] = []
    prev_sign: Optional[int] = None
    for p in table.processors:
        diff = table.series[first][p] - table.series[second][p]
        sign = (diff > 0) - (diff < 0)
        if prev_sign is not None and sign != 0 and prev_sign != 0 and sign != prev_sign:
            crossings.append(p)
        if sign != 0:
            prev_sign = sign
    return crossings
