"""The execution-backend registry: one entry point for running schedules.

Symmetric to the planning side's :class:`~repro.core.strategy.PartitionStrategy`
registry: where ``plan()`` put one facade in front of eight partitioning
schemes, this module puts one facade in front of the runtime's executors.
Historically execution was three divergent entry points with inconsistent
signatures — ``execute_sequential`` / ``execute_schedule`` (returning a bare
store, shuffle seed defaulting to ``0``) / ``execute_schedule_threaded``
(returning a :class:`~repro.runtime.threaded.ThreadedRun`, seed defaulting to
``None``) — plus the cost-model simulator off to the side.  Now every way of
running a schedule is an :class:`ExecutionBackend` in a registry, takes the
same ``(program, schedule, params, store, ExecConfig)`` inputs and returns
the same :class:`RunResult` (final store + per-phase instance/worker/timing
counters):

``serial``
    the shuffled single-process reference executor (the old
    ``execute_schedule`` loop);
``threaded``
    the real thread pool with phase barriers — correctness under true
    concurrency, GIL-bound for speed;
``process``
    the ``multiprocessing.shared_memory`` worker pool
    (:mod:`repro.runtime.process`): arrays live in one shared segment,
    workers attach once and receive strided row slices, phases end in real
    barriers — the backend that turns partition schedules into wall-clock
    speedups on multi-core hosts;
``simulated``
    the deterministic SMP cost model (no arrays are touched;
    ``RunResult.store`` is ``None`` and the speedup lands in ``meta``);
``compiled``
    the generated-NumPy-kernel runner for symbolic plans
    (:mod:`repro.codegen.python_source`): the whole schedule executes as
    vectorized strided-slice assignments, compiled once and cached on the
    plan fingerprint — schedules without a kernel fall back to ``serial``
    with the reason recorded in ``RunResult.meta``.

The historical entry points live on as thin shims over the registry, and
:meth:`Plan.execute(backend=...) <repro.core.strategy.Plan.execute>` reaches
the same registry through the planning facade.  Third-party executors (a GPU
runner, a free-threaded pool) plug in via :func:`register_backend` without
touching any call site.
"""

from __future__ import annotations

import random
import time
from collections import OrderedDict
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from ..core.schedule import ArrayPhase, Schedule, UnifiedArrayPhase
from ..core.symbolic import CosetChainPhase, SymbolicDoallPhase
from ..ir.program import LoopProgram
from .executor import ArrayStore, _execute_instance, make_store
from .simulator import CostModel, simulate_schedule

__all__ = [
    "ExecConfig",
    "PhaseStats",
    "RunResult",
    "ExecutionBackend",
    "BackendUnavailable",
    "register_backend",
    "get_backend",
    "backend_names",
    "backend_table",
    "execute",
]

_MP_CONTEXTS = (None, "fork", "spawn", "forkserver")


# ---------------------------------------------------------------------------
# configuration and result objects
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ExecConfig:
    """Every knob of schedule execution, in one hashable object.

    The execution twin of :class:`~repro.core.strategy.PlanConfig` (and
    attachable to it as ``PlanConfig(exec_config=...)``):

    ``backend``
        Registry name of the executor: ``"serial"``, ``"threaded"``,
        ``"process"`` or ``"simulated"`` (plus anything registered later).
    ``workers``
        Thread/process/processor count for the parallel backends; the serial
        backend ignores it.
    ``seed``
        Intra-phase shuffle seed (``None`` disables shuffling).  One default
        (``0``) for every backend — the historical executors disagreed
        (``execute_schedule`` shuffled by default, the threaded entry point
        did not); the shims preserve their old defaults.
    ``lock_free``
        Threaded backend only: ``False`` adds per-array locks around each
        instance.  The process backend rejects ``False`` (cross-process
        locking would serialise the pool; its schedules are race-free by
        construction).
    ``mp_context``
        Process backend: multiprocessing start method (``None`` = ``fork``
        where available, else ``spawn``).
    ``cost_model``
        Simulated backend: the :class:`~repro.runtime.simulator.CostModel`
        (``None`` = defaults).
    """

    backend: str = "serial"
    workers: int = 4
    seed: Optional[int] = 0
    lock_free: bool = True
    mp_context: Optional[str] = None
    cost_model: Optional[CostModel] = None

    def __post_init__(self):
        if not isinstance(self.backend, str) or not self.backend:
            raise ValueError("backend must be a non-empty registry name")
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.mp_context not in _MP_CONTEXTS:
            raise ValueError(
                f"unknown mp_context {self.mp_context!r}; use one of {_MP_CONTEXTS}"
            )


@dataclass(frozen=True)
class PhaseStats:
    """Counters for one executed phase: size, distribution and wall-clock."""

    name: str
    instances: int
    units: int
    workers: int
    elapsed_s: float


@dataclass(frozen=True, eq=False)
class RunResult:
    """The unified result of executing a schedule through any backend.

    Supersedes :class:`~repro.runtime.threaded.ThreadedRun`: the final store
    plus per-phase instance/worker/timing counters, the same shape whether
    the run was serial, threaded, multi-process or simulated (a simulated
    run's ``store`` is ``None`` — nothing was executed).  Feed it to
    :func:`repro.runtime.metrics.run_metrics` /
    :func:`repro.runtime.metrics.measured_speedups` for reporting.
    """

    store: Optional[ArrayStore]
    backend: str
    workers: int
    phase_stats: Tuple[PhaseStats, ...]
    elapsed_s: float
    meta: Dict[str, object] = field(default_factory=dict)

    @property
    def phases_executed(self) -> int:
        return len(self.phase_stats)

    @property
    def instances_executed(self) -> int:
        return sum(p.instances for p in self.phase_stats)

    def phase_elapsed(self) -> Tuple[float, ...]:
        return tuple(p.elapsed_s for p in self.phase_stats)

    def __repr__(self) -> str:
        return (
            f"RunResult(backend={self.backend!r}, workers={self.workers}, "
            f"phases={self.phases_executed}, instances={self.instances_executed}, "
            f"elapsed={self.elapsed_s:.4f}s)"
        )


class BackendUnavailable(RuntimeError):
    """The selected backend cannot run in this environment (see ``reason``)."""


# ---------------------------------------------------------------------------
# backend protocol and registry
# ---------------------------------------------------------------------------

#: A backend runner: (program, schedule, params, store, config, rng) -> RunResult.
BackendRunner = Callable[
    [LoopProgram, Schedule, Dict[str, int], Optional[ArrayStore], ExecConfig, Optional[random.Random]],
    RunResult,
]


def _always_available() -> Optional[str]:
    return None


@dataclass(frozen=True)
class ExecutionBackend:
    """One way of executing schedules, behind the registry.

    ``available()`` returns ``None`` when the backend can run here or a
    human-readable reason when it cannot (surfaced by
    :class:`BackendUnavailable`); ``runner`` does the work and is only called
    after the availability probe passed.
    """

    name: str
    description: str
    runner: BackendRunner
    available: Callable[[], Optional[str]] = _always_available


_REGISTRY: "OrderedDict[str, ExecutionBackend]" = OrderedDict()


def register_backend(backend: ExecutionBackend) -> ExecutionBackend:
    """Add a backend to the registry.  Re-registering a name replaces the
    entry in place (so a plugin can refine a built-in)."""
    _REGISTRY[backend.name] = backend
    return backend


def get_backend(name: str) -> ExecutionBackend:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown backend {name!r}; registered: {', '.join(_REGISTRY)}"
        ) from None


def backend_names() -> Tuple[str, ...]:
    """Registered backend names in registration order."""
    return tuple(_REGISTRY)


def backend_table() -> List[Dict[str, str]]:
    """The registry as rows (name / description / availability) for docs."""
    return [
        {
            "name": b.name,
            "description": b.description,
            "available": b.available() or "yes",
        }
        for b in _REGISTRY.values()
    ]


# ---------------------------------------------------------------------------
# the entry point
# ---------------------------------------------------------------------------


def execute(
    program: LoopProgram,
    schedule: Schedule,
    params: Optional[Mapping[str, int]] = None,
    store: Optional[ArrayStore] = None,
    config: Optional[ExecConfig] = None,
    rng: Optional[random.Random] = None,
    pool=None,
    **overrides,
) -> RunResult:
    """Run ``schedule`` through the configured backend; returns a
    :class:`RunResult`.

    ``config`` carries every knob (``None`` = defaults: serial, shuffle seed
    0); keyword ``overrides`` (``backend=``, ``workers=``, ``seed=``, ...)
    are applied on top via :func:`dataclasses.replace`, so one-off calls
    don't need to build a config — ``execute(prog, sched, backend="process",
    workers=4)``.  ``rng`` supplies a caller-owned shuffle generator
    (overrides ``seed``), mirroring the historical executors.

    ``pool`` injects a live :class:`~repro.runtime.process.ProcessPool`
    (``backend="process"`` only): the run attaches a fresh shared store to
    the already-running workers instead of forking a pool of its own — the
    serving daemon's warm path (:mod:`repro.serving`).  The pool must have
    been built for a structurally identical program; its worker count wins
    over ``config.workers``.

    Raises :class:`BackendUnavailable` when the backend's probe says it
    cannot run here (e.g. the process backend without ``/dev/shm``).
    """
    cfg = config if config is not None else ExecConfig()
    if overrides:
        cfg = replace(cfg, **overrides)
    backend = get_backend(cfg.backend)
    reason = backend.available()
    if reason is not None:
        raise BackendUnavailable(f"backend {cfg.backend!r} unavailable: {reason}")
    if pool is not None:
        if cfg.backend != "process":
            raise ValueError(
                f"an injected pool requires backend='process' "
                f"(got {cfg.backend!r})"
            )
        return backend.runner(
            program, schedule, dict(params or {}), store, cfg, rng, pool=pool
        )
    return backend.runner(program, schedule, dict(params or {}), store, cfg, rng)


def _resolve_rng(
    config: ExecConfig, rng: Optional[random.Random]
) -> Optional[random.Random]:
    """The shared seed/rng contract: an explicit ``rng`` wins, else ``seed``
    creates a private generator, and ``seed=None`` disables shuffling."""
    if rng is not None:
        return rng
    if config.seed is not None:
        return random.Random(config.seed)
    return None


# ---------------------------------------------------------------------------
# built-in backends
# ---------------------------------------------------------------------------


def _serial_runner(
    program: LoopProgram,
    schedule: Schedule,
    params: Dict[str, int],
    store: Optional[ArrayStore],
    config: ExecConfig,
    rng: Optional[random.Random],
) -> RunResult:
    """The reference executor: one process, phases in order, units shuffled."""
    store = store if store is not None else make_store(program)
    contexts = {ctx.statement.label: ctx for ctx in program.statement_contexts()}
    rng = _resolve_rng(config, rng)
    stats: List[PhaseStats] = []
    t_run = time.perf_counter()
    for phase in schedule.phases:
        t0 = time.perf_counter()
        if isinstance(phase, ArrayPhase):
            ctx = contexts[phase.label]
            rows = phase.points.tolist()
            if rng is not None:
                rng.shuffle(rows)
            stmt, index_names = ctx.statement, ctx.index_names
            for row in rows:
                _execute_instance(stmt, row, index_names, store)
            executed = len(rows)
        elif isinstance(phase, UnifiedArrayPhase):
            # Statement-level array phases: rows are unified index vectors;
            # the iteration vector is the odd columns up to the statement's
            # depth — executed directly, no unit objects.
            stmts = [contexts[label] for label in phase.labels]
            depths = phase.depths
            entries = list(zip(phase.stmt_ids.tolist(), phase.rows.tolist()))
            if rng is not None:
                rng.shuffle(entries)
            for sid, row in entries:
                ctx = stmts[sid]
                _execute_instance(
                    ctx.statement, row[1 : 2 * depths[sid] : 2],
                    ctx.index_names, store,
                )
            executed = len(entries)
        elif isinstance(phase, SymbolicDoallPhase):
            # Symbolic box phases: enumerate the boxes directly instead of
            # building one ExecutionUnit per point.
            ctx = contexts[phase.label]
            rows = phase.points_array().tolist()
            if rng is not None:
                rng.shuffle(rows)
            stmt, index_names = ctx.statement, ctx.index_names
            for row in rows:
                _execute_instance(stmt, row, index_names, store)
            executed = len(rows)
        elif isinstance(phase, CosetChainPhase):
            ctx = contexts[phase.label]
            stmt, index_names = ctx.statement, ctx.index_names
            starts, lens = phase.chains()
            chains = list(zip(starts.tolist(), lens.tolist()))
            if rng is not None:
                rng.shuffle(chains)
            step = phase.step
            executed = 0
            for start, length in chains:
                point = list(start)
                for _ in range(length):
                    _execute_instance(stmt, point, index_names, store)
                    point = [c + s for c, s in zip(point, step)]
                executed += length
        else:
            units = list(phase.units)
            if rng is not None:
                rng.shuffle(units)
            executed = 0
            for unit in units:
                for label, iteration in unit.instances:
                    ctx = contexts[label]
                    _execute_instance(ctx.statement, iteration, ctx.index_names, store)
                    executed += 1
        stats.append(
            PhaseStats(phase.name, executed, len(phase), 1, time.perf_counter() - t0)
        )
    return RunResult(
        store=store,
        backend="serial",
        workers=1,
        phase_stats=tuple(stats),
        elapsed_s=time.perf_counter() - t_run,
    )


def _threaded_runner(
    program: LoopProgram,
    schedule: Schedule,
    params: Dict[str, int],
    store: Optional[ArrayStore],
    config: ExecConfig,
    rng: Optional[random.Random],
) -> RunResult:
    from .threaded import _run_schedule_threaded

    return _run_schedule_threaded(program, schedule, params, store, config, rng)


def _process_runner(
    program: LoopProgram,
    schedule: Schedule,
    params: Dict[str, int],
    store: Optional[ArrayStore],
    config: ExecConfig,
    rng: Optional[random.Random],
    pool=None,
) -> RunResult:
    from .process import ProcessPool

    if not config.lock_free:
        raise ValueError(
            "the process backend is lock-free only: partition schedules are "
            "race-free inside a phase; use backend='threaded' for per-array "
            "locking of unvalidated schedules"
        )
    store = store if store is not None else make_store(program)
    rng = _resolve_rng(config, rng)
    stats: List[PhaseStats] = []
    t_run = time.perf_counter()

    if pool is not None:
        # Warm path: the caller owns a running pool; this run only ships a
        # fresh descriptor table and the phase slices.  detach_store() in the
        # finally destroys the per-request segment even on a worker crash.
        pool.attach_store(store)
        try:
            for phase in schedule.phases:
                t0 = time.perf_counter()
                executed, tasks = pool.run_phase(phase, rng)
                stats.append(
                    PhaseStats(
                        phase.name, executed, len(phase), tasks,
                        time.perf_counter() - t0,
                    )
                )
            pool.copy_out(store)
        finally:
            pool.detach_store()
        return RunResult(
            store=store,
            backend="process",
            workers=pool.workers,
            phase_stats=tuple(stats),
            elapsed_s=time.perf_counter() - t_run,
            meta={"start_method": pool.start_method, "pool": "injected"},
        )

    with ProcessPool(
        program, store, workers=config.workers, mp_context=config.mp_context
    ) as owned:
        start_method = owned.start_method
        for phase in schedule.phases:
            t0 = time.perf_counter()
            executed, tasks = owned.run_phase(phase, rng)
            stats.append(
                PhaseStats(
                    phase.name, executed, len(phase), tasks,
                    time.perf_counter() - t0,
                )
            )
        # The shared segment is authoritative; fill the caller's store so the
        # mutate-in-place contract matches every other backend.
        owned.copy_out(store)
    return RunResult(
        store=store,
        backend="process",
        workers=config.workers,
        phase_stats=tuple(stats),
        elapsed_s=time.perf_counter() - t_run,
        meta={"start_method": start_method},
    )


def _process_available() -> Optional[str]:
    try:
        from .process import process_unavailable_reason
    except Exception as exc:  # pragma: no cover - import is stdlib-only
        return f"process backend import failed: {exc}"
    return process_unavailable_reason()


def _simulated_runner(
    program: LoopProgram,
    schedule: Schedule,
    params: Dict[str, int],
    store: Optional[ArrayStore],
    config: ExecConfig,
    rng: Optional[random.Random],
) -> RunResult:
    """Wrap the deterministic SMP cost model: nothing is executed, the
    modelled per-phase makespans become the timing counters and the headline
    numbers land in ``meta``."""
    sim = simulate_schedule(
        schedule, processors=config.workers, cost_model=config.cost_model
    )
    stats = tuple(
        PhaseStats(ph.name, ph.work, len(ph), config.workers, float(t))
        for ph, t in zip(schedule.phases, sim.phase_times)
    )
    return RunResult(
        store=None,
        backend="simulated",
        workers=config.workers,
        phase_stats=stats,
        elapsed_s=float(sim.parallel_time),
        meta={
            "simulated": True,
            "speedup": sim.speedup,
            "sequential_time": sim.sequential_time,
            "efficiency": sim.efficiency,
            "utilization": sim.utilization,
        },
    )


def _compiled_runner(
    program: LoopProgram,
    schedule: Schedule,
    params: Dict[str, int],
    store: Optional[ArrayStore],
    config: ExecConfig,
    rng: Optional[random.Random],
) -> RunResult:
    """Run a symbolic plan's generated NumPy kernel (compiled once, cached on
    the plan fingerprint).  Schedules without a kernel — any non-symbolic
    plan, or a statement whose semantics cannot be vectorized — fall back to
    the ``serial`` runner with the reason recorded in ``meta``."""
    from ..codegen.python_source import ensure_symbolic_kernel, symbolic_kernel_reason

    reason = symbolic_kernel_reason(program, schedule)
    if reason is None and not schedule.meta.get("kernel_key"):
        reason = "schedule has no kernel_key (not built by the symbolic strategy)"
    if reason is not None:
        res = _serial_runner(program, schedule, params, store, config, rng)
        return replace(
            res,
            backend="compiled",
            meta={**res.meta, "fallback": "serial", "reason": reason},
        )
    kernel, cache_status = ensure_symbolic_kernel(program, schedule)
    store = store if store is not None else make_store(program)
    t_run = time.perf_counter()
    rows = kernel(store)
    elapsed = time.perf_counter() - t_run
    stats = tuple(
        PhaseStats(name, executed, len(phase), 1, dt)
        for (name, executed, dt), phase in zip(rows, schedule.phases)
    )
    return RunResult(
        store=store,
        backend="compiled",
        workers=1,
        phase_stats=stats,
        elapsed_s=elapsed,
        meta={"kernel": True, "kernel_cache": cache_status},
    )


register_backend(ExecutionBackend(
    name="serial",
    description="single process, phases in order, shuffled intra-phase order",
    runner=_serial_runner,
))
register_backend(ExecutionBackend(
    name="threaded",
    description="thread pool with phase barriers (correctness under the GIL)",
    runner=_threaded_runner,
))
register_backend(ExecutionBackend(
    name="process",
    description="shared-memory process pool (wall-clock speedup on multi-core)",
    runner=_process_runner,
    available=_process_available,
))
register_backend(ExecutionBackend(
    name="simulated",
    description="deterministic SMP cost model (no arrays touched)",
    runner=_simulated_runner,
))
register_backend(ExecutionBackend(
    name="compiled",
    description="generated NumPy kernel for symbolic plans (serial fallback)",
    runner=_compiled_runner,
))
