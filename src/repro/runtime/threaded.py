"""Real multi-threaded execution of partitioned schedules.

Besides the deterministic cost-model simulator, the package can execute a
schedule with an actual thread pool over shared numpy arrays — the closest a
pure-Python reproduction gets to the paper's OpenMP runs.  Each phase's units
are distributed over ``n_threads`` workers; a barrier separates phases, so the
synchronization structure is exactly the generated code's structure
(``DOALL ... nowait`` inside a phase, barriers at phase borders).

Because of the GIL this does not demonstrate wall-clock *speedups* — it
demonstrates *correctness under real concurrency*: arbitrary interleaving of
the units of a phase must still produce the sequential result.  For measured
wall-clock speedups use the ``process`` backend of the
:mod:`repro.runtime.backends` registry: it keeps the workload's
shared-mutable-array semantics by placing every array in one
``multiprocessing.shared_memory`` segment that all workers attach
(:mod:`repro.runtime.process`), so the memory behaviour being modelled is
preserved while the statement interpreter runs on real cores.  The cost-model
simulator (``simulated`` backend, DESIGN.md §2) remains the deterministic
speedup *model*.

Execution is lock-free by default: a partition-derived schedule is race-free
by construction (units of a phase never touch overlapping elements in a
conflicting way), so no synchronization beyond the phase barriers is needed.
``lock_free=False`` additionally serializes each instance's
read-compute-write against other instances touching the same arrays via
per-array locks (acquired in sorted name order, so no deadlocks) — useful
when executing schedules of unvalidated provenance, at the cost of
serializing most of the phase.
"""

from __future__ import annotations

import random
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from contextlib import ExitStack
from dataclasses import dataclass
from typing import List, Mapping, Optional, Sequence

import numpy as np

from ..core.schedule import ArrayPhase, Schedule, UnifiedArrayPhase
from ..ir.program import LoopProgram
from .executor import ArrayStore, _execute_instance_env, make_store

__all__ = ["ThreadedRun", "execute_schedule_threaded"]


@dataclass(frozen=True)
class ThreadedRun:
    """Result of a threaded execution: the store plus simple timing counters.

    Deprecated in favour of :class:`repro.runtime.backends.RunResult` — the
    unified result object every registered backend returns.  Kept (and still
    returned by the :func:`execute_schedule_threaded` shim) so historical
    callers keep working; new code should call
    ``execute(..., backend="threaded")`` and read the richer per-phase
    counters off the :class:`~repro.runtime.backends.RunResult`.
    """

    store: ArrayStore
    n_threads: int
    phases_executed: int
    instances_executed: int


# One statement instance: the shared dispatch body (see executor.py).
_execute_instance = _execute_instance_env


def _run_units(
    units,
    contexts,
    store,
    locks: Optional[Mapping[str, threading.Lock]] = None,
) -> int:
    """Worker body: execute a slice of a phase's units; returns instance count.

    ``locks`` is ``None`` for lock-free execution; otherwise it maps array
    names to locks, and every instance holds the locks of all arrays it
    touches (in sorted name order) for its whole read-compute-write.
    """
    executed = 0
    for unit in units:
        for label, iteration in unit.instances:
            ctx = contexts[label]
            stmt = ctx.statement
            env = dict(zip(ctx.index_names, iteration))
            if locks is None:
                _execute_instance(stmt, env, store)
            else:
                arrays = sorted(
                    {ref.array for ref in stmt.reads}
                    | {ref.array for ref in stmt.writes}
                )
                with ExitStack() as stack:
                    for name in arrays:
                        stack.enter_context(locks[name])
                    _execute_instance(stmt, env, store)
            executed += 1
    return executed


def _run_rows(
    label: str,
    rows: np.ndarray,
    contexts,
    store,
    locks: Optional[Mapping[str, threading.Lock]] = None,
) -> int:
    """Worker body for an :class:`ArrayPhase` slice: iterate the point rows
    directly (no unit objects); returns the instance count."""
    ctx = contexts[label]
    stmt = ctx.statement
    index_names = ctx.index_names
    arrays = (
        sorted({ref.array for ref in stmt.reads} | {ref.array for ref in stmt.writes})
        if locks is not None
        else None
    )
    executed = 0
    for row in rows.tolist():
        env = dict(zip(index_names, row))
        if locks is None:
            _execute_instance(stmt, env, store)
        else:
            with ExitStack() as stack:
                for name in arrays:
                    stack.enter_context(locks[name])
                _execute_instance(stmt, env, store)
        executed += 1
    return executed


def _run_unified_rows(
    labels: Sequence[str],
    depths: Sequence[int],
    stmt_ids: np.ndarray,
    rows: np.ndarray,
    contexts,
    store,
    locks: Optional[Mapping[str, threading.Lock]] = None,
) -> int:
    """Worker body for a :class:`UnifiedArrayPhase` slice: rows are unified
    index vectors with a parallel statement-id vector; the iteration vector is
    the odd columns up to the statement's depth.  Returns the instance count."""
    stmts = [contexts[label] for label in labels]
    arrays_of = (
        [
            sorted(
                {ref.array for ref in ctx.statement.reads}
                | {ref.array for ref in ctx.statement.writes}
            )
            for ctx in stmts
        ]
        if locks is not None
        else None
    )
    executed = 0
    for sid, row in zip(stmt_ids.tolist(), rows.tolist()):
        ctx = stmts[sid]
        stmt = ctx.statement
        env = dict(zip(ctx.index_names, row[1 : 2 * depths[sid] : 2]))
        if locks is None:
            _execute_instance(stmt, env, store)
        else:
            with ExitStack() as stack:
                for name in arrays_of[sid]:
                    stack.enter_context(locks[name])
                _execute_instance(stmt, env, store)
        executed += 1
    return executed


def _run_schedule_threaded(
    program: LoopProgram,
    schedule: Schedule,
    params: Mapping[str, int],
    store: Optional[ArrayStore],
    config,
    rng: Optional[random.Random],
):
    """The ``threaded`` backend runner (see :mod:`repro.runtime.backends`):
    a real thread pool with barriers between phases, returning the unified
    :class:`~repro.runtime.backends.RunResult`."""
    from .backends import PhaseStats, RunResult

    n_threads = config.workers
    store = store if store is not None else make_store(program)
    contexts = {ctx.statement.label: ctx for ctx in program.statement_contexts()}
    locks = None if config.lock_free else {name: threading.Lock() for name in store}
    shuffle = rng is not None or config.seed is not None
    if shuffle and rng is None:
        rng = random.Random(config.seed)
    stats = []
    t_run = time.perf_counter()
    with ThreadPoolExecutor(max_workers=n_threads) as pool:
        for phase in schedule.phases:
            t0 = time.perf_counter()
            if isinstance(phase, ArrayPhase):
                # Array phases: round-robin the point rows themselves — each
                # worker gets a strided view, no unit objects are built.
                points = phase.points
                if shuffle:
                    order = list(range(len(points)))
                    rng.shuffle(order)
                    points = points[np.asarray(order, dtype=np.int64)]
                futures = [
                    pool.submit(_run_rows, phase.label, rows, contexts, store, locks)
                    for rows in (
                        points[k::n_threads] for k in range(n_threads)
                    )
                    if len(rows)
                ]
            elif isinstance(phase, UnifiedArrayPhase):
                # Statement-level array phases: round-robin (stmt_id, row)
                # pairs across the workers as strided views.
                ids, rows = phase.stmt_ids, phase.rows
                if shuffle:
                    order = list(range(len(rows)))
                    rng.shuffle(order)
                    perm = np.asarray(order, dtype=np.int64)
                    ids, rows = ids[perm], rows[perm]
                futures = [
                    pool.submit(
                        _run_unified_rows, phase.labels, phase.depths,
                        ids[k::n_threads], rows[k::n_threads],
                        contexts, store, locks,
                    )
                    for k in range(n_threads)
                    if len(rows[k::n_threads])
                ]
            else:
                units = list(phase.units)
                if shuffle:
                    rng.shuffle(units)
                # Round-robin the units across workers: deterministic
                # distribution, arbitrary execution interleaving.
                slices: List[List] = [units[k::n_threads] for k in range(n_threads)]
                futures = [
                    pool.submit(_run_units, s, contexts, store, locks)
                    for s in slices
                    if s
                ]
            # The implicit barrier: wait for every worker before the next phase.
            executed = 0
            for f in futures:
                executed += f.result()
            stats.append(
                PhaseStats(
                    phase.name, executed, len(phase), len(futures),
                    time.perf_counter() - t0,
                )
            )
    return RunResult(
        store=store,
        backend="threaded",
        workers=n_threads,
        phase_stats=tuple(stats),
        elapsed_s=time.perf_counter() - t_run,
        meta={"lock_free": config.lock_free},
    )


def execute_schedule_threaded(
    program: LoopProgram,
    schedule: Schedule,
    params: Mapping[str, int] | None = None,
    n_threads: int = 4,
    store: Optional[ArrayStore] = None,
    lock_free: bool = True,
    seed: Optional[int] = None,
    rng: Optional[random.Random] = None,
) -> ThreadedRun:
    """Execute a schedule with a real thread pool and phase barriers.

    A thin shim over the ``threaded`` backend of the
    :mod:`repro.runtime.backends` registry, kept for its historical signature
    (``n_threads``, shuffle off by default) and :class:`ThreadedRun` return;
    new call sites should use :func:`repro.runtime.backends.execute`.

    ``lock_free=False`` guards every instance with the per-array locks
    described in the module docstring; the default trusts the schedule's
    phase structure (as the paper's generated OpenMP code does).

    ``seed``/``rng`` mirror :func:`~repro.runtime.executor.execute_schedule`:
    when either is given, each phase's units (or array rows) are shuffled
    with a private ``random.Random`` before the round-robin distribution, so
    the worker assignment — not just the interleaving — varies between runs.
    The default (both ``None``) keeps the historical deterministic
    distribution; ``Plan.execute(threads=…)`` passes its configured seed so
    both executors are driven uniformly.
    """
    from .backends import ExecConfig, execute

    result = execute(
        program, schedule, params, store=store,
        config=ExecConfig(
            backend="threaded", workers=n_threads, seed=seed, lock_free=lock_free
        ),
        rng=rng,
    )
    return ThreadedRun(
        store=result.store,
        n_threads=result.workers,
        phases_executed=result.phases_executed,
        instances_executed=result.instances_executed,
    )
