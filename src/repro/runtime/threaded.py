"""Real multi-threaded execution of partitioned schedules.

Besides the deterministic cost-model simulator, the package can execute a
schedule with an actual thread pool over shared numpy arrays — the closest a
pure-Python reproduction gets to the paper's OpenMP runs.  Each phase's units
are distributed over ``n_threads`` workers; a barrier separates phases, so the
synchronization structure is exactly the generated code's structure
(``DOALL ... nowait`` inside a phase, barriers at phase borders).

Because of the GIL this does not demonstrate wall-clock *speedups* — it
demonstrates *correctness under real concurrency*: arbitrary interleaving of
the units of a phase must still produce the sequential result.  Wall-clock
speedup claims are made with the cost-model simulator (see DESIGN.md §2).
A process-pool variant is intentionally not provided: the workload's shared
mutable arrays are the point, and copying them per process would change the
memory behaviour being modelled.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from queue import Queue
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..core.schedule import Schedule
from ..ir.program import LoopProgram
from ..ir.semantics import DEFAULT_SEMANTICS
from .executor import ArrayStore, make_store

__all__ = ["ThreadedRun", "execute_schedule_threaded"]


@dataclass(frozen=True)
class ThreadedRun:
    """Result of a threaded execution: the store plus simple timing counters."""

    store: ArrayStore
    n_threads: int
    phases_executed: int
    instances_executed: int


def _run_units(units, contexts, store, lock_free: bool) -> int:
    """Worker body: execute a slice of a phase's units; returns instance count."""
    executed = 0
    for unit in units:
        for label, iteration in unit.instances:
            ctx = contexts[label]
            stmt = ctx.statement
            env = dict(zip(ctx.index_names, iteration))
            reads = []
            for ref in stmt.reads:
                idx = ref.evaluate(env)
                reads.append(int(store[ref.array][idx]))
            semantics = stmt.semantics or DEFAULT_SEMANTICS
            value = semantics(store, env, reads)
            for ref in stmt.writes:
                idx = ref.evaluate(env)
                store[ref.array][idx] = int(value)
            executed += 1
    return executed


def execute_schedule_threaded(
    program: LoopProgram,
    schedule: Schedule,
    params: Mapping[str, int] | None = None,
    n_threads: int = 4,
    store: Optional[ArrayStore] = None,
) -> ThreadedRun:
    """Execute a schedule with a real thread pool and phase barriers."""
    if n_threads < 1:
        raise ValueError("n_threads must be >= 1")
    store = store if store is not None else make_store(program)
    contexts = {ctx.statement.label: ctx for ctx in program.statement_contexts()}
    instances = 0
    with ThreadPoolExecutor(max_workers=n_threads) as pool:
        for phase in schedule.phases:
            units = list(phase.units)
            # Round-robin the units across workers: deterministic distribution,
            # arbitrary execution interleaving.
            slices: List[List] = [units[k::n_threads] for k in range(n_threads)]
            futures = [
                pool.submit(_run_units, s, contexts, store, True)
                for s in slices
                if s
            ]
            # The implicit barrier: wait for every worker before the next phase.
            for f in futures:
                instances += f.result()
    return ThreadedRun(
        store=store,
        n_threads=n_threads,
        phases_executed=len(schedule.phases),
        instances_executed=instances,
    )
