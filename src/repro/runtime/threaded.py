"""Real multi-threaded execution of partitioned schedules.

Besides the deterministic cost-model simulator, the package can execute a
schedule with an actual thread pool over shared numpy arrays — the closest a
pure-Python reproduction gets to the paper's OpenMP runs.  Each phase's units
are distributed over ``n_threads`` workers; a barrier separates phases, so the
synchronization structure is exactly the generated code's structure
(``DOALL ... nowait`` inside a phase, barriers at phase borders).

Because of the GIL this does not demonstrate wall-clock *speedups* — it
demonstrates *correctness under real concurrency*: arbitrary interleaving of
the units of a phase must still produce the sequential result.  Wall-clock
speedup claims are made with the cost-model simulator (see DESIGN.md §2).
A process-pool variant is intentionally not provided: the workload's shared
mutable arrays are the point, and copying them per process would change the
memory behaviour being modelled.

Execution is lock-free by default: a partition-derived schedule is race-free
by construction (units of a phase never touch overlapping elements in a
conflicting way), so no synchronization beyond the phase barriers is needed.
``lock_free=False`` additionally serializes each instance's
read-compute-write against other instances touching the same arrays via
per-array locks (acquired in sorted name order, so no deadlocks) — useful
when executing schedules of unvalidated provenance, at the cost of
serializing most of the phase.
"""

from __future__ import annotations

import random
import threading
from concurrent.futures import ThreadPoolExecutor
from contextlib import ExitStack
from dataclasses import dataclass
from queue import Queue
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..core.schedule import ArrayPhase, Schedule, UnifiedArrayPhase
from ..ir.program import LoopProgram
from ..ir.semantics import DEFAULT_SEMANTICS
from .executor import ArrayStore, make_store

__all__ = ["ThreadedRun", "execute_schedule_threaded"]


@dataclass(frozen=True)
class ThreadedRun:
    """Result of a threaded execution: the store plus simple timing counters."""

    store: ArrayStore
    n_threads: int
    phases_executed: int
    instances_executed: int


def _execute_instance(stmt, env, store) -> None:
    """One statement instance: gather reads, compute, store through writes."""
    reads = []
    for ref in stmt.reads:
        idx = ref.evaluate(env)
        reads.append(int(store[ref.array][idx]))
    semantics = stmt.semantics or DEFAULT_SEMANTICS
    value = semantics(store, env, reads)
    for ref in stmt.writes:
        idx = ref.evaluate(env)
        store[ref.array][idx] = int(value)


def _run_units(
    units,
    contexts,
    store,
    locks: Optional[Mapping[str, threading.Lock]] = None,
) -> int:
    """Worker body: execute a slice of a phase's units; returns instance count.

    ``locks`` is ``None`` for lock-free execution; otherwise it maps array
    names to locks, and every instance holds the locks of all arrays it
    touches (in sorted name order) for its whole read-compute-write.
    """
    executed = 0
    for unit in units:
        for label, iteration in unit.instances:
            ctx = contexts[label]
            stmt = ctx.statement
            env = dict(zip(ctx.index_names, iteration))
            if locks is None:
                _execute_instance(stmt, env, store)
            else:
                arrays = sorted(
                    {ref.array for ref in stmt.reads}
                    | {ref.array for ref in stmt.writes}
                )
                with ExitStack() as stack:
                    for name in arrays:
                        stack.enter_context(locks[name])
                    _execute_instance(stmt, env, store)
            executed += 1
    return executed


def _run_rows(
    label: str,
    rows: np.ndarray,
    contexts,
    store,
    locks: Optional[Mapping[str, threading.Lock]] = None,
) -> int:
    """Worker body for an :class:`ArrayPhase` slice: iterate the point rows
    directly (no unit objects); returns the instance count."""
    ctx = contexts[label]
    stmt = ctx.statement
    index_names = ctx.index_names
    arrays = (
        sorted({ref.array for ref in stmt.reads} | {ref.array for ref in stmt.writes})
        if locks is not None
        else None
    )
    executed = 0
    for row in rows.tolist():
        env = dict(zip(index_names, row))
        if locks is None:
            _execute_instance(stmt, env, store)
        else:
            with ExitStack() as stack:
                for name in arrays:
                    stack.enter_context(locks[name])
                _execute_instance(stmt, env, store)
        executed += 1
    return executed


def _run_unified_rows(
    labels: Sequence[str],
    depths: Sequence[int],
    stmt_ids: np.ndarray,
    rows: np.ndarray,
    contexts,
    store,
    locks: Optional[Mapping[str, threading.Lock]] = None,
) -> int:
    """Worker body for a :class:`UnifiedArrayPhase` slice: rows are unified
    index vectors with a parallel statement-id vector; the iteration vector is
    the odd columns up to the statement's depth.  Returns the instance count."""
    stmts = [contexts[label] for label in labels]
    arrays_of = (
        [
            sorted(
                {ref.array for ref in ctx.statement.reads}
                | {ref.array for ref in ctx.statement.writes}
            )
            for ctx in stmts
        ]
        if locks is not None
        else None
    )
    executed = 0
    for sid, row in zip(stmt_ids.tolist(), rows.tolist()):
        ctx = stmts[sid]
        stmt = ctx.statement
        env = dict(zip(ctx.index_names, row[1 : 2 * depths[sid] : 2]))
        if locks is None:
            _execute_instance(stmt, env, store)
        else:
            with ExitStack() as stack:
                for name in arrays_of[sid]:
                    stack.enter_context(locks[name])
                _execute_instance(stmt, env, store)
        executed += 1
    return executed


def execute_schedule_threaded(
    program: LoopProgram,
    schedule: Schedule,
    params: Mapping[str, int] | None = None,
    n_threads: int = 4,
    store: Optional[ArrayStore] = None,
    lock_free: bool = True,
    seed: Optional[int] = None,
    rng: Optional[random.Random] = None,
) -> ThreadedRun:
    """Execute a schedule with a real thread pool and phase barriers.

    ``lock_free=False`` guards every instance with the per-array locks
    described in the module docstring; the default trusts the schedule's
    phase structure (as the paper's generated OpenMP code does).

    ``seed``/``rng`` mirror :func:`~repro.runtime.executor.execute_schedule`:
    when either is given, each phase's units (or array rows) are shuffled
    with a private ``random.Random`` before the round-robin distribution, so
    the worker assignment — not just the interleaving — varies between runs.
    The default (both ``None``) keeps the historical deterministic
    distribution; ``Plan.execute(threads=…)`` passes its configured seed so
    both executors are driven uniformly.
    """
    if n_threads < 1:
        raise ValueError("n_threads must be >= 1")
    store = store if store is not None else make_store(program)
    contexts = {ctx.statement.label: ctx for ctx in program.statement_contexts()}
    locks = None if lock_free else {name: threading.Lock() for name in store}
    shuffle = rng is not None or seed is not None
    if shuffle and rng is None:
        rng = random.Random(seed)
    instances = 0
    with ThreadPoolExecutor(max_workers=n_threads) as pool:
        for phase in schedule.phases:
            if isinstance(phase, ArrayPhase):
                # Array phases: round-robin the point rows themselves — each
                # worker gets a strided view, no unit objects are built.
                points = phase.points
                if shuffle:
                    order = list(range(len(points)))
                    rng.shuffle(order)
                    points = points[np.asarray(order, dtype=np.int64)]
                futures = [
                    pool.submit(_run_rows, phase.label, rows, contexts, store, locks)
                    for rows in (
                        points[k::n_threads] for k in range(n_threads)
                    )
                    if len(rows)
                ]
            elif isinstance(phase, UnifiedArrayPhase):
                # Statement-level array phases: round-robin (stmt_id, row)
                # pairs across the workers as strided views.
                ids, rows = phase.stmt_ids, phase.rows
                if shuffle:
                    order = list(range(len(rows)))
                    rng.shuffle(order)
                    perm = np.asarray(order, dtype=np.int64)
                    ids, rows = ids[perm], rows[perm]
                futures = [
                    pool.submit(
                        _run_unified_rows, phase.labels, phase.depths,
                        ids[k::n_threads], rows[k::n_threads],
                        contexts, store, locks,
                    )
                    for k in range(n_threads)
                    if len(rows[k::n_threads])
                ]
            else:
                units = list(phase.units)
                if shuffle:
                    rng.shuffle(units)
                # Round-robin the units across workers: deterministic
                # distribution, arbitrary execution interleaving.
                slices: List[List] = [units[k::n_threads] for k in range(n_threads)]
                futures = [
                    pool.submit(_run_units, s, contexts, store, locks)
                    for s in slices
                    if s
                ]
            # The implicit barrier: wait for every worker before the next phase.
            for f in futures:
                instances += f.result()
    return ThreadedRun(
        store=store,
        n_threads=n_threads,
        phases_executed=len(schedule.phases),
        instances_executed=instances,
    )
