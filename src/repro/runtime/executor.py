"""Executing loop programs and schedules over concrete numpy arrays.

Two executors are provided:

* :func:`execute_sequential` — runs the program in original sequential order;
  this is the semantic ground truth.
* :func:`execute_schedule` — runs a partitioned :class:`~repro.core.schedule.Schedule`,
  phase by phase.  Units inside a phase are executed in an arbitrary
  (deliberately shuffled) order to emulate concurrent execution: if the
  schedule is only correct under some lucky intra-phase ordering, shuffling
  exposes the bug.  Instances inside a unit keep their order (a WHILE chain is
  sequential by construction).  Since the backend registry landed this is a
  shim over the registered ``serial`` backend (see
  :mod:`repro.runtime.backends`); the threaded, process-pool and simulated
  executors live behind the same registry.

Array stores are dictionaries ``name -> numpy int64 array``; statement
semantics are exact integer functions (see :mod:`repro.ir.semantics`), so
"schedule result == sequential result" is an exact equality check, performed
by :func:`validate_schedule`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..core.schedule import Schedule
from ..ir.nodes import Statement
from ..ir.program import LoopProgram
from ..ir.semantics import DEFAULT_SEMANTICS

__all__ = [
    "ArrayStore",
    "make_store",
    "execute_sequential",
    "execute_schedule",
    "validate_schedule",
    "ValidationReport",
]

ArrayStore = Dict[str, np.ndarray]


def make_store(program: LoopProgram, fill: str = "index", seed: int = 0) -> ArrayStore:
    """Allocate the arrays a program touches.

    ``fill='index'`` initialises each array with distinct small integers
    (deterministic), which maximises the chance that an ordering bug changes
    the final contents; ``fill='zeros'`` gives all-zero arrays;
    ``fill='random'`` draws seeded uniform integers in ``[1, 1009)`` —
    deterministic for a given ``seed``, used by the differential harness to
    vary the initial contents across examples (``seed`` is ignored by the
    other fill modes).
    """
    store: ArrayStore = {}
    rng = np.random.default_rng(seed) if fill == "random" else None
    for name, shape in program.array_shapes.items():
        size = int(np.prod(shape))
        if fill == "index":
            data = (np.arange(size, dtype=np.int64) % 1009) + 1
        elif fill == "zeros":
            data = np.zeros(size, dtype=np.int64)
        elif fill == "random":
            data = rng.integers(1, 1009, size=size, dtype=np.int64)
        else:
            raise ValueError(f"unknown fill mode {fill!r}")
        store[name] = data.reshape(shape)
    missing = [a for a in program.arrays() if a not in store]
    if missing:
        raise ValueError(
            f"program {program.name!r} references arrays without declared shapes: {missing}"
        )
    return store


def _execute_instance_env(stmt: Statement, env: Mapping[str, int], store: ArrayStore) -> None:
    """Run one statement instance against a prebuilt environment: gather
    reads, compute, store through writes.

    The single definition of statement dispatch — the serial, threaded and
    process backends all execute through this body (the differential harness
    pins them bit-identical, which only holds while they share it).
    """
    read_values = []
    for ref in stmt.reads:
        idx = ref.evaluate(env)
        read_values.append(int(store[ref.array][idx]))
    semantics = stmt.semantics or DEFAULT_SEMANTICS
    value = semantics(store, env, read_values)
    for ref in stmt.writes:
        idx = ref.evaluate(env)
        store[ref.array][idx] = int(value)


def _execute_instance(
    stmt: Statement,
    iteration: Sequence[int],
    index_names: Sequence[str],
    store: ArrayStore,
) -> None:
    """Run one statement instance from its iteration vector."""
    _execute_instance_env(stmt, dict(zip(index_names, iteration)), store)


def execute_sequential(
    program: LoopProgram,
    params: Mapping[str, int],
    store: Optional[ArrayStore] = None,
) -> ArrayStore:
    """Run the program in its original sequential order; returns the final store."""
    store = store if store is not None else make_store(program)
    contexts = {ctx.statement.label: ctx for ctx in program.statement_contexts()}
    for label, iteration in program.sequential_iterations(params):
        ctx = contexts[label]
        _execute_instance(ctx.statement, iteration, ctx.index_names, store)
    return store


def execute_schedule(
    program: LoopProgram,
    schedule: Schedule,
    params: Mapping[str, int] | None = None,
    store: Optional[ArrayStore] = None,
    seed: Optional[int] = 0,
    rng: Optional[random.Random] = None,
) -> ArrayStore:
    """Run a partitioned schedule phase by phase; returns the final store.

    A thin shim over the ``serial`` backend of the
    :mod:`repro.runtime.backends` registry, kept for its historical
    signature/return (a bare store); new call sites should use
    :func:`repro.runtime.backends.execute`, which also reports per-phase
    counters.

    Within each phase the units are executed in a shuffled order to emulate an
    arbitrary interleaving of the parallel units; inside a unit the instance
    order is preserved.  The shuffle draws from a private ``random.Random``
    (never the global module state): pass ``rng`` to supply your own generator
    — fully reproducible and side-effect-free — or ``seed`` to have one
    created; ``seed=None`` with no ``rng`` disables shuffling (phase order as
    built).

    :class:`~repro.core.schedule.ArrayPhase` phases are executed directly off
    their ``(n, dim)`` point array — no per-point unit objects are built.
    """
    from .backends import ExecConfig, execute

    return execute(
        program, schedule, params, store=store,
        config=ExecConfig(backend="serial", seed=seed), rng=rng,
    ).store


@dataclass(frozen=True)
class ValidationReport:
    """Result of validating a schedule against the sequential execution."""

    program: str
    schedule: str
    covers_all_instances: bool
    respects_dependences: bool
    arrays_match: bool
    mismatched_arrays: Tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        # respects_dependences defaults to True when no dependences were
        # supplied, so including it here makes `ok` cover the dependence
        # check exactly when the caller asked for one — a schedule that
        # violates dependences but got lucky on the tested shuffles must
        # not report OK.
        return (
            self.covers_all_instances
            and self.respects_dependences
            and self.arrays_match
        )

    def __str__(self) -> str:
        status = "OK" if self.ok else "FAILED"
        return (
            f"[{status}] schedule {self.schedule!r} on {self.program!r}: "
            f"coverage={self.covers_all_instances}, deps={self.respects_dependences}, "
            f"arrays={self.arrays_match}"
            + (f" (mismatch in {', '.join(self.mismatched_arrays)})" if self.mismatched_arrays else "")
        )


def validate_schedule(
    program: LoopProgram,
    schedule: Schedule,
    params: Mapping[str, int] | None = None,
    dependences=None,
    seeds: Sequence[int] = (0, 1, 2),
) -> ValidationReport:
    """Check a schedule end to end: coverage, dependence safety, and semantics.

    The semantic check runs the schedule with several intra-phase shuffle seeds
    and compares every array against the sequential execution, exactly.
    """
    params = dict(params or {})
    expected_instances = [
        (label, tuple(it)) for label, it in program.sequential_iterations(params)
    ]
    covers = schedule.covers(expected_instances)
    respects = True
    if dependences is not None:
        respects = schedule.respects(dependences)

    reference = execute_sequential(program, params)
    arrays_match = True
    mismatched: List[str] = []
    for seed in seeds:
        result = execute_schedule(program, schedule, params, seed=seed)
        for name in reference:
            if not np.array_equal(reference[name], result[name]):
                arrays_match = False
                if name not in mismatched:
                    mismatched.append(name)
        if not arrays_match:
            break
    return ValidationReport(
        program=program.name,
        schedule=schedule.name,
        covers_all_instances=covers,
        respects_dependences=respects,
        arrays_match=arrays_match,
        mismatched_arrays=tuple(mismatched),
    )
