"""Executable Python code generation.

Two generators whose output is *actually executed* by the test-suite:

* :func:`generate_chain_function` — the WHILE-loop chain walker of §3.2 as
  Python source: starting from an iteration it repeatedly applies
  ``i ← i·T + u`` (with explicit integrality checks) while the image stays in
  the intermediate set, and returns the visited chain.  The tests compare the
  compiled function against :func:`repro.core.chains.chains_from_recurrence`.
* :func:`generate_schedule_runner` — a Python function that replays a
  partitioned schedule over an array store (phases → barriers, units → ordered
  instance lists) using the program's statement semantics.  The tests compare
  its effect against the interpreting executor and the sequential reference.

Generated source is returned as a string and compiled with ``compile``/``exec``
into an isolated namespace, so the artifacts can also be written to disk and
inspected — the Python analogue of the paper's generated Fortran.
"""

from __future__ import annotations

from fractions import Fraction
from textwrap import indent
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..core.recurrence import AffineRecurrence
from ..core.schedule import Schedule
from ..ir.program import LoopProgram

__all__ = [
    "generate_chain_function",
    "compile_function",
    "generate_schedule_runner",
]


def compile_function(source: str, name: str) -> Callable:
    """Compile generated source and return the named function object."""
    namespace: Dict[str, object] = {}
    exec(compile(source, filename=f"<generated:{name}>", mode="exec"), namespace)
    fn = namespace.get(name)
    if fn is None:
        raise ValueError(f"generated source does not define {name!r}")
    return fn  # type: ignore[return-value]


def generate_chain_function(
    recurrence: AffineRecurrence,
    dim: int,
    name: str = "follow_chain",
) -> str:
    """Python source for the WHILE-loop chain walker.

    The generated function has the signature
    ``follow_chain(start, in_intermediate)`` where ``in_intermediate`` is a
    membership predicate for the intermediate set; it returns the list of
    visited iterations (the monotonic chain), exactly what the paper's
    ``chain`` subroutine executes.  Both the forward map and its inverse are
    emitted because the lexicographically forward direction can instantiate
    either side of the dependence equation (cf. figure 2).
    """
    def emit_map(T, u, fname: str) -> List[str]:
        lines = [f"def {fname}(point):"]
        lines.append('    """Apply the affine recurrence; return None when non-integral."""')
        for col in range(dim):
            terms = []
            for row in range(dim):
                coeff = Fraction(T[row][col])
                if coeff == 0:
                    continue
                terms.append(f"Fraction({coeff.numerator}, {coeff.denominator}) * point[{row}]")
            uc = Fraction(u[col])
            terms.append(f"Fraction({uc.numerator}, {uc.denominator})")
            lines.append(f"    c{col} = " + " + ".join(terms))
        checks = " or ".join(f"c{col}.denominator != 1" for col in range(dim))
        lines.append(f"    if {checks}:")
        lines.append("        return None")
        coords = ", ".join(f"int(c{col})" for col in range(dim))
        lines.append(f"    return ({coords}{',' if dim == 1 else ''})")
        return lines

    fwd = recurrence
    inv = recurrence.inverse()
    source_lines: List[str] = ["from fractions import Fraction", ""]
    source_lines += emit_map(fwd.T.tolist(), list(fwd.u), "_apply_forward")
    source_lines.append("")
    source_lines += emit_map(inv.T.tolist(), list(inv.u), "_apply_inverse")
    source_lines.append("")
    source_lines += [
        f"def {name}(start, in_intermediate):",
        '    """Follow the monotonic recurrence chain from start (start included)."""',
        "    chain = [tuple(start)]",
        "    current = tuple(start)",
        "    while True:",
        "        candidates = []",
        "        for step in (_apply_forward, _apply_inverse):",
        "            nxt = step(current)",
        "            if nxt is not None and nxt > current and in_intermediate(nxt):",
        "                candidates.append(nxt)",
        "        candidates = sorted(set(candidates))",
        "        if not candidates:",
        "            return chain",
        "        if len(candidates) > 1:",
        "            raise RuntimeError('chain bifurcates at %r' % (current,))",
        "        current = candidates[0]",
        "        if current in chain:",
        "            return chain",
        "        chain.append(current)",
    ]
    return "\n".join(source_lines) + "\n"


def generate_schedule_runner(
    program: LoopProgram,
    schedule: Schedule,
    name: str = "run_schedule",
) -> str:
    """Python source that replays a schedule over an array store.

    The generated function takes ``(store, semantics)`` where ``store`` maps
    array names to numpy arrays and ``semantics`` maps statement labels to
    callables ``(store, env, read_values) -> value``; phases are separated by
    comments marking the barrier, mirroring the OpenMP structure.
    """
    contexts = {ctx.statement.label: ctx for ctx in program.statement_contexts()}
    lines: List[str] = [
        f"def {name}(store, semantics):",
        f'    """Generated from schedule {schedule.name!r} ({schedule.num_phases} phases)."""',
    ]
    for pi, phase in enumerate(schedule.phases):
        lines.append(f"    # phase {pi}: {phase.name} ({len(phase.units)} parallel units)")
        for unit in phase.units:
            for label, iteration in unit.instances:
                ctx = contexts[label]
                env_items = ", ".join(
                    f"{n!r}: {v}" for n, v in zip(ctx.index_names, iteration)
                )
                stmt = ctx.statement
                reads = []
                for ref in stmt.reads:
                    idx = ref.evaluate(dict(zip(ctx.index_names, iteration)))
                    reads.append(f"int(store[{ref.array!r}][{idx!r}])")
                reads_src = "[" + ", ".join(reads) + "]"
                lines.append(
                    f"    _v = semantics[{label!r}](store, {{{env_items}}}, {reads_src})"
                )
                for ref in stmt.writes:
                    idx = ref.evaluate(dict(zip(ctx.index_names, iteration)))
                    lines.append(f"    store[{ref.array!r}][{idx!r}] = int(_v)")
        lines.append(f"    # ---- barrier after phase {pi} ----")
    lines.append("    return store")
    return "\n".join(lines) + "\n"
