"""Executable Python code generation.

Three generators whose output is *actually executed* by the test-suite:

* :func:`generate_chain_function` — the WHILE-loop chain walker of §3.2 as
  Python source: starting from an iteration it repeatedly applies
  ``i ← i·T + u`` (with explicit integrality checks) while the image stays in
  the intermediate set, and returns the visited chain.  The tests compare the
  compiled function against :func:`repro.core.chains.chains_from_recurrence`.
* :func:`generate_schedule_runner` — a Python function that replays a
  partitioned schedule over an array store (phases → barriers, units → ordered
  instance lists) using the program's statement semantics.  The tests compare
  its effect against the interpreting executor and the sequential reference.
* :func:`generate_symbolic_kernel_source` — the whole-schedule NumPy kernel
  for a *symbolic* plan (:mod:`repro.core.symbolic`): every DOALL phase is a
  strided-grid gather/compute/scatter, the coset-chain phase steps all chains
  in lockstep, the statement semantics are inlined as vectorized modular
  arithmetic, and every bound is a baked-in integer.  Per-point Python
  dispatch disappears entirely.  :func:`ensure_symbolic_kernel` compiles the
  module once per plan fingerprint and caches the function (the
  hot-loaded-kernel idiom); schedules no kernel can serve report a reason via
  :func:`symbolic_kernel_reason` and the ``compiled`` backend falls back.

Generated source is returned as a string and compiled with ``compile``/``exec``
into an isolated namespace, so the artifacts can also be written to disk and
inspected — the Python analogue of the paper's generated Fortran.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from fractions import Fraction
from textwrap import indent
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..core.recurrence import AffineRecurrence
from ..core.schedule import Schedule
from ..ir.program import LoopProgram
from ..ir.semantics import (
    COMPUTE_HEAVY_ROUNDS,
    compute_heavy_semantics,
    order_sensitive_semantics,
    sum_semantics,
)
from ..isl.affine import AffineExpr

__all__ = [
    "generate_chain_function",
    "compile_function",
    "generate_schedule_runner",
    "generate_symbolic_kernel_source",
    "symbolic_kernel_reason",
    "ensure_symbolic_kernel",
    "kernel_cache_stats",
    "clear_kernel_cache",
]


def compile_function(source: str, name: str) -> Callable:
    """Compile generated source and return the named function object."""
    namespace: Dict[str, object] = {}
    exec(compile(source, filename=f"<generated:{name}>", mode="exec"), namespace)
    fn = namespace.get(name)
    if fn is None:
        raise ValueError(f"generated source does not define {name!r}")
    return fn  # type: ignore[return-value]


def generate_chain_function(
    recurrence: AffineRecurrence,
    dim: int,
    name: str = "follow_chain",
) -> str:
    """Python source for the WHILE-loop chain walker.

    The generated function has the signature
    ``follow_chain(start, in_intermediate)`` where ``in_intermediate`` is a
    membership predicate for the intermediate set; it returns the list of
    visited iterations (the monotonic chain), exactly what the paper's
    ``chain`` subroutine executes.  Both the forward map and its inverse are
    emitted because the lexicographically forward direction can instantiate
    either side of the dependence equation (cf. figure 2).
    """
    def emit_map(T, u, fname: str) -> List[str]:
        lines = [f"def {fname}(point):"]
        lines.append('    """Apply the affine recurrence; return None when non-integral."""')
        for col in range(dim):
            terms = []
            for row in range(dim):
                coeff = Fraction(T[row][col])
                if coeff == 0:
                    continue
                terms.append(f"Fraction({coeff.numerator}, {coeff.denominator}) * point[{row}]")
            uc = Fraction(u[col])
            terms.append(f"Fraction({uc.numerator}, {uc.denominator})")
            lines.append(f"    c{col} = " + " + ".join(terms))
        checks = " or ".join(f"c{col}.denominator != 1" for col in range(dim))
        lines.append(f"    if {checks}:")
        lines.append("        return None")
        coords = ", ".join(f"int(c{col})" for col in range(dim))
        lines.append(f"    return ({coords}{',' if dim == 1 else ''})")
        return lines

    fwd = recurrence
    inv = recurrence.inverse()
    source_lines: List[str] = ["from fractions import Fraction", ""]
    source_lines += emit_map(fwd.T.tolist(), list(fwd.u), "_apply_forward")
    source_lines.append("")
    source_lines += emit_map(inv.T.tolist(), list(inv.u), "_apply_inverse")
    source_lines.append("")
    source_lines += [
        f"def {name}(start, in_intermediate):",
        '    """Follow the monotonic recurrence chain from start (start included)."""',
        "    chain = [tuple(start)]",
        "    current = tuple(start)",
        "    while True:",
        "        candidates = []",
        "        for step in (_apply_forward, _apply_inverse):",
        "            nxt = step(current)",
        "            if nxt is not None and nxt > current and in_intermediate(nxt):",
        "                candidates.append(nxt)",
        "        candidates = sorted(set(candidates))",
        "        if not candidates:",
        "            return chain",
        "        if len(candidates) > 1:",
        "            raise RuntimeError('chain bifurcates at %r' % (current,))",
        "        current = candidates[0]",
        "        if current in chain:",
        "            return chain",
        "        chain.append(current)",
    ]
    return "\n".join(source_lines) + "\n"


def generate_schedule_runner(
    program: LoopProgram,
    schedule: Schedule,
    name: str = "run_schedule",
) -> str:
    """Python source that replays a schedule over an array store.

    The generated function takes ``(store, semantics)`` where ``store`` maps
    array names to numpy arrays and ``semantics`` maps statement labels to
    callables ``(store, env, read_values) -> value``; phases are separated by
    comments marking the barrier, mirroring the OpenMP structure.
    """
    contexts = {ctx.statement.label: ctx for ctx in program.statement_contexts()}
    lines: List[str] = [
        f"def {name}(store, semantics):",
        f'    """Generated from schedule {schedule.name!r} ({schedule.num_phases} phases)."""',
    ]
    for pi, phase in enumerate(schedule.phases):
        lines.append(f"    # phase {pi}: {phase.name} ({len(phase.units)} parallel units)")
        for unit in phase.units:
            for label, iteration in unit.instances:
                ctx = contexts[label]
                env_items = ", ".join(
                    f"{n!r}: {v}" for n, v in zip(ctx.index_names, iteration)
                )
                stmt = ctx.statement
                reads = []
                for ref in stmt.reads:
                    idx = ref.evaluate(dict(zip(ctx.index_names, iteration)))
                    reads.append(f"int(store[{ref.array!r}][{idx!r}])")
                reads_src = "[" + ", ".join(reads) + "]"
                lines.append(
                    f"    _v = semantics[{label!r}](store, {{{env_items}}}, {reads_src})"
                )
                for ref in stmt.writes:
                    idx = ref.evaluate(dict(zip(ctx.index_names, iteration)))
                    lines.append(f"    store[{ref.array!r}][{idx!r}] = int(_v)")
        lines.append(f"    # ---- barrier after phase {pi} ----")
    lines.append("    return store")
    return "\n".join(lines) + "\n"

# ---------------------------------------------------------------------------
# symbolic-plan kernels: the compiled execution path
# ---------------------------------------------------------------------------

#: Semantics the kernel emitter can inline as vectorized arithmetic.  The
#: order-sensitive chain reduces every gathered value mod M first, so the
#: int64 intermediate ``31 * ((acc + v) % M)`` stays below 2**36 — congruent
#: to, and therefore bit-identical with, the interpreter's arbitrary-
#: precision chain.
_VECTORIZABLE = ("order", "sum", "heavy")


def _statement_semantics_kind(stmt) -> Optional[str]:
    sem = stmt.semantics
    if sem is None or sem is order_sensitive_semantics:
        return "order"
    if sem is sum_semantics:
        return "sum"
    if sem is compute_heavy_semantics:
        return "heavy"
    return None


def _integer_subscripts(ref, index_names) -> bool:
    for sub in ref.subscripts:
        if Fraction(sub.constant).denominator != 1:
            return False
        for name, coeff in sub.coeffs:
            if Fraction(coeff).denominator != 1 or name not in index_names:
                return False
    return True


def symbolic_kernel_reason(program: LoopProgram, schedule: Schedule) -> Optional[str]:
    """``None`` when a vectorized kernel can be generated for this schedule,
    else the human-readable reason the ``compiled`` backend records before it
    falls back to ``serial``."""
    from ..core.symbolic import CosetChainPhase, SymbolicDoallPhase

    if schedule.meta.get("scheme") != "symbolic":
        return (
            f"schedule {schedule.name!r} is not a symbolic plan "
            f"(scheme {schedule.meta.get('scheme', 'unknown')!r})"
        )
    for phase in schedule.phases:
        if not isinstance(phase, (SymbolicDoallPhase, CosetChainPhase)):
            return f"phase {phase.name!r} is not a symbolic box/coset phase"
    contexts = program.statement_contexts()
    if len(contexts) != 1:
        return "kernels cover single-statement nests only"
    ctx = contexts[0]
    if _statement_semantics_kind(ctx.statement) is None:
        return (
            "custom statement semantics cannot be inlined into a vectorized "
            "kernel"
        )
    for ref in (*ctx.statement.writes, *ctx.statement.reads):
        if not _integer_subscripts(ref, ctx.index_names):
            return (
                f"reference {ref.array} has non-integer or parametric "
                "subscripts"
            )
    return None


def _render_subscript(expr: AffineExpr, var_map: Mapping[str, str]) -> str:
    """One affine subscript as a NumPy index expression over grid variables."""
    terms: List[str] = []
    for name, coeff in expr.coeffs:
        c = int(coeff)
        if c == 0:
            continue
        v = var_map[name]
        if c == 1:
            terms.append(v)
        elif c == -1:
            terms.append(f"-{v}")
        else:
            terms.append(f"{c} * {v}")
    const = int(expr.constant)
    if const or not terms:
        terms.append(str(const))
    body = " + ".join(terms).replace("+ -", "- ")
    return body if len(terms) == 1 else f"({body})"


def _emit_statement_body(
    lines: List[str],
    stmt,
    index_names: Sequence[str],
    var_map: Mapping[str, str],
    kind: str,
    pad: str,
) -> None:
    """Gather / vectorized-semantics / scatter for one phase block."""
    modular = kind in ("order", "heavy")
    for j, ref in enumerate(stmt.reads):
        subs = ", ".join(_render_subscript(s, var_map) for s in ref.subscripts)
        gather = f"store[{ref.array!r}][{subs}]"
        if modular:
            gather = f"{gather} % _M"
        lines.append(f"{pad}_r{j} = {gather}")
    if modular:
        lines.append(f"{pad}_acc = 17")
        for j in range(len(stmt.reads)):
            lines.append(f"{pad}_acc = (31 * ((_acc + _r{j}) % _M)) % _M")
        for k, name in enumerate(sorted(index_names)):
            lines.append(
                f"{pad}_acc = (_acc + {k + 2} * {var_map[name]}) % _M"
            )
        if kind == "heavy":
            lines.append(f"{pad}for _mix in range(_ROUNDS):")
            lines.append(f"{pad}    _acc = (31 * _acc + 7) % _M")
    else:  # sum semantics: written value = sum of reads + 1
        if stmt.reads:
            total = " + ".join(f"_r{j}" for j in range(len(stmt.reads)))
            lines.append(f"{pad}_acc = {total} + 1")
        else:
            lines.append(f"{pad}_acc = 1")
    for ref in stmt.writes:
        subs = ", ".join(_render_subscript(s, var_map) for s in ref.subscripts)
        lines.append(f"{pad}store[{ref.array!r}][{subs}] = _acc")


def generate_symbolic_kernel_source(
    program: LoopProgram,
    schedule: Schedule,
    name: str = "run_kernel",
) -> str:
    """The complete importable kernel module for a symbolic schedule.

    The generated ``{name}(store)`` mutates the arrays in place and returns
    ``[(phase_name, instances_executed, elapsed_seconds), ...]`` — one row
    per phase, the shape the ``compiled`` backend turns into
    :class:`~repro.runtime.backends.PhaseStats`.  All loop bounds, box
    extents and chain-length formulas are baked in as integers; the only
    Python-level loop left is the chain phase's lockstep walk (one iteration
    per chain *step*, not per instance).
    """
    from ..core.symbolic import CosetChainPhase, SymbolicDoallPhase

    reason = symbolic_kernel_reason(program, schedule)
    if reason is not None:
        raise ValueError(f"cannot generate a symbolic kernel: {reason}")
    ctx = program.statement_contexts()[0]
    stmt = ctx.statement
    names = ctx.index_names
    dim = len(names)
    kind = _statement_semantics_kind(stmt)

    lines: List[str] = [
        '"""Auto-generated symbolic-plan kernel.  Do not edit."""',
        "",
        "import time as _time",
        "",
        "import numpy as np",
        "",
        "_M = 2147483647  # the semantics modulus (2**31 - 1)",
    ]
    if kind == "heavy":
        lines.append(f"_ROUNDS = {COMPUTE_HEAVY_ROUNDS}")
    lines += [
        "",
        "",
        f"def {name}(store):",
        f'    """Generated from schedule {schedule.name!r} '
        f'({schedule.num_phases} phases, {schedule.total_work} instances)."""',
        "    _stats = []",
    ]

    for pi, phase in enumerate(schedule.phases):
        lines.append(f"    # phase {pi}: {phase.name}")
        lines.append("    _t0 = _time.perf_counter()")
        if isinstance(phase, SymbolicDoallPhase):
            for box in phase.boxes:
                lines.append(
                    f"    # box {' x '.join(f'[{lo}, {hi}]' for lo, hi in box)}"
                )
                for k, (lo, hi) in enumerate(box):
                    shape = ", ".join(
                        "-1" if j == k else "1" for j in range(dim)
                    )
                    reshape = f".reshape({shape})" if dim > 1 else ""
                    lines.append(
                        f"    _i{k} = np.arange({lo}, {hi + 1}, "
                        f"dtype=np.int64){reshape}"
                    )
                var_map = {n: f"_i{k}" for k, n in enumerate(names)}
                _emit_statement_body(lines, stmt, names, var_map, kind, "    ")
            lines.append(
                f"    _stats.append(({phase.name!r}, {phase.work}, "
                "_time.perf_counter() - _t0))"
            )
        elif isinstance(phase, CosetChainPhase):
            step = phase.step
            lines.append(
                f"    # {len(phase)} coset chains, step {step}, "
                f"P2 {' x '.join(f'[{lo}, {hi}]' for lo, hi in phase.box)}"
            )
            blocks = []
            for bi, box in enumerate(phase.start_boxes):
                axes = ", ".join(
                    f"np.arange({lo}, {hi + 1}, dtype=np.int64)"
                    for lo, hi in box
                )
                lines.append(
                    f"    _g{bi} = np.meshgrid({axes}, indexing='ij')"
                )
                lines.append(
                    f"    _w{bi} = np.stack([_a.ravel() for _a in _g{bi}], "
                    "axis=1)"
                )
                blocks.append(f"_w{bi}")
            if len(blocks) == 1:
                lines.append(f"    _starts = {blocks[0]}")
            else:
                lines.append(
                    f"    _starts = np.concatenate([{', '.join(blocks)}], "
                    "axis=0)"
                )
            avail = []
            for k, u_k in enumerate(step):
                if u_k == 0:
                    continue
                lo2, hi2 = phase.box[k]
                if u_k > 0:
                    avail.append(f"({hi2} - _starts[:, {k}]) // {u_k}")
                else:
                    avail.append(f"(_starts[:, {k}] - {lo2}) // {-u_k}")
            if len(avail) == 1:
                lines.append(f"    _lens = {avail[0]} + 1")
            else:
                lines.append(
                    f"    _lens = np.minimum.reduce([{', '.join(avail)}]) + 1"
                )
            lines += [
                f"    if int(_lens.sum()) != {phase.work}:",
                "        raise RuntimeError(",
                "            'coset chains do not tile P2: %d != %d'",
                f"            % (int(_lens.sum()), {phase.work}))",
                "    # longest chains first: the active set per step is a prefix",
                "    _ord = np.argsort(-_lens, kind='stable')",
                "    _starts = _starts[_ord]",
                "    _neg = -_lens[_ord]",
                "    for _t in range(int(_lens.max()) if _lens.size else 0):",
                "        _na = int(np.searchsorted(_neg, -_t, side='left'))",
            ]
            for k, u_k in enumerate(step):
                off = f" + _t * {u_k}" if u_k else ""
                lines.append(f"        _i{k} = _starts[:_na, {k}]{off}")
            var_map = {n: f"_i{k}" for k, n in enumerate(names)}
            _emit_statement_body(lines, stmt, names, var_map, kind, "        ")
            lines.append(
                f"    _stats.append(({phase.name!r}, {phase.work}, "
                "_time.perf_counter() - _t0))"
            )
        lines.append(f"    # ---- barrier after phase {pi} ----")
    lines.append("    return _stats")
    return "\n".join(lines) + "\n"


#: Compiled kernels keyed on ``schedule.meta['kernel_key']`` — the plan
#: fingerprint plus the bound parameters, i.e. one kernel per distinct
#: (program, params) plan, shared across repeated executions.  LRU-bounded
#: (mirroring ``PlanCache``) and lock-guarded: a long-lived server compiles
#: kernels from many threads, and an unbounded dict of generated functions
#: is a slow memory leak over an open-ended request stream.
_KERNEL_CACHE_MAXSIZE = 128
_KERNEL_CACHE: "OrderedDict[str, Callable]" = OrderedDict()
_KERNEL_CACHE_LOCK = threading.Lock()
_KERNEL_CACHE_STATS = {"hits": 0, "misses": 0}


def ensure_symbolic_kernel(
    program: LoopProgram,
    schedule: Schedule,
    name: str = "run_kernel",
) -> Tuple[Callable, str]:
    """The compiled kernel for a symbolic schedule, compiling at most once.

    Returns ``(kernel, "hit" | "miss")``; raises :class:`ValueError` (with
    the :func:`symbolic_kernel_reason`) when the schedule cannot be served
    by a kernel.
    """
    key = schedule.meta.get("kernel_key")
    if not key:
        raise ValueError(
            "cannot generate a symbolic kernel: schedule has no kernel_key "
            "(not built by the symbolic strategy)"
        )
    with _KERNEL_CACHE_LOCK:
        fn = _KERNEL_CACHE.get(key)
        if fn is not None:
            _KERNEL_CACHE.move_to_end(key)
            _KERNEL_CACHE_STATS["hits"] += 1
            return fn, "hit"
    source = generate_symbolic_kernel_source(program, schedule, name=name)
    fn = compile_function(source, name)
    with _KERNEL_CACHE_LOCK:
        _KERNEL_CACHE[key] = fn
        _KERNEL_CACHE.move_to_end(key)
        while len(_KERNEL_CACHE) > _KERNEL_CACHE_MAXSIZE:
            _KERNEL_CACHE.popitem(last=False)
        _KERNEL_CACHE_STATS["misses"] += 1
    return fn, "miss"


def kernel_cache_stats() -> Dict[str, int]:
    """Hit/miss counters and current size of the compiled-kernel cache."""
    with _KERNEL_CACHE_LOCK:
        return {**_KERNEL_CACHE_STATS, "size": len(_KERNEL_CACHE)}


def clear_kernel_cache() -> None:
    with _KERNEL_CACHE_LOCK:
        _KERNEL_CACHE.clear()
        _KERNEL_CACHE_STATS.update(hits=0, misses=0)
