"""repro.codegen — code generation from partitions and schedules.

* :mod:`repro.codegen.bounds` — Fourier–Motzkin loop-bound derivation for
  convex sets (the DOALLCodeGeneration step of Algorithm 1);
* :mod:`repro.codegen.fortran` — pseudo-Fortran/OpenMP listings matching the
  structure of the paper's Example 1/3 output (documentation parity);
* :mod:`repro.codegen.python_source` — executable Python generation for the
  WHILE-loop chain walker and for whole schedules (tested by execution).
"""

from .bounds import BoundExpr, LoopBounds, NestBounds, nest_bounds, render_affine
from .fortran import (
    chain_subroutine,
    doall_nest_listing,
    rec_partition_listing,
    union_listing,
)
from .python_source import (
    compile_function,
    generate_chain_function,
    generate_schedule_runner,
)

__all__ = [
    "nest_bounds",
    "NestBounds",
    "LoopBounds",
    "BoundExpr",
    "render_affine",
    "doall_nest_listing",
    "union_listing",
    "chain_subroutine",
    "rec_partition_listing",
    "generate_chain_function",
    "generate_schedule_runner",
    "compile_function",
]
