"""Loop-bound generation from convex sets (Fourier–Motzkin code generation).

Algorithm 1 hands every fully parallel set to ``DOALLCodeGeneration``, which
separates the set into disjoint convex sets and generates one DOALL loop nest
per convex set, bounded by that set's constraints.  The bounds of loop level
``k`` come from eliminating the deeper variables and collecting, among the
remaining constraints, the lower/upper bounds on variable ``k`` as affine
expressions of the outer variables — rounded with ceiling/floor division
because the coefficients need not be ±1.  Constraints that are not usable as
bounds (equalities, or inequalities the projection could not tighten into the
bounds) become ``IF`` guards at the innermost level, exactly like the
``IF (i1-3.le.3*((i1-2)/3))`` guards in the paper's listings.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Tuple

from ..isl.affine import AffineExpr
from ..isl.convex import Constraint, ConvexSet, EQ
from ..isl.fourier_motzkin import eliminate_variables

__all__ = ["BoundExpr", "LoopBounds", "NestBounds", "nest_bounds", "render_affine"]


def render_affine(expr: AffineExpr) -> str:
    """Render an affine expression in Fortran-ish source syntax."""
    parts: List[str] = []
    for name, coeff in expr.coeffs:
        c = coeff
        if c == 1:
            term = name
        elif c == -1:
            term = f"-{name}"
        else:
            term = f"{c}*{name}"
        if parts and not term.startswith("-"):
            parts.append("+" + term)
        else:
            parts.append(term)
    if expr.constant != 0 or not parts:
        c = expr.constant
        if parts and c > 0:
            parts.append(f"+{c}")
        else:
            parts.append(f"{c}")
    return "".join(parts)


@dataclass(frozen=True)
class BoundExpr:
    """One bound: ``expr / divisor`` with ceiling (lower) or floor (upper) rounding."""

    expr: AffineExpr
    divisor: int
    is_lower: bool

    def render(self) -> str:
        body = render_affine(self.expr)
        if self.divisor == 1:
            return body
        if self.is_lower:
            # ceil(e/d) == floor((e + d - 1)/d) for positive d
            return f"({render_affine(self.expr + (self.divisor - 1))})/{self.divisor}"
        return f"({body})/{self.divisor}"

    def evaluate(self, env) -> int:
        value = self.expr.evaluate(env)
        if self.is_lower:
            return -((-value) // self.divisor)  # ceiling division
        return value // self.divisor  # floor division


@dataclass(frozen=True)
class LoopBounds:
    """All lower and upper bounds of one loop level (MAX of lowers, MIN of uppers)."""

    variable: str
    lowers: Tuple[BoundExpr, ...]
    uppers: Tuple[BoundExpr, ...]

    def render_lower(self) -> str:
        rendered = [b.render() for b in self.lowers] or ["-infinity"]
        return rendered[0] if len(rendered) == 1 else "MAX(" + ", ".join(rendered) + ")"

    def render_upper(self) -> str:
        rendered = [b.render() for b in self.uppers] or ["+infinity"]
        return rendered[0] if len(rendered) == 1 else "MIN(" + ", ".join(rendered) + ")"


@dataclass(frozen=True)
class NestBounds:
    """Per-level bounds plus leftover guard constraints for one convex set."""

    levels: Tuple[LoopBounds, ...]
    guards: Tuple[Constraint, ...]

    def is_bounded(self) -> bool:
        return all(b.lowers and b.uppers for b in self.levels)


def nest_bounds(cs: ConvexSet, order: Optional[Sequence[str]] = None) -> NestBounds:
    """Derive loop-nest bounds for a convex set in the given variable order.

    ``order`` defaults to the set's variable order (outermost first).  Equality
    constraints and any constraint that mentions variables deeper than the
    level being bounded end up as guards.
    """
    order = list(order or cs.variables)
    guards: List[Constraint] = [c for c in cs.constraints if c.kind == EQ]
    levels: List[LoopBounds] = []
    for depth, name in enumerate(order):
        outer = set(order[:depth])
        deeper = order[depth + 1:]
        projected = eliminate_variables(
            [c for c in cs.constraints if c.kind != EQ], deeper
        )
        lowers: List[BoundExpr] = []
        uppers: List[BoundExpr] = []
        for c in projected:
            coeff = c.expr.coeff(name)
            rest = c.expr.drop([name])
            if coeff == 0:
                continue
            extra = [v for v in rest.variables if v not in outer and v not in cs.parameters]
            if extra:
                guards.append(c)
                continue
            # Normalized constraints have integer coefficients.
            if coeff.denominator != 1:
                guards.append(c)
                continue
            # c: coeff*name + rest >= 0
            if coeff > 0:
                # name >= ceil((-rest)/coeff)
                lowers.append(BoundExpr(expr=-rest, divisor=int(coeff), is_lower=True))
            else:
                # name <= floor(rest/(-coeff))
                uppers.append(BoundExpr(expr=rest, divisor=int(-coeff), is_lower=False))
        levels.append(LoopBounds(name, tuple(lowers), tuple(uppers)))
    return NestBounds(tuple(levels), tuple(guards))
