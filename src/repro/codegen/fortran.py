"""Pseudo-Fortran / OpenMP listing generation (paper-listing parity).

The paper presents its results as transformed Fortran with ``DOALL`` loops,
``IF`` guards and a ``chain`` subroutine containing the WHILE loop.  This
module renders the same structure from a partitioning result:

* one ``DOALL`` nest per convex member of the symbolic P1 / W / P3 sets, with
  Fourier–Motzkin bounds and residual guards,
* the ``chain`` subroutine that advances the indices by the recurrence
  ``I = I·T + u`` while the iteration stays inside ``Φ ∩ dom Rd``,
* OpenMP-style comments marking the barriers between the three partitions.

The listing is documentation output (the executable path is the schedule +
executors); its structure is compared against the paper's Example 1/3 listings
in the tests at the level of counted DOALL nests and guard presence.
"""

from __future__ import annotations

from fractions import Fraction
from typing import List, Optional, Sequence

from ..core.partition import SymbolicThreeSetPartition
from ..core.recurrence import AffineRecurrence
from ..isl.convex import ConvexSet, EQ
from ..isl.sets import UnionSet
from .bounds import nest_bounds, render_affine

__all__ = ["doall_nest_listing", "union_listing", "chain_subroutine", "rec_partition_listing"]


def _render_guard(constraint) -> str:
    expr = render_affine(constraint.expr)
    op = ".EQ." if constraint.kind == EQ else ".GE."
    return f"IF ({expr} {op} 0) THEN"


def doall_nest_listing(
    cs: ConvexSet,
    body: str,
    indent: int = 0,
    order: Optional[Sequence[str]] = None,
) -> List[str]:
    """One DOALL loop nest for a convex set, with guards at the innermost level."""
    bounds = nest_bounds(cs, order)
    pad = "  " * indent
    lines: List[str] = []
    depth = indent
    for level in bounds.levels:
        lines.append(
            "  " * depth
            + f"DOALL {level.variable} = {level.render_lower()}, {level.render_upper()}"
        )
        depth += 1
    guard_depth = depth
    for guard in bounds.guards:
        lines.append("  " * guard_depth + _render_guard(guard))
        guard_depth += 1
    lines.append("  " * guard_depth + body)
    for _ in bounds.guards:
        guard_depth -= 1
        lines.append("  " * guard_depth + "ENDIF")
    for _ in bounds.levels:
        depth -= 1
        lines.append("  " * depth + "ENDDOALL")
    return [pad + line if not line.startswith(" ") else line for line in lines]


def union_listing(
    sets: UnionSet, body: str, comment: str, order: Optional[Sequence[str]] = None
) -> List[str]:
    """DOALL nests for every convex member of a union, under one comment header."""
    lines = [f"C {comment}"]
    if not sets.members:
        lines.append("C   (empty set)")
        return lines
    for k, member in enumerate(sets.members):
        if member.is_obviously_empty():
            continue
        if k > 0:
            lines.append("c$omp end do nowait")
        lines.extend(doall_nest_listing(member, body, order=order))
    return lines


def chain_subroutine(
    recurrence: AffineRecurrence,
    space: ConvexSet,
    body: str = "s(I)",
    name: str = "chain",
) -> List[str]:
    """The WHILE-loop subroutine executing one monotonic recurrence chain.

    Mirrors the paper's ``SUBROUTINE chain(i, j)``: run the body, then advance
    the index vector by the recurrence ``I = I·T + u`` (emitted as explicit
    per-component updates) while the new iteration stays inside the iteration
    space.  Integrality of the next iterate is enforced with MOD guards, which
    is where the paper's ``IF (i.mod.3.ne.1) RETURN`` comes from.
    """
    variables = list(space.variables)
    T = recurrence.T.tolist()
    u = list(recurrence.u)
    lines: List[str] = [f"SUBROUTINE {name}({', '.join(v.lower() for v in variables)})"]
    conditions = []
    for c in space.constraints:
        conditions.append(f"({render_affine(c.expr)} {'.EQ.' if c.kind == EQ else '.GE.'} 0)")
    cond = " .AND. ".join(conditions) if conditions else ".TRUE."
    lines.append(f"  DO WHILE ({cond})")
    lines.append(f"    {body}")
    # Integrality guards: each next component must be integral.
    denominators = set()
    for col in range(len(variables)):
        for row in range(len(variables)):
            denominators.add(Fraction(T[row][col]).denominator)
        denominators.add(Fraction(u[col]).denominator)
    denominators.discard(1)
    for d in sorted(denominators):
        lines.append(f"    IF (MOD(step_numerator, {d}) .NE. 0) RETURN")
    # Component updates: new_k = sum_r I_r * T[r][k] + u[k]
    news = []
    for col, var in enumerate(variables):
        terms = []
        for row, src in enumerate(variables):
            coeff = Fraction(T[row][col])
            if coeff == 0:
                continue
            terms.append(f"{coeff}*{src.lower()}")
        if u[col] != 0 or not terms:
            terms.append(str(u[col]))
        news.append((f"{var.lower()}p", " + ".join(terms)))
    for new, expr in news:
        lines.append(f"    {new} = {expr}")
    for (new, _), var in zip(news, variables):
        lines.append(f"    {var.lower()} = {new}")
    lines.append("  ENDDO")
    lines.append("END")
    return lines


def rec_partition_listing(
    partition: SymbolicThreeSetPartition,
    recurrence: Optional[AffineRecurrence],
    statement: str = "s(I)",
    order: Optional[Sequence[str]] = None,
) -> str:
    """The full Example-1-style listing: P1 nests, W chain starts, P3 nests."""
    lines: List[str] = []
    lines.extend(union_listing(partition.p1, statement, "initial partition", order))
    lines.append("c$omp barrier")
    if recurrence is not None:
        lines.extend(
            union_listing(partition.w, "chain(I)", "intermediate partition and while start", order)
        )
    else:
        lines.extend(union_listing(partition.p2, statement, "intermediate partition", order))
    lines.append("c$omp barrier")
    lines.extend(union_listing(partition.p3, statement, "final partition", order))
    if recurrence is not None:
        lines.append("")
        space = partition.space.members[0] if partition.space.members else None
        if space is not None:
            lines.extend(chain_subroutine(recurrence, space, statement))
    return "\n".join(lines)
