"""Shared drivers for the set-path vs array-path pipeline comparison.

The engine-equivalence tests (``tests/core/test_array_pipeline.py``) and the
scaling benchmark (``benchmarks/bench_scale_partition.py``) both need to run
the same two pipelines — program → exact Rd → three-set partition → dataflow
schedule, once on the original set/tuple representation and once on the
array-native one — and assert they are bit-identical.  Keeping a single copy
of the drivers and the comparison here guarantees the bench measures exactly
the pipeline the tests verify.

Both drivers are built on the unified planning facade
(:func:`repro.core.strategy.plan` with the ``dataflow`` strategy pinned and a
forced engine), so the equivalence tests and the scaling benchmark exercise
the exact code path a ``plan()`` consumer gets; the three-set partition —
which the dataflow schedule itself does not need — is computed alongside the
plan so the comparison still pins every component of eq. 5.  Caching is
disabled: these drivers exist to *measure and compare* fresh pipeline runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..core.partition import ThreeSetPartition, three_set_partition
from ..core.schedule import Schedule
from ..core.strategy import PlanConfig, plan
from ..dependence.analysis import DependenceAnalysis
from ..ir.program import LoopProgram
from ..isl.relations import FiniteRelation

__all__ = ["PipelineRun", "run_set_pipeline", "run_array_pipeline", "pipeline_mismatches"]

#: The two pinned configurations: the dataflow strategy only, on a forced engine.
SET_PIPELINE_CONFIG = PlanConfig(engine="set", strategies=("dataflow",))
ARRAY_PIPELINE_CONFIG = PlanConfig(engine="vector", strategies=("dataflow",))


@dataclass(frozen=True)
class PipelineRun:
    """Everything one pipeline pass produced, for timing and comparison."""

    analysis: DependenceAnalysis
    rd: FiniteRelation
    partition: ThreeSetPartition
    schedule: Schedule


def _run_pipeline(prog: LoopProgram, config: PlanConfig) -> PipelineRun:
    p = plan(prog, config=config, cache=False)
    rd = p.analysis.iteration_dependences
    space = (
        p.analysis.iteration_space_points
        if config.engine == "set"
        else p.analysis.iteration_space_array
    )
    partition = three_set_partition(space, rd, engine=config.engine)
    return PipelineRun(p.analysis, rd, partition, p.schedule)


def run_set_pipeline(prog: LoopProgram) -> PipelineRun:
    """The pre-array-native pipeline: tuples and frozensets end to end."""
    return _run_pipeline(prog, SET_PIPELINE_CONFIG)


def run_array_pipeline(prog: LoopProgram) -> PipelineRun:
    """The array-native pipeline: sort join, array Rd, CSR wavefront schedule."""
    return _run_pipeline(prog, ARRAY_PIPELINE_CONFIG)


def pipeline_mismatches(set_run: PipelineRun, array_run: PipelineRun) -> List[str]:
    """Differences between the two pipeline passes (empty list == bit-identical).

    Compares the combined relation, every three-set component, and the
    schedules phase by phase (names and exact instance sequences).
    """
    problems: List[str] = []
    if array_run.rd != set_run.rd:
        problems.append("combined dependence relation differs")
    for name in ("p1", "p2", "p3", "w"):
        if getattr(array_run.partition, name) != getattr(set_run.partition, name):
            problems.append(f"three-set component {name.upper()} differs")
    sched_a, sched_s = array_run.schedule, set_run.schedule
    if sched_a.num_phases != sched_s.num_phases:
        problems.append(
            f"phase count differs: {sched_a.num_phases} != {sched_s.num_phases}"
        )
    else:
        for pa, ps in zip(sched_a.phases, sched_s.phases):
            if pa.name != ps.name:
                problems.append(f"phase name differs: {pa.name!r} != {ps.name!r}")
            if pa.instances() != ps.instances():
                problems.append(f"instances differ in phase {pa.name!r}")
    return problems
