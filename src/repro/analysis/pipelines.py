"""Shared drivers for the set-path vs array-path pipeline comparison.

The engine-equivalence tests (``tests/core/test_array_pipeline.py``) and the
scaling benchmark (``benchmarks/bench_scale_partition.py``) both need to run
the same two pipelines — program → exact Rd → three-set partition → dataflow
schedule, once on the original set/tuple representation and once on the
array-native one — and assert they are bit-identical.  Keeping a single copy
of the drivers and the comparison here guarantees the bench measures exactly
the pipeline the tests verify.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..core.dataflow import dataflow_schedule
from ..core.partition import ThreeSetPartition, three_set_partition
from ..core.schedule import Schedule
from ..dependence.analysis import DependenceAnalysis
from ..ir.program import LoopProgram
from ..isl.relations import FiniteRelation

__all__ = ["PipelineRun", "run_set_pipeline", "run_array_pipeline", "pipeline_mismatches"]


@dataclass(frozen=True)
class PipelineRun:
    """Everything one pipeline pass produced, for timing and comparison."""

    analysis: DependenceAnalysis
    rd: FiniteRelation
    partition: ThreeSetPartition
    schedule: Schedule


def run_set_pipeline(prog: LoopProgram) -> PipelineRun:
    """The pre-array-native pipeline: tuples and frozensets end to end."""
    analysis = DependenceAnalysis(prog, {}, engine="set")
    rd = analysis.iteration_dependences
    space = analysis.iteration_space_points
    partition = three_set_partition(space, rd, engine="set")
    schedule = dataflow_schedule(f"{prog.name}-set", space, rd, engine="set")
    return PipelineRun(analysis, rd, partition, schedule)


def run_array_pipeline(prog: LoopProgram) -> PipelineRun:
    """The array-native pipeline: sort join, array Rd, CSR wavefront schedule."""
    analysis = DependenceAnalysis(prog, {}, engine="vector")
    rd = analysis.iteration_dependences
    space = analysis.iteration_space_array
    partition = three_set_partition(space, rd, engine="vector")
    schedule = dataflow_schedule(f"{prog.name}-array", space, rd, engine="vector")
    return PipelineRun(analysis, rd, partition, schedule)


def pipeline_mismatches(set_run: PipelineRun, array_run: PipelineRun) -> List[str]:
    """Differences between the two pipeline passes (empty list == bit-identical).

    Compares the combined relation, every three-set component, and the
    schedules phase by phase (names and exact instance sequences).
    """
    problems: List[str] = []
    if array_run.rd != set_run.rd:
        problems.append("combined dependence relation differs")
    for name in ("p1", "p2", "p3", "w"):
        if getattr(array_run.partition, name) != getattr(set_run.partition, name):
            problems.append(f"three-set component {name.upper()} differs")
    sched_a, sched_s = array_run.schedule, set_run.schedule
    if sched_a.num_phases != sched_s.num_phases:
        problems.append(
            f"phase count differs: {sched_a.num_phases} != {sched_s.num_phases}"
        )
    else:
        for pa, ps in zip(sched_a.phases, sched_s.phases):
            if pa.name != ps.name:
                problems.append(f"phase name differs: {pa.name!r} != {ps.name!r}")
            if pa.instances() != ps.instances():
                problems.append(f"instances differ in phase {pa.name!r}")
    return problems
