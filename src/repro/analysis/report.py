"""Plain-text report formatting for experiment results.

The benchmark harness and the examples print small fixed-width tables so the
reproduced numbers can be compared against the paper at a glance (and pasted
into EXPERIMENTS.md).  No plotting dependencies — ASCII only.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence

__all__ = ["format_table", "format_speedups", "format_dict"]


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Fixed-width table with a header rule."""
    widths = [len(str(h)) for h in headers]
    str_rows = [[str(c) for c in row] for row in rows]
    for row in str_rows:
        for k, cell in enumerate(row):
            widths[k] = max(widths[k], len(cell))
    def fmt(cells):
        return "  ".join(str(c).ljust(w) for c, w in zip(cells, widths))
    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in str_rows)
    return "\n".join(lines)


def format_speedups(result: Mapping[str, object]) -> str:
    """Format the output of ``run_figure3_experiment`` as a table."""
    processors: List[int] = list(result["processors"])  # type: ignore[index]
    speedups: Mapping[str, Sequence[float]] = result["speedups"]  # type: ignore[assignment]
    headers = ["scheme"] + [f"p={p}" for p in processors]
    rows = [[name] + [f"{v:.2f}" for v in values] for name, values in speedups.items()]
    return format_table(headers, rows)


def format_dict(data: Mapping[str, object], indent: int = 0) -> str:
    """Readable nested-dict dump (stable key order)."""
    lines: List[str] = []
    pad = "  " * indent
    for key in data:
        value = data[key]
        if isinstance(value, Mapping):
            lines.append(f"{pad}{key}:")
            lines.append(format_dict(value, indent + 1))
        else:
            lines.append(f"{pad}{key}: {value}")
    return "\n".join(lines)
