"""Shared experiment harness: one entry point per paper artifact.

Each ``run_*`` function reproduces one table/figure of the paper and returns a
plain dictionary of results, so the same code backs the pytest benchmarks
(``benchmarks/``), the runnable examples (``examples/``) and EXPERIMENTS.md.
The problem sizes default to scaled-down versions of the paper's parameters so
the exact dependence analysis finishes in seconds; the paper's full sizes can
be requested explicitly where they remain tractable.

Every experiment goes through the unified planning facade
(:func:`repro.core.strategy.plan`): the REC results are default plans (the
fallback chain picks Algorithm 1's applicable branch), and the comparison
schemes are plans with the strategy pinned via
``PlanConfig(strategies=(name,))`` — the same dispatch every other consumer
of the package uses.

Cost-model choices (documented, see DESIGN.md §2): the figure-3 simulations
give the REC schedules an ``instance_cost_factor`` slightly below 1.0 because
the paper attributes REC's super-linear low-thread speedups to the simplified
subscript arithmetic of the recurrence WHILE loops, and give the DOACROSS
schedules a higher per-unit overhead because their per-iteration P/V
synchronization is more expensive than DOALL barriers.  These factors shape
only the *vertical offset* of the curves; the scaling behaviour and the
orderings come from the schedules themselves (phase structure, unit lengths,
load balance).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..core import PlanConfig, plan, three_set_partition
from ..dependence import DependenceAnalysis
from ..runtime import CostModel, compare_schemes, validate_schedule
from ..workloads import (
    build_corpus,
    cholesky_loop,
    example2_loop,
    example3_loop,
    figure1_loop,
    figure2_loop,
)
from .stats import corpus_statistics

__all__ = [
    "REC_COST_MODEL",
    "DEFAULT_COST_MODEL",
    "DOACROSS_COST_MODEL",
    "run_figure1_dependences",
    "run_figure2_chains",
    "run_example1_partition",
    "run_example2_partition",
    "run_example3_partition",
    "run_example4_dataflow",
    "run_figure3_experiment",
    "run_theorem1_check",
    "run_intro_statistics",
]

#: Default overheads for DOALL-style schedules (barrier + phase start).
DEFAULT_COST_MODEL = CostModel()
#: REC schedules: simplified subscript arithmetic inside the WHILE chains.
REC_COST_MODEL = CostModel(instance_cost_factor=0.92)
#: DOACROSS: per-iteration point-to-point synchronization instead of barriers.
DOACROSS_COST_MODEL = CostModel(unit_overhead=0.3, barrier_cost=2.0)

PROCESSORS = (1, 2, 3, 4)


# -- E1 / figure 1 -----------------------------------------------------------------

def run_figure1_dependences(n1: int = 10, n2: int = 10) -> Dict[str, object]:
    """The dependence structure of the figure-1 loop (distances (2,2),(4,4),(6,6))."""
    prog = figure1_loop(n1, n2)
    analysis = DependenceAnalysis(prog, {})
    rel = analysis.iteration_dependences
    return {
        "iterations": len(analysis.iteration_space_points),
        "direct_dependences": len(rel),
        "distances": sorted(rel.distances()),
        "uniform": analysis.is_uniform(),
        "single_coupled_pair": analysis.has_single_coupled_pair(),
    }


# -- E2 / figure 2 -----------------------------------------------------------------

def run_figure2_chains(n: int = 20) -> Dict[str, object]:
    """Monotonic chain structure of the 1-D loop a(2I) = a(N+1-I)."""
    from ..core.chains import split_into_monotonic_pairs

    prog = figure2_loop(n)
    analysis = DependenceAnalysis(prog, {})
    rel = analysis.iteration_dependences
    partition = three_set_partition(analysis.iteration_space_points, rel)
    pairs = split_into_monotonic_pairs(rel)
    return {
        "dependences": sorted((a[0], b[0]) for a, b in rel.pairs),
        "monotonic_pairs": [(a[0], b[0]) for a, b in pairs],
        "P1": sorted(p[0] for p in partition.p1),
        "P2": sorted(p[0] for p in partition.p2),
        "P3": sorted(p[0] for p in partition.p3),
        "independent": sorted(p[0] for p in partition.independent),
        "initial": sorted(p[0] for p in partition.initial),
    }


# -- E3 / Example 1 ------------------------------------------------------------------

def run_example1_partition(n1: int = 30, n2: int = 100) -> Dict[str, object]:
    """REC partition of the figure-1 loop: set sizes, chains, Theorem 1 bound."""
    result = plan(figure1_loop(n1, n2))
    report = result.validate(seeds=(0,))
    return {
        "params": {"N1": n1, "N2": n2},
        **result.summary(),
        "validated": report.ok,
        "det_T": float(result.recurrence.T.det()) if result.recurrence else None,
    }


# -- E4 / Example 2 ------------------------------------------------------------------

def run_example2_partition(n: int = 12) -> Dict[str, object]:
    """REC partition of Ju & Chaudhary's loop; at N=12 the intermediate set is {(2,6)}."""
    result = plan(example2_loop(n))
    report = result.validate(seeds=(0,))
    return {
        "params": {"N": n},
        **result.summary(),
        "P2_points": sorted(result.partition.p2) if result.partition else [],
        "validated": report.ok,
    }


# -- E5 / Example 3 ------------------------------------------------------------------

def run_example3_partition(n: int = 40) -> Dict[str, object]:
    """REC partition of the imperfectly nested Chen & Yew loop (empty P2 → 2 phases)."""
    result = plan(example3_loop(n))
    stmt_space = result.statement_space
    report = result.validate(seeds=(0,))
    # The three-set view of the unified space (empty intermediate set expected).
    partition = three_set_partition(sorted(stmt_space.points), stmt_space.rd)
    return {
        "params": {"N": n},
        "phases": result.schedule.num_phases,
        "instances": result.schedule.total_work,
        "P1": len(partition.p1),
        "P2": len(partition.p2),
        "P3": len(partition.p3),
        "validated": report.ok,
    }


# -- E6 / Example 4 ------------------------------------------------------------------

def run_example4_dataflow(
    nmat: int = 8, m: int = 4, n: int = 40, nrhs: int = 3
) -> Dict[str, object]:
    """REC dataflow partitioning of the Cholesky kernel: number of partitioning steps.

    The partitioning-step count is independent of NMAT (the ``L`` dimension
    carries no dependences), so the default scales NMAT down from the paper's
    250 to keep the exact analysis fast; pass ``nmat=250`` for the full size.
    """
    result = plan(cholesky_loop(nmat=nmat, m=m, n=n, nrhs=nrhs))
    return {
        "params": {"NMAT": nmat, "M": m, "N": n, "NRHS": nrhs},
        "scheme": result.scheme,
        "partitioning_steps": result.schedule.num_phases,
        "instances": result.schedule.total_work,
        "paper_steps": 238,
    }


# -- E7–E10 / figure 3 -----------------------------------------------------------------

@dataclass(frozen=True)
class Figure3Config:
    """One of the four figure-3 panels: program, schemes, sizes."""

    key: str
    description: str


def _pinned_schedule(prog, strategy: str):
    """The schedule of one baseline scheme, via a strategy-pinned plan."""
    return plan(prog, config=PlanConfig(strategies=(strategy,))).schedule


def _figure3_schedules(key: str, sizes: Optional[Mapping[str, int]] = None):
    """Build (program, {scheme: schedule}, {scheme: cost model}) for one panel.

    The REC curve is the default ``plan()`` (Algorithm 1 wins the fallback
    chain on every panel); each comparison curve pins its strategy.
    """
    sizes = dict(sizes or {})
    if key == "ex1":
        n1, n2 = sizes.get("N1", 60), sizes.get("N2", 200)
        prog = figure1_loop(n1, n2)
        schedules = {
            "REC": plan(prog).schedule,
            "PDM": _pinned_schedule(prog, "pdm"),
            "PL": _pinned_schedule(prog, "pl"),
        }
        models = {"REC": REC_COST_MODEL}
        return prog, schedules, models
    if key == "ex2":
        n = sizes.get("N", 60)
        prog = example2_loop(n)
        schedules = {
            "REC": plan(prog).schedule,
            "UNIQUE": _pinned_schedule(prog, "unique-sets"),
        }
        models = {"REC": REC_COST_MODEL}
        return prog, schedules, models
    if key == "ex3":
        n = sizes.get("N", 60)
        prog = example3_loop(n)
        schedules = {
            "REC": plan(prog).schedule,
            "PAR": _pinned_schedule(prog, "inner-parallel"),
            "DOACROSS": _pinned_schedule(prog, "doacross"),
        }
        models = {"REC": REC_COST_MODEL, "DOACROSS": DOACROSS_COST_MODEL}
        return prog, schedules, models
    if key == "ex4":
        nmat = sizes.get("NMAT", 8)
        m = sizes.get("M", 4)
        n = sizes.get("N", 40)
        nrhs = sizes.get("NRHS", 3)
        prog = cholesky_loop(nmat=nmat, m=m, n=n, nrhs=nrhs)
        schedules = {
            "REC": plan(prog).schedule,
            "PDM": _cholesky_pdm_schedule(prog),
        }
        models = {"REC": REC_COST_MODEL}
        return prog, schedules, models
    raise KeyError(f"unknown figure-3 panel {key!r} (use ex1, ex2, ex3 or ex4)")


def _cholesky_pdm_schedule(prog):
    """The PDM code of the paper's Example 4: ``DOALL L = 0, NMAT`` around everything.

    No dependence of the kernel crosses the ``L`` dimension (every array is
    indexed by ``L``), so the PDM scheme's outermost DOALL runs one sequential
    copy of both loop nests per ``L`` value.  The schedule mirrors that
    structure directly: a single phase whose units are the per-L slices of the
    statement instances, in original program order inside each slice.  (The
    generic statement-level PDM in repro.baselines.pdm is more conservative on
    this kernel because the unified-vector lattice mixes coordinates of the two
    nests; the hand-derived slicing here matches the paper's published code.)
    """
    from ..core.schedule import ExecutionUnit, ParallelPhase, Schedule

    contexts = {ctx.statement.label: ctx for ctx in prog.statement_contexts()}
    groups = {}
    for label, iteration in prog.sequential_iterations({}):
        ctx = contexts[label]
        # every statement's innermost loop is its L loop (L, L2, ..., L8)
        l_value = iteration[-1]
        groups.setdefault(l_value, []).append((label, tuple(iteration)))
    units = tuple(ExecutionUnit.block(groups[k]) for k in sorted(groups))
    phase = ParallelPhase("PDM: DOALL over L", units)
    return Schedule.from_phases(f"{prog.name}-PDM", [phase], scheme="pdm-example4")


def run_figure3_experiment(
    key: str,
    sizes: Optional[Mapping[str, int]] = None,
    processors: Sequence[int] = PROCESSORS,
    validate: bool = False,
) -> Dict[str, object]:
    """Reproduce one panel of figure 3: speedups of the competing schemes."""
    prog, schedules, models = _figure3_schedules(key, sizes)
    table = compare_schemes(schedules, processors, models)
    result: Dict[str, object] = {
        "panel": key,
        "program": prog.name,
        "processors": list(processors),
        "speedups": {name: [round(v, 3) for v in table.row(name)] for name in schedules},
        "winner_at": {p: table.winner(p) for p in processors},
        "phases": {name: s.num_phases for name, s in schedules.items()},
    }
    if validate:
        checks = {}
        for name, sched in schedules.items():
            checks[name] = validate_schedule(prog, sched, {}, seeds=(0,)).ok
        result["validated"] = checks
    return result


# -- E11 / Theorem 1 ----------------------------------------------------------------------

def run_theorem1_check(sizes: Sequence[Tuple[int, int]] = ((10, 10), (20, 30), (40, 50))) -> Dict[str, object]:
    """Measure the longest chain vs the Theorem 1 bound over several problem sizes."""
    rows = []
    for n1, n2 in sizes:
        result = plan(figure1_loop(n1, n2))
        rows.append(
            {
                "N1": n1,
                "N2": n2,
                "longest_chain": result.longest_chain(),
                "bound": result.chain_length_bound(),
                "holds": result.longest_chain() <= (result.chain_length_bound() or 10**9),
            }
        )
    return {"rows": rows, "all_hold": all(r["holds"] for r in rows)}


# -- E12 / §1 statistics -------------------------------------------------------------------

def run_intro_statistics(loops: int = 60, seed: int = 20040815) -> Dict[str, object]:
    """Classify a SPECfp95-like synthetic corpus and report the §1-style fractions."""
    from ..workloads.corpus import SPECFP95_LIKE, CorpusComposition

    composition = CorpusComposition(
        name=SPECFP95_LIKE.name,
        loops=loops,
        coupled_fraction=SPECFP95_LIKE.coupled_fraction,
        nonuniform_given_coupled=SPECFP95_LIKE.nonuniform_given_coupled,
    )
    specs = build_corpus(composition, seed=seed)
    stats, _classifications = corpus_statistics(specs)
    generated_coupled = sum(1 for s in specs if s.coupled) / len(specs)
    generated_nonuniform = sum(1 for s in specs if s.coupled and not s.uniform) / len(specs)
    return {
        "composition": {
            "loops": composition.loops,
            "target_coupled_fraction": composition.coupled_fraction,
            "target_nonuniform_given_coupled": composition.nonuniform_given_coupled,
        },
        "generated": {
            "coupled_fraction": round(generated_coupled, 4),
            "nonuniform_fraction": round(generated_nonuniform, 4),
        },
        "measured": stats.as_dict(),
        "paper_reference": {
            "loops_with_nonuniform_dependences": 0.46,
            "pairs_with_coupled_subscripts": 0.45,
            "coupled_subscripts_nonuniform": 0.128,
        },
    }
