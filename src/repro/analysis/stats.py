"""Static corpus statistics (the §1 motivation numbers).

The classifier answers, for every loop of a corpus:

* does it contain a *coupled* reference pair (paper terminology: loop indices
  appear in several subscript dimensions / a dimension mixes indices)?
* does it carry any loop-carried dependence at all?
* are its dependences uniform or non-uniform?

Two classification paths are provided and cross-checked by the tests:

* a *static* (matrix-level) path that only inspects the coefficient matrices —
  the kind of classification a compiler front-end performs over a large
  benchmark suite, and
* an *exact* path that enumerates the dependences for concrete bounds and
  applies the definition of §2 directly.

:func:`corpus_statistics` aggregates the per-loop classifications into the
percentages the paper quotes (fraction of loops with non-uniform dependences,
fraction of pairs with coupled subscripts, fraction of coupled pairs that
generate non-uniform dependences).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..dependence.analysis import DependenceAnalysis
from ..dependence.distance import is_uniform_relation
from ..ir.program import LoopProgram
from ..workloads.synthetic import SyntheticLoopSpec

__all__ = ["LoopClassification", "classify_loop", "CorpusStatistics", "corpus_statistics"]


@dataclass(frozen=True)
class LoopClassification:
    """Classification of one loop nest."""

    name: str
    has_coupled_pair: bool
    has_dependences: bool
    uniform_by_matrix: bool
    uniform_exact: Optional[bool]

    @property
    def non_uniform(self) -> bool:
        """Non-uniform by the exact check when available, else by matrices."""
        if self.uniform_exact is not None:
            return self.has_dependences and not self.uniform_exact
        return self.has_dependences and not self.uniform_by_matrix


def classify_loop(
    program: LoopProgram,
    params: Optional[Mapping[str, int]] = None,
    exact: bool = True,
) -> LoopClassification:
    """Classify one loop (coupled / dependent / uniform / non-uniform)."""
    analysis = DependenceAnalysis(program, dict(params or {}))
    coupled = any(
        p.has_coupled_subscript_dimensions() for p in analysis.reference_pairs
    )
    has_deps = analysis.has_dependences()
    uniform_matrix = all(p.is_uniform() for p in analysis.coupled_pairs) if analysis.coupled_pairs else True
    uniform_exact: Optional[bool] = None
    if exact:
        try:
            uniform_exact = is_uniform_relation(
                analysis.iteration_dependences, analysis.iteration_space_points
            )
        except ValueError:
            uniform_exact = None
    return LoopClassification(
        name=program.name,
        has_coupled_pair=coupled,
        has_dependences=has_deps,
        uniform_by_matrix=uniform_matrix,
        uniform_exact=uniform_exact,
    )


@dataclass(frozen=True)
class CorpusStatistics:
    """Aggregate corpus percentages (the paper's §1-style numbers)."""

    total_loops: int
    loops_with_coupled_subscripts: int
    loops_with_dependences: int
    loops_with_nonuniform_dependences: int
    coupled_loops_with_nonuniform_dependences: int

    @property
    def coupled_fraction(self) -> float:
        return self.loops_with_coupled_subscripts / self.total_loops if self.total_loops else 0.0

    @property
    def nonuniform_fraction(self) -> float:
        return (
            self.loops_with_nonuniform_dependences / self.total_loops
            if self.total_loops
            else 0.0
        )

    @property
    def nonuniform_given_coupled(self) -> float:
        return (
            self.coupled_loops_with_nonuniform_dependences
            / self.loops_with_coupled_subscripts
            if self.loops_with_coupled_subscripts
            else 0.0
        )

    def as_dict(self) -> Dict[str, float]:
        return {
            "total_loops": self.total_loops,
            "coupled_fraction": round(self.coupled_fraction, 4),
            "nonuniform_fraction": round(self.nonuniform_fraction, 4),
            "nonuniform_given_coupled": round(self.nonuniform_given_coupled, 4),
        }


def corpus_statistics(
    specs: Sequence[SyntheticLoopSpec],
    exact: bool = True,
) -> Tuple[CorpusStatistics, List[LoopClassification]]:
    """Classify every loop of a corpus and aggregate the percentages."""
    classifications = [classify_loop(spec.program, exact=exact) for spec in specs]
    coupled = [c for c in classifications if c.has_coupled_pair]
    nonuniform = [c for c in classifications if c.non_uniform]
    coupled_nonuniform = [c for c in coupled if c.non_uniform]
    with_deps = [c for c in classifications if c.has_dependences]
    stats = CorpusStatistics(
        total_loops=len(classifications),
        loops_with_coupled_subscripts=len(coupled),
        loops_with_dependences=len(with_deps),
        loops_with_nonuniform_dependences=len(nonuniform),
        coupled_loops_with_nonuniform_dependences=len(coupled_nonuniform),
    )
    return stats, classifications
