"""repro.analysis — program features, corpus statistics, experiments, reports.

* :mod:`repro.analysis.features` — the selector-facing
  :class:`~repro.analysis.features.ProgramFeatures` summary of one plan
  request (array-native extraction, cached on the plan fingerprint);
* :mod:`repro.analysis.stats` — loop classification (coupled / uniform /
  non-uniform) and corpus aggregation for the §1 statistics;
* :mod:`repro.analysis.experiments` — one ``run_*`` function per paper
  table/figure, shared by the benchmarks, the examples and EXPERIMENTS.md;
* :mod:`repro.analysis.pipelines` — shared set-path vs array-path pipeline
  drivers used by both the equivalence tests and the scaling benchmark;
* :mod:`repro.analysis.report` — plain-text table formatting.
"""

from .features import (
    ProgramFeatures,
    clear_feature_cache,
    feature_cache_stats,
    program_features,
)
from .experiments import (
    DEFAULT_COST_MODEL,
    DOACROSS_COST_MODEL,
    REC_COST_MODEL,
    run_example1_partition,
    run_example2_partition,
    run_example3_partition,
    run_example4_dataflow,
    run_figure1_dependences,
    run_figure2_chains,
    run_figure3_experiment,
    run_intro_statistics,
    run_theorem1_check,
)
from .pipelines import (
    PipelineRun,
    pipeline_mismatches,
    run_array_pipeline,
    run_set_pipeline,
)
from .report import format_dict, format_speedups, format_table
from .stats import CorpusStatistics, LoopClassification, classify_loop, corpus_statistics

__all__ = [
    "ProgramFeatures",
    "program_features",
    "clear_feature_cache",
    "feature_cache_stats",
    "run_figure1_dependences",
    "run_figure2_chains",
    "run_example1_partition",
    "run_example2_partition",
    "run_example3_partition",
    "run_example4_dataflow",
    "run_figure3_experiment",
    "run_theorem1_check",
    "run_intro_statistics",
    "REC_COST_MODEL",
    "DEFAULT_COST_MODEL",
    "DOACROSS_COST_MODEL",
    "classify_loop",
    "corpus_statistics",
    "CorpusStatistics",
    "LoopClassification",
    "format_table",
    "format_speedups",
    "format_dict",
    "PipelineRun",
    "run_set_pipeline",
    "run_array_pipeline",
    "pipeline_mismatches",
]
