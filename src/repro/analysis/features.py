"""Program features for strategy selection.

The paper's premise (§1, echoed by the SPECfp95-style corpus in
:mod:`repro.workloads.corpus`) is that real loop nests are a *mix* — roughly
46 % non-uniform, 45 % coupled-subscript — so no single partitioning scheme
wins everywhere.  Acting on that requires knowing, per program, which mix it
belongs to: this module reduces a :class:`~repro.dependence.analysis.DependenceAnalysis`
to a small, hashable :class:`ProgramFeatures` record that the strategy
selectors in :mod:`repro.core.strategy` rank against.

Design constraints:

* **array-native** — every fact is read off the analysis' cached array views
  (``iteration_space_array``, ``statement_domain_array``, the array-backed
  combined relation, :func:`~repro.dependence.distance.is_uniform_relation_arrays`
  through :meth:`DependenceAnalysis.is_uniform`); no per-point Python set
  algebra is introduced;
* **shared work** — extraction consumes the *same* ``DependenceAnalysis``
  object the winning strategy's builder will consume, so nothing the
  selector touches is re-analysed by the build;
* **bounded cost** — the one potentially super-linear fact, the wavefront
  shape, is estimated from a dataflow peel of a lexicographic *prefix sample*
  of the space when the space exceeds ``sample_cap`` points (the dependence
  relation is restricted to the prefix and the level count is extrapolated
  by the per-dimension extent ratio);
* **cached on the plan fingerprint** — :func:`program_features` memoises on
  ``(program fingerprint, params)``, so repeated planning of the same nest
  (the serving scenario) never re-extracts, mirroring the plan cache.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

import numpy as np

from ..dependence.analysis import DependenceAnalysis
from ..ir.program import LoopProgram

__all__ = [
    "ProgramFeatures",
    "program_features",
    "clear_feature_cache",
    "feature_cache_stats",
    "WAVEFRONT_SAMPLE_CAP",
]

#: Spaces larger than this are wavefront-estimated from a lexicographic
#: prefix of this many points instead of a full dataflow peel.
WAVEFRONT_SAMPLE_CAP = 20_000


@dataclass(frozen=True)
class ProgramFeatures:
    """The selector-facing summary of one (program, params) pair.

    ``uniform`` is three-valued: ``True``/``False`` for perfect nests (the
    exhaustive §2 check over the combined relation) and ``None`` for
    imperfect nests, where no single iteration-level relation exists.
    ``wavefront_levels`` / ``wavefront_width`` describe the dataflow
    wavefront shape — exact for small spaces, extrapolated from a prefix
    sample (``sampled=True``) for large ones, ``None`` for imperfect nests
    (their statement-level peel is exactly what the dataflow builder would
    run, so probing it here would double the work).
    """

    program: str
    nest_depth: int
    n_statements: int
    perfect_nest: bool
    rectangular: bool
    n_points: int
    n_reference_pairs: int
    n_coupled_pairs: int
    coupled_subscripts: bool
    single_coupled_pair: bool
    n_dependences: int
    uniform: Optional[bool]
    wavefront_levels: Optional[int]
    wavefront_width: Optional[float]
    sampled: bool

    @property
    def dependence_density(self) -> float:
        """Direct dependences per point — 0.0 for an empty space."""
        return self.n_dependences / self.n_points if self.n_points else 0.0

    def bucket(self) -> str:
        """The coarse feature key the calibrated selection table is indexed by.

        Components, ``|``-joined: nest shape (``perfect``/``imperfect``),
        the Lemma 1 gate (``1cp``: exactly one coupled pair with
        dependences), subscript coupling in the paper's §1 sense, the
        uniformity verdict, space shape, clamped depth, and whether any
        dependence exists at all.
        """
        uniform = {True: "uniform", False: "nonuniform", None: "mixed"}[self.uniform]
        return "|".join(
            [
                "perfect" if self.perfect_nest else "imperfect",
                "1cp" if self.single_coupled_pair else "mcp",
                "coupled" if self.coupled_subscripts else "separable",
                uniform,
                "rect" if self.rectangular else "nonrect",
                f"d{min(self.nest_depth, 3)}",
                "dep" if self.n_dependences else "free",
            ]
        )

    def as_dict(self) -> Dict[str, object]:
        from dataclasses import asdict

        info = asdict(self)
        info["dependence_density"] = round(self.dependence_density, 6)
        info["bucket"] = self.bucket()
        return info

    def describe(self) -> str:
        """One compact line for ``Plan.explain()``."""
        shape = "rect" if self.rectangular else "nonrect"
        nest = "perfect" if self.perfect_nest else "imperfect"
        uniform = {True: "uniform", False: "non-uniform", None: "mixed"}[self.uniform]
        wave = ""
        if self.wavefront_levels is not None:
            approx = "~" if self.sampled else ""
            wave = (
                f", wavefronts {approx}{self.wavefront_levels}"
                f"x{self.wavefront_width:.0f}"
            )
        return (
            f"depth={self.nest_depth} statements={self.n_statements} ({nest}, {shape}), "
            f"{self.n_points} points, {self.n_dependences} dependences "
            f"({uniform}, {self.n_coupled_pairs} coupled pairs){wave}"
        )


# ---------------------------------------------------------------------------
# extraction
# ---------------------------------------------------------------------------


def _is_rectangular(program: LoopProgram) -> bool:
    """True when every loop bound is a single expression free of loop indices.

    Parameters are allowed (``DO I = 1, N`` is rectangular); an index in any
    bound (``DO J = 1, I``) or a MAX/MIN multi-expression bound makes the
    space non-rectangular.
    """
    loops = program.loops()
    indices = {lp.index for lp in loops}
    for lp in loops:
        if len(lp.lower) != 1 or len(lp.upper) != 1:
            return False
        for expr in (*lp.lower, *lp.upper):
            if any(v in indices for v in expr.variables):
                return False
    return True


def _lex_le(points: np.ndarray, bound: np.ndarray) -> np.ndarray:
    """Vectorised ``row <=lex bound`` over an ``(n, d)`` int64 array."""
    n = points.shape[0]
    result = np.zeros(n, dtype=bool)
    undecided = np.ones(n, dtype=bool)
    for k in range(points.shape[1]):
        less = undecided & (points[:, k] < bound[k])
        greater = undecided & (points[:, k] > bound[k])
        result |= less
        undecided &= ~(less | greater)
    result |= undecided  # exactly equal to the bound
    return result


def _wavefront_estimate(
    analysis: DependenceAnalysis, n_points: int, depth: int, sample_cap: int
) -> Tuple[Optional[int], Optional[float], bool]:
    """(levels, mean width, sampled?) of the dataflow wavefront partition.

    Exact (one vectorised peel) up to ``sample_cap`` points; beyond that the
    peel runs on the lexicographic prefix of ``sample_cap`` points with the
    relation restricted to it, and the level count is extrapolated by the
    per-dimension extent ratio ``(n/k)^(1/depth)`` (wavefront counts grow
    with the linear extent of the space, not its volume).
    """
    from ..core.dataflow import dataflow_partition
    from ..isl.relations import FiniteRelation

    rel = analysis.iteration_dependences
    if n_points == 0:
        return 0, 0.0, False
    if len(rel) == 0:
        return 1, float(n_points), False
    space = analysis.iteration_space_array
    if n_points <= sample_cap:
        levels = dataflow_partition(space, rel, engine="auto").num_steps
        return levels, n_points / max(1, levels), False
    prefix = space[:sample_cap]
    bound = space[sample_cap - 1]
    src, dst = rel.as_arrays()
    mask = _lex_le(src, bound) & _lex_le(dst, bound)
    sub = FiniteRelation.from_arrays(src[mask], dst[mask])
    sampled_levels = dataflow_partition(prefix, sub, engine="auto").num_steps
    scale = (n_points / sample_cap) ** (1.0 / max(1, depth))
    levels = max(1, int(round(sampled_levels * scale)))
    return levels, n_points / levels, True


def _closed_form(
    program: LoopProgram,
    params: Mapping[str, int],
    analysis: DependenceAnalysis,
) -> Optional[Tuple[int, int, bool, Optional[int], Optional[float]]]:
    """O(1)-in-N feature facts for the symbolic-eligible case, or ``None``.

    When the nest is rectangular with a single uniform integral dependence
    distance ``u``, every fact the enumerating path derives from
    ``iteration_space_array`` / ``iteration_dependences`` is a product of
    the box extents: ``|Φ| = Π e_k``, ``|Rd| = Π max(0, e_k − |u_k|)``
    (iteration ``i`` depends on ``i − u`` whenever both ends stay in the
    box), and the dataflow wavefront is the longest ``u``-line in the box —
    ``1 + min_{u_k ≠ 0} (e_k − 1) // |u_k|`` levels, exactly what a full
    peel would count.  Returns ``(n_points, n_deps, single_coupled_pair,
    levels, width)``.
    """
    from ..core.symbolic import box_count, rectangular_box, uniform_shift_pairs

    box = rectangular_box(program, params)
    if box is None:
        return None
    info = uniform_shift_pairs(program, analysis)
    if info is None:
        return None
    shift, n_active_pairs = info
    n_points = box_count(box)
    extents = [hi - lo + 1 for lo, hi in box]
    n_deps = 1 if n_points else 0
    for e, u in zip(extents, shift):
        n_deps *= max(0, e - abs(u))
    if n_points == 0:
        levels: Optional[int] = 0
        width: Optional[float] = 0.0
    elif n_deps == 0:
        levels, width = 1, float(n_points)
    else:
        levels = 1 + min((e - 1) // abs(u) for e, u in zip(extents, shift) if u)
        width = n_points / levels
    return n_points, n_deps, n_deps > 0 and n_active_pairs == 1, levels, width


def _extract(
    program: LoopProgram,
    params: Mapping[str, int],
    analysis: DependenceAnalysis,
    sample_cap: int,
) -> ProgramFeatures:
    contexts = program.statement_contexts()
    depth = max((ctx.depth for ctx in contexts), default=0)
    perfect = program.is_perfect_nest()
    closed = _closed_form(program, params, analysis) if perfect else None

    if closed is not None:
        # Symbolic-eligible nest: every count is a closed-form product —
        # no iteration space or dependence relation is ever enumerated.
        n_points, n_deps, scp, levels, width = closed
        uniform: Optional[bool] = True
        sampled = False
        return ProgramFeatures(
            program=program.name,
            nest_depth=depth,
            n_statements=len(contexts),
            perfect_nest=perfect,
            rectangular=_is_rectangular(program),
            n_points=n_points,
            n_reference_pairs=len(analysis.reference_pairs),
            n_coupled_pairs=len(analysis.coupled_pairs),
            coupled_subscripts=any(
                p.has_coupled_subscript_dimensions()
                for p in analysis.reference_pairs
            ),
            single_coupled_pair=scp,
            n_dependences=n_deps,
            uniform=uniform,
            wavefront_levels=levels,
            wavefront_width=width,
            sampled=sampled,
        )

    if perfect:
        n_points = int(analysis.iteration_space_array.shape[0])
        rel = analysis.iteration_dependences
        n_deps = len(rel)
        uniform = analysis.is_uniform() if n_deps else True
        levels, width, sampled = _wavefront_estimate(
            analysis, n_points, depth, sample_cap
        )
    else:
        n_points = sum(
            int(analysis.statement_domain_array(ctx.statement.label).shape[0])
            for ctx in contexts
        )
        n_deps = sum(len(d.relation) for d in analysis.pair_dependences)
        uniform = None
        levels = width = None
        sampled = False

    return ProgramFeatures(
        program=program.name,
        nest_depth=depth,
        n_statements=len(contexts),
        perfect_nest=perfect,
        rectangular=_is_rectangular(program),
        n_points=n_points,
        n_reference_pairs=len(analysis.reference_pairs),
        n_coupled_pairs=len(analysis.coupled_pairs),
        coupled_subscripts=any(
            p.has_coupled_subscript_dimensions() for p in analysis.reference_pairs
        ),
        single_coupled_pair=analysis.has_single_coupled_pair(),
        n_dependences=n_deps,
        uniform=uniform,
        wavefront_levels=levels,
        wavefront_width=width,
        sampled=sampled,
    )


# ---------------------------------------------------------------------------
# the fingerprint-keyed cache
# ---------------------------------------------------------------------------

_CACHE_MAXSIZE = 256
_CACHE: "OrderedDict[Tuple[str, Tuple[Tuple[str, int], ...]], ProgramFeatures]" = (
    OrderedDict()
)
#: Guards ``_CACHE`` and its counters — feature extraction runs on every
#: planning thread of a long-lived server, so the LRU must not be mutated
#: concurrently (an OrderedDict can corrupt under racing move_to_end/popitem).
_CACHE_LOCK = threading.Lock()
_CACHE_HITS = 0
_CACHE_MISSES = 0


def clear_feature_cache() -> None:
    global _CACHE_HITS, _CACHE_MISSES
    with _CACHE_LOCK:
        _CACHE.clear()
        _CACHE_HITS = _CACHE_MISSES = 0


def feature_cache_stats() -> Dict[str, int]:
    with _CACHE_LOCK:
        return {"size": len(_CACHE), "hits": _CACHE_HITS, "misses": _CACHE_MISSES}


def program_features(
    program: LoopProgram,
    params: Optional[Mapping[str, int]] = None,
    analysis: Optional[DependenceAnalysis] = None,
    fingerprint: Optional[str] = None,
    sample_cap: int = WAVEFRONT_SAMPLE_CAP,
    cache: bool = True,
) -> ProgramFeatures:
    """Extract (or recall) the :class:`ProgramFeatures` of one plan request.

    ``analysis`` should be the planning call's shared
    :class:`~repro.dependence.analysis.DependenceAnalysis` so every view the
    extraction touches stays warm for the winning strategy's builder; one is
    created when omitted.  ``fingerprint`` lets a caller that already hashed
    the program (``plan()`` always has) skip re-hashing; features are
    memoised on ``(fingerprint, sorted params)`` so re-planning the same
    nest never re-extracts.
    """
    global _CACHE_HITS, _CACHE_MISSES
    params = dict(params or {})
    key = None
    if cache:
        if fingerprint is None:
            from ..core.strategy import program_fingerprint

            fingerprint = program_fingerprint(program)
        key = (fingerprint, tuple(sorted((str(k), int(v)) for k, v in params.items())))
        with _CACHE_LOCK:
            hit = _CACHE.get(key)
            if hit is not None:
                _CACHE.move_to_end(key)
                _CACHE_HITS += 1
                return hit
            _CACHE_MISSES += 1
    if analysis is None:
        analysis = DependenceAnalysis(program, params)
    features = _extract(program, params, analysis, sample_cap)
    if key is not None:
        with _CACHE_LOCK:
            _CACHE[key] = features
            while len(_CACHE) > _CACHE_MAXSIZE:
                _CACHE.popitem(last=False)
    return features
