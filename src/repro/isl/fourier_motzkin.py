"""Fourier–Motzkin elimination over affine constraints.

Eliminating a variable from a conjunction of affine constraints produces the
projection of the (rational) solution set onto the remaining variables.  The
recurrence-chain partitioner uses it for:

* computing conservative per-variable bounds of convex sets,
* rational feasibility checks during emptiness tests,
* deriving the loop bounds of generated DOALL nests (each loop level's bounds
  come from projecting away the deeper levels), mirroring how the paper's
  code-generation step produces the ``min``/``max``/ceil/floor bound
  expressions of its listings.

The integer projection is in general a superset of the true integer shadow
(dark-shadow/Omega-test refinements are not implemented); all *exact* integer
reasoning in this package is done by enumeration of bounded sets, and FME is
used only where a conservative rational answer is sound.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from .affine import AffineExpr
from .convex import Constraint, ConvexSet, EQ, GE

__all__ = ["eliminate_variable", "eliminate_variables", "project_onto", "project_out"]


def _substitute_equality(constraints: List[Constraint], name: str) -> List[Constraint] | None:
    """If an equality pins ``name``, substitute it and return new constraints.

    Returns ``None`` when no usable equality exists.  The substitution keeps
    exactness because it happens over the rationals and membership tests
    re-verify integrality.
    """
    for idx, c in enumerate(constraints):
        if c.kind != EQ:
            continue
        coeff = c.expr.coeff(name)
        if coeff == 0:
            continue
        # name = -(rest)/coeff
        rest = c.expr.drop([name])
        replacement = rest * (-1 / coeff)
        out = []
        for j, other in enumerate(constraints):
            if j == idx:
                continue
            out.append(other.substitute({name: replacement}))
        return out
    return None


def eliminate_variable(constraints: Iterable[Constraint], name: str) -> List[Constraint]:
    """Eliminate one variable from a conjunction of constraints."""
    cons = [c for c in constraints]
    # Prefer substitution through an equality: exact and cheap.
    substituted = _substitute_equality(cons, name)
    if substituted is not None:
        return [c for c in substituted]

    lowers: List[Constraint] = []   # coeff > 0  : name >= -rest/coeff
    uppers: List[Constraint] = []   # coeff < 0  : name <= -rest/coeff
    others: List[Constraint] = []
    for c in cons:
        coeff = c.expr.coeff(name)
        if coeff == 0:
            others.append(c)
        elif c.kind == EQ:
            # No pinning equality found above means coeff == 0 for equalities;
            # being defensive: treat as two inequalities.
            others_from_eq = [Constraint(c.expr, GE), Constraint(-c.expr, GE)]
            for ge in others_from_eq:
                if ge.expr.coeff(name) > 0:
                    lowers.append(ge)
                else:
                    uppers.append(ge)
        elif coeff > 0:
            lowers.append(c)
        else:
            uppers.append(c)

    result = list(others)
    for lo in lowers:
        a = lo.expr.coeff(name)
        lo_rest = lo.expr.drop([name])
        for up in uppers:
            b = -up.expr.coeff(name)
            up_rest = up.expr.drop([name])
            # lo: a*name + lo_rest >= 0  => name >= -lo_rest/a
            # up: -b*name + up_rest >= 0 => name <= up_rest/b
            # combined: b*lo_rest + a*up_rest >= 0
            combined = lo_rest * b + up_rest * a
            result.append(Constraint(combined, GE))
    return [c.normalized() for c in result]


def eliminate_variables(constraints: Iterable[Constraint], names: Sequence[str]) -> List[Constraint]:
    """Eliminate several variables in the given order."""
    cons = list(constraints)
    for name in names:
        cons = eliminate_variable(cons, name)
        # Early exit on contradiction keeps the combinatorics in check.
        if any(c.is_contradiction() for c in cons):
            return [Constraint(AffineExpr.constant_expr(-1), GE)]
        cons = _prune(cons)
    return cons


def _prune(constraints: List[Constraint]) -> List[Constraint]:
    """Drop tautologies and duplicates to limit FME blow-up."""
    seen = set()
    out = []
    for c in constraints:
        n = c.normalized()
        if n.is_tautology():
            continue
        key = (n.kind, n.expr.coeffs, n.expr.constant)
        if key in seen:
            continue
        seen.add(key)
        out.append(n)
    return out


def project_out(cs: ConvexSet, names: Sequence[str]) -> ConvexSet:
    """Project away the given variables from a convex set."""
    names = [n for n in names if n in cs.variables]
    remaining = tuple(v for v in cs.variables if v not in names)
    cons = eliminate_variables(list(cs.constraints), names)
    return ConvexSet(remaining, tuple(cons), cs.parameters).simplified()


def project_onto(cs: ConvexSet, names: Sequence[str]) -> ConvexSet:
    """Project the set onto the given variables (eliminating all others)."""
    keep = set(names)
    drop = [v for v in cs.variables if v not in keep]
    remaining = tuple(v for v in cs.variables if v in keep)
    cons = eliminate_variables(list(cs.constraints), drop)
    return ConvexSet(remaining, tuple(cons), cs.parameters).simplified()
