"""Exact integer and rational linear algebra.

This module is the numeric bedrock of the integer-set layer (:mod:`repro.isl`).
Everything here uses *exact* arithmetic — Python integers and
:class:`fractions.Fraction` — because dependence analysis is an exact
integer-programming problem: a rounding error of 1e-9 in a subscript matrix
turns a dependent iteration pair into an "independent" one and silently breaks
the generated parallel schedule.

Provided primitives:

* rational matrix algebra (:class:`RationalMatrix`): multiply, invert,
  determinant, solve,
* extended gcd and gcd of vectors,
* Hermite normal form (row-style, used to solve linear diophantine systems),
* Smith normal form (used for the general solution structure of
  ``x A = b`` over the integers),
* :func:`solve_diophantine` — particular + homogeneous solutions of an integer
  linear system, the engine behind the exact dependence test.

The matrices are small (loop nests have 1–4 dimensions), so clarity and
exactness are preferred over asymptotic cleverness; numpy is intentionally not
used here (see the enumeration backend for the vectorised fast paths).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "RationalMatrix",
    "extended_gcd",
    "gcd_list",
    "lcm_list",
    "identity_matrix",
    "zero_matrix",
    "mat_mul",
    "mat_vec",
    "vec_mat",
    "mat_add",
    "mat_sub",
    "mat_transpose",
    "mat_det",
    "mat_inverse",
    "is_integer_matrix",
    "hermite_normal_form",
    "smith_normal_form",
    "DiophantineSolution",
    "solve_diophantine",
    "integer_nullspace",
]

Number = Fraction
Matrix = List[List[Fraction]]
Vector = List[Fraction]


# ---------------------------------------------------------------------------
# scalar helpers
# ---------------------------------------------------------------------------

def extended_gcd(a: int, b: int) -> Tuple[int, int, int]:
    """Return ``(g, x, y)`` with ``g = gcd(a, b)`` and ``a*x + b*y = g``.

    ``g`` is always non-negative; ``gcd(0, 0) == 0``.
    """
    old_r, r = int(a), int(b)
    old_s, s = 1, 0
    old_t, t = 0, 1
    while r != 0:
        q = old_r // r
        old_r, r = r, old_r - q * r
        old_s, s = s, old_s - q * s
        old_t, t = t, old_t - q * t
    if old_r < 0:
        old_r, old_s, old_t = -old_r, -old_s, -old_t
    return old_r, old_s, old_t


def gcd_list(values: Iterable[int]) -> int:
    """Greatest common divisor of an iterable of integers (0 for empty)."""
    g = 0
    for v in values:
        g, _, _ = extended_gcd(g, int(v))
        if g == 1:
            return 1
    return g


def lcm_list(values: Iterable[int]) -> int:
    """Least common multiple of an iterable of integers (1 for empty)."""
    result = 1
    for v in values:
        v = abs(int(v))
        if v == 0:
            continue
        g = gcd_list([result, v])
        result = result // g * v
    return result


# ---------------------------------------------------------------------------
# plain list-of-list matrix helpers (Fractions)
# ---------------------------------------------------------------------------

def _frac(x) -> Fraction:
    if isinstance(x, Fraction):
        return x
    return Fraction(x)


def to_fraction_matrix(rows: Sequence[Sequence]) -> Matrix:
    """Copy ``rows`` into a list-of-lists of :class:`Fraction`."""
    return [[_frac(x) for x in row] for row in rows]


def identity_matrix(n: int) -> Matrix:
    """The ``n``-by-``n`` identity matrix."""
    return [[Fraction(1) if i == j else Fraction(0) for j in range(n)] for i in range(n)]


def zero_matrix(rows: int, cols: int) -> Matrix:
    """A ``rows``-by-``cols`` matrix of zeros."""
    return [[Fraction(0)] * cols for _ in range(rows)]


def mat_shape(m: Sequence[Sequence]) -> Tuple[int, int]:
    if not m:
        return (0, 0)
    return (len(m), len(m[0]))


def mat_mul(a: Sequence[Sequence], b: Sequence[Sequence]) -> Matrix:
    """Matrix product ``a @ b`` with exact arithmetic."""
    ra, ca = mat_shape(a)
    rb, cb = mat_shape(b)
    if ca != rb:
        raise ValueError(f"shape mismatch for matrix product: {ra}x{ca} @ {rb}x{cb}")
    out = zero_matrix(ra, cb)
    for i in range(ra):
        for k in range(ca):
            aik = _frac(a[i][k])
            if aik == 0:
                continue
            for j in range(cb):
                out[i][j] += aik * _frac(b[k][j])
    return out


def mat_vec(a: Sequence[Sequence], v: Sequence) -> Vector:
    """Matrix-vector product ``a @ v``."""
    ra, ca = mat_shape(a)
    if ca != len(v):
        raise ValueError("shape mismatch for mat_vec")
    return [sum((_frac(a[i][j]) * _frac(v[j]) for j in range(ca)), Fraction(0)) for i in range(ra)]


def vec_mat(v: Sequence, a: Sequence[Sequence]) -> Vector:
    """Row-vector times matrix, ``v @ a`` (the paper writes iterations as rows)."""
    ra, ca = mat_shape(a)
    if len(v) != ra:
        raise ValueError("shape mismatch for vec_mat")
    return [sum((_frac(v[i]) * _frac(a[i][j]) for i in range(ra)), Fraction(0)) for j in range(ca)]


def mat_add(a: Sequence[Sequence], b: Sequence[Sequence]) -> Matrix:
    ra, ca = mat_shape(a)
    rb, cb = mat_shape(b)
    if (ra, ca) != (rb, cb):
        raise ValueError("shape mismatch for mat_add")
    return [[_frac(a[i][j]) + _frac(b[i][j]) for j in range(ca)] for i in range(ra)]


def mat_sub(a: Sequence[Sequence], b: Sequence[Sequence]) -> Matrix:
    ra, ca = mat_shape(a)
    rb, cb = mat_shape(b)
    if (ra, ca) != (rb, cb):
        raise ValueError("shape mismatch for mat_sub")
    return [[_frac(a[i][j]) - _frac(b[i][j]) for j in range(ca)] for i in range(ra)]


def mat_transpose(a: Sequence[Sequence]) -> Matrix:
    ra, ca = mat_shape(a)
    return [[_frac(a[i][j]) for i in range(ra)] for j in range(ca)]


def mat_det(a: Sequence[Sequence]) -> Fraction:
    """Determinant via fraction-free-ish Gaussian elimination (exact)."""
    ra, ca = mat_shape(a)
    if ra != ca:
        raise ValueError("determinant requires a square matrix")
    m = to_fraction_matrix(a)
    det = Fraction(1)
    for col in range(ra):
        pivot_row = None
        for r in range(col, ra):
            if m[r][col] != 0:
                pivot_row = r
                break
        if pivot_row is None:
            return Fraction(0)
        if pivot_row != col:
            m[col], m[pivot_row] = m[pivot_row], m[col]
            det = -det
        pivot = m[col][col]
        det *= pivot
        for r in range(col + 1, ra):
            factor = m[r][col] / pivot
            if factor == 0:
                continue
            for c in range(col, ra):
                m[r][c] -= factor * m[col][c]
    return det


def mat_inverse(a: Sequence[Sequence]) -> Matrix:
    """Exact inverse of a square rational matrix (raises if singular)."""
    ra, ca = mat_shape(a)
    if ra != ca:
        raise ValueError("inverse requires a square matrix")
    m = to_fraction_matrix(a)
    inv = identity_matrix(ra)
    for col in range(ra):
        pivot_row = None
        for r in range(col, ra):
            if m[r][col] != 0:
                pivot_row = r
                break
        if pivot_row is None:
            raise ValueError("matrix is singular")
        if pivot_row != col:
            m[col], m[pivot_row] = m[pivot_row], m[col]
            inv[col], inv[pivot_row] = inv[pivot_row], inv[col]
        pivot = m[col][col]
        m[col] = [x / pivot for x in m[col]]
        inv[col] = [x / pivot for x in inv[col]]
        for r in range(ra):
            if r == col:
                continue
            factor = m[r][col]
            if factor == 0:
                continue
            m[r] = [m[r][c] - factor * m[col][c] for c in range(ra)]
            inv[r] = [inv[r][c] - factor * inv[col][c] for c in range(ra)]
    return inv


def is_integer_matrix(a: Sequence[Sequence]) -> bool:
    """True when every entry is an integer (Fraction with denominator 1)."""
    for row in a:
        for x in row:
            if _frac(x).denominator != 1:
                return False
    return True


def mat_rank(a: Sequence[Sequence]) -> int:
    """Rank over the rationals."""
    ra, ca = mat_shape(a)
    m = to_fraction_matrix(a)
    rank = 0
    row = 0
    for col in range(ca):
        pivot_row = None
        for r in range(row, ra):
            if m[r][col] != 0:
                pivot_row = r
                break
        if pivot_row is None:
            continue
        m[row], m[pivot_row] = m[pivot_row], m[row]
        pivot = m[row][col]
        for r in range(ra):
            if r == row or m[r][col] == 0:
                continue
            factor = m[r][col] / pivot
            m[r] = [m[r][c] - factor * m[row][c] for c in range(ca)]
        rank += 1
        row += 1
        if row == ra:
            break
    return rank


# ---------------------------------------------------------------------------
# RationalMatrix: a light object wrapper used by the recurrence machinery
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class RationalMatrix:
    """An immutable exact rational matrix.

    Thin convenience wrapper over the list-of-``Fraction`` helpers; iteration
    vectors are treated as *row* vectors (``i @ T``), matching the paper's
    notation ``i_{k+1} = i_k T + u``.
    """

    rows: Tuple[Tuple[Fraction, ...], ...]

    @staticmethod
    def from_rows(rows: Sequence[Sequence]) -> "RationalMatrix":
        return RationalMatrix(tuple(tuple(_frac(x) for x in row) for row in rows))

    @staticmethod
    def identity(n: int) -> "RationalMatrix":
        return RationalMatrix.from_rows(identity_matrix(n))

    @property
    def shape(self) -> Tuple[int, int]:
        return mat_shape(self.rows)

    def tolist(self) -> Matrix:
        return [list(row) for row in self.rows]

    def __matmul__(self, other: "RationalMatrix") -> "RationalMatrix":
        return RationalMatrix.from_rows(mat_mul(self.rows, other.rows))

    def __add__(self, other: "RationalMatrix") -> "RationalMatrix":
        return RationalMatrix.from_rows(mat_add(self.rows, other.rows))

    def __sub__(self, other: "RationalMatrix") -> "RationalMatrix":
        return RationalMatrix.from_rows(mat_sub(self.rows, other.rows))

    def inverse(self) -> "RationalMatrix":
        return RationalMatrix.from_rows(mat_inverse(self.rows))

    def det(self) -> Fraction:
        return mat_det(self.rows)

    def transpose(self) -> "RationalMatrix":
        return RationalMatrix.from_rows(mat_transpose(self.rows))

    def rank(self) -> int:
        return mat_rank(self.rows)

    def is_integer(self) -> bool:
        return is_integer_matrix(self.rows)

    def row_apply(self, v: Sequence) -> Vector:
        """Return ``v @ self`` for a row vector ``v``."""
        return vec_mat(v, self.rows)

    def is_full_rank(self) -> bool:
        r, c = self.shape
        return r == c and self.det() != 0

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return "[" + "; ".join(" ".join(str(x) for x in row) for row in self.rows) + "]"


# ---------------------------------------------------------------------------
# Hermite and Smith normal forms (integer matrices)
# ---------------------------------------------------------------------------

def _as_int_matrix(a: Sequence[Sequence]) -> List[List[int]]:
    out: List[List[int]] = []
    for row in a:
        int_row: List[int] = []
        for x in row:
            f = _frac(x)
            if f.denominator != 1:
                raise ValueError("integer matrix expected")
            int_row.append(f.numerator)
        out.append(int_row)
    return out


def hermite_normal_form(a: Sequence[Sequence]) -> Tuple[List[List[int]], List[List[int]]]:
    """Row-style Hermite normal form.

    Returns ``(H, U)`` with ``U`` unimodular and ``H = U @ A``, ``H`` in (lower
    echelon) Hermite form: pivot entries positive, entries below a pivot zero,
    entries above a pivot reduced modulo the pivot and non-negative.
    """
    A = _as_int_matrix(a)
    n_rows = len(A)
    n_cols = len(A[0]) if A else 0
    U = [[1 if i == j else 0 for j in range(n_rows)] for i in range(n_rows)]

    pivot_row = 0
    for col in range(n_cols):
        if pivot_row >= n_rows:
            break
        # Find a row at/below pivot_row with non-zero entry in this column,
        # and use extended-gcd row combinations to clear the column below.
        nonzero = [r for r in range(pivot_row, n_rows) if A[r][col] != 0]
        if not nonzero:
            continue
        # Reduce all rows below pivot to zero in this column via gcd steps.
        r0 = nonzero[0]
        if r0 != pivot_row:
            A[pivot_row], A[r0] = A[r0], A[pivot_row]
            U[pivot_row], U[r0] = U[r0], U[pivot_row]
        for r in range(pivot_row + 1, n_rows):
            while A[r][col] != 0:
                if abs(A[pivot_row][col]) > abs(A[r][col]):
                    A[pivot_row], A[r] = A[r], A[pivot_row]
                    U[pivot_row], U[r] = U[r], U[pivot_row]
                q = A[r][col] // A[pivot_row][col]
                A[r] = [A[r][c] - q * A[pivot_row][c] for c in range(n_cols)]
                U[r] = [U[r][c] - q * U[pivot_row][c] for c in range(n_rows)]
        if A[pivot_row][col] < 0:
            A[pivot_row] = [-x for x in A[pivot_row]]
            U[pivot_row] = [-x for x in U[pivot_row]]
        # Reduce the entries above the pivot so 0 <= entry < pivot.
        p = A[pivot_row][col]
        if p != 0:
            for r in range(pivot_row):
                q = A[r][col] // p
                if q != 0:
                    A[r] = [A[r][c] - q * A[pivot_row][c] for c in range(n_cols)]
                    U[r] = [U[r][c] - q * U[pivot_row][c] for c in range(n_rows)]
            pivot_row += 1
    return A, U


def smith_normal_form(
    a: Sequence[Sequence],
) -> Tuple[List[List[int]], List[List[int]], List[List[int]]]:
    """Smith normal form: returns ``(S, U, V)`` with ``S = U @ A @ V``.

    ``U`` and ``V`` are unimodular and ``S`` is diagonal with each diagonal
    entry dividing the next.  Used to characterise the full integer solution
    set of a linear diophantine system.
    """
    A = _as_int_matrix(a)
    n_rows = len(A)
    n_cols = len(A[0]) if A else 0
    U = [[1 if i == j else 0 for j in range(n_rows)] for i in range(n_rows)]
    V = [[1 if i == j else 0 for j in range(n_cols)] for i in range(n_cols)]

    def swap_rows(i, j):
        A[i], A[j] = A[j], A[i]
        U[i], U[j] = U[j], U[i]

    def swap_cols(i, j):
        for row in A:
            row[i], row[j] = row[j], row[i]
        for row in V:
            row[i], row[j] = row[j], row[i]

    def add_row(src, dst, factor):
        A[dst] = [A[dst][c] + factor * A[src][c] for c in range(n_cols)]
        U[dst] = [U[dst][c] + factor * U[src][c] for c in range(n_rows)]

    def add_col(src, dst, factor):
        for row in A:
            row[dst] += factor * row[src]
        for row in V:
            row[dst] += factor * row[src]

    def negate_row(i):
        A[i] = [-x for x in A[i]]
        U[i] = [-x for x in U[i]]

    t = 0
    while t < min(n_rows, n_cols):
        # Find a non-zero pivot in the remaining submatrix.
        pivot = None
        for r in range(t, n_rows):
            for c in range(t, n_cols):
                if A[r][c] != 0:
                    pivot = (r, c)
                    break
            if pivot:
                break
        if pivot is None:
            break
        r, c = pivot
        swap_rows(t, r)
        swap_cols(t, c)

        # Eliminate until the pivot divides everything in its row and column.
        while True:
            changed = False
            for r in range(t + 1, n_rows):
                while A[r][t] != 0:
                    # The divisibility-repair step can cancel the pivot to 0;
                    # swapping the non-zero entry up restores a valid pivot.
                    if A[t][t] == 0 or abs(A[t][t]) > abs(A[r][t]):
                        swap_rows(t, r)
                    q = A[r][t] // A[t][t]
                    add_row(t, r, -q)
                    changed = True
            for c in range(t + 1, n_cols):
                while A[t][c] != 0:
                    if A[t][t] == 0 or abs(A[t][t]) > abs(A[t][c]):
                        swap_cols(t, c)
                    q = A[t][c] // A[t][t]
                    add_col(t, c, -q)
                    changed = True
            # Check whether the pivot divides every entry of the submatrix.
            divides_all = True
            for r in range(t + 1, n_rows):
                for c in range(t + 1, n_cols):
                    if A[r][c] % A[t][t] != 0:
                        # Add the offending row to row t to fix divisibility.
                        add_row(r, t, 1)
                        divides_all = False
                        changed = True
                        break
                if not divides_all:
                    break
            if not changed and divides_all:
                break
        if A[t][t] < 0:
            negate_row(t)
        t += 1
    return A, U, V


def integer_nullspace(a: Sequence[Sequence]) -> List[List[int]]:
    """Integer basis of the (right) nullspace ``{x | A @ x = 0}``.

    Uses the Smith normal form; the returned vectors generate every integer
    solution of the homogeneous system by integer linear combination.
    """
    A = _as_int_matrix(a)
    n_rows = len(A)
    n_cols = len(A[0]) if A else 0
    if n_cols == 0:
        return []
    if n_rows == 0:
        return [[1 if i == j else 0 for j in range(n_cols)] for i in range(n_cols)]
    S, _U, V = smith_normal_form(A)
    rank = 0
    for k in range(min(n_rows, n_cols)):
        if S[k][k] != 0:
            rank += 1
    basis = []
    for j in range(rank, n_cols):
        basis.append([V[i][j] for i in range(n_cols)])
    return basis


@dataclass(frozen=True)
class DiophantineSolution:
    """General solution of ``A @ x = b`` over the integers.

    ``x = particular + sum_k t_k * basis[k]`` for arbitrary integers ``t_k``.
    ``particular`` is one integer solution and ``basis`` is an integer basis of
    the homogeneous solutions.
    """

    particular: Tuple[int, ...]
    basis: Tuple[Tuple[int, ...], ...]

    @property
    def num_free(self) -> int:
        return len(self.basis)

    def point(self, params: Sequence[int]) -> Tuple[int, ...]:
        """Instantiate the free parameters to produce a concrete solution."""
        if len(params) != len(self.basis):
            raise ValueError("wrong number of parameters")
        x = list(self.particular)
        for t, vec in zip(params, self.basis):
            for k in range(len(x)):
                x[k] += t * vec[k]
        return tuple(x)


def solve_diophantine(a: Sequence[Sequence], b: Sequence[int]) -> Optional[DiophantineSolution]:
    """Solve the linear diophantine system ``A @ x = b`` over the integers.

    Returns ``None`` when no integer solution exists, otherwise a
    :class:`DiophantineSolution` with a particular solution and a basis of the
    integer nullspace of ``A`` (columns are unknowns, rows are equations).
    """
    A = _as_int_matrix(a)
    n_rows = len(A)
    n_cols = len(A[0]) if A else 0
    b_int = [int(x) for x in b]
    if len(b_int) != n_rows:
        raise ValueError("right-hand side length mismatch")
    if n_cols == 0:
        if any(x != 0 for x in b_int):
            return None
        return DiophantineSolution(particular=(), basis=())

    S, U, V = smith_normal_form(A)
    # Solve S @ y = U @ b, then x = V @ y.
    c = [sum(U[i][j] * b_int[j] for j in range(n_rows)) for i in range(n_rows)]
    y = [0] * n_cols
    for i in range(n_rows):
        d = S[i][i] if i < min(n_rows, n_cols) else 0
        if d == 0:
            if c[i] != 0:
                return None
        else:
            if c[i] % d != 0:
                return None
            y[i] = c[i] // d
    particular = tuple(
        sum(V[i][j] * y[j] for j in range(n_cols)) for i in range(n_cols)
    )
    rank = sum(1 for k in range(min(n_rows, n_cols)) if S[k][k] != 0)
    basis = tuple(
        tuple(V[i][j] for i in range(n_cols)) for j in range(rank, n_cols)
    )
    return DiophantineSolution(particular=particular, basis=basis)
