"""Convex integer sets described by affine constraints.

A :class:`ConvexSet` is a conjunction of affine constraints (equalities and
``>= 0`` inequalities) over a fixed, ordered tuple of integer variables, plus
an optional tuple of symbolic parameters (loop bounds such as ``N1`` that are
unknown at compile time).  It is the Python analogue of a single conjunct in
the Omega library's Presburger formulas — sufficient for the operations the
recurrence-chain partitioning algorithm needs: intersection, constraint
addition, emptiness testing, point membership, projection (Fourier–Motzkin,
see :mod:`repro.isl.fourier_motzkin`), and integer point enumeration for
bounded sets (see :mod:`repro.isl.enumerate_points`).

Unions of convex sets live in :mod:`repro.isl.sets`; affine relations in
:mod:`repro.isl.relations`.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from math import ceil, floor, gcd
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from .affine import AffineExpr

__all__ = ["Constraint", "ConvexSet", "EQ", "GE"]

EQ = "=="
GE = ">="


def _frac(x) -> Fraction:
    if isinstance(x, Fraction):
        return x
    return Fraction(x)


@dataclass(frozen=True)
class Constraint:
    """A single affine constraint ``expr == 0`` or ``expr >= 0``."""

    expr: AffineExpr
    kind: str  # EQ or GE

    def __post_init__(self):
        if self.kind not in (EQ, GE):
            raise ValueError(f"unknown constraint kind {self.kind!r}")

    # -- constructors --------------------------------------------------------

    @staticmethod
    def eq(lhs, rhs=0) -> "Constraint":
        """``lhs == rhs``"""
        return Constraint(AffineExpr.from_any(lhs) - AffineExpr.from_any(rhs), EQ)

    @staticmethod
    def ge(lhs, rhs=0) -> "Constraint":
        """``lhs >= rhs``"""
        return Constraint(AffineExpr.from_any(lhs) - AffineExpr.from_any(rhs), GE)

    @staticmethod
    def le(lhs, rhs=0) -> "Constraint":
        """``lhs <= rhs``"""
        return Constraint(AffineExpr.from_any(rhs) - AffineExpr.from_any(lhs), GE)

    @staticmethod
    def lt(lhs, rhs=0) -> "Constraint":
        """``lhs < rhs`` over the integers, i.e. ``lhs <= rhs - 1``."""
        return Constraint(AffineExpr.from_any(rhs) - AffineExpr.from_any(lhs) - 1, GE)

    @staticmethod
    def gt(lhs, rhs=0) -> "Constraint":
        """``lhs > rhs`` over the integers, i.e. ``lhs >= rhs + 1``."""
        return Constraint(AffineExpr.from_any(lhs) - AffineExpr.from_any(rhs) - 1, GE)

    # -- operations -----------------------------------------------------------

    def normalized(self) -> "Constraint":
        """Return an equivalent constraint with coprime integer coefficients.

        For ``>=`` constraints the constant term is additionally tightened to
        ``floor(c / g)`` (valid over the integers).
        """
        expr = self.expr.scaled_to_integer()
        coeff_ints = [int(c) for _, c in expr.coeffs]
        g = 0
        for c in coeff_ints:
            g = gcd(g, abs(c))
        if g == 0:
            return Constraint(expr, self.kind)
        const = expr.constant
        new_coeffs = {n: Fraction(int(c), g) for n, c in expr.coeffs}
        if self.kind == GE:
            new_const = Fraction(floor(Fraction(const, g)))
        else:
            if const % g != 0:
                # Equality with non-divisible constant: unsatisfiable; keep as-is
                # (emptiness detection happens at the set level).
                return Constraint(expr, self.kind)
            new_const = Fraction(const, g)
        return Constraint(AffineExpr.build(new_coeffs, new_const), self.kind)

    def negated(self) -> List["Constraint"]:
        """Integer negation.

        ``not (e >= 0)`` is ``-e - 1 >= 0``; ``not (e == 0)`` is the *disjunction*
        ``e >= 1 or -e >= 1`` and therefore returns two constraints that the
        caller must treat as alternatives (used by set subtraction).
        """
        if self.kind == GE:
            return [Constraint((-self.expr) - 1, GE)]
        return [Constraint(self.expr - 1, GE), Constraint((-self.expr) - 1, GE)]

    def substitute(self, mapping) -> "Constraint":
        return Constraint(self.expr.substitute(mapping), self.kind)

    def rename(self, mapping: Mapping[str, str]) -> "Constraint":
        return Constraint(self.expr.rename(mapping), self.kind)

    def satisfied_by(self, assignment: Mapping[str, int]) -> bool:
        value = self.expr.evaluate(assignment)
        return value == 0 if self.kind == EQ else value >= 0

    def is_tautology(self) -> bool:
        if self.expr.is_constant():
            v = self.expr.constant
            return v == 0 if self.kind == EQ else v >= 0
        return False

    def is_contradiction(self) -> bool:
        if self.expr.is_constant():
            v = self.expr.constant
            return v != 0 if self.kind == EQ else v < 0
        # An integer equality whose integer-scaled coefficients share a gcd not
        # dividing the constant can never hold.
        if self.kind == EQ:
            expr = self.expr.scaled_to_integer()
            g = 0
            for _, c in expr.coeffs:
                g = gcd(g, abs(int(c)))
            if g > 1 and int(expr.constant) % g != 0:
                return True
        return False

    def __str__(self) -> str:
        return f"{self.expr} {'=' if self.kind == EQ else '>='} 0"

    def __repr__(self) -> str:  # pragma: no cover
        return f"Constraint({self})"


@dataclass(frozen=True)
class ConvexSet:
    """A conjunction of affine constraints over ordered integer variables."""

    variables: Tuple[str, ...]
    constraints: Tuple[Constraint, ...] = ()
    parameters: Tuple[str, ...] = ()

    # -- constructors ---------------------------------------------------------

    @staticmethod
    def universe(variables: Sequence[str], parameters: Sequence[str] = ()) -> "ConvexSet":
        return ConvexSet(tuple(variables), (), tuple(parameters))

    @staticmethod
    def from_constraints(
        variables: Sequence[str],
        constraints: Iterable[Constraint],
        parameters: Sequence[str] = (),
    ) -> "ConvexSet":
        return ConvexSet(tuple(variables), tuple(constraints), tuple(parameters)).simplified()

    @staticmethod
    def from_box(
        variables: Sequence[str], bounds: Sequence[Tuple[int, int]]
    ) -> "ConvexSet":
        """Rectangular set ``lo_k <= v_k <= hi_k``."""
        if len(variables) != len(bounds):
            raise ValueError("one (lo, hi) pair per variable required")
        cons = []
        for v, (lo, hi) in zip(variables, bounds):
            cons.append(Constraint.ge(AffineExpr.variable(v), lo))
            cons.append(Constraint.le(AffineExpr.variable(v), hi))
        return ConvexSet.from_constraints(variables, cons)

    # -- basic structure ------------------------------------------------------

    @property
    def dim(self) -> int:
        return len(self.variables)

    def all_symbols(self) -> Tuple[str, ...]:
        return tuple(self.variables) + tuple(self.parameters)

    def with_constraints(self, extra: Iterable[Constraint]) -> "ConvexSet":
        return ConvexSet(
            self.variables, self.constraints + tuple(extra), self.parameters
        ).simplified()

    def rename_variables(self, mapping: Mapping[str, str]) -> "ConvexSet":
        return ConvexSet(
            tuple(mapping.get(v, v) for v in self.variables),
            tuple(c.rename(mapping) for c in self.constraints),
            tuple(mapping.get(p, p) for p in self.parameters),
        )

    def bind_parameters(self, values: Mapping[str, int]) -> "ConvexSet":
        """Substitute concrete values for (a subset of) the parameters."""
        remaining = tuple(p for p in self.parameters if p not in values)
        return ConvexSet(
            self.variables,
            tuple(c.substitute(values) for c in self.constraints),
            remaining,
        ).simplified()

    # -- simplification -------------------------------------------------------

    def simplified(self) -> "ConvexSet":
        """Normalize constraints, drop tautologies, deduplicate."""
        seen = set()
        out: List[Constraint] = []
        contradictory = False
        for c in self.constraints:
            n = c.normalized()
            if n.is_tautology():
                continue
            if n.is_contradiction():
                contradictory = True
            key = (n.kind, n.expr.coeffs, n.expr.constant)
            if key in seen:
                continue
            seen.add(key)
            out.append(n)
        if contradictory:
            # Canonical empty set: a single unsatisfiable constraint.
            out = [Constraint(AffineExpr.constant_expr(-1), GE)]
        return ConvexSet(self.variables, tuple(out), self.parameters)

    def is_obviously_empty(self) -> bool:
        return any(c.is_contradiction() for c in self.constraints)

    # -- membership & evaluation ---------------------------------------------

    def contains(self, point: Sequence[int], params: Mapping[str, int] | None = None) -> bool:
        """Exact membership test for a concrete integer point."""
        if len(point) != len(self.variables):
            raise ValueError(
                f"point has {len(point)} coordinates, set has {len(self.variables)} variables"
            )
        assignment: Dict[str, Fraction] = {
            v: Fraction(int(x)) for v, x in zip(self.variables, point)
        }
        if params:
            assignment.update({k: Fraction(int(v)) for k, v in params.items()})
        for p in self.parameters:
            if p not in assignment:
                raise ValueError(f"parameter {p!r} is unbound; pass params=...")
        return all(c.satisfied_by(assignment) for c in self.constraints)

    # -- bounds ---------------------------------------------------------------

    def variable_bounds(
        self, name: str, params: Mapping[str, int] | None = None
    ) -> Tuple[Optional[int], Optional[int]]:
        """Conservative integer bounds for one variable.

        Uses Fourier–Motzkin elimination of every *other* variable and returns
        the tightest constant lower/upper bounds found (``None`` if unbounded
        in that direction).  Exact for the rational relaxation; conservative
        (never too tight) for the integer set.
        """
        from .fourier_motzkin import project_onto

        cs = self if params is None else self.bind_parameters(params)
        projected = project_onto(cs, [name])
        lower: Optional[Fraction] = None
        upper: Optional[Fraction] = None
        for c in projected.constraints:
            coeff = c.expr.coeff(name)
            rest = c.expr.drop([name])
            if not rest.is_constant():
                continue
            if coeff == 0:
                continue
            if c.kind == EQ:
                val = -rest.constant / coeff
                lower = val if lower is None else max(lower, val)
                upper = val if upper is None else min(upper, val)
            else:
                # coeff*name + rest >= 0
                if coeff > 0:
                    val = -rest.constant / coeff
                    lower = val if lower is None else max(lower, val)
                else:
                    val = -rest.constant / coeff
                    upper = val if upper is None else min(upper, val)
        lo = None if lower is None else ceil(lower)
        hi = None if upper is None else floor(upper)
        return lo, hi

    def bounding_box(
        self, params: Mapping[str, int] | None = None
    ) -> List[Tuple[Optional[int], Optional[int]]]:
        """Per-variable conservative integer bounds."""
        return [self.variable_bounds(v, params) for v in self.variables]

    # -- emptiness ------------------------------------------------------------

    def is_empty(self, params: Mapping[str, int] | None = None) -> bool:
        """Exact integer emptiness for bounded sets.

        Strategy: simplify; check for syntactic contradictions; check rational
        feasibility by Fourier–Motzkin; if rationally feasible and the set is
        bounded, search for an integer point by recursive descent on the
        variable bounds.  Unbounded rationally-feasible sets are reported as
        non-empty (they are, in every case arising from loop iteration spaces,
        which always carry finite bounds once parameters are bound).
        """
        cs = (self if params is None else self.bind_parameters(params)).simplified()
        if cs.is_obviously_empty():
            return True
        if cs.parameters:
            # Parametric emptiness: fall back to the rational relaxation.
            return _rationally_infeasible(cs)
        if not cs.variables:
            return any(not c.is_tautology() for c in cs.constraints)
        if _rationally_infeasible(cs):
            return True
        return _find_integer_point(cs) is None

    def sample_point(self, params: Mapping[str, int] | None = None) -> Optional[Tuple[int, ...]]:
        """Return one integer point of the set, or ``None`` when empty."""
        cs = (self if params is None else self.bind_parameters(params)).simplified()
        if cs.is_obviously_empty() or _rationally_infeasible(cs):
            return None
        return _find_integer_point(cs)

    # -- display --------------------------------------------------------------

    def __str__(self) -> str:
        vars_s = ", ".join(self.variables)
        cons_s = " and ".join(str(c) for c in self.constraints) or "true"
        if self.parameters:
            return f"[{', '.join(self.parameters)}] -> {{ [{vars_s}] : {cons_s} }}"
        return f"{{ [{vars_s}] : {cons_s} }}"

    def __repr__(self) -> str:  # pragma: no cover
        return f"ConvexSet({self})"


# ---------------------------------------------------------------------------
# internal feasibility helpers
# ---------------------------------------------------------------------------

def _rationally_infeasible(cs: ConvexSet) -> bool:
    """True when Fourier–Motzkin proves the rational relaxation empty."""
    from .fourier_motzkin import eliminate_variable

    constraints = list(cs.constraints)
    names = list(cs.variables) + list(cs.parameters)
    for name in names:
        constraints = eliminate_variable(constraints, name)
        for c in constraints:
            if c.is_contradiction():
                return True
    return any(c.is_contradiction() for c in constraints)


def _find_integer_point(cs: ConvexSet, _depth: int = 0) -> Optional[Tuple[int, ...]]:
    """Depth-first search for an integer point using FME bounds per variable."""
    if not cs.variables:
        sat = all(c.is_tautology() or not c.expr.is_constant() for c in cs.constraints)
        return () if sat and not cs.is_obviously_empty() else None
    name = cs.variables[0]
    rest_vars = cs.variables[1:]
    lo, hi = cs.variable_bounds(name)
    if lo is None or hi is None:
        # Unbounded variable: try a window around zero as a pragmatic fallback.
        lo = -64 if lo is None else lo
        hi = 64 if hi is None else hi
    if lo > hi:
        return None
    for value in range(lo, hi + 1):
        substituted = [c.substitute({name: value}) for c in cs.constraints]
        child = ConvexSet(rest_vars, tuple(substituted), cs.parameters).simplified()
        if child.is_obviously_empty():
            continue
        if not rest_vars:
            if all(c.is_tautology() for c in child.constraints):
                return (value,)
            continue
        if _rationally_infeasible(child):
            continue
        sub = _find_integer_point(child, _depth + 1)
        if sub is not None:
            return (value,) + sub
    return None
