"""Affine expressions over named integer variables.

An :class:`AffineExpr` is ``sum_k c_k * v_k + c0`` with exact rational
coefficients.  It is the common currency between the loop-nest IR
(:mod:`repro.ir`), the constraint layer (:mod:`repro.isl.convex`), and the
code generators: loop bounds, array subscripts and dependence constraints are
all affine expressions.

Variables are plain strings; expressions are immutable and hashable so they
can be used as dictionary keys and deduplicated in constraint systems.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, Iterable, Mapping, Sequence, Tuple, Union

__all__ = ["AffineExpr", "var", "const"]

Coeff = Union[int, Fraction]


def _frac(x) -> Fraction:
    if isinstance(x, Fraction):
        return x
    return Fraction(x)


@dataclass(frozen=True)
class AffineExpr:
    """An immutable affine expression ``sum(coeffs[v] * v) + constant``."""

    coeffs: Tuple[Tuple[str, Fraction], ...] = ()
    constant: Fraction = Fraction(0)

    # -- construction -------------------------------------------------------

    @staticmethod
    def build(coeffs: Mapping[str, Coeff] | None = None, constant: Coeff = 0) -> "AffineExpr":
        """Build an expression from a coefficient mapping, dropping zeros."""
        items = []
        if coeffs:
            for name, c in coeffs.items():
                f = _frac(c)
                if f != 0:
                    items.append((name, f))
        items.sort(key=lambda kv: kv[0])
        return AffineExpr(tuple(items), _frac(constant))

    @staticmethod
    def variable(name: str) -> "AffineExpr":
        return AffineExpr.build({name: 1})

    @staticmethod
    def constant_expr(value: Coeff) -> "AffineExpr":
        return AffineExpr.build({}, value)

    @staticmethod
    def from_any(value) -> "AffineExpr":
        """Coerce ints, Fractions, strings (variable names) and exprs."""
        if isinstance(value, AffineExpr):
            return value
        if isinstance(value, str):
            return AffineExpr.variable(value)
        if isinstance(value, (int, Fraction)):
            return AffineExpr.constant_expr(value)
        raise TypeError(f"cannot build AffineExpr from {value!r}")

    # -- accessors ----------------------------------------------------------

    @property
    def coeff_map(self) -> Dict[str, Fraction]:
        return dict(self.coeffs)

    def coeff(self, name: str) -> Fraction:
        """Coefficient of ``name`` (0 if the variable does not occur)."""
        for n, c in self.coeffs:
            if n == name:
                return c
        return Fraction(0)

    @property
    def variables(self) -> Tuple[str, ...]:
        return tuple(n for n, _ in self.coeffs)

    def is_constant(self) -> bool:
        return not self.coeffs

    def is_integral(self) -> bool:
        """True when every coefficient and the constant are integers."""
        return self.constant.denominator == 1 and all(
            c.denominator == 1 for _, c in self.coeffs
        )

    # -- arithmetic ----------------------------------------------------------

    def __add__(self, other) -> "AffineExpr":
        other = AffineExpr.from_any(other)
        coeffs = self.coeff_map
        for n, c in other.coeffs:
            coeffs[n] = coeffs.get(n, Fraction(0)) + c
        return AffineExpr.build(coeffs, self.constant + other.constant)

    def __radd__(self, other) -> "AffineExpr":
        return self.__add__(other)

    def __neg__(self) -> "AffineExpr":
        return AffineExpr.build({n: -c for n, c in self.coeffs}, -self.constant)

    def __sub__(self, other) -> "AffineExpr":
        return self + (-AffineExpr.from_any(other))

    def __rsub__(self, other) -> "AffineExpr":
        return AffineExpr.from_any(other) + (-self)

    def __mul__(self, scalar: Coeff) -> "AffineExpr":
        f = _frac(scalar)
        return AffineExpr.build({n: c * f for n, c in self.coeffs}, self.constant * f)

    def __rmul__(self, scalar: Coeff) -> "AffineExpr":
        return self.__mul__(scalar)

    def scaled_to_integer(self) -> "AffineExpr":
        """Multiply by the LCM of the denominators so all coefficients are ints."""
        from math import gcd

        denominators = [self.constant.denominator] + [c.denominator for _, c in self.coeffs]
        lcm = 1
        for d in denominators:
            lcm = lcm // gcd(lcm, d) * d
        return self * lcm

    # -- evaluation / substitution -------------------------------------------

    def evaluate(self, assignment: Mapping[str, Coeff]) -> Fraction:
        """Evaluate under a complete assignment of the occurring variables."""
        total = self.constant
        for n, c in self.coeffs:
            if n not in assignment:
                raise KeyError(f"no value for variable {n!r}")
            total += c * _frac(assignment[n])
        return total

    def substitute(self, mapping: Mapping[str, Union["AffineExpr", Coeff, str]]) -> "AffineExpr":
        """Substitute variables by expressions (or constants/variable names)."""
        result = AffineExpr.constant_expr(self.constant)
        for n, c in self.coeffs:
            if n in mapping:
                result = result + AffineExpr.from_any(mapping[n]) * c
            else:
                result = result + AffineExpr.build({n: c})
        return result

    def rename(self, mapping: Mapping[str, str]) -> "AffineExpr":
        """Rename variables."""
        return AffineExpr.build(
            {mapping.get(n, n): c for n, c in self.coeffs}, self.constant
        )

    def drop(self, names: Iterable[str]) -> "AffineExpr":
        """Remove the given variables (as if their coefficient were zero)."""
        names = set(names)
        return AffineExpr.build(
            {n: c for n, c in self.coeffs if n not in names}, self.constant
        )

    # -- misc ----------------------------------------------------------------

    def __str__(self) -> str:
        parts = []
        for n, c in self.coeffs:
            if c == 1:
                parts.append(f"+{n}")
            elif c == -1:
                parts.append(f"-{n}")
            else:
                parts.append(f"{'+' if c > 0 else '-'}{abs(c)}*{n}")
        if self.constant != 0 or not parts:
            parts.append(f"{'+' if self.constant >= 0 else '-'}{abs(self.constant)}")
        s = "".join(parts)
        return s[1:] if s.startswith("+") else s

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"AffineExpr({self})"


def var(name: str) -> AffineExpr:
    """Shortcut: the affine expression consisting of a single variable."""
    return AffineExpr.variable(name)


def const(value: Coeff) -> AffineExpr:
    """Shortcut: a constant affine expression."""
    return AffineExpr.constant_expr(value)
