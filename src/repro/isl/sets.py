"""Unions of convex sets (the "disjunctive" layer of the integer-set library).

The three-set partitioning of the paper manipulates sets built by ``∩, ∪, \\,
dom, ran`` from the iteration space and the dependence relation, and the
result of those operations is in general *not* convex — it is a finite union
of convex sets.  :class:`UnionSet` implements those operations, keeping each
member convex so that the code generator can later emit one DOALL loop nest
per convex member (exactly as Algorithm 1's ``DOALLCodeGeneration`` does by
splitting a set into disjoint convex sets).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Mapping, Optional, Sequence, Tuple

from .convex import Constraint, ConvexSet, EQ, GE

__all__ = ["UnionSet"]


@dataclass(frozen=True)
class UnionSet:
    """A finite union of :class:`ConvexSet` members over the same variables."""

    variables: Tuple[str, ...]
    members: Tuple[ConvexSet, ...] = ()
    parameters: Tuple[str, ...] = ()

    # -- constructors ---------------------------------------------------------

    @staticmethod
    def empty(variables: Sequence[str], parameters: Sequence[str] = ()) -> "UnionSet":
        return UnionSet(tuple(variables), (), tuple(parameters))

    @staticmethod
    def universe(variables: Sequence[str], parameters: Sequence[str] = ()) -> "UnionSet":
        return UnionSet(
            tuple(variables),
            (ConvexSet.universe(variables, parameters),),
            tuple(parameters),
        )

    @staticmethod
    def from_convex(cs: ConvexSet) -> "UnionSet":
        return UnionSet(cs.variables, (cs,), cs.parameters)

    @staticmethod
    def from_members(
        variables: Sequence[str],
        members: Iterable[ConvexSet],
        parameters: Sequence[str] = (),
    ) -> "UnionSet":
        kept = tuple(m for m in members if not m.is_obviously_empty())
        return UnionSet(tuple(variables), kept, tuple(parameters))

    # -- structure ------------------------------------------------------------

    @property
    def dim(self) -> int:
        return len(self.variables)

    def _check_compatible(self, other: "UnionSet") -> None:
        if self.variables != other.variables:
            raise ValueError(
                f"sets are over different spaces: {self.variables} vs {other.variables}"
            )

    def simplified(self) -> "UnionSet":
        """Drop members proven empty (cheap checks only)."""
        kept = tuple(
            m.simplified() for m in self.members if not m.simplified().is_obviously_empty()
        )
        return UnionSet(self.variables, kept, self.parameters)

    def coalesced(self, params: Mapping[str, int] | None = None) -> "UnionSet":
        """Drop members that are empty under full (integer-exact) emptiness."""
        kept = tuple(m for m in self.members if not m.is_empty(params))
        return UnionSet(self.variables, kept, self.parameters)

    def prune_rational(self) -> "UnionSet":
        """Drop members whose rational relaxation is empty (cheaper than
        :meth:`coalesced`, still sound: only provably-empty members are removed).
        Used to keep the member count of iterated set algebra under control."""
        from .convex import _rationally_infeasible

        kept = tuple(
            m for m in self.members
            if not m.is_obviously_empty() and not _rationally_infeasible(m)
        )
        return UnionSet(self.variables, kept, self.parameters)

    def bind_parameters(self, values: Mapping[str, int]) -> "UnionSet":
        remaining = tuple(p for p in self.parameters if p not in values)
        return UnionSet(
            self.variables,
            tuple(m.bind_parameters(values) for m in self.members),
            remaining,
        ).simplified()

    def rename_variables(self, mapping: Mapping[str, str]) -> "UnionSet":
        return UnionSet(
            tuple(mapping.get(v, v) for v in self.variables),
            tuple(m.rename_variables(mapping) for m in self.members),
            tuple(mapping.get(p, p) for p in self.parameters),
        )

    # -- set algebra -----------------------------------------------------------

    def union(self, other: "UnionSet") -> "UnionSet":
        self._check_compatible(other)
        params = tuple(dict.fromkeys(self.parameters + other.parameters))
        return UnionSet(self.variables, self.members + other.members, params).simplified()

    def intersect(self, other: "UnionSet") -> "UnionSet":
        self._check_compatible(other)
        params = tuple(dict.fromkeys(self.parameters + other.parameters))
        members: List[ConvexSet] = []
        for a in self.members:
            for b in other.members:
                members.append(
                    ConvexSet(
                        self.variables, a.constraints + b.constraints, params
                    ).simplified()
                )
        return UnionSet.from_members(self.variables, members, params)

    def intersect_convex(self, cs: ConvexSet) -> "UnionSet":
        return self.intersect(UnionSet.from_convex(cs))

    def subtract(self, other: "UnionSet") -> "UnionSet":
        """Set difference ``self \\ other``.

        Each convex member of ``other`` is removed in turn; removing one convex
        set from a convex set yields a union of convex sets obtained by negating
        one constraint at a time while keeping the previous ones — this also
        makes the resulting members pairwise disjoint, which the DOALL code
        generator relies on.
        """
        self._check_compatible(other)
        result = self
        for b in other.members:
            result = result._subtract_convex(b)
        return result.simplified()

    def _subtract_convex(self, b: ConvexSet) -> "UnionSet":
        params = tuple(dict.fromkeys(self.parameters + b.parameters))
        new_members: List[ConvexSet] = []
        for a in self.members:
            # a \ b = union over constraints c_i of b of
            #   a ∧ c_1 ∧ ... ∧ c_{i-1} ∧ ¬c_i
            prefix: List[Constraint] = []
            for c in b.constraints:
                for neg in c.negated():
                    piece = ConvexSet(
                        self.variables,
                        a.constraints + tuple(prefix) + (neg,),
                        params,
                    ).simplified()
                    if not piece.is_obviously_empty():
                        new_members.append(piece)
                if c.kind == EQ:
                    prefix.append(c)
                else:
                    prefix.append(c)
            if not b.constraints:
                # subtracting the universe removes everything
                continue
        return UnionSet(self.variables, tuple(new_members), params)

    # -- queries ----------------------------------------------------------------

    def contains(self, point: Sequence[int], params: Mapping[str, int] | None = None) -> bool:
        return any(m.contains(point, params) for m in self.members)

    def is_empty(self, params: Mapping[str, int] | None = None) -> bool:
        return all(m.is_empty(params) for m in self.members)

    def enumerate(self, params: Mapping[str, int] | None = None) -> List[Tuple[int, ...]]:
        """All integer points (bounded sets only), sorted lexicographically.

        Points belonging to several members are reported once.
        """
        from .enumerate_points import enumerate_convex

        seen = set()
        for m in self.members:
            for p in enumerate_convex(m, params):
                seen.add(p)
        return sorted(seen)

    def count(self, params: Mapping[str, int] | None = None) -> int:
        return len(self.enumerate(params))

    def sample_point(self, params: Mapping[str, int] | None = None) -> Optional[Tuple[int, ...]]:
        for m in self.members:
            p = m.sample_point(params)
            if p is not None:
                return p
        return None

    # -- display ------------------------------------------------------------------

    def __str__(self) -> str:
        if not self.members:
            return f"{{ [{', '.join(self.variables)}] : false }}"
        return " ∪ ".join(str(m) for m in self.members)

    def __repr__(self) -> str:  # pragma: no cover
        return f"UnionSet({self})"
