"""Integer point enumeration for bounded convex sets.

Exact dependence analysis on concrete problem sizes ultimately needs the
actual integer points of iteration spaces and dependence relations (the
runtime executors iterate over them, the validators compare them against
brute force).  This module provides two complementary strategies:

* :func:`enumerate_convex` — recursive descent over per-variable
  Fourier–Motzkin bounds.  Works for any bounded convex set and any dimension;
  cost proportional to the traversed sub-box.
* :func:`filter_box_numpy` — vectorised evaluation of the constraints over an
  explicit candidate box using numpy, used by the dependence analyser when a
  whole iteration space (hundreds of thousands of points) must be classified
  at once.  This is the "vectorise the inner loop" idiom from the HPC Python
  guides: constraint evaluation becomes a handful of matrix operations instead
  of a Python-level loop per point.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from .convex import Constraint, ConvexSet, EQ

__all__ = [
    "EnumerationTruncated",
    "enumerate_convex",
    "filter_box_numpy",
    "iteration_points",
]


class EnumerationTruncated(RuntimeError):
    """``max_points`` cut off an incomplete enumeration.

    Carries the truncated prefix in :attr:`points` so callers that can live
    with a partial result still get it.  Raised instead of silently returning
    a truncated list, so a capped enumeration can never be mistaken for a
    complete one; pass ``allow_truncated=True`` to opt into the old behaviour.
    """

    def __init__(self, message: str, points: List[Tuple[int, ...]]):
        super().__init__(message)
        self.points = points


def enumerate_convex(
    cs: ConvexSet,
    params: Mapping[str, int] | None = None,
    max_points: Optional[int] = None,
    allow_truncated: bool = False,
) -> List[Tuple[int, ...]]:
    """Enumerate all integer points of a bounded convex set.

    Raises :class:`ValueError` when some variable is unbounded (after binding
    the supplied parameter values) — iteration spaces must be finite to be
    enumerated.  ``max_points`` optionally caps the result as a safety net;
    when the cap actually cuts points off, :class:`EnumerationTruncated` is
    raised (with the truncated prefix attached) unless ``allow_truncated=True``,
    in which case the truncated list is returned.  An enumeration that finishes
    exactly at the cap is complete and never raises.
    """
    work = cs if params is None else cs.bind_parameters(params)
    work = work.simplified()
    if work.parameters:
        raise ValueError(
            f"cannot enumerate a parametric set; unbound parameters: {work.parameters}"
        )
    if work.is_obviously_empty():
        return []
    points: List[Tuple[int, ...]] = []
    # Probe one point past the cap so a complete enumeration that exactly fills
    # the cap is distinguishable from a truncated one.
    probe = None if max_points is None else max_points + 1
    _enumerate_rec(work, (), points, probe)
    if max_points is not None and len(points) > max_points:
        del points[max_points:]
        if not allow_truncated:
            raise EnumerationTruncated(
                f"enumeration stopped at max_points={max_points} but the set has "
                f"more integer points; pass allow_truncated=True for the prefix",
                points,
            )
    return points


def _enumerate_rec(
    cs: ConvexSet,
    prefix: Tuple[int, ...],
    out: List[Tuple[int, ...]],
    max_points: Optional[int],
) -> None:
    if max_points is not None and len(out) >= max_points:
        return
    if not cs.variables:
        if all(c.is_tautology() for c in cs.constraints):
            out.append(prefix)
        return
    name = cs.variables[0]
    rest = cs.variables[1:]
    lo, hi = cs.variable_bounds(name)
    if lo is None or hi is None:
        # An infeasible set loses its bound constraints during projection
        # (the contradiction swallows them); that is emptiness, not unboundedness.
        from .convex import _rationally_infeasible

        if _rationally_infeasible(cs):
            return
        raise ValueError(f"variable {name!r} is unbounded; cannot enumerate")
    for value in range(lo, hi + 1):
        child = ConvexSet(
            rest, tuple(c.substitute({name: value}) for c in cs.constraints), ()
        ).simplified()
        if child.is_obviously_empty():
            continue
        _enumerate_rec(child, prefix + (value,), out, max_points)
        if max_points is not None and len(out) >= max_points:
            return


def _constraint_matrix(
    cs: ConvexSet, params: Mapping[str, int] | None
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Return (A_ge, b_ge) and equality rows for vectorised evaluation.

    Every constraint is scaled to integer coefficients first so the numpy
    evaluation is exact (int64 arithmetic on affine forms of small magnitude).
    """
    param_vals = dict(params or {})
    ge_rows: List[List[int]] = []
    ge_consts: List[int] = []
    eq_rows: List[List[int]] = []
    eq_consts: List[int] = []
    for c in cs.constraints:
        expr = c.expr.substitute(param_vals) if param_vals else c.expr
        expr = expr.scaled_to_integer()
        row = [int(expr.coeff(v)) for v in cs.variables]
        konst = int(expr.constant)
        leftover = [v for v in expr.variables if v not in cs.variables]
        if leftover:
            raise ValueError(f"unbound symbols in constraint: {leftover}")
        if c.kind == EQ:
            eq_rows.append(row)
            eq_consts.append(konst)
        else:
            ge_rows.append(row)
            ge_consts.append(konst)
    A_ge = np.array(ge_rows, dtype=np.int64).reshape(len(ge_rows), len(cs.variables))
    b_ge = np.array(ge_consts, dtype=np.int64)
    A_eq = np.array(eq_rows, dtype=np.int64).reshape(len(eq_rows), len(cs.variables))
    b_eq = np.array(eq_consts, dtype=np.int64)
    return A_ge, b_ge, np.concatenate([A_eq, b_eq.reshape(-1, 1)], axis=1) if len(eq_rows) else np.zeros((0, len(cs.variables) + 1), dtype=np.int64)


def filter_box_numpy(
    cs: ConvexSet,
    candidates: np.ndarray,
    params: Mapping[str, int] | None = None,
) -> np.ndarray:
    """Return the boolean mask of candidate rows that belong to the set.

    ``candidates`` is an ``(n, dim)`` int array whose columns follow
    ``cs.variables``.  All arithmetic is integer, hence exact.
    """
    candidates = np.asarray(candidates, dtype=np.int64)
    if candidates.ndim != 2 or candidates.shape[1] != len(cs.variables):
        raise ValueError("candidates must be (n, dim) with dim matching the set")
    A_ge, b_ge, eq = _constraint_matrix(cs, params)
    mask = np.ones(len(candidates), dtype=bool)
    if len(A_ge):
        vals = candidates @ A_ge.T + b_ge
        mask &= (vals >= 0).all(axis=1)
    if len(eq):
        A_eq = eq[:, :-1]
        b_eq = eq[:, -1]
        vals = candidates @ A_eq.T + b_eq
        mask &= (vals == 0).all(axis=1)
    return mask


def iteration_points(
    bounds: Sequence[Tuple[int, int]],
) -> np.ndarray:
    """Dense integer grid for a rectangular box, as an ``(n, dim)`` array.

    Lexicographic (row-major) order, matching sequential loop execution order
    of a normalized loop nest with those bounds.
    """
    axes = [np.arange(lo, hi + 1, dtype=np.int64) for lo, hi in bounds]
    if not axes:
        return np.zeros((1, 0), dtype=np.int64)
    mesh = np.meshgrid(*axes, indexing="ij")
    return np.stack([m.reshape(-1) for m in mesh], axis=1)
