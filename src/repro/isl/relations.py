"""Affine and finite relations between iteration vectors.

The dependence relation ``Rd`` of the paper maps iterations (or statement
instances) to the iterations that depend on them.  Two representations are
provided, mirroring the two ways the package reasons about dependences:

* :class:`ConvexRelation` / :class:`UnionRelation` — symbolic relations whose
  graph is a (union of) convex set(s) over ``in ++ out`` variables, supporting
  ``dom``, ``ran``, inverse, composition and domain/range restriction.  This is
  the Omega-library-like layer used to *derive* partitions, possibly with
  symbolic parameters.
* :class:`FiniteRelation` — an explicit set of integer pairs, produced by the
  exact dependence analyser for concrete loop bounds and used by the
  executors, the validators and the chain extractor.  All partition-safety
  invariants are ultimately checked against this exact object.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from .convex import Constraint, ConvexSet
from .fourier_motzkin import project_onto
from .lexorder import lex_lt
from .sets import UnionSet

__all__ = ["ConvexRelation", "UnionRelation", "FiniteRelation"]

Point = Tuple[int, ...]
Pair = Tuple[Point, Point]


# ---------------------------------------------------------------------------
# symbolic relations
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ConvexRelation:
    """A relation whose graph is a single convex set over ``in_vars + out_vars``."""

    in_vars: Tuple[str, ...]
    out_vars: Tuple[str, ...]
    graph: ConvexSet

    @staticmethod
    def from_constraints(
        in_vars: Sequence[str],
        out_vars: Sequence[str],
        constraints: Iterable[Constraint],
        parameters: Sequence[str] = (),
    ) -> "ConvexRelation":
        graph = ConvexSet.from_constraints(
            tuple(in_vars) + tuple(out_vars), constraints, parameters
        )
        return ConvexRelation(tuple(in_vars), tuple(out_vars), graph)

    def domain(self) -> ConvexSet:
        """Projection of the graph onto the input variables."""
        return project_onto(self.graph, self.in_vars)

    def range(self) -> ConvexSet:
        """Projection of the graph onto the output variables."""
        return project_onto(self.graph, self.out_vars)

    def inverse(self) -> "ConvexRelation":
        return ConvexRelation(self.out_vars, self.in_vars, self.graph)

    def intersect_domain(self, cs: ConvexSet) -> "ConvexRelation":
        renamed = cs.rename_variables(dict(zip(cs.variables, self.in_vars)))
        graph = self.graph.with_constraints(renamed.constraints)
        return ConvexRelation(self.in_vars, self.out_vars, graph)

    def intersect_range(self, cs: ConvexSet) -> "ConvexRelation":
        renamed = cs.rename_variables(dict(zip(cs.variables, self.out_vars)))
        graph = self.graph.with_constraints(renamed.constraints)
        return ConvexRelation(self.in_vars, self.out_vars, graph)

    def is_empty(self, params: Mapping[str, int] | None = None) -> bool:
        return self.graph.is_empty(params)

    def contains_pair(
        self, src: Sequence[int], dst: Sequence[int], params: Mapping[str, int] | None = None
    ) -> bool:
        # The graph's variable order is fixed at construction; map the (src,
        # dst) coordinates by variable *name* so inverse() keeps working.
        assignment = dict(zip(self.in_vars, src))
        assignment.update(dict(zip(self.out_vars, dst)))
        point = tuple(assignment[v] for v in self.graph.variables)
        return self.graph.contains(point, params)

    def __str__(self) -> str:
        return (
            f"{{ [{', '.join(self.in_vars)}] -> [{', '.join(self.out_vars)}] : "
            f"{' and '.join(str(c) for c in self.graph.constraints) or 'true'} }}"
        )


@dataclass(frozen=True)
class UnionRelation:
    """A finite union of :class:`ConvexRelation` pieces over the same spaces."""

    in_vars: Tuple[str, ...]
    out_vars: Tuple[str, ...]
    pieces: Tuple[ConvexRelation, ...] = ()

    @staticmethod
    def empty(in_vars: Sequence[str], out_vars: Sequence[str]) -> "UnionRelation":
        return UnionRelation(tuple(in_vars), tuple(out_vars), ())

    @staticmethod
    def from_pieces(pieces: Sequence[ConvexRelation]) -> "UnionRelation":
        if not pieces:
            raise ValueError("use UnionRelation.empty for an empty relation")
        first = pieces[0]
        for p in pieces:
            if p.in_vars != first.in_vars or p.out_vars != first.out_vars:
                raise ValueError("all pieces must share the same in/out spaces")
        return UnionRelation(first.in_vars, first.out_vars, tuple(pieces))

    def union(self, other: "UnionRelation") -> "UnionRelation":
        if (self.in_vars, self.out_vars) != (other.in_vars, other.out_vars):
            raise ValueError("cannot union relations over different spaces")
        return UnionRelation(self.in_vars, self.out_vars, self.pieces + other.pieces)

    def add(self, piece: ConvexRelation) -> "UnionRelation":
        return UnionRelation(self.in_vars, self.out_vars, self.pieces + (piece,))

    def domain(self) -> UnionSet:
        members = [p.domain() for p in self.pieces]
        return UnionSet.from_members(self.in_vars, members)

    def range(self) -> UnionSet:
        members = [p.range() for p in self.pieces]
        return UnionSet.from_members(self.out_vars, members)

    def inverse(self) -> "UnionRelation":
        return UnionRelation(
            self.out_vars, self.in_vars, tuple(p.inverse() for p in self.pieces)
        )

    def intersect_domain(self, sets: UnionSet) -> "UnionRelation":
        pieces = []
        for p in self.pieces:
            for m in sets.members:
                pieces.append(p.intersect_domain(m))
        return UnionRelation(self.in_vars, self.out_vars, tuple(pieces))

    def intersect_range(self, sets: UnionSet) -> "UnionRelation":
        pieces = []
        for p in self.pieces:
            for m in sets.members:
                pieces.append(p.intersect_range(m))
        return UnionRelation(self.in_vars, self.out_vars, tuple(pieces))

    def is_empty(self, params: Mapping[str, int] | None = None) -> bool:
        return all(p.is_empty(params) for p in self.pieces)

    def contains_pair(
        self, src: Sequence[int], dst: Sequence[int], params: Mapping[str, int] | None = None
    ) -> bool:
        return any(p.contains_pair(src, dst, params) for p in self.pieces)

    def enumerate_pairs(self, params: Mapping[str, int] | None = None) -> "FiniteRelation":
        """Materialise the relation as explicit pairs (bounded graphs only)."""
        pairs: Set[Pair] = set()
        for p in self.pieces:
            graph = p.graph if params is None else p.graph.bind_parameters(params)
            from .enumerate_points import enumerate_convex

            # Map graph coordinates to (in, out) by variable name so pieces
            # whose graph stores the variables in a different order (e.g.
            # inverted relations) still enumerate correctly.
            positions = {name: k for k, name in enumerate(graph.variables)}
            in_idx = [positions[name] for name in p.in_vars]
            out_idx = [positions[name] for name in p.out_vars]
            for point in enumerate_convex(graph):
                src = tuple(point[k] for k in in_idx)
                dst = tuple(point[k] for k in out_idx)
                pairs.add((src, dst))
        return FiniteRelation(
            frozenset(pairs), dim_in=len(self.in_vars), dim_out=len(self.out_vars)
        )

    def __str__(self) -> str:
        if not self.pieces:
            return f"{{ [{', '.join(self.in_vars)}] -> [{', '.join(self.out_vars)}] : false }}"
        return " ∪ ".join(str(p) for p in self.pieces)


# ---------------------------------------------------------------------------
# finite (explicit) relations
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class FiniteRelation:
    """An explicit finite relation: a set of (source, target) integer tuples."""

    pairs: FrozenSet[Pair] = frozenset()
    dim_in: int = 0
    dim_out: int = 0

    @staticmethod
    def from_pairs(pairs: Iterable[Pair]) -> "FiniteRelation":
        pair_set = frozenset((tuple(a), tuple(b)) for a, b in pairs)
        dim_in = dim_out = 0
        for a, b in pair_set:
            dim_in, dim_out = len(a), len(b)
            break
        return FiniteRelation(pair_set, dim_in, dim_out)

    # -- basic queries --------------------------------------------------------

    def __len__(self) -> int:
        return len(self.pairs)

    def __iter__(self):
        return iter(sorted(self.pairs))

    def __contains__(self, pair: Pair) -> bool:
        return (tuple(pair[0]), tuple(pair[1])) in self.pairs

    def is_empty(self) -> bool:
        return not self.pairs

    def domain(self) -> FrozenSet[Point]:
        return frozenset(a for a, _ in self.pairs)

    def range(self) -> FrozenSet[Point]:
        return frozenset(b for _, b in self.pairs)

    def points(self) -> FrozenSet[Point]:
        """All points touched by the relation (domain ∪ range)."""
        return self.domain() | self.range()

    # -- structure ------------------------------------------------------------

    def inverse(self) -> "FiniteRelation":
        return FiniteRelation(
            frozenset((b, a) for a, b in self.pairs), self.dim_out, self.dim_in
        )

    def union(self, other: "FiniteRelation") -> "FiniteRelation":
        return FiniteRelation.from_pairs(self.pairs | other.pairs)

    def restrict(self, domain: Optional[Set[Point]] = None, rng: Optional[Set[Point]] = None) -> "FiniteRelation":
        """Keep only pairs whose source is in ``domain`` and target in ``rng``."""
        kept = frozenset(
            (a, b)
            for a, b in self.pairs
            if (domain is None or a in domain) and (rng is None or b in rng)
        )
        return FiniteRelation(kept, self.dim_in, self.dim_out)

    def successors(self, point: Point) -> List[Point]:
        p = tuple(point)
        return sorted(b for a, b in self.pairs if a == p)

    def predecessors(self, point: Point) -> List[Point]:
        p = tuple(point)
        return sorted(a for a, b in self.pairs if b == p)

    def successor_map(self) -> Dict[Point, List[Point]]:
        out: Dict[Point, List[Point]] = {}
        for a, b in self.pairs:
            out.setdefault(a, []).append(b)
        for v in out.values():
            v.sort()
        return out

    def predecessor_map(self) -> Dict[Point, List[Point]]:
        out: Dict[Point, List[Point]] = {}
        for a, b in self.pairs:
            out.setdefault(b, []).append(a)
        for v in out.values():
            v.sort()
        return out

    def compose(self, other: "FiniteRelation") -> "FiniteRelation":
        """Relational composition: ``(a, c)`` when ``(a, b) ∈ self`` and ``(b, c) ∈ other``."""
        succ = other.successor_map()
        pairs = set()
        for a, b in self.pairs:
            for c in succ.get(b, ()):  # pragma: no branch
                pairs.add((a, c))
        return FiniteRelation(frozenset(pairs), self.dim_in, other.dim_out)

    def transitive_closure(self) -> "FiniteRelation":
        """The transitive closure ``R⁺`` (direct and indirect dependences)."""
        succ = self.successor_map()
        closure: Set[Pair] = set()
        for start in succ:
            # BFS from each source node.
            stack = list(succ.get(start, ()))
            visited: Set[Point] = set()
            while stack:
                node = stack.pop()
                if node in visited:
                    continue
                visited.add(node)
                closure.add((start, node))
                stack.extend(succ.get(node, ()))
        return FiniteRelation(frozenset(closure), self.dim_in, self.dim_out)

    # -- order-related views ----------------------------------------------------

    def lexicographically_forward(self) -> "FiniteRelation":
        """Keep only pairs with ``source ≺ target`` (the R_succ part of eq. 4)."""
        return FiniteRelation(
            frozenset((a, b) for a, b in self.pairs if lex_lt(a, b)),
            self.dim_in,
            self.dim_out,
        )

    def lexicographically_backward(self) -> "FiniteRelation":
        """Keep only pairs with ``target ≺ source`` (the R_pred part of eq. 4)."""
        return FiniteRelation(
            frozenset((a, b) for a, b in self.pairs if lex_lt(b, a)),
            self.dim_in,
            self.dim_out,
        )

    def oriented_forward(self) -> "FiniteRelation":
        """Re-orient every pair so the source lexicographically precedes the target.

        Self-pairs (``a == b``) are dropped: a dependence of an iteration on
        itself does not constrain the parallel schedule.
        """
        pairs = set()
        for a, b in self.pairs:
            if a == b:
                continue
            pairs.add((a, b) if lex_lt(a, b) else (b, a))
        return FiniteRelation(frozenset(pairs), self.dim_in, self.dim_out)

    def distances(self) -> Set[Point]:
        """The set of distance vectors ``target - source``."""
        return {tuple(y - x for x, y in zip(a, b)) for a, b in self.pairs}

    def __str__(self) -> str:
        items = ", ".join(f"{a}->{b}" for a, b in sorted(self.pairs))
        return f"{{ {items} }}"
