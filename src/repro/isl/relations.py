"""Affine and finite relations between iteration vectors.

The dependence relation ``Rd`` of the paper maps iterations (or statement
instances) to the iterations that depend on them.  Two representations are
provided, mirroring the two ways the package reasons about dependences:

* :class:`ConvexRelation` / :class:`UnionRelation` — symbolic relations whose
  graph is a (union of) convex set(s) over ``in ++ out`` variables, supporting
  ``dom``, ``ran``, inverse, composition and domain/range restriction.  This is
  the Omega-library-like layer used to *derive* partitions, possibly with
  symbolic parameters.
* :class:`FiniteRelation` — an explicit set of integer pairs, produced by the
  exact dependence analyser for concrete loop bounds and used by the
  executors, the validators and the chain extractor.  All partition-safety
  invariants are ultimately checked against this exact object.

Besides the pure-Python set representation, :class:`FiniteRelation` exposes an
**array-backed bulk path** for large relations: :meth:`FiniteRelation.as_arrays`
materialises the pairs as ``(n, dim)`` int64 numpy arrays, and
:class:`PointCodec` maps each integer point to a scalar int64 key by
lexicographic (mixed-radix) row encoding, so that ``dom``/``ran``/``restrict``
and membership become sorted-array operations (``np.unique``,
``np.searchsorted``) instead of per-point Python set algebra.
:class:`SuccessorIndex` provides successor lookup by binary search on the same
keys.  The vectorised partitioners in :mod:`repro.core` switch to this path
when the iteration space or the relation exceeds
:data:`BULK_SIZE_THRESHOLD` points/pairs; both paths are exact and produce
identical results (the equivalence is covered by tests).

The two representations are **lazily dual**: a relation built with
:meth:`FiniteRelation.from_arrays` (the exact analyser's sort-join output,
the bulk partitioners' restrictions) keeps only its canonical row arrays and
derives the frozenset of tuple pairs the first time a set-path consumer
touches :attr:`FiniteRelation.pairs`; a set-built relation conversely derives
its arrays on the first bulk access.  See ARCHITECTURE.md for the
pipeline-wide picture.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

import numpy as np

from .convex import Constraint, ConvexSet
from .fourier_motzkin import project_onto
from .lexorder import lex_lt
from .sets import UnionSet

__all__ = [
    "ConvexRelation",
    "UnionRelation",
    "FiniteRelation",
    "PointCodec",
    "SuccessorIndex",
    "in_sorted",
    "lexsort_rows",
    "readonly_view",
    "resolve_bulk_engine",
    "BULK_SIZE_THRESHOLD",
]

Point = Tuple[int, ...]
Pair = Tuple[Point, Point]

#: Spaces/relations at or above this many points/pairs take the array-backed
#: bulk path; below it the plain set algebra is faster (no numpy conversion).
BULK_SIZE_THRESHOLD = 4096


# ---------------------------------------------------------------------------
# lexicographic row encoding
# ---------------------------------------------------------------------------


def readonly_view(arr: np.ndarray) -> np.ndarray:
    """A read-only view of ``arr`` (the caller's own array keeps its flags).

    The lazily-dual containers (:class:`FiniteRelation`, the partitions, the
    array schedule phases) cache both an array and a derived tuple/frozenset
    view of the same data; storing the array behind a read-only view makes an
    accidental in-place edit — which would silently desync the cached views —
    raise immediately instead.
    """
    view = arr.view()
    view.setflags(write=False)
    return view


def lexsort_rows(rows: np.ndarray) -> np.ndarray:
    """Permutation putting the rows of an ``(n, dim)`` array in lexicographic order.

    Unlike :meth:`PointCodec.encode`-based sorting this never overflows: it is
    a plain ``np.lexsort`` over the columns (last key = first column), so it
    works for arbitrarily wide boxes.  Rank-0 rows are already "sorted".
    """
    rows = np.asarray(rows, dtype=np.int64)
    if rows.ndim != 2:
        raise ValueError("rows must be an (n, dim) array")
    if rows.shape[1] == 0:
        return np.arange(len(rows), dtype=np.int64)
    return np.lexsort(rows.T[::-1])


def in_sorted(keys: np.ndarray, sorted_keys: np.ndarray) -> np.ndarray:
    """Boolean membership of ``keys`` in an ascending-sorted key array.

    ``sorted_keys`` must be sorted (duplicates allowed); returns a boolean mask
    parallel to ``keys``.  This is the searchsorted-based membership primitive
    of the bulk path (O(n log m) instead of per-element hashing).
    """
    keys = np.asarray(keys, dtype=np.int64)
    sorted_keys = np.asarray(sorted_keys, dtype=np.int64)
    if sorted_keys.size == 0:
        return np.zeros(keys.shape, dtype=bool)
    pos = np.searchsorted(sorted_keys, keys).clip(max=sorted_keys.size - 1)
    return sorted_keys[pos] == keys


@dataclass(frozen=True)
class PointCodec:
    """Lexicographic row encoding of integer points into scalar int64 keys.

    The codec covers a fixed bounding box; each point inside the box maps to
    ``sum((x_d - lo_d) * stride_d)`` with mixed-radix strides, so **key order
    equals lexicographic point order** and distinct in-box points get distinct
    keys.  Points outside the box alias arbitrarily — callers must only encode
    points inside the box the codec was built for (build it with
    :meth:`for_arrays` over every array involved).
    """

    lo: np.ndarray
    extents: np.ndarray
    strides: np.ndarray

    @staticmethod
    def for_arrays(*arrays: Optional[np.ndarray]) -> "PointCodec":
        """A codec whose box covers every row of every given ``(n, dim)`` array.

        Raises :class:`ValueError` when no non-empty array is given, when the
        dimensions disagree, or when the box has more than 2**63 cells (the
        keys would overflow int64).
        """
        stacked = [
            np.asarray(a, dtype=np.int64)
            for a in arrays
            if a is not None and len(a)
        ]
        if not stacked:
            raise ValueError("cannot build a PointCodec from empty arrays")
        dim = stacked[0].shape[1]
        for a in stacked:
            if a.ndim != 2 or a.shape[1] != dim:
                raise ValueError("all arrays must be (n, dim) with a common dim")
        if dim == 0:
            zero = np.zeros(0, dtype=np.int64)
            return PointCodec(zero, zero.copy(), zero.copy())
        lo = np.min([a.min(axis=0) for a in stacked], axis=0)
        hi = np.max([a.max(axis=0) for a in stacked], axis=0)
        extents = (hi - lo + 1).astype(np.int64)
        cells = 1
        for e in extents.tolist():  # python ints: no silent overflow
            cells *= int(e)
        if cells >= 2**63:
            raise ValueError(
                f"point box of {cells} cells is too large for int64 lexicographic keys"
            )
        strides = np.ones(dim, dtype=np.int64)
        for d in range(dim - 2, -1, -1):
            strides[d] = strides[d + 1] * extents[d + 1]
        return PointCodec(lo, extents, strides)

    @property
    def dim(self) -> int:
        return len(self.lo)

    def contains(self, points: np.ndarray) -> np.ndarray:
        """Boolean mask of rows that lie inside the codec's box."""
        pts = np.asarray(points, dtype=np.int64)
        if self.dim == 0:
            return np.ones(len(pts), dtype=bool)
        return ((pts >= self.lo) & (pts < self.lo + self.extents)).all(axis=1)

    def encode(self, points: np.ndarray) -> np.ndarray:
        """Scalar int64 key of every row of an ``(n, dim)`` array."""
        pts = np.asarray(points, dtype=np.int64)
        if pts.ndim != 2 or pts.shape[1] != self.dim:
            raise ValueError(f"points must be (n, {self.dim}) for this codec")
        if self.dim == 0:
            return np.zeros(len(pts), dtype=np.int64)
        return (pts - self.lo) @ self.strides

    def decode(self, keys: np.ndarray) -> np.ndarray:
        """Inverse of :meth:`encode`: the ``(n, dim)`` points of in-box keys."""
        keys = np.asarray(keys, dtype=np.int64)
        out = np.empty((len(keys), self.dim), dtype=np.int64)
        rem = keys
        for d in range(self.dim):
            digit = rem // self.strides[d]
            rem = rem - digit * self.strides[d]
            out[:, d] = digit + self.lo[d]
        return out


def resolve_bulk_engine(
    space, rd: "FiniteRelation", engine: str
) -> Tuple[Optional[np.ndarray], Optional[List[Point]], Optional[PointCodec]]:
    """Shared engine dispatch of the dual set/vector partitioners.

    Normalises ``space`` (an ``(n, dim)`` int array or an iterable of point
    tuples) and decides whether the vector engine runs:

    * returns ``(space_arr, points, codec)``; a non-``None`` ``codec`` means
      "run the vector engine on ``space_arr``",
    * ``codec is None`` means "run the set engine" — on ``points`` when the
      input was an iterable, else on ``space_arr``'s rows,
    * ``engine="auto"`` picks the vector engine at
      :data:`BULK_SIZE_THRESHOLD` points/pairs but falls back to the set
      engine when the point box overflows int64 keys; ``engine="vector"``
      re-raises that overflow instead of silently degrading.
    """
    if engine not in ("auto", "set", "vector"):
        raise ValueError(f"unknown engine {engine!r}; use 'auto', 'set' or 'vector'")
    if isinstance(space, np.ndarray):
        space_arr: Optional[np.ndarray] = np.asarray(space, dtype=np.int64)
        if space_arr.ndim != 2:
            raise ValueError("an array iteration space must be (n, dim)")
        points: Optional[List[Point]] = None
        n = len(space_arr)
    else:
        points = [tuple(p) for p in space]
        space_arr = None
        n = len(points)
    want_vector = engine == "vector" or (
        engine == "auto" and max(n, len(rd)) >= BULK_SIZE_THRESHOLD
    )
    codec = None
    if want_vector and n and rd.dim_in == rd.dim_out:
        if space_arr is None:
            space_arr = np.array(sorted(set(points)), dtype=np.int64).reshape(
                -1, len(points[0])
            )
        try:
            codec = PointCodec.for_arrays(space_arr, *rd.as_arrays())
        except ValueError:
            if engine == "vector":
                raise
            codec = None  # auto: box too large for int64 keys → set engine
    return space_arr, points, codec


# ---------------------------------------------------------------------------
# symbolic relations
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ConvexRelation:
    """A relation whose graph is a single convex set over ``in_vars + out_vars``."""

    in_vars: Tuple[str, ...]
    out_vars: Tuple[str, ...]
    graph: ConvexSet

    @staticmethod
    def from_constraints(
        in_vars: Sequence[str],
        out_vars: Sequence[str],
        constraints: Iterable[Constraint],
        parameters: Sequence[str] = (),
    ) -> "ConvexRelation":
        graph = ConvexSet.from_constraints(
            tuple(in_vars) + tuple(out_vars), constraints, parameters
        )
        return ConvexRelation(tuple(in_vars), tuple(out_vars), graph)

    def domain(self) -> ConvexSet:
        """Projection of the graph onto the input variables."""
        return project_onto(self.graph, self.in_vars)

    def range(self) -> ConvexSet:
        """Projection of the graph onto the output variables."""
        return project_onto(self.graph, self.out_vars)

    def inverse(self) -> "ConvexRelation":
        return ConvexRelation(self.out_vars, self.in_vars, self.graph)

    def intersect_domain(self, cs: ConvexSet) -> "ConvexRelation":
        renamed = cs.rename_variables(dict(zip(cs.variables, self.in_vars)))
        graph = self.graph.with_constraints(renamed.constraints)
        return ConvexRelation(self.in_vars, self.out_vars, graph)

    def intersect_range(self, cs: ConvexSet) -> "ConvexRelation":
        renamed = cs.rename_variables(dict(zip(cs.variables, self.out_vars)))
        graph = self.graph.with_constraints(renamed.constraints)
        return ConvexRelation(self.in_vars, self.out_vars, graph)

    def is_empty(self, params: Mapping[str, int] | None = None) -> bool:
        return self.graph.is_empty(params)

    def contains_pair(
        self, src: Sequence[int], dst: Sequence[int], params: Mapping[str, int] | None = None
    ) -> bool:
        # The graph's variable order is fixed at construction; map the (src,
        # dst) coordinates by variable *name* so inverse() keeps working.
        assignment = dict(zip(self.in_vars, src))
        assignment.update(dict(zip(self.out_vars, dst)))
        point = tuple(assignment[v] for v in self.graph.variables)
        return self.graph.contains(point, params)

    def __str__(self) -> str:
        return (
            f"{{ [{', '.join(self.in_vars)}] -> [{', '.join(self.out_vars)}] : "
            f"{' and '.join(str(c) for c in self.graph.constraints) or 'true'} }}"
        )


@dataclass(frozen=True)
class UnionRelation:
    """A finite union of :class:`ConvexRelation` pieces over the same spaces."""

    in_vars: Tuple[str, ...]
    out_vars: Tuple[str, ...]
    pieces: Tuple[ConvexRelation, ...] = ()

    @staticmethod
    def empty(in_vars: Sequence[str], out_vars: Sequence[str]) -> "UnionRelation":
        return UnionRelation(tuple(in_vars), tuple(out_vars), ())

    @staticmethod
    def from_pieces(pieces: Sequence[ConvexRelation]) -> "UnionRelation":
        if not pieces:
            raise ValueError("use UnionRelation.empty for an empty relation")
        first = pieces[0]
        for p in pieces:
            if p.in_vars != first.in_vars or p.out_vars != first.out_vars:
                raise ValueError("all pieces must share the same in/out spaces")
        return UnionRelation(first.in_vars, first.out_vars, tuple(pieces))

    def union(self, other: "UnionRelation") -> "UnionRelation":
        if (self.in_vars, self.out_vars) != (other.in_vars, other.out_vars):
            raise ValueError("cannot union relations over different spaces")
        return UnionRelation(self.in_vars, self.out_vars, self.pieces + other.pieces)

    def add(self, piece: ConvexRelation) -> "UnionRelation":
        return UnionRelation(self.in_vars, self.out_vars, self.pieces + (piece,))

    def domain(self) -> UnionSet:
        members = [p.domain() for p in self.pieces]
        return UnionSet.from_members(self.in_vars, members)

    def range(self) -> UnionSet:
        members = [p.range() for p in self.pieces]
        return UnionSet.from_members(self.out_vars, members)

    def inverse(self) -> "UnionRelation":
        return UnionRelation(
            self.out_vars, self.in_vars, tuple(p.inverse() for p in self.pieces)
        )

    def intersect_domain(self, sets: UnionSet) -> "UnionRelation":
        pieces = []
        for p in self.pieces:
            for m in sets.members:
                pieces.append(p.intersect_domain(m))
        return UnionRelation(self.in_vars, self.out_vars, tuple(pieces))

    def intersect_range(self, sets: UnionSet) -> "UnionRelation":
        pieces = []
        for p in self.pieces:
            for m in sets.members:
                pieces.append(p.intersect_range(m))
        return UnionRelation(self.in_vars, self.out_vars, tuple(pieces))

    def is_empty(self, params: Mapping[str, int] | None = None) -> bool:
        return all(p.is_empty(params) for p in self.pieces)

    def contains_pair(
        self, src: Sequence[int], dst: Sequence[int], params: Mapping[str, int] | None = None
    ) -> bool:
        return any(p.contains_pair(src, dst, params) for p in self.pieces)

    def enumerate_pairs(self, params: Mapping[str, int] | None = None) -> "FiniteRelation":
        """Materialise the relation as explicit pairs (bounded graphs only)."""
        pairs: Set[Pair] = set()
        for p in self.pieces:
            graph = p.graph if params is None else p.graph.bind_parameters(params)
            from .enumerate_points import enumerate_convex

            # Map graph coordinates to (in, out) by variable name so pieces
            # whose graph stores the variables in a different order (e.g.
            # inverted relations) still enumerate correctly.
            positions = {name: k for k, name in enumerate(graph.variables)}
            in_idx = [positions[name] for name in p.in_vars]
            out_idx = [positions[name] for name in p.out_vars]
            for point in enumerate_convex(graph):
                src = tuple(point[k] for k in in_idx)
                dst = tuple(point[k] for k in out_idx)
                pairs.add((src, dst))
        return FiniteRelation(
            frozenset(pairs), dim_in=len(self.in_vars), dim_out=len(self.out_vars)
        )

    def __str__(self) -> str:
        if not self.pieces:
            return f"{{ [{', '.join(self.in_vars)}] -> [{', '.join(self.out_vars)}] : false }}"
        return " ∪ ".join(str(p) for p in self.pieces)


# ---------------------------------------------------------------------------
# finite (explicit) relations
# ---------------------------------------------------------------------------

class FiniteRelation:
    """An explicit finite relation: a set of (source, target) integer tuples.

    The relation is immutable and has **two interchangeable representations**:

    * a frozenset of ``(src_tuple, dst_tuple)`` pairs (:attr:`pairs`) — the
      set path used by the small-problem engines and the validators,
    * a pair of canonical ``(n, dim)`` int64 arrays (:meth:`as_arrays`) —
      lexicographically row-sorted and duplicate-free — the bulk path used by
      the vectorised engines.

    Either representation is derived lazily from the other the first time it
    is asked for and then cached: relations built with :meth:`from_arrays`
    never box their points into Python tuples unless a set-path consumer
    actually touches :attr:`pairs`, and set-built relations only materialise
    arrays when a bulk consumer calls :meth:`as_arrays`.  Equality, iteration
    order, hashing and every query are representation-independent.
    """

    __slots__ = ("_pairs", "_arrays", "dim_in", "dim_out")

    def __init__(
        self,
        pairs: Iterable[Pair] = frozenset(),
        dim_in: int = 0,
        dim_out: int = 0,
    ):
        self._pairs: Optional[FrozenSet[Pair]] = (
            pairs if isinstance(pairs, frozenset) else frozenset(pairs)
        )
        self._arrays: Optional[Tuple[np.ndarray, np.ndarray]] = None
        self.dim_in = dim_in
        self.dim_out = dim_out

    @property
    def pairs(self) -> FrozenSet[Pair]:
        """The pair set — materialised on first access for array-built relations."""
        if self._pairs is None:
            src, dst = self._arrays
            self._pairs = frozenset(
                zip(map(tuple, src.tolist()), map(tuple, dst.tolist()))
            )
        return self._pairs

    @staticmethod
    def from_pairs(pairs: Iterable[Pair]) -> "FiniteRelation":
        pair_set = frozenset((tuple(a), tuple(b)) for a, b in pairs)
        dim_in = dim_out = 0
        for a, b in pair_set:
            dim_in, dim_out = len(a), len(b)
            break
        return FiniteRelation(pair_set, dim_in, dim_out)

    @staticmethod
    def from_arrays(src: np.ndarray, dst: np.ndarray) -> "FiniteRelation":
        """Build a relation from parallel ``(n, dim_in)``/``(n, dim_out)`` arrays.

        The arrays are canonicalised (row-sorted by ``(src, dst)``,
        duplicates merged) with numpy; the tuple-pair view stays unbuilt until
        a set-path consumer asks for :attr:`pairs`.
        """
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        if src.ndim != 2 or dst.ndim != 2 or len(src) != len(dst):
            raise ValueError("src and dst must be 2-D arrays with equal length")
        dim_in, dim_out = src.shape[1], dst.shape[1]
        if len(src) == 0:
            return FiniteRelation(frozenset(), dim_in, dim_out)
        if dim_in + dim_out == 0:
            # Rank-0 on both sides: the only possible pair is () -> ().
            return FiniteRelation(frozenset({((), ())}), 0, 0)
        combined = np.concatenate([src, dst], axis=1)
        # Canonicalise (sort rows by (src, dst), merge duplicates) on scalar
        # int64 keys when the pair box fits — key order equals lexicographic
        # row order, and a scalar-key np.unique is an order of magnitude
        # faster than the void-dtype row sort of np.unique(axis=0), which
        # remains as the overflow fallback.
        try:
            codec = PointCodec.for_arrays(combined)
        except ValueError:
            combined = np.unique(combined, axis=0)
        else:
            _, first = np.unique(codec.encode(combined), return_index=True)
            combined = combined[first]
        return FiniteRelation._from_canonical_arrays(
            np.ascontiguousarray(combined[:, :dim_in]),
            np.ascontiguousarray(combined[:, dim_in:]),
        )

    @staticmethod
    def _from_canonical_arrays(src: np.ndarray, dst: np.ndarray) -> "FiniteRelation":
        """Wrap arrays already in canonical form (row-sorted, duplicate-free)."""
        rel = FiniteRelation.__new__(FiniteRelation)
        rel._pairs = None
        rel._arrays = (readonly_view(src), readonly_view(dst))
        rel.dim_in = src.shape[1]
        rel.dim_out = dst.shape[1]
        return rel

    # -- equality / hashing (representation-independent) ----------------------

    def __eq__(self, other) -> bool:
        if not isinstance(other, FiniteRelation):
            return NotImplemented
        if self.dim_in != other.dim_in or self.dim_out != other.dim_out:
            return False
        if self._pairs is None and other._pairs is None:
            # Both array-backed: canonical form makes this a direct compare.
            a, b = self._arrays
            c, d = other._arrays
            return np.array_equal(a, c) and np.array_equal(b, d)
        return self.pairs == other.pairs

    def __hash__(self) -> int:
        return hash((self.pairs, self.dim_in, self.dim_out))

    def __repr__(self) -> str:
        return (
            f"FiniteRelation(<{len(self)} pairs>, dim_in={self.dim_in}, "
            f"dim_out={self.dim_out})"
        )

    # -- array-backed bulk path ----------------------------------------------

    def as_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """The pairs as ``(src, dst)`` int64 arrays, sorted by (src, dst).

        The arrays are computed once and cached on the instance (the relation
        is immutable); they are the entry point of the vectorised bulk path.
        """
        if self._arrays is None:
            pairs = sorted(self.pairs)
            src = np.array([a for a, _ in pairs], dtype=np.int64).reshape(
                len(pairs), self.dim_in
            )
            dst = np.array([b for _, b in pairs], dtype=np.int64).reshape(
                len(pairs), self.dim_out
            )
            self._arrays = (readonly_view(src), readonly_view(dst))
        return self._arrays

    def codec(self, *extra: Optional[np.ndarray]) -> PointCodec:
        """A :class:`PointCodec` covering dom ∪ ran plus any extra point arrays.

        Requires ``dim_in == dim_out`` (dependence relations always satisfy
        this); raises :class:`ValueError` for empty inputs or oversized boxes.
        """
        if self.dim_in != self.dim_out:
            raise ValueError("codec requires a homogeneous relation (dim_in == dim_out)")
        src, dst = self.as_arrays()
        return PointCodec.for_arrays(src, dst, *extra)

    def bulk_dom(self, codec: PointCodec) -> np.ndarray:
        """Sorted unique keys of the domain (bulk analogue of :meth:`domain`)."""
        return np.unique(codec.encode(self.as_arrays()[0]))

    def bulk_ran(self, codec: PointCodec) -> np.ndarray:
        """Sorted unique keys of the range (bulk analogue of :meth:`range`)."""
        return np.unique(codec.encode(self.as_arrays()[1]))

    def bulk_restrict(
        self,
        codec: PointCodec,
        domain_keys: Optional[np.ndarray] = None,
        rng_keys: Optional[np.ndarray] = None,
    ) -> "FiniteRelation":
        """Bulk analogue of :meth:`restrict` over sorted key arrays.

        ``domain_keys``/``rng_keys`` are ascending-sorted key arrays produced
        with the same ``codec`` (e.g. by :meth:`bulk_dom` or
        ``np.unique(codec.encode(points))``).
        """
        src, dst = self.as_arrays()
        mask = np.ones(len(src), dtype=bool)
        if domain_keys is not None:
            mask &= in_sorted(codec.encode(src), domain_keys)
        if rng_keys is not None:
            mask &= in_sorted(codec.encode(dst), rng_keys)
        if mask.all():
            return self
        # A masked subset of canonical (sorted, unique) arrays stays canonical.
        return FiniteRelation._from_canonical_arrays(src[mask], dst[mask])

    # -- basic queries --------------------------------------------------------

    def __len__(self) -> int:
        if self._pairs is None:
            return len(self._arrays[0])
        return len(self._pairs)

    def __iter__(self):
        return iter(sorted(self.pairs))

    def __contains__(self, pair: Pair) -> bool:
        return (tuple(pair[0]), tuple(pair[1])) in self.pairs

    def is_empty(self) -> bool:
        return len(self) == 0

    def domain(self) -> FrozenSet[Point]:
        return frozenset(a for a, _ in self.pairs)

    def range(self) -> FrozenSet[Point]:
        return frozenset(b for _, b in self.pairs)

    def points(self) -> FrozenSet[Point]:
        """All points touched by the relation (domain ∪ range)."""
        return self.domain() | self.range()

    # -- structure ------------------------------------------------------------

    def inverse(self) -> "FiniteRelation":
        return FiniteRelation(
            frozenset((b, a) for a, b in self.pairs), self.dim_out, self.dim_in
        )

    def union(self, other: "FiniteRelation") -> "FiniteRelation":
        if self.is_empty() and other.is_empty():
            return FiniteRelation.from_pairs(frozenset())
        if self.is_empty():
            return other
        if other.is_empty():
            return self
        if (self.dim_in, self.dim_out) == (other.dim_in, other.dim_out) and (
            self._pairs is None
            or other._pairs is None
            or max(len(self), len(other)) >= BULK_SIZE_THRESHOLD
        ):
            # Array path: concatenate and re-canonicalise without tuple boxing.
            s1, d1 = self.as_arrays()
            s2, d2 = other.as_arrays()
            return FiniteRelation.from_arrays(
                np.concatenate([s1, s2]), np.concatenate([d1, d2])
            )
        return FiniteRelation.from_pairs(self.pairs | other.pairs)

    def restrict(self, domain: Optional[Set[Point]] = None, rng: Optional[Set[Point]] = None) -> "FiniteRelation":
        """Keep only pairs whose source is in ``domain`` and target in ``rng``."""
        kept = frozenset(
            (a, b)
            for a, b in self.pairs
            if (domain is None or a in domain) and (rng is None or b in rng)
        )
        return FiniteRelation(kept, self.dim_in, self.dim_out)

    def successors(self, point: Point) -> List[Point]:
        p = tuple(point)
        return sorted(b for a, b in self.pairs if a == p)

    def predecessors(self, point: Point) -> List[Point]:
        p = tuple(point)
        return sorted(a for a, b in self.pairs if b == p)

    def successor_map(self) -> Dict[Point, List[Point]]:
        out: Dict[Point, List[Point]] = {}
        for a, b in self.pairs:
            out.setdefault(a, []).append(b)
        for v in out.values():
            v.sort()
        return out

    def predecessor_map(self) -> Dict[Point, List[Point]]:
        out: Dict[Point, List[Point]] = {}
        for a, b in self.pairs:
            out.setdefault(b, []).append(a)
        for v in out.values():
            v.sort()
        return out

    def compose(self, other: "FiniteRelation") -> "FiniteRelation":
        """Relational composition: ``(a, c)`` when ``(a, b) ∈ self`` and ``(b, c) ∈ other``."""
        succ = other.successor_map()
        pairs = set()
        for a, b in self.pairs:
            for c in succ.get(b, ()):  # pragma: no branch
                pairs.add((a, c))
        return FiniteRelation(frozenset(pairs), self.dim_in, other.dim_out)

    def transitive_closure(self) -> "FiniteRelation":
        """The transitive closure ``R⁺`` (direct and indirect dependences)."""
        succ = self.successor_map()
        closure: Set[Pair] = set()
        for start in succ:
            # BFS from each source node.
            stack = list(succ.get(start, ()))
            visited: Set[Point] = set()
            while stack:
                node = stack.pop()
                if node in visited:
                    continue
                visited.add(node)
                closure.add((start, node))
                stack.extend(succ.get(node, ()))
        return FiniteRelation(frozenset(closure), self.dim_in, self.dim_out)

    # -- order-related views ----------------------------------------------------

    def lexicographically_forward(self) -> "FiniteRelation":
        """Keep only pairs with ``source ≺ target`` (the R_succ part of eq. 4)."""
        return FiniteRelation(
            frozenset((a, b) for a, b in self.pairs if lex_lt(a, b)),
            self.dim_in,
            self.dim_out,
        )

    def lexicographically_backward(self) -> "FiniteRelation":
        """Keep only pairs with ``target ≺ source`` (the R_pred part of eq. 4)."""
        return FiniteRelation(
            frozenset((a, b) for a, b in self.pairs if lex_lt(b, a)),
            self.dim_in,
            self.dim_out,
        )

    def oriented_forward(self) -> "FiniteRelation":
        """Re-orient every pair so the source lexicographically precedes the target.

        Self-pairs (``a == b``) are dropped: a dependence of an iteration on
        itself does not constrain the parallel schedule.  Array-backed
        relations and relations with at least :data:`BULK_SIZE_THRESHOLD`
        pairs are re-oriented on the array path: key order equals
        lexicographic order, so the comparison and the swap are a handful of
        vectorised operations (and the result stays array-backed).
        """
        if (
            self._pairs is None or len(self) >= BULK_SIZE_THRESHOLD
        ) and self.dim_in == self.dim_out:
            src, dst = self.as_arrays()
            try:
                codec = PointCodec.for_arrays(src, dst)
            except ValueError:
                codec = None  # box overflows int64 keys: scalar path below
            if codec is not None:
                src_keys = codec.encode(src)
                dst_keys = codec.encode(dst)
                keep = src_keys != dst_keys
                swap = src_keys > dst_keys
                fwd_src = np.where(swap[:, None], dst, src)[keep]
                fwd_dst = np.where(swap[:, None], src, dst)[keep]
                return FiniteRelation.from_arrays(fwd_src, fwd_dst)
        pairs = set()
        for a, b in self.pairs:
            if a == b:
                continue
            pairs.add((a, b) if lex_lt(a, b) else (b, a))
        return FiniteRelation(frozenset(pairs), self.dim_in, self.dim_out)

    def distances(self) -> Set[Point]:
        """The set of distance vectors ``target - source``."""
        if self._pairs is None and self.dim_in == self.dim_out and self.dim_in > 0:
            src, dst = self._arrays
            return set(map(tuple, np.unique(dst - src, axis=0).tolist()))
        return {tuple(y - x for x, y in zip(a, b)) for a, b in self.pairs}

    def __str__(self) -> str:
        items = ", ".join(f"{a}->{b}" for a, b in sorted(self.pairs))
        return f"{{ {items} }}"


class SuccessorIndex:
    """Successor lookup by binary search on sorted lexicographic keys.

    Replaces dict-of-point probing (:meth:`FiniteRelation.successor_map`) for
    large relations: construction is a vectorised argsort over the encoded
    edges (no per-pair tuple hashing), while the lookup state is converted to
    plain Python lists once so each probe costs a few integer operations and a
    ``bisect`` — sequential chain walks must not pay numpy per-call overhead.
    Successor lists come back lexicographically sorted, exactly like the
    dict-based maps.
    """

    def __init__(self, src: np.ndarray, dst: np.ndarray, codec: PointCodec):
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        src_keys = codec.encode(src)
        dst_keys = codec.encode(dst)
        order = np.lexsort((dst_keys, src_keys))
        self._keys: List[int] = src_keys[order].tolist()
        self._dsts: List[Point] = [tuple(r) for r in dst[order].tolist()]
        self._lo: List[int] = codec.lo.tolist()
        self._extents: List[int] = codec.extents.tolist()
        self._strides: List[int] = codec.strides.tolist()

    @staticmethod
    def from_relation(
        relation: "FiniteRelation", codec: Optional[PointCodec] = None
    ) -> "SuccessorIndex":
        src, dst = relation.as_arrays()
        if codec is None:
            codec = relation.codec()
        return SuccessorIndex(src, dst, codec)

    def __len__(self) -> int:
        return len(self._keys)

    def successors(self, point: Sequence[int]) -> List[Point]:
        """Sorted successors of one point (empty for points with no out-edges)."""
        key = 0
        for x, lo, extent, stride in zip(point, self._lo, self._extents, self._strides):
            digit = x - lo
            if digit < 0 or digit >= extent:
                # Outside the codec's box ⇒ cannot be a source of the relation.
                return []
            key += digit * stride
        start = bisect.bisect_left(self._keys, key)
        stop = bisect.bisect_right(self._keys, key, start)
        return self._dsts[start:stop]
