"""Lexicographic order constraints and helpers.

The paper orders iterations (and statement instances) lexicographically:
``i ≺ j`` holds when the first differing component of ``i`` is smaller than
that of ``j``.  The dependence relation of (eq. 4) is split into a predecessor
part (``j ≺ i``) and a successor part (``i ≺ j``) using exactly this order, and
monotonic chains are defined as lexicographically increasing sequences.

``i ≺ j`` is not convex: it is the union over ``k`` of

    i_1 = j_1 ∧ … ∧ i_{k-1} = j_{k-1} ∧ i_k < j_k

This module produces those disjuncts as constraint lists (for the symbolic
relation layer) and provides plain-tuple comparison helpers (for the
enumeration-based layer).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from .affine import AffineExpr
from .convex import Constraint

__all__ = [
    "lex_lt_constraints",
    "lex_le_constraints",
    "lex_positive_constraints",
    "lex_lt",
    "lex_le",
    "lex_compare",
    "is_lex_positive",
]


def lex_lt_constraints(
    left: Sequence[str], right: Sequence[str]
) -> List[List[Constraint]]:
    """Disjuncts (each a conjunction of constraints) encoding ``left ≺ right``."""
    if len(left) != len(right):
        raise ValueError("lexicographic comparison needs equal-length vectors")
    disjuncts: List[List[Constraint]] = []
    for k in range(len(left)):
        conj: List[Constraint] = []
        for p in range(k):
            conj.append(Constraint.eq(AffineExpr.variable(left[p]), AffineExpr.variable(right[p])))
        conj.append(Constraint.lt(AffineExpr.variable(left[k]), AffineExpr.variable(right[k])))
        disjuncts.append(conj)
    return disjuncts


def lex_le_constraints(
    left: Sequence[str], right: Sequence[str]
) -> List[List[Constraint]]:
    """Disjuncts encoding ``left ⪯ right`` (adds the all-equal disjunct)."""
    disjuncts = lex_lt_constraints(left, right)
    equal = [
        Constraint.eq(AffineExpr.variable(a), AffineExpr.variable(b))
        for a, b in zip(left, right)
    ]
    disjuncts.append(equal)
    return disjuncts


def lex_positive_constraints(names: Sequence[str]) -> List[List[Constraint]]:
    """Disjuncts encoding ``0 ≺ (names)`` — lexicographically positive vectors."""
    disjuncts: List[List[Constraint]] = []
    for k in range(len(names)):
        conj: List[Constraint] = []
        for p in range(k):
            conj.append(Constraint.eq(AffineExpr.variable(names[p]), 0))
        conj.append(Constraint.gt(AffineExpr.variable(names[k]), 0))
        disjuncts.append(conj)
    return disjuncts


# ---------------------------------------------------------------------------
# concrete tuple helpers
# ---------------------------------------------------------------------------

def lex_compare(a: Sequence[int], b: Sequence[int]) -> int:
    """Three-way lexicographic comparison of integer tuples (-1, 0, +1)."""
    if len(a) != len(b):
        raise ValueError("lexicographic comparison needs equal-length vectors")
    for x, y in zip(a, b):
        if x < y:
            return -1
        if x > y:
            return 1
    return 0


def lex_lt(a: Sequence[int], b: Sequence[int]) -> bool:
    """True when ``a ≺ b``."""
    return lex_compare(a, b) < 0


def lex_le(a: Sequence[int], b: Sequence[int]) -> bool:
    """True when ``a ⪯ b``."""
    return lex_compare(a, b) <= 0


def is_lex_positive(d: Sequence[int]) -> bool:
    """True when the distance vector ``d`` is lexicographically positive."""
    for x in d:
        if x > 0:
            return True
        if x < 0:
            return False
    return False
