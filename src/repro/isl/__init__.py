"""repro.isl — a small exact integer-set library.

This package stands in for the Omega library that the paper uses to solve and
manipulate exact dependence relations.  It provides:

* exact integer/rational linear algebra (:mod:`repro.isl.linalg`):
  Hermite/Smith normal forms, diophantine system solving, rational inverses;
* affine expressions over named variables (:mod:`repro.isl.affine`);
* convex integer sets and constraint systems (:mod:`repro.isl.convex`);
* Fourier–Motzkin projection (:mod:`repro.isl.fourier_motzkin`);
* unions of convex sets with ∩/∪/\\ (:mod:`repro.isl.sets`);
* symbolic and finite relations with dom/ran/inverse/compose
  (:mod:`repro.isl.relations`);
* lexicographic-order utilities (:mod:`repro.isl.lexorder`);
* integer point enumeration, scalar and numpy-vectorised
  (:mod:`repro.isl.enumerate_points`).
"""

from .affine import AffineExpr, const, var
from .convex import EQ, GE, Constraint, ConvexSet
from .enumerate_points import (
    EnumerationTruncated,
    enumerate_convex,
    filter_box_numpy,
    iteration_points,
)
from .fourier_motzkin import (
    eliminate_variable,
    eliminate_variables,
    project_onto,
    project_out,
)
from .lexorder import (
    is_lex_positive,
    lex_compare,
    lex_le,
    lex_le_constraints,
    lex_lt,
    lex_lt_constraints,
    lex_positive_constraints,
)
from .linalg import (
    DiophantineSolution,
    RationalMatrix,
    extended_gcd,
    gcd_list,
    hermite_normal_form,
    integer_nullspace,
    lcm_list,
    smith_normal_form,
    solve_diophantine,
)
from .relations import (
    BULK_SIZE_THRESHOLD,
    ConvexRelation,
    FiniteRelation,
    PointCodec,
    SuccessorIndex,
    UnionRelation,
    in_sorted,
)
from .sets import UnionSet

__all__ = [
    "AffineExpr",
    "const",
    "var",
    "Constraint",
    "ConvexSet",
    "EQ",
    "GE",
    "UnionSet",
    "ConvexRelation",
    "UnionRelation",
    "FiniteRelation",
    "PointCodec",
    "SuccessorIndex",
    "in_sorted",
    "BULK_SIZE_THRESHOLD",
    "EnumerationTruncated",
    "RationalMatrix",
    "DiophantineSolution",
    "extended_gcd",
    "gcd_list",
    "lcm_list",
    "hermite_normal_form",
    "smith_normal_form",
    "solve_diophantine",
    "integer_nullspace",
    "eliminate_variable",
    "eliminate_variables",
    "project_onto",
    "project_out",
    "enumerate_convex",
    "filter_box_numpy",
    "iteration_points",
    "lex_lt",
    "lex_le",
    "lex_compare",
    "is_lex_positive",
    "lex_lt_constraints",
    "lex_le_constraints",
    "lex_positive_constraints",
]
