"""Symbolic O(1)-in-N planning: closed-form three-set schedules.

Every other strategy in the registry enumerates the iteration space Φ —
O(|Φ|) memory and time — before it can emit a schedule.  This module builds
the paper's Theorem 1 partition *symbolically* for the Lemma 1
single-uniform-pair case and represents the result with phase objects whose
size is independent of N:

* :func:`uniform_shift` — the eligibility gate, entirely syntactic: a
  single-statement rectangular perfect nest whose reference pairs all reduce
  to one uniform dependence distance ``u`` (``T = A·B⁻¹ = I``,
  ``u = (a−b)·B⁻¹`` integral).  Nothing here touches an enumerated view.
* :func:`build_symbolic_schedule` — runs
  :func:`~repro.core.partition.symbolic_three_set_partition` on the symbolic
  relation, converts every union member to a concrete integer **box** via
  :func:`~repro.codegen.bounds.nest_bounds` + ``BoundExpr.evaluate``, and
  cross-checks ``|P1| + |P2| + |P3| == |Φ|`` with closed-form products —
  any geometry the box algebra cannot represent exactly raises
  :class:`~repro.core.partitioner.PartitioningNotApplicable` and the
  fallback chain moves on.
* :class:`SymbolicDoallPhase` / :class:`CosetChainPhase` — schedule phases
  that store boxes, not points.  ``len`` / ``work`` / ``span`` are products
  and closed-form chain bounds; the tuple ``units`` view (validators, the
  simulator, the serial executor) materialises lazily, exactly like
  :class:`~repro.core.schedule.ArrayPhase`.

The chain phase realises the ROADMAP's coset observation: for a uniform
distance ``u`` the chains are cosets of the distance lattice
(cf. :class:`repro.baselines.lattice.DistanceLattice`), i.e. strided arrays
``start + t·u`` clipped to the P2 box — no ``SuccessorIndex`` walk.  With
``Φ`` a box and ``Rd`` the translation by ``u``::

    ran = (Φ + u) ∩ Φ        dom = (Φ − u) ∩ Φ
    P1  = Φ \\ ran            P2 = ran ∩ dom         P3 = ran \\ dom
    W   = {w ∈ P2 : w − 2u ∉ Φ}

and walking back from any ``p ∈ P2`` by ``u`` stays inside P2 until it hits
a ``w ∈ W`` (``p − u ∈ dom`` always; ``p − u ∈ ran`` iff ``p − 2u ∈ Φ``), so
the cosets ``{w + t·u}`` tile P2 exactly — the generated kernels assert the
tiling (``Σ len == |P2|``) at run time as a cheap belt-and-braces check.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..codegen.bounds import nest_bounds
from ..dependence.analysis import DependenceAnalysis
from ..ir.program import LoopProgram
from .partition import symbolic_three_set_partition
from .partitioner import PartitioningNotApplicable
from .schedule import ExecutionUnit, Instance, ParallelPhase, Schedule

__all__ = [
    "SymbolicDoallPhase",
    "CosetChainPhase",
    "Box",
    "box_count",
    "rectangular_box",
    "uniform_shift",
    "uniform_shift_pairs",
    "symbolic_not_applicable_reason",
    "build_symbolic_schedule",
]

#: One integer box: ``((lo, hi), ...)`` per dimension, inclusive on both ends.
Box = Tuple[Tuple[int, int], ...]


def box_count(box: Box) -> int:
    """Number of integer points in a box (0 when any extent is negative)."""
    total = 1
    for lo, hi in box:
        if hi < lo:
            return 0
        total *= hi - lo + 1
    return total


def _box_points(box: Box) -> np.ndarray:
    """All points of a box as an ``(n, d)`` int64 array, lexicographic order."""
    axes = [np.arange(lo, hi + 1, dtype=np.int64) for lo, hi in box]
    if not axes:
        return np.zeros((1, 0), dtype=np.int64)
    grids = np.meshgrid(*axes, indexing="ij")
    return np.stack([g.ravel() for g in grids], axis=1)


# ---------------------------------------------------------------------------
# symbolic phases
# ---------------------------------------------------------------------------


class SymbolicDoallPhase:
    """A DOALL phase over a union of disjoint integer boxes.

    The symbolic twin of :class:`~repro.core.schedule.ArrayPhase`: metrics
    (``len`` / ``work`` / ``span``) are closed-form products of the box
    extents, so building and inspecting the phase costs O(boxes), not
    O(points).  ``points_array()`` / ``units`` / ``instances()`` materialise
    the enumerated views lazily for consumers that need them (validators,
    the cost simulator, the serial executor at test sizes).
    """

    __slots__ = ("name", "label", "boxes", "_count", "_points", "_units")

    def __init__(self, name: str, label: str, boxes: Sequence[Box]):
        self.name = name
        self.label = label
        kept = []
        for box in boxes:
            norm = tuple((int(lo), int(hi)) for lo, hi in box)
            if box_count(norm):
                kept.append(norm)
        self.boxes: Tuple[Box, ...] = tuple(kept)
        self._count = sum(box_count(b) for b in self.boxes)
        self._points: Optional[np.ndarray] = None
        self._units: Optional[Tuple[ExecutionUnit, ...]] = None

    def __len__(self) -> int:
        return self._count

    @property
    def work(self) -> int:
        return self._count

    @property
    def span(self) -> int:
        return 1 if self._count else 0

    def points_array(self) -> np.ndarray:
        if self._points is None:
            if self.boxes:
                self._points = np.concatenate(
                    [_box_points(b) for b in self.boxes], axis=0
                )
            else:
                dim = 0
                self._points = np.zeros((0, dim), dtype=np.int64)
        return self._points

    @property
    def units(self) -> Tuple[ExecutionUnit, ...]:
        if self._units is None:
            self._units = tuple(
                ExecutionUnit.single(self.label, p)
                for p in self.points_array().tolist()
            )
        return self._units

    def instances(self) -> List[Instance]:
        return [(self.label, tuple(p)) for p in self.points_array().tolist()]

    def __eq__(self, other) -> bool:
        if isinstance(other, SymbolicDoallPhase):
            return (
                self.name == other.name
                and self.label == other.label
                and self.boxes == other.boxes
            )
        if isinstance(other, ParallelPhase):
            return self.name == other.name and self.units == other.units
        return NotImplemented

    def __hash__(self) -> int:
        # Must match ParallelPhase's dataclass hash (see ArrayPhase.__hash__).
        return hash((self.name, self.units))

    def __repr__(self) -> str:
        return (
            f"SymbolicDoallPhase({self.name!r}, {self.label!r}, "
            f"<{len(self.boxes)} boxes, {self._count} points>)"
        )


class CosetChainPhase:
    """The intermediate phase as lattice cosets: ``start + t·u`` strided runs.

    Chain starts live in ``start_boxes`` (the W boxes), the step is the
    uniform distance ``u``, and every chain is clipped to the single P2
    ``box`` — a line ∩ box is an interval, so each chain is one contiguous
    strided run and its length is a per-dimension floor-division minimum.
    ``work`` is ``|P2|`` (the cosets tile P2 — see the module docstring) and
    ``span`` the longest chain, both closed-form.
    """

    __slots__ = (
        "name", "label", "start_boxes", "step", "box",
        "_work", "_n_chains", "_chains", "_units",
    )

    def __init__(
        self,
        name: str,
        label: str,
        start_boxes: Sequence[Box],
        step: Sequence[int],
        box: Box,
    ):
        self.name = name
        self.label = label
        self.step: Tuple[int, ...] = tuple(int(c) for c in step)
        if not any(self.step):
            raise ValueError("CosetChainPhase needs a non-zero step")
        self.box: Box = tuple((int(lo), int(hi)) for lo, hi in box)
        kept = []
        for b in start_boxes:
            norm = tuple((int(lo), int(hi)) for lo, hi in b)
            if box_count(norm):
                kept.append(norm)
        self.start_boxes: Tuple[Box, ...] = tuple(kept)
        self._work = box_count(self.box) if self.start_boxes else 0
        self._n_chains = sum(box_count(b) for b in self.start_boxes)
        self._chains: Optional[Tuple[np.ndarray, np.ndarray]] = None
        self._units: Optional[Tuple[ExecutionUnit, ...]] = None

    def __len__(self) -> int:
        return self._n_chains

    @property
    def work(self) -> int:
        return self._work

    def _box_span(self, b: Box) -> int:
        """Longest chain starting in ``b`` — coordinates are independent, so
        ``max_w min_k f_k(w_k) == min_k max_{w_k} f_k(w_k)``."""
        best = None
        for k, u_k in enumerate(self.step):
            if u_k == 0:
                continue
            lo2, hi2 = self.box[k]
            lo_w, hi_w = b[k]
            avail = (hi2 - lo_w) // u_k if u_k > 0 else (hi_w - lo2) // (-u_k)
            best = avail if best is None else min(best, avail)
        return 1 + (best or 0)

    @property
    def span(self) -> int:
        return max((self._box_span(b) for b in self.start_boxes), default=0)

    def chains(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(starts, lens)``: the ``(n, d)`` chain starts and their lengths.

        Verifies the tiling invariant ``Σ lens == |P2|`` on materialisation.
        """
        if self._chains is None:
            if not self.start_boxes:
                dim = len(self.step)
                self._chains = (
                    np.zeros((0, dim), dtype=np.int64),
                    np.zeros(0, dtype=np.int64),
                )
                return self._chains
            starts = np.concatenate(
                [_box_points(b) for b in self.start_boxes], axis=0
            )
            lens = None
            for k, u_k in enumerate(self.step):
                if u_k == 0:
                    continue
                lo2, hi2 = self.box[k]
                if u_k > 0:
                    avail = (hi2 - starts[:, k]) // u_k
                else:
                    avail = (starts[:, k] - lo2) // (-u_k)
                lens = avail if lens is None else np.minimum(lens, avail)
            lens = lens + 1
            if int(lens.sum()) != self._work:
                raise RuntimeError(
                    f"coset chains do not tile P2: sum of lengths "
                    f"{int(lens.sum())} != |P2| {self._work}"
                )
            self._chains = (starts, lens)
        return self._chains

    @property
    def units(self) -> Tuple[ExecutionUnit, ...]:
        if self._units is None:
            starts, lens = self.chains()
            step = self.step
            units = []
            for start, length in zip(starts.tolist(), lens.tolist()):
                points = [
                    tuple(c + t * s for c, s in zip(start, step))
                    for t in range(length)
                ]
                units.append(ExecutionUnit.chain(self.label, points))
            self._units = tuple(units)
        return self._units

    def instances(self) -> List[Instance]:
        out: List[Instance] = []
        for u in self.units:
            out.extend(u.instances)
        return out

    def __eq__(self, other) -> bool:
        if isinstance(other, CosetChainPhase):
            return (
                self.name == other.name
                and self.label == other.label
                and self.start_boxes == other.start_boxes
                and self.step == other.step
                and self.box == other.box
            )
        if isinstance(other, ParallelPhase):
            return self.name == other.name and self.units == other.units
        return NotImplemented

    def __hash__(self) -> int:
        # Must match ParallelPhase's dataclass hash (see ArrayPhase.__hash__).
        return hash((self.name, self.units))

    def __repr__(self) -> str:
        return (
            f"CosetChainPhase({self.name!r}, step {self.step}, "
            f"<{self._n_chains} chains, {self._work} instances>)"
        )


# ---------------------------------------------------------------------------
# the eligibility gate — syntactic, O(1) in the space size
# ---------------------------------------------------------------------------


def rectangular_box(
    program: LoopProgram, params: Mapping[str, int]
) -> Optional[Box]:
    """The iteration space as one concrete box, or ``None``.

    Succeeds only for rectangular nests: every loop has a single lower and a
    single upper bound whose variables are all bound parameters.  The result
    is ordered outermost-first (the loop-index order).
    """
    box: List[Tuple[int, int]] = []
    for lp in program.loops():
        if len(lp.lower) != 1 or len(lp.upper) != 1 or lp.stride != 1:
            return None
        bounds = []
        for expr in (lp.lower[0], lp.upper[0]):
            if any(v not in params for v in expr.variables):
                return None
            value = expr.evaluate(params)
            if value.denominator != 1:
                return None
            bounds.append(int(value))
        box.append((bounds[0], bounds[1]))
    return tuple(box)


def _lex_positive(u: Tuple[int, ...]) -> Tuple[int, ...]:
    for c in u:
        if c > 0:
            return u
        if c < 0:
            return tuple(-x for x in u)
    return u


def uniform_shift_pairs(
    program: LoopProgram, analysis: DependenceAnalysis
) -> Optional[Tuple[Tuple[int, ...], int]]:
    """``(u, n_active_pairs)`` for the single-uniform-distance case, or ``None``.

    Syntactic only: walks the reference pairs, requires every pair to be a
    uniform full-rank recurrence (``T = I``), drops pairs whose shift is
    non-integral or zero (they generate no cross-iteration dependences), and
    demands that exactly one lex-normalised distance remains.
    ``n_active_pairs`` counts the pairs carrying that distance (the feature
    extractor needs it for the Lemma 1 single-pair flag).  Never touches an
    enumerated relation or space.
    """
    contexts = program.statement_contexts()
    if len(contexts) != 1:
        return None
    shifts = set()
    active = 0
    for pair in analysis.reference_pairs:
        try:
            if not pair.is_square_full_rank() or not pair.is_uniform():
                return None
            rec = pair.recurrence()
        except ValueError:
            return None  # e.g. parameters inside subscripts
        if rec is None:
            return None
        _, u = rec
        if any(Fraction(c).denominator != 1 for c in u):
            continue  # non-integral shift: the pair has no solutions
        u_int = tuple(int(c) for c in u)
        if not any(u_int):
            continue  # zero distance: no cross-iteration dependence
        shifts.add(_lex_positive(u_int))
        active += 1
    if len(shifts) != 1:
        return None
    return shifts.pop(), active


def uniform_shift(
    program: LoopProgram, analysis: DependenceAnalysis
) -> Optional[Tuple[int, ...]]:
    """The single uniform dependence distance of ``program``, or ``None``."""
    info = uniform_shift_pairs(program, analysis)
    return info[0] if info is not None else None


def symbolic_not_applicable_reason(
    program: LoopProgram,
    params: Mapping[str, int],
    analysis: DependenceAnalysis,
) -> Optional[str]:
    """``None`` when the symbolic strategy applies, else a human-readable
    reason — the :class:`~repro.core.strategy.PartitionStrategy`
    applicability hook."""
    contexts = program.statement_contexts()
    if len(contexts) != 1:
        return "requires a single-statement perfect nest"
    if rectangular_box(program, params) is None:
        return "requires a rectangular space (constant bounds, unit strides)"
    if uniform_shift(program, analysis) is None:
        return (
            "requires exactly one uniform integral dependence distance "
            "(the Lemma 1 single-pair case with T = I)"
        )
    return None


# ---------------------------------------------------------------------------
# the builder
# ---------------------------------------------------------------------------


def _union_boxes(uset, order: Sequence[str]) -> List[Box]:
    """Every member of a parameter-free union set as a concrete box.

    Raises :class:`PartitioningNotApplicable` when a member is not exactly a
    box (guard constraints, bounds referencing other loop variables, or an
    unbounded direction) — the builder's contract is to refuse rather than
    approximate.
    """
    boxes: List[Box] = []
    for member in uset.members:
        nb = nest_bounds(member.simplified(), order)
        if nb.guards:
            raise PartitioningNotApplicable(
                "symbolic partition member has non-box guard constraints"
            )
        box: List[Tuple[int, int]] = []
        for level in nb.levels:
            if not level.lowers or not level.uppers:
                raise PartitioningNotApplicable(
                    f"symbolic partition member is unbounded in {level.variable}"
                )
            for bound in (*level.lowers, *level.uppers):
                if bound.expr.variables:
                    raise PartitioningNotApplicable(
                        "symbolic partition member is not an axis-aligned box"
                    )
            lo = max(b.evaluate({}) for b in level.lowers)
            hi = min(b.evaluate({}) for b in level.uppers)
            box.append((int(lo), int(hi)))
        if box_count(tuple(box)):
            boxes.append(tuple(box))
    return boxes


def build_symbolic_schedule(
    program: LoopProgram,
    params: Mapping[str, int],
    analysis: DependenceAnalysis,
    fingerprint: str = "",
) -> Schedule:
    """The Theorem 1 schedule from the symbolic partition, O(1) in |Φ|.

    Three phases — P1 DOALL, the coset chains over P2, P3 DOALL — each
    represented by boxes.  The closed-form counts are cross-checked
    (``|P1| + |P2| + |P3| == |Φ|``); any mismatch means the rational set
    algebra approximated the integer geometry and the builder refuses.
    """
    shift = uniform_shift(program, analysis)
    if shift is None:
        raise PartitioningNotApplicable(
            "no single uniform integral dependence distance"
        )
    space = program.iteration_space()
    order = list(space.variables)
    sym = symbolic_three_set_partition(space, analysis.symbolic_relation())
    if params:
        sym = sym.bind_parameters(params)

    phi_boxes = _union_boxes(sym.space, order)
    p1_boxes = _union_boxes(sym.p1, order)
    p2_boxes = _union_boxes(sym.p2, order)
    p3_boxes = _union_boxes(sym.p3, order)
    w_boxes = _union_boxes(sym.w, order)

    if len(phi_boxes) != 1:
        raise PartitioningNotApplicable("iteration space is not a single box")
    if len(p2_boxes) > 1:
        raise PartitioningNotApplicable(
            "intermediate set P2 is not a single box"
        )

    n_phi = box_count(phi_boxes[0])
    n_p1 = sum(box_count(b) for b in p1_boxes)
    n_p2 = sum(box_count(b) for b in p2_boxes)
    n_p3 = sum(box_count(b) for b in p3_boxes)
    if n_p1 + n_p2 + n_p3 != n_phi:
        raise PartitioningNotApplicable(
            f"symbolic partition is not exact here: |P1|+|P2|+|P3| = "
            f"{n_p1 + n_p2 + n_p3} != |Phi| = {n_phi}"
        )

    label = program.statement_contexts()[0].statement.label
    phases = [SymbolicDoallPhase("P1-doall", label, p1_boxes)]
    if n_p2:
        phases.append(
            CosetChainPhase(
                "P2-chains", label, w_boxes, shift, p2_boxes[0]
            )
        )
    phases.append(SymbolicDoallPhase("P3-doall", label, p3_boxes))

    key_params = ",".join(f"{k}={v}" for k, v in sorted(params.items()))
    if not fingerprint:
        from .strategy import program_fingerprint

        fingerprint = program_fingerprint(program)
    return Schedule.from_phases(
        f"symbolic-{program.name}",
        phases,
        scheme="symbolic",
        shift=shift,
        kernel_key=f"{fingerprint}|{key_params}",
        backend_hint=(
            "compiled (generated NumPy kernel, cached on the plan "
            "fingerprint; serial fallback)"
        ),
    )
