"""The recurrence form of a single coupled reference pair (§3.2, Theorem 1).

When the loop has a single pair of coupled references ``X[i·A + a]`` and
``X[j·B + b]`` with square, full-rank A and B, the dependence equation is an
affine recurrence between dependent iterations:

    j = i·T + u        with  T = A·B⁻¹,  u = (a − b)·B⁻¹

(and the inverse map ``i = (j − u)·T⁻¹`` for the other direction).  This is
the engine behind the WHILE-loop execution of monotonic chains: starting from
an iteration that depends on an initial iteration, repeatedly applying the map
visits exactly the iterations of one recurrence chain.

Theorem 1 of the paper bounds the chain length: with
``α = max(|det T|, |det T⁻¹|) > 1`` and ``L`` the Euclidean diameter of the
iteration space, any chain contains at most ``log_α(L) + 1`` iterations,
because consecutive distance vectors satisfy ``d_k = d_0·T^k`` and therefore
grow (or shrink, in the inverse direction) geometrically.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction
from typing import Callable, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..dependence.pair import ReferencePair
from ..isl.convex import ConvexSet
from ..isl.lexorder import lex_lt
from ..isl.linalg import RationalMatrix

__all__ = ["AffineRecurrence", "theorem1_bound", "chain_length_bound_holds"]

Point = Tuple[int, ...]


@dataclass(frozen=True)
class AffineRecurrence:
    """The affine successor map ``next(i) = i·T + u`` of a reference pair."""

    T: RationalMatrix
    u: Tuple[Fraction, ...]

    # -- constructors ---------------------------------------------------------

    @staticmethod
    def from_pair(pair: ReferencePair) -> "AffineRecurrence":
        rec = pair.recurrence()
        if rec is None:
            raise ValueError(
                f"reference pair {pair} has no recurrence form "
                f"(matrices not square or B singular)"
            )
        T, u = rec
        return AffineRecurrence(T, tuple(u))

    @property
    def dim(self) -> int:
        return self.T.shape[0]

    def inverse(self) -> "AffineRecurrence":
        """The predecessor map ``prev(j) = (j − u)·T⁻¹``."""
        T_inv = self.T.inverse()
        neg_u = [-x for x in self.u]
        u_inv = tuple(T_inv.row_apply(neg_u))
        return AffineRecurrence(T_inv, u_inv)

    # -- pointwise application ---------------------------------------------------

    def apply(self, point: Sequence[int]) -> Tuple[Fraction, ...]:
        """The exact (rational) image of an integer point under the map."""
        image = self.T.row_apply(list(point))
        return tuple(x + du for x, du in zip(image, self.u))

    def next_integer(self, point: Sequence[int]) -> Optional[Point]:
        """The image if it is an integer point, else ``None``.

        A ``None`` means the iteration has no dependence successor *through
        this recurrence* (the diophantine equation has no solution at that
        point), regardless of the loop bounds.
        """
        image = self.apply(point)
        if any(x.denominator != 1 for x in image):
            return None
        return tuple(int(x) for x in image)

    def successor_in(
        self, point: Sequence[int], space: Callable[[Point], bool]
    ) -> Optional[Point]:
        """The integer image if it also lies in the iteration space."""
        nxt = self.next_integer(point)
        if nxt is None or not space(nxt):
            return None
        return nxt

    # -- chains ---------------------------------------------------------------------

    def chain_from(
        self,
        start: Sequence[int],
        space: Callable[[Point], bool],
        max_steps: int = 1_000_000,
    ) -> List[Point]:
        """The recurrence chain starting at ``start`` and staying inside ``space``.

        Follows ``i ← i·T + u`` while the image is integral and inside the
        space; the starting point itself must be in the space.  Guards against
        accidental cycles (possible only when |det T| == 1 and the map is not
        expansive) by stopping when a point repeats.
        """
        start_pt = tuple(int(x) for x in start)
        if not space(start_pt):
            raise ValueError(f"chain start {start_pt} is outside the iteration space")
        chain = [start_pt]
        seen = {start_pt}
        current = start_pt
        for _ in range(max_steps):
            nxt = self.successor_in(current, space)
            if nxt is None:
                break
            if nxt in seen:
                break
            chain.append(nxt)
            seen.add(nxt)
            current = nxt
        return chain

    def distance_at(self, point: Sequence[int]) -> Tuple[Fraction, ...]:
        """The dependence distance ``next(i) − i`` at a point (eq. 6)."""
        image = self.apply(point)
        return tuple(x - Fraction(int(p)) for x, p in zip(image, point))

    # -- Theorem 1 ----------------------------------------------------------------------

    def expansion_factor(self) -> Fraction:
        """``α = max(|det T|, |det T⁻¹|)``."""
        det = self.T.det()
        if det == 0:
            raise ValueError("recurrence matrix T is singular")
        det_abs = abs(det)
        inv_abs = abs(Fraction(1, 1) / det)
        return max(det_abs, inv_abs)

    def is_monotone_map(self, point: Sequence[int]) -> Optional[bool]:
        """True when the successor of ``point`` is lexicographically later.

        Used to orient chains so that a WHILE loop follows the lexicographic
        (i.e. legal sequential) order, as §3.1 requires.  Returns ``None``
        when there is no integer successor.
        """
        nxt = self.next_integer(point)
        if nxt is None:
            return None
        return lex_lt(tuple(int(x) for x in point), nxt)


def theorem1_bound(recurrence: AffineRecurrence, diameter: float) -> Optional[int]:
    """Theorem 1: maximum number of iterations on any recurrence chain.

    ``diameter`` is the maximal Euclidean distance ``L`` between two points of
    the iteration space.  Returns ``None`` when the bound does not apply
    (``α <= 1``, i.e. the map is volume preserving and chains may be long).
    """
    alpha = float(recurrence.expansion_factor())
    if alpha <= 1.0:
        return None
    if diameter <= 0:
        return 1
    return int(math.floor(math.log(diameter, alpha))) + 1


def iteration_space_diameter(points: Union[np.ndarray, Sequence[Point]]) -> float:
    """Euclidean diameter of a finite iteration space.

    Computed from the per-dimension extents (the diameter of an axis-aligned
    box containing the points), which upper-bounds — and for the rectangular
    spaces of the paper's examples equals — the true diameter.  ``points``
    may be a sequence of tuples or an ``(n, dim)`` int array; the array form
    reduces per axis with ``min``/``max`` and never boxes a point.
    """
    if isinstance(points, np.ndarray):
        if points.size == 0:
            return 0.0
        extents = (points.max(axis=0) - points.min(axis=0)).astype(float)
        return float(math.sqrt(float((extents**2).sum())))
    if not points:
        return 0.0
    dims = len(points[0])
    total = 0.0
    for d in range(dims):
        values = [p[d] for p in points]
        extent = max(values) - min(values)
        total += float(extent) ** 2
    return math.sqrt(total)


def chain_length_bound_holds(
    recurrence: AffineRecurrence, chains: Sequence[Sequence[Point]], diameter: float
) -> bool:
    """Check Theorem 1 against measured chains: every chain obeys the bound."""
    bound = theorem1_bound(recurrence, diameter)
    if bound is None:
        return True
    return all(len(chain) <= bound for chain in chains)
