"""repro.core — the paper's contribution: recurrence-chain partitioning.

* :mod:`repro.core.partition` — the three-set partitioning of §3.1 (eq. 5),
  concrete and symbolic;
* :mod:`repro.core.recurrence` — the affine recurrence ``i ← i·T + u`` of
  §3.2 and the Theorem 1 chain-length bound;
* :mod:`repro.core.chains` — monotonic dependence chains (Definition 1) and
  their extraction from the relation or from the recurrence (Lemma 1);
* :mod:`repro.core.dataflow` — the iterative dataflow partitioning branch of
  Algorithm 1 for multiple coupled subscripts with constant bounds;
* :mod:`repro.core.statement` — the statement-level iteration space extension
  of §3.3 for imperfectly nested loops;
* :mod:`repro.core.partitioner` — Algorithm 1 end to end, producing a
  :class:`~repro.core.schedule.Schedule`;
* :mod:`repro.core.schedule` — the schedule representation shared by every
  partitioning scheme (including the baselines);
* :mod:`repro.core.strategy` — the unified planning facade: the
  :class:`~repro.core.strategy.PartitionStrategy` registry over Algorithm 1
  and all six baselines, :class:`~repro.core.strategy.PlanConfig`,
  executable :class:`~repro.core.strategy.Plan` objects, the LRU
  :class:`~repro.core.strategy.PlanCache` and the
  :func:`~repro.core.strategy.plan` entry point.
"""

from .chains import (
    MonotonicChain,
    chains_from_recurrence,
    chains_from_relation,
    split_into_monotonic_pairs,
    verify_disjoint_chains,
)
from .dataflow import DataflowPartition, dataflow_partition, dataflow_schedule
from .partition import (
    SymbolicThreeSetPartition,
    ThreeSetPartition,
    symbolic_three_set_partition,
    three_set_partition,
)
from .partitioner import (
    PartitioningNotApplicable,
    RecurrencePartitionResult,
    dataflow_branch,
    recurrence_branch,
    recurrence_chain_partition,
    three_phase_schedule,
)
from .recurrence import (
    AffineRecurrence,
    chain_length_bound_holds,
    iteration_space_diameter,
    theorem1_bound,
)
from .schedule import (
    ArrayPhase,
    ExecutionUnit,
    Instance,
    ParallelPhase,
    Schedule,
    UnifiedArrayPhase,
)
from .statement import (
    StatementLevelSpace,
    UnifiedIndexMap,
    build_statement_space,
    statement_dataflow_schedule,
)

# Imported last: the strategy registry wraps the baselines package, which in
# turn imports repro.core submodules — by this point they are all loaded.
from .strategy import (
    PartitionStrategy,
    Plan,
    PlanCache,
    PlanConfig,
    default_plan_cache,
    get_strategy,
    plan,
    program_fingerprint,
    register_strategy,
    strategy_names,
    strategy_table,
)

__all__ = [
    "ThreeSetPartition",
    "three_set_partition",
    "SymbolicThreeSetPartition",
    "symbolic_three_set_partition",
    "AffineRecurrence",
    "theorem1_bound",
    "iteration_space_diameter",
    "chain_length_bound_holds",
    "MonotonicChain",
    "chains_from_relation",
    "chains_from_recurrence",
    "split_into_monotonic_pairs",
    "verify_disjoint_chains",
    "DataflowPartition",
    "dataflow_partition",
    "dataflow_schedule",
    "StatementLevelSpace",
    "UnifiedIndexMap",
    "build_statement_space",
    "statement_dataflow_schedule",
    "recurrence_chain_partition",
    "recurrence_branch",
    "dataflow_branch",
    "RecurrencePartitionResult",
    "PartitioningNotApplicable",
    "three_phase_schedule",
    "plan",
    "Plan",
    "PlanConfig",
    "PlanCache",
    "PartitionStrategy",
    "default_plan_cache",
    "program_fingerprint",
    "register_strategy",
    "get_strategy",
    "strategy_names",
    "strategy_table",
    "Schedule",
    "ParallelPhase",
    "ArrayPhase",
    "UnifiedArrayPhase",
    "ExecutionUnit",
    "Instance",
]
