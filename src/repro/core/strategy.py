"""The unified planning facade: strategy registry, :class:`PlanConfig`,
executable :class:`Plan` objects and the :func:`plan` entry point.

The paper's experimental story is a *comparison* — recurrence-chain
partitioning (Algorithm 1) against PDM, PL, unique sets, DOACROSS,
minimum-distance tiling and inner-loop parallelization — but historically
each scheme had its own ad-hoc entry point and every consumer hand-rolled
the same try/except-around-:class:`PartitioningNotApplicable` dispatch.
This module puts one compiler-style facade in front of all of them:

``plan(program, params, config=PlanConfig(...)) -> Plan``

* every scheme is a :class:`PartitionStrategy` in a **registry**; selection
  walks an explicit fallback chain (by default: recurrence-chains →
  dataflow → pdm → pl → unique-sets → doacross → tiling → inner-parallel)
  and records *why* each strategy was skipped — ``Plan.explain()`` replaces
  the old hand-rolled fallback idiom;
* :class:`PlanConfig` centralises the knobs that used to be scattered as
  keyword arguments and module constants: the set/vector ``engine``, a
  :data:`~repro.isl.relations.BULK_SIZE_THRESHOLD` override,
  ``force_dataflow``, the strategy preference order and the executor's
  shuffle seed;
* :class:`Plan` is the single result object — schedule, partition/chain/
  statement-space diagnostics, chosen strategy, per-strategy timings — with
  ``.execute(threads=…)``, ``.validate()`` and ``.codegen(target=…)``
  delegating to :mod:`repro.runtime` / :mod:`repro.codegen`;
* an LRU :class:`PlanCache` keyed by ``(program fingerprint, params,
  config)`` makes repeated requests for the same loop nest (the serving
  scenario) return the identical :class:`Plan` without re-analysis.

Execution goes through the same pattern on the runtime side: the
:mod:`repro.runtime.backends` registry of :class:`ExecutionBackend` s
(``serial`` / ``threaded`` / ``process`` / ``simulated``) is reached via
``Plan.execute(backend=..., workers=...)`` or a
:class:`~repro.runtime.backends.ExecConfig` attached to
:class:`PlanConfig`; the shared-memory process pool turns the planned
phase/barrier schedules into wall-clock speedups on multi-core hosts.
Future work — symbolic-partition codegen — plugs in as more
strategies/targets behind the same facade.
"""

from __future__ import annotations

import hashlib
import time
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from ..dependence.analysis import DependenceAnalysis
from ..ir.program import LoopProgram
from ..runtime.backends import ExecConfig
from .chains import MonotonicChain
from .partition import ThreeSetPartition
from .partitioner import (
    PartitioningNotApplicable,
    RecurrencePartitionResult,
    dataflow_branch,
    recurrence_branch,
    recurrence_not_applicable_reason,
)
from .recurrence import AffineRecurrence
from .schedule import Schedule
from .statement import StatementLevelSpace

__all__ = [
    "PartitionStrategy",
    "PlanConfig",
    "Plan",
    "PlanCache",
    "PlanningContext",
    "plan",
    "default_plan_cache",
    "program_fingerprint",
    "register_strategy",
    "get_strategy",
    "strategy_names",
    "strategy_table",
]

_ENGINES = ("auto", "set", "vector")


# ---------------------------------------------------------------------------
# configuration
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PlanConfig:
    """Every knob of the planning pipeline, in one hashable object.

    ``engine``
        Representation engine for the dependence analysis and the
        partitioners: ``"auto"`` (switch to the vectorised path at the bulk
        threshold), ``"set"`` (original tuple/frozenset path) or
        ``"vector"`` (force the array path).
    ``bulk_size_threshold``
        When not ``None``, overrides
        :data:`repro.isl.relations.BULK_SIZE_THRESHOLD` for the duration of
        the planning call (the module constant is restored afterwards).
    ``force_dataflow``
        Skip the recurrence-chains strategy even when it applies — the old
        ``recurrence_chain_partition(force_dataflow=True)`` knob.
    ``strategies``
        Explicit strategy preference order (names from the registry); the
        first applicable one wins.  ``None`` means the registry's default
        fallback chain.
    ``rng_seed``
        Default intra-phase shuffle seed used by :meth:`Plan.execute`
        (``None`` disables shuffling, matching the executors' contract).
    ``exec_config``
        Default :class:`~repro.runtime.backends.ExecConfig` for
        :meth:`Plan.execute`: when set, a bare ``plan.execute()`` runs
        through the execution-backend registry (``serial`` / ``threaded`` /
        ``process`` / ``simulated``) with these knobs and returns the
        unified :class:`~repro.runtime.backends.RunResult`.  ``None`` keeps
        the historical behaviour (bare store / :class:`ThreadedRun`).
    """

    engine: str = "auto"
    bulk_size_threshold: Optional[int] = None
    force_dataflow: bool = False
    strategies: Optional[Tuple[str, ...]] = None
    rng_seed: Optional[int] = 0
    exec_config: Optional[ExecConfig] = None

    def __post_init__(self):
        if self.engine not in _ENGINES:
            raise ValueError(
                f"unknown engine {self.engine!r}; use one of {_ENGINES}"
            )
        if self.bulk_size_threshold is not None and self.bulk_size_threshold < 1:
            raise ValueError("bulk_size_threshold must be a positive integer")
        if self.strategies is not None:
            object.__setattr__(self, "strategies", tuple(self.strategies))
        if self.exec_config is not None and not isinstance(self.exec_config, ExecConfig):
            raise TypeError("exec_config must be an ExecConfig (or None)")


@contextmanager
def _bulk_threshold(value: Optional[int]):
    """Temporarily override the global bulk-engine switch point.

    The constant lives in :mod:`repro.isl.relations` and is read at call
    time by every dual-engine primitive, so patching it there reaches the
    whole pipeline.  Not thread-safe — planning calls with an override
    should not run concurrently with other planning calls.
    """
    from ..isl import relations

    if value is None:
        yield
        return
    previous = relations.BULK_SIZE_THRESHOLD
    relations.BULK_SIZE_THRESHOLD = int(value)
    try:
        yield
    finally:
        relations.BULK_SIZE_THRESHOLD = previous


# ---------------------------------------------------------------------------
# strategy protocol and registry
# ---------------------------------------------------------------------------


@dataclass
class PlanningContext:
    """Everything a strategy may consult: program, params, config, analysis.

    One :class:`~repro.dependence.analysis.DependenceAnalysis` (built with
    the config's engine) is shared across the whole fallback chain, so a
    skipped strategy's applicability probe never re-runs the exact analyser
    for the next candidate.
    """

    program: LoopProgram
    params: Dict[str, int]
    config: PlanConfig
    analysis: DependenceAnalysis

    @property
    def is_perfect_nest(self) -> bool:
        contexts = self.program.statement_contexts()
        names = contexts[0].index_names if contexts else ()
        return all(ctx.index_names == names for ctx in contexts)


@dataclass(frozen=True)
class StrategyBuild:
    """What a strategy hands back to the facade: the schedule plus extras."""

    schedule: Schedule
    partition: Optional[object] = None  # ThreeSetPartition / PDMPartition / ...
    chains: Tuple[MonotonicChain, ...] = ()
    recurrence: Optional[AffineRecurrence] = None
    statement_space: Optional[StatementLevelSpace] = None
    rec_result: Optional[RecurrencePartitionResult] = None


@dataclass(frozen=True)
class PartitionStrategy:
    """One partitioning scheme behind the facade.

    ``applicability(ctx)`` returns ``None`` when the strategy applies or a
    human-readable reason when it does not (surfaced by ``Plan.explain()``);
    ``builder(ctx)`` produces the :class:`StrategyBuild` and is only called
    after the applicability probe passed.
    """

    name: str
    scheme: str
    description: str
    applicability: Callable[[PlanningContext], Optional[str]]
    builder: Callable[[PlanningContext], StrategyBuild]


_REGISTRY: "OrderedDict[str, PartitionStrategy]" = OrderedDict()


def register_strategy(strategy: PartitionStrategy) -> PartitionStrategy:
    """Add a strategy to the registry; registration order is the default
    fallback order.  Re-registering a name replaces the entry in place (so a
    plugin can refine a built-in without reordering the chain)."""
    _REGISTRY[strategy.name] = strategy
    return strategy


def get_strategy(name: str) -> PartitionStrategy:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown strategy {name!r}; registered: {', '.join(_REGISTRY)}"
        ) from None


def strategy_names() -> Tuple[str, ...]:
    """Registered strategy names in default fallback order."""
    return tuple(_REGISTRY)


def strategy_table() -> List[Dict[str, str]]:
    """The registry as rows (name / scheme / description) for docs and reports."""
    return [
        {"name": s.name, "scheme": s.scheme, "description": s.description}
        for s in _REGISTRY.values()
    ]


# ---------------------------------------------------------------------------
# built-in strategies
# ---------------------------------------------------------------------------


def _rec_applicability(ctx: PlanningContext) -> Optional[str]:
    if ctx.config.force_dataflow:
        return "disabled by PlanConfig(force_dataflow=True)"
    return recurrence_not_applicable_reason(ctx.analysis)


def _rec_builder(ctx: PlanningContext) -> StrategyBuild:
    result = recurrence_branch(
        ctx.program, ctx.params, ctx.analysis, engine=ctx.config.engine
    )
    return StrategyBuild(
        schedule=result.schedule,
        partition=result.partition,
        chains=result.chains,
        recurrence=result.recurrence,
        statement_space=result.statement_space,
        rec_result=result,
    )


def _dataflow_builder(ctx: PlanningContext) -> StrategyBuild:
    result = dataflow_branch(
        ctx.program, ctx.params, ctx.analysis, engine=ctx.config.engine
    )
    return StrategyBuild(
        schedule=result.schedule,
        statement_space=result.statement_space,
        rec_result=result,
    )


def _always_applicable(ctx: PlanningContext) -> Optional[str]:
    return None


def _perfect_nest_only(ctx: PlanningContext) -> Optional[str]:
    if not ctx.is_perfect_nest:
        return "requires a perfect nest (single shared iteration space)"
    return None


def _pdm_builder(ctx: PlanningContext) -> StrategyBuild:
    from ..baselines.pdm import pdm_partition, pdm_schedule

    schedule = pdm_schedule(ctx.program, ctx.params, ctx.analysis)
    partition = None
    if ctx.is_perfect_nest:
        partition = pdm_partition(
            ctx.analysis.iteration_space_points, ctx.analysis.iteration_dependences
        )
    return StrategyBuild(schedule=schedule, partition=partition)


def _pl_builder(ctx: PlanningContext) -> StrategyBuild:
    from ..baselines.pl import pl_partition, pl_schedule

    schedule = pl_schedule(ctx.program, ctx.params, ctx.analysis)
    partition = pl_partition(
        ctx.analysis.iteration_space_points, ctx.analysis.iteration_dependences
    )
    return StrategyBuild(schedule=schedule, partition=partition)


def _unique_sets_builder(ctx: PlanningContext) -> StrategyBuild:
    from ..baselines.unique_sets import unique_sets_partition, unique_sets_schedule

    schedule = unique_sets_schedule(ctx.program, ctx.params, ctx.analysis)
    partition = unique_sets_partition(
        ctx.analysis.iteration_space_points, ctx.analysis.iteration_dependences
    )
    return StrategyBuild(schedule=schedule, partition=partition)


def _doacross_builder(ctx: PlanningContext) -> StrategyBuild:
    from ..baselines.doacross import doacross_schedule

    return StrategyBuild(
        schedule=doacross_schedule(ctx.program, ctx.params, ctx.analysis)
    )


def _tiling_builder(ctx: PlanningContext) -> StrategyBuild:
    from ..baselines.tiling import tiling_schedule

    return StrategyBuild(
        schedule=tiling_schedule(ctx.program, ctx.params, ctx.analysis)
    )


def _innerpar_builder(ctx: PlanningContext) -> StrategyBuild:
    from ..baselines.innerpar import inner_parallel_schedule

    return StrategyBuild(
        schedule=inner_parallel_schedule(ctx.program, ctx.params, ctx.analysis)
    )


register_strategy(PartitionStrategy(
    name="recurrence-chains",
    scheme="recurrence-chains",
    description="Algorithm 1, Lemma 1 branch: P1 / monotonic WHILE chains / P3",
    applicability=_rec_applicability,
    builder=_rec_builder,
))
register_strategy(PartitionStrategy(
    name="dataflow",
    scheme="dataflow",
    description="Algorithm 1, iterative dataflow branch: one DOALL wavefront per peel",
    applicability=_always_applicable,
    builder=_dataflow_builder,
))
register_strategy(PartitionStrategy(
    name="pdm",
    scheme="pdm",
    description="pseudo-distance-matrix uniformization (Yu & D'Hollander '00)",
    applicability=_always_applicable,
    builder=_pdm_builder,
))
register_strategy(PartitionStrategy(
    name="pl",
    scheme="pl",
    description="partitioning & labeling / direction-vector uniformization",
    applicability=_perfect_nest_only,
    builder=_pl_builder,
))
register_strategy(PartitionStrategy(
    name="unique-sets",
    scheme="unique-sets",
    description="unique-sets oriented partitioning (Ju & Chaudhary '97)",
    applicability=_perfect_nest_only,
    builder=_unique_sets_builder,
))
register_strategy(PartitionStrategy(
    name="doacross",
    scheme="doacross",
    description="BDV-synchronized DOACROSS wavefronts (Tzen & Ni '93)",
    applicability=_always_applicable,
    builder=_doacross_builder,
))
register_strategy(PartitionStrategy(
    name="tiling",
    scheme="min-distance-tiling",
    description="minimum-distance tiling (Punyamurtula et al. '99)",
    applicability=_perfect_nest_only,
    builder=_tiling_builder,
))
register_strategy(PartitionStrategy(
    name="inner-parallel",
    scheme="inner-parallel",
    description="outer loop sequential, inner iterations parallel (PAR)",
    applicability=_always_applicable,
    builder=_innerpar_builder,
))


# ---------------------------------------------------------------------------
# the Plan result object
# ---------------------------------------------------------------------------


@dataclass(eq=False)
class Plan:
    """The single result object of :func:`plan` — identity-compared so a
    cache hit is observable as ``plan(...) is plan(...)``."""

    program: LoopProgram
    params: Dict[str, int]
    config: PlanConfig
    strategy: str
    scheme: str
    schedule: Schedule
    analysis: DependenceAnalysis
    partition: Optional[object] = None
    chains: Tuple[MonotonicChain, ...] = ()
    recurrence: Optional[AffineRecurrence] = None
    statement_space: Optional[StatementLevelSpace] = None
    skipped: Tuple[Tuple[str, str], ...] = ()
    timings: Dict[str, float] = field(default_factory=dict)
    fingerprint: str = ""
    rec_result: Optional[RecurrencePartitionResult] = None

    # -- structural views -------------------------------------------------------

    @property
    def num_phases(self) -> int:
        return self.schedule.num_phases

    def longest_chain(self) -> int:
        return max((len(c) for c in self.chains), default=0)

    def chain_length_bound(self) -> Optional[int]:
        """Theorem 1 bound (recurrence-chain plans only; ``None`` otherwise)."""
        if self.rec_result is None:
            return None
        return self.rec_result.chain_length_bound()

    def summary(self) -> Dict[str, object]:
        """Headline facts; for Algorithm 1 plans this is a superset of the
        historical ``RecurrencePartitionResult.summary()`` dictionary.
        Statement-level plans (§3.3) additionally report the unified space:
        instance count, unified vector width, and dependence count."""
        if self.rec_result is not None:
            info = self.rec_result.summary()
        else:
            info = {
                "program": self.program.name,
                "scheme": self.scheme,
                **self.schedule.summary(),
            }
        info["strategy"] = self.strategy
        if self.statement_space is not None:
            info["n_statement_instances"] = len(self.statement_space)
            info["unified_width"] = self.statement_space.width
            info["n_unified_dependences"] = len(self.statement_space.rd)
        return info

    def explain(self) -> str:
        """Why this strategy was chosen, which were skipped and why, and the
        per-strategy planning times — the replacement for hand-rolled
        try/except dispatch around :class:`PartitioningNotApplicable`."""
        lines = [
            f"plan for {self.program.name!r} (params {self.params or '{}'}, "
            f"engine {self.config.engine!r}):"
        ]
        for name, reason in self.skipped:
            lines.append(f"  - skipped {name}: {reason}")
        took = self.timings.get(self.strategy)
        suffix = f" in {took * 1e3:.2f} ms" if took is not None else ""
        lines.append(f"  - selected {self.strategy} (scheme {self.scheme!r}){suffix}")
        lines.append(
            f"  schedule: {self.schedule.num_phases} phases, "
            f"{self.schedule.total_work} instances, "
            f"max parallelism {self.schedule.max_parallelism}"
        )
        return "\n".join(lines)

    # -- delegation to runtime / codegen ---------------------------------------

    _UNSET = object()

    def execute(
        self,
        threads: Optional[int] = None,
        store=None,
        seed=_UNSET,
        rng=None,
        lock_free: bool = True,
        backend: Optional[str] = None,
        workers: Optional[int] = None,
    ):
        """Run the plan's schedule over concrete arrays.

        Three entry styles, newest first:

        * ``backend="serial" | "threaded" | "process" | "simulated"`` (plus
          ``workers=k``) runs through the execution-backend registry
          (:mod:`repro.runtime.backends`) and returns the unified
          :class:`~repro.runtime.backends.RunResult` —
          ``plan(...).execute(backend="process", workers=4)`` is the
          multi-core path;
        * a :class:`PlanConfig` carrying ``exec_config`` makes a bare
          ``execute()`` take the same registry path with those defaults
          (``backend=`` / ``workers=`` still override per call);
        * historically, ``threads=None`` uses the shuffled single-thread
          executor and returns the bare array store, while ``threads=k``
          uses the thread pool and returns a
          :class:`~repro.runtime.threaded.ThreadedRun` — both preserved
          verbatim for existing callers.

        ``seed`` defaults to ``config.rng_seed`` (or the ``exec_config``'s
        seed when one is set); pass ``seed=None`` (and no ``rng``) to
        disable intra-phase shuffling.
        """
        if backend is not None or (
            self.config.exec_config is not None and threads is None
        ):
            from dataclasses import replace

            from ..runtime.backends import execute

            base = self.config.exec_config
            if base is None:
                base = ExecConfig(seed=self.config.rng_seed)
            overrides = {}
            if backend is not None:
                overrides["backend"] = backend
            if workers is not None:
                overrides["workers"] = workers
            elif threads is not None:
                overrides["workers"] = threads
            if seed is not Plan._UNSET:
                overrides["seed"] = seed
            if not lock_free:
                overrides["lock_free"] = False
            cfg = replace(base, **overrides) if overrides else base
            return execute(
                self.program, self.schedule, self.params, store=store,
                config=cfg, rng=rng,
            )

        from ..runtime.executor import execute_schedule
        from ..runtime.threaded import execute_schedule_threaded

        if seed is Plan._UNSET:
            seed = self.config.rng_seed
        if threads is None:
            return execute_schedule(
                self.program, self.schedule, self.params, store=store,
                seed=seed, rng=rng,
            )
        return execute_schedule_threaded(
            self.program, self.schedule, self.params, n_threads=threads,
            store=store, lock_free=lock_free, seed=seed, rng=rng,
        )

    def validate(self, seeds: Sequence[int] = (0, 1, 2)):
        """Validate coverage, dependence safety and exact semantics.

        The dependence relation is picked to match the schedule's level:
        statement-level plans check against the unified-space relation,
        iteration-level plans against the combined Rd; imperfect-nest plans
        without a statement space skip the relation check (coverage and
        semantics still run).
        """
        from ..dependence.analysis import ImperfectNestError
        from ..runtime.executor import validate_schedule

        if self.statement_space is not None:
            deps = self.statement_space.rd
        else:
            try:
                deps = self.analysis.iteration_dependences
            except ImperfectNestError:
                deps = None
        return validate_schedule(
            self.program, self.schedule, self.params, dependences=deps, seeds=seeds
        )

    def codegen(self, target: str = "python") -> str:
        """Generate source for the plan.

        ``target="python"`` emits the executable schedule runner
        (:func:`repro.codegen.python_source.generate_schedule_runner`);
        ``target="fortran"`` emits the paper-style DOALL/WHILE listing from
        the symbolic three-set partition (recurrence-chain plans on perfect
        nests only).
        """
        if target == "python":
            from ..codegen.python_source import generate_schedule_runner

            return generate_schedule_runner(self.program, self.schedule)
        if target == "fortran":
            if self.recurrence is None:
                raise ValueError(
                    "fortran codegen needs a recurrence-chain plan "
                    f"(this plan used strategy {self.strategy!r})"
                )
            from ..codegen.fortran import rec_partition_listing
            from .partition import symbolic_three_set_partition

            sym = symbolic_three_set_partition(
                self.program.iteration_space(), self.analysis.symbolic_relation()
            )
            if self.params:
                sym = sym.bind_parameters(self.params)
            contexts = self.program.statement_contexts()
            order = list(contexts[0].index_names)
            statement = f"{contexts[0].statement.label}({', '.join(order)})"
            return rec_partition_listing(sym, self.recurrence, statement, order=order)
        raise ValueError(f"unknown codegen target {target!r}; use 'python' or 'fortran'")


# ---------------------------------------------------------------------------
# fingerprinting and the plan cache
# ---------------------------------------------------------------------------


def program_fingerprint(program: LoopProgram) -> str:
    """A content hash of a loop program, for in-process plan caching.

    Two structurally identical programs (same name, loop text, parameters and
    array shapes) share a fingerprint even when they are distinct objects —
    the serving scenario plans a freshly parsed copy of the same nest and
    must hit the cache.  Custom statement ``semantics`` callables do not
    change the *plan*, but the cached :class:`Plan` executes and validates
    its own ``program``, so they are folded in by identity: two programs
    only share a fingerprint when each statement carries the same semantics
    object (or both use the default).  Identity comparison is sound here
    because a cached entry keeps its program — and hence its semantics
    objects — alive, so equal ids imply the same live callable; it also
    makes fingerprints process-local, which is exactly the cache's scope.
    """
    digest = hashlib.sha256()
    digest.update(program.name.encode())
    digest.update(str(program).encode())
    digest.update(repr(tuple(program.parameters)).encode())
    digest.update(repr(sorted(program.array_shapes.items())).encode())
    for stmt in program.statements():
        marker = "default" if stmt.semantics is None else f"sem@{id(stmt.semantics)}"
        digest.update(f"{stmt.label}:{marker};".encode())
    return digest.hexdigest()


CacheKey = Tuple[str, Tuple[Tuple[str, int], ...], PlanConfig]


class PlanCache:
    """A small LRU cache of :class:`Plan` objects.

    Keys are ``(program fingerprint, sorted params, config)``; values are the
    plans themselves, returned by identity on a hit so repeated requests for
    the same loop nest skip re-analysis entirely.
    """

    def __init__(self, maxsize: int = 128):
        if maxsize < 1:
            raise ValueError("maxsize must be >= 1")
        self.maxsize = maxsize
        self._entries: "OrderedDict[CacheKey, Plan]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    @staticmethod
    def key(
        program: LoopProgram,
        params: Mapping[str, int],
        config: PlanConfig,
        fingerprint: Optional[str] = None,
    ) -> CacheKey:
        """The cache key; the single place its shape is defined.

        ``fingerprint`` lets a caller that already hashed the program (e.g.
        :func:`plan`) skip re-hashing it.
        """
        return (
            fingerprint if fingerprint is not None else program_fingerprint(program),
            tuple(sorted((str(k), int(v)) for k, v in params.items())),
            config,
        )

    def get(self, key: CacheKey) -> Optional[Plan]:
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def put(self, key: CacheKey, value: Plan) -> None:
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def stats(self) -> Dict[str, int]:
        return {"size": len(self), "hits": self.hits, "misses": self.misses}


_DEFAULT_CACHE = PlanCache()


def default_plan_cache() -> PlanCache:
    """The process-wide cache used by ``plan(..., cache=True)``."""
    return _DEFAULT_CACHE


# ---------------------------------------------------------------------------
# the entry point
# ---------------------------------------------------------------------------


def plan(
    program: LoopProgram,
    params: Optional[Mapping[str, int]] = None,
    config: Optional[PlanConfig] = None,
    cache=True,
) -> Plan:
    """Plan a parallel execution of ``program`` at concrete parameter values.

    Walks the configured strategy chain (default: the full registry order),
    picks the first applicable strategy, and returns a :class:`Plan` that
    records the schedule, the scheme-specific partition diagnostics, and why
    earlier strategies were skipped.  Raises
    :class:`~repro.core.partitioner.PartitioningNotApplicable` when no
    strategy in the chain applies, with every skip reason in the message.

    ``cache`` is ``True`` (use the process-default :class:`PlanCache`),
    ``False``/``None`` (plan fresh), or a :class:`PlanCache` instance.  On a
    hit the *identical* plan object is returned.
    """
    params = dict(params or {})
    config = config or PlanConfig()

    if cache is True:
        cache_obj: Optional[PlanCache] = _DEFAULT_CACHE
    elif isinstance(cache, PlanCache):
        cache_obj = cache
    elif cache:
        raise TypeError("cache must be True, False/None, or a PlanCache instance")
    else:
        cache_obj = None

    fingerprint = program_fingerprint(program)
    key: Optional[CacheKey] = None
    if cache_obj is not None:
        key = PlanCache.key(program, params, config, fingerprint=fingerprint)
        hit = cache_obj.get(key)
        if hit is not None:
            return hit

    order = config.strategies if config.strategies is not None else strategy_names()
    if not order:
        raise ValueError("PlanConfig.strategies must name at least one strategy")

    skipped: List[Tuple[str, str]] = []
    timings: Dict[str, float] = {}
    t_start = time.perf_counter()
    with _bulk_threshold(config.bulk_size_threshold):
        ctx = PlanningContext(
            program=program,
            params=params,
            config=config,
            analysis=DependenceAnalysis(program, params, engine=config.engine),
        )
        chosen: Optional[PartitionStrategy] = None
        build: Optional[StrategyBuild] = None
        for name in order:
            strategy = get_strategy(name)
            reason = strategy.applicability(ctx)
            if reason is not None:
                skipped.append((name, reason))
                continue
            t0 = time.perf_counter()
            build = strategy.builder(ctx)
            timings[name] = time.perf_counter() - t0
            chosen = strategy
            break
    timings["total"] = time.perf_counter() - t_start

    if chosen is None or build is None:
        detail = "; ".join(f"{name}: {reason}" for name, reason in skipped)
        raise PartitioningNotApplicable(
            f"no strategy in {tuple(order)} applies to {program.name!r} ({detail})"
        )

    result = Plan(
        program=program,
        params=params,
        config=config,
        strategy=chosen.name,
        scheme=build.schedule.meta.get("scheme", chosen.scheme),
        schedule=build.schedule,
        analysis=ctx.analysis,
        partition=build.partition,
        chains=build.chains,
        recurrence=build.recurrence,
        statement_space=build.statement_space,
        skipped=tuple(skipped),
        timings=timings,
        fingerprint=fingerprint,
        rec_result=build.rec_result,
    )
    if cache_obj is not None and key is not None:
        cache_obj.put(key, result)
    return result
