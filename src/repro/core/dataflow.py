"""Iterative dataflow partitioning (the second branch of Algorithm 1).

When the loop has multiple coupled reference pairs (so the intermediate set's
chains may bifurcate and are not disjoint) but the loop bounds are known at
compile time, the paper falls back to successive dataflow partitioning:

    do while (Φ is not empty)
        P1 = Φ \\ ran Rd          # iterations with no pending predecessor
        emit DOALL(P1)
        Φ  = Φ \\ P1
        Rd = Rd restricted to Φ
    end do

Each emitted set is a fully parallel *wavefront*; the number of iterations of
the outer while loop is the number of partitioning steps (238 for the paper's
Cholesky kernel at NMAT=250, M=4, N=40, NRHS=3) and equals the length of the
longest dependence chain — i.e. this is list scheduling by levels of the
dependence DAG, which achieves the maximum (dataflow) parallelism attainable
with barrier-only synchronization.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from ..isl.relations import FiniteRelation
from .schedule import ExecutionUnit, Instance, ParallelPhase, Schedule

__all__ = ["DataflowPartition", "dataflow_partition", "dataflow_schedule"]

Point = Tuple[int, ...]


@dataclass(frozen=True)
class DataflowPartition:
    """The result of iterative dataflow partitioning: an ordered list of wavefronts."""

    wavefronts: Tuple[FrozenSet[Point], ...]
    rd: FiniteRelation

    @property
    def num_steps(self) -> int:
        """Number of partitioning steps (the paper reports 238 for Example 4)."""
        return len(self.wavefronts)

    @property
    def total_points(self) -> int:
        return sum(len(w) for w in self.wavefronts)

    def level_of(self) -> Dict[Point, int]:
        out: Dict[Point, int] = {}
        for level, wave in enumerate(self.wavefronts):
            for p in wave:
                out[p] = level
        return out

    def is_complete(self, space: Iterable[Point]) -> bool:
        """Every iteration appears in exactly one wavefront."""
        seen: Set[Point] = set()
        for wave in self.wavefronts:
            for p in wave:
                if p in seen:
                    return False
                seen.add(p)
        return seen == set(tuple(p) for p in space)

    def respects_dependences(self) -> bool:
        """Every dependence goes from an earlier wavefront to a strictly later one."""
        level = self.level_of()
        for src, dst in self.rd.pairs:
            if src not in level or dst not in level:
                return False
            if level[src] >= level[dst]:
                return False
        return True


def dataflow_partition(
    space: Iterable[Point],
    rd: FiniteRelation,
    max_steps: Optional[int] = None,
) -> DataflowPartition:
    """Run the while-loop of Algorithm 1's dataflow branch on concrete sets.

    ``rd`` must be oriented forward (earlier ≺ later); only pairs with both
    ends inside ``space`` constrain the partitioning.  ``max_steps`` guards
    against runaway loops in pathological inputs (a cycle in ``rd`` would
    otherwise never drain — cycles cannot arise from a legal sequential loop).
    """
    remaining: Set[Point] = set(tuple(p) for p in space)
    relation = rd.restrict(domain=remaining, rng=remaining)
    wavefronts: List[FrozenSet[Point]] = []
    steps = 0
    while remaining:
        if max_steps is not None and steps >= max_steps:
            raise RuntimeError(
                f"dataflow partitioning did not terminate within {max_steps} steps; "
                f"{len(remaining)} iterations remain (is the dependence relation cyclic?)"
            )
        ran = {dst for src, dst in relation.pairs}
        p1 = frozenset(p for p in remaining if p not in ran)
        if not p1:
            raise RuntimeError(
                "dataflow partitioning stalled: every remaining iteration has a "
                "pending predecessor (cyclic dependence relation)"
            )
        wavefronts.append(p1)
        remaining -= p1
        relation = relation.restrict(domain=remaining, rng=remaining)
        steps += 1
    return DataflowPartition(tuple(wavefronts), rd)


def dataflow_schedule(
    name: str,
    space: Iterable[Point],
    rd: FiniteRelation,
    label: str = "s",
    instances_of: Optional[Mapping[Point, Sequence[Instance]]] = None,
) -> Schedule:
    """Wrap a dataflow partition into a :class:`Schedule` (one phase per wavefront).

    ``instances_of`` optionally maps an iteration point to the statement
    instances it stands for (used at statement level, where a point is a
    unified statement index vector); by default each point becomes the single
    instance ``(label, point)``.
    """
    partition = dataflow_partition(space, rd)
    phases = []
    for level, wave in enumerate(partition.wavefronts):
        units = []
        for p in sorted(wave):
            if instances_of is not None:
                units.append(ExecutionUnit.block(list(instances_of[p])))
            else:
                units.append(ExecutionUnit.single(label, p))
        phases.append(ParallelPhase(f"wavefront-{level}", tuple(units)))
    return Schedule.from_phases(
        name,
        phases,
        scheme="dataflow",
        num_steps=partition.num_steps,
    )
