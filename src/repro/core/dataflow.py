"""Iterative dataflow partitioning (the second branch of Algorithm 1).

When the loop has multiple coupled reference pairs (so the intermediate set's
chains may bifurcate and are not disjoint) but the loop bounds are known at
compile time, the paper falls back to successive dataflow partitioning:

    do while (Φ is not empty)
        P1 = Φ \\ ran Rd          # iterations with no pending predecessor
        emit DOALL(P1)
        Φ  = Φ \\ P1
        Rd = Rd restricted to Φ
    end do

Each emitted set is a fully parallel *wavefront*; the number of iterations of
the outer while loop is the number of partitioning steps (238 for the paper's
Cholesky kernel at NMAT=250, M=4, N=40, NRHS=3) and equals the length of the
longest dependence chain — i.e. this is list scheduling by levels of the
dependence DAG, which achieves the maximum (dataflow) parallelism attainable
with barrier-only synchronization.

Two engines implement the while loop.  The set-based one executes it
literally (rebuilding ``ran Rd`` and restricting the relation every step —
O(steps · |Rd|) Python-level work).  The vectorised one recognises the loop as
Kahn level scheduling: points become compact indices via lexicographic key
encoding, the relation becomes a CSR adjacency with an in-degree array, and
every wavefront is peeled with a handful of numpy operations — one pass over
the edges in total.  ``engine="auto"`` (default) vectorises at
:data:`~repro.isl.relations.BULK_SIZE_THRESHOLD` points/pairs; both engines
emit identical wavefronts and raise the same :class:`RuntimeError` on cyclic
(stalling) relations.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Set, Tuple, Union

import numpy as np

from ..isl.relations import (
    FiniteRelation,
    PointCodec,
    in_sorted,
    readonly_view,
    resolve_bulk_engine,
)
from .schedule import ExecutionUnit, Instance, ParallelPhase, Schedule, validate_csr

__all__ = ["DataflowPartition", "dataflow_partition", "dataflow_schedule"]

Point = Tuple[int, ...]


class DataflowPartition:
    """The result of iterative dataflow partitioning: an ordered list of wavefronts.

    Dual representation, mirroring :class:`~repro.isl.relations.FiniteRelation`:
    the set engine builds the partition as a tuple of frozensets, the vector
    engine as CSR-style arrays — ``point_rows`` holding every iteration point
    (``(total, dim)`` int64, level-major, lexicographic inside a level) and
    ``level_offsets`` the ``(levels + 1,)`` prefix sums.  Whichever form is
    missing is derived lazily and cached: :attr:`wavefronts` materialises the
    frozensets of an array-built partition only when a set-path consumer (the
    validators, the equivalence tests) asks, while :meth:`level_arrays` gives
    the executors and schedule builders the array form of either.
    """

    __slots__ = ("rd", "_wavefronts", "_level_offsets", "_point_rows", "_array_backed")

    def __init__(
        self, wavefronts: Tuple[FrozenSet[Point], ...], rd: FiniteRelation
    ):
        self._wavefronts: Optional[Tuple[FrozenSet[Point], ...]] = tuple(wavefronts)
        self._level_offsets: Optional[np.ndarray] = None
        self._point_rows: Optional[np.ndarray] = None
        self._array_backed = False
        self.rd = rd

    @staticmethod
    def from_arrays(
        level_offsets: np.ndarray, point_rows: np.ndarray, rd: FiniteRelation
    ) -> "DataflowPartition":
        """An array-backed partition; the frozenset view stays unbuilt until used."""
        offsets, rows = validate_csr(level_offsets, point_rows)
        part = DataflowPartition.__new__(DataflowPartition)
        part._wavefronts = None
        part._level_offsets = offsets
        part._point_rows = rows
        part._array_backed = True
        part.rd = rd
        return part

    @property
    def wavefronts(self) -> Tuple[FrozenSet[Point], ...]:
        """The wavefronts as frozensets — lazily derived for array-built partitions."""
        if self._wavefronts is None:
            offsets, rows = self._level_offsets, self._point_rows
            self._wavefronts = tuple(
                frozenset(
                    map(tuple, rows[int(offsets[k]) : int(offsets[k + 1])].tolist())
                )
                for k in range(len(offsets) - 1)
            )
        return self._wavefronts

    def level_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """The partition as ``(level_offsets, point_rows)`` CSR arrays.

        Array-built partitions return their backing arrays; set-built ones
        derive them once (points sorted lexicographically inside each level,
        matching the vector engine's emission order) and cache the result.
        """
        if self._level_offsets is None:
            waves = self._wavefronts
            # The dimension comes from the first point of any non-empty wave
            # (a constructor-built partition may legally hold empty waves),
            # falling back to the relation's dimension for all-empty input.
            dim = next((len(p) for wave in waves for p in wave), self.rd.dim_in)
            sizes = [len(w) for w in waves]
            offsets = np.zeros(len(waves) + 1, dtype=np.int64)
            np.cumsum(np.asarray(sizes, dtype=np.int64), out=offsets[1:])
            rows = np.zeros((int(offsets[-1]), dim), dtype=np.int64)
            for k, wave in enumerate(waves):
                chunk = sorted(wave)
                rows[int(offsets[k]) : int(offsets[k + 1])] = np.asarray(
                    chunk, dtype=np.int64
                ).reshape(len(chunk), dim)
            self._level_offsets = readonly_view(offsets)
            self._point_rows = readonly_view(rows)
        return self._level_offsets, self._point_rows

    @property
    def array_backed(self) -> bool:
        """True when the partition was built on the array path — a fixed fact
        of construction, not of which lazy views have been materialised since."""
        return self._array_backed

    @property
    def num_steps(self) -> int:
        """Number of partitioning steps (the paper reports 238 for Example 4)."""
        if self._wavefronts is None:
            return len(self._level_offsets) - 1
        return len(self._wavefronts)

    @property
    def total_points(self) -> int:
        if self._wavefronts is None:
            return len(self._point_rows)
        return sum(len(w) for w in self._wavefronts)

    def level_sizes(self) -> List[int]:
        """Points per wavefront, representation-independent."""
        if self._wavefronts is None:
            return np.diff(self._level_offsets).tolist()
        return [len(w) for w in self._wavefronts]

    def __eq__(self, other) -> bool:
        if not isinstance(other, DataflowPartition):
            return NotImplemented
        if self.rd != other.rd:
            return False
        if self._level_offsets is not None and other._level_offsets is not None:
            # Both array-backed: identical CSR arrays prove identical
            # wavefronts without boxing a single tuple; differing arrays may
            # still hold the same sets in another row order, so fall through.
            if np.array_equal(
                self._level_offsets, other._level_offsets
            ) and np.array_equal(self._point_rows, other._point_rows):
                return True
        return self.wavefronts == other.wavefronts

    def __hash__(self) -> int:
        return hash((self.wavefronts, self.rd))

    def __repr__(self) -> str:
        return (
            f"DataflowPartition(<{self.num_steps} wavefronts, "
            f"{self.total_points} points>)"
        )

    def level_of(self) -> Dict[Point, int]:
        out: Dict[Point, int] = {}
        for level, wave in enumerate(self.wavefronts):
            for p in wave:
                out[p] = level
        return out

    def is_complete(self, space: Iterable[Point]) -> bool:
        """Every iteration appears in exactly one wavefront."""
        if isinstance(space, np.ndarray):
            space = map(tuple, space.tolist())
        seen: Set[Point] = set()
        for wave in self.wavefronts:
            for p in wave:
                if p in seen:
                    return False
                seen.add(p)
        return seen == set(tuple(p) for p in space)

    def respects_dependences(self) -> bool:
        """Every dependence goes from an earlier wavefront to a strictly later one."""
        level = self.level_of()
        for src, dst in self.rd.pairs:
            if src not in level or dst not in level:
                return False
            if level[src] >= level[dst]:
                return False
        return True


def _dataflow_partition_vector(
    space_arr: np.ndarray,
    rd: FiniteRelation,
    max_steps: Optional[int],
    codec: PointCodec,
) -> DataflowPartition:
    """Kahn level scheduling over compact indices: one pass over the edges."""
    phi_keys = np.unique(codec.encode(space_arr))
    n = len(phi_keys)
    src, dst = rd.as_arrays()
    if len(src):
        src_keys = codec.encode(src)
        dst_keys = codec.encode(dst)
        keep = in_sorted(src_keys, phi_keys) & in_sorted(dst_keys, phi_keys)
        src_keys, dst_keys = src_keys[keep], dst_keys[keep]
    else:
        src_keys = dst_keys = np.zeros(0, dtype=np.int64)
    src_idx = np.searchsorted(phi_keys, src_keys)
    dst_idx = np.searchsorted(phi_keys, dst_keys)
    indegree = np.bincount(dst_idx, minlength=n)
    # CSR adjacency: out-edges grouped by source index.
    order = np.argsort(src_idx, kind="stable")
    dst_by_src = dst_idx[order]
    offsets = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(np.bincount(src_idx, minlength=n), out=offsets[1:])

    # Wavefronts accumulate as per-level key arrays (ascending keys == lex
    # order); the points are decoded once at the end into the CSR row array —
    # no per-point tuple or frozenset is ever built on this path.
    level_keys: List[np.ndarray] = []
    frontier = np.flatnonzero(indegree == 0)
    released = 0
    steps = 0
    while released < n:
        if max_steps is not None and steps >= max_steps:
            raise RuntimeError(
                f"dataflow partitioning did not terminate within {max_steps} steps; "
                f"{n - released} iterations remain (is the dependence relation cyclic?)"
            )
        if frontier.size == 0:
            raise RuntimeError(
                "dataflow partitioning stalled: every remaining iteration has a "
                "pending predecessor (cyclic dependence relation)"
            )
        level_keys.append(phi_keys[frontier])
        released += int(frontier.size)
        starts = offsets[frontier]
        counts = offsets[frontier + 1] - starts
        total = int(counts.sum())
        if total:
            # Gather all out-edges of the frontier in one shot.
            gather = np.repeat(
                starts - np.concatenate(([0], np.cumsum(counts)[:-1])), counts
            ) + np.arange(total)
            targets = dst_by_src[gather]
            indegree -= np.bincount(targets, minlength=n)
            frontier = np.unique(targets[indegree[targets] == 0])
        else:
            frontier = np.zeros(0, dtype=np.int64)
        steps += 1
    sizes = np.asarray([len(k) for k in level_keys], dtype=np.int64)
    level_offsets = np.zeros(len(level_keys) + 1, dtype=np.int64)
    np.cumsum(sizes, out=level_offsets[1:])
    all_keys = (
        np.concatenate(level_keys) if level_keys else np.zeros(0, dtype=np.int64)
    )
    point_rows = codec.decode(all_keys)
    return DataflowPartition.from_arrays(level_offsets, point_rows, rd)


def dataflow_partition(
    space: Union[np.ndarray, Iterable[Point]],
    rd: FiniteRelation,
    max_steps: Optional[int] = None,
    engine: str = "auto",
) -> DataflowPartition:
    """Run the while-loop of Algorithm 1's dataflow branch on concrete sets.

    ``rd`` must be oriented forward (earlier ≺ later); only pairs with both
    ends inside ``space`` constrain the partitioning.  ``max_steps`` guards
    against runaway loops in pathological inputs (a cycle in ``rd`` would
    otherwise never drain — cycles cannot arise from a legal sequential loop).
    ``space`` may be an iterable of tuples or an ``(n, dim)`` int array;
    ``engine`` selects the set-based or the vectorised peeling
    (``"auto"``/``"set"``/``"vector"``, see the module docstring).
    """
    space_arr, points, codec = resolve_bulk_engine(space, rd, engine)
    if codec is not None:
        return _dataflow_partition_vector(space_arr, rd, max_steps, codec)
    remaining: Set[Point] = (
        set(points) if points is not None else set(map(tuple, space_arr.tolist()))
    )
    relation = rd.restrict(domain=remaining, rng=remaining)
    wavefronts: List[FrozenSet[Point]] = []
    steps = 0
    while remaining:
        if max_steps is not None and steps >= max_steps:
            raise RuntimeError(
                f"dataflow partitioning did not terminate within {max_steps} steps; "
                f"{len(remaining)} iterations remain (is the dependence relation cyclic?)"
            )
        ran = {dst for src, dst in relation.pairs}
        p1 = frozenset(p for p in remaining if p not in ran)
        if not p1:
            raise RuntimeError(
                "dataflow partitioning stalled: every remaining iteration has a "
                "pending predecessor (cyclic dependence relation)"
            )
        wavefronts.append(p1)
        remaining -= p1
        relation = relation.restrict(domain=remaining, rng=remaining)
        steps += 1
    return DataflowPartition(tuple(wavefronts), rd)


def dataflow_schedule(
    name: str,
    space: Union[np.ndarray, Iterable[Point]],
    rd: FiniteRelation,
    label: str = "s",
    instances_of: Optional[Mapping[Point, Sequence[Instance]]] = None,
    engine: str = "auto",
) -> Schedule:
    """Wrap a dataflow partition into a :class:`Schedule` (one phase per wavefront).

    ``instances_of`` optionally maps an iteration point to the statement
    instances it stands for (used at statement level, where a point is a
    unified statement index vector); by default each point becomes the single
    instance ``(label, point)``.

    A partition built on the vector engine (and not remapped through
    ``instances_of``) becomes an **array-backed schedule**: one
    :class:`~repro.core.schedule.ArrayPhase` per wavefront over the CSR
    arrays, no per-point unit objects.  Both forms execute and validate
    identically (the unit order inside a phase — lexicographic — matches the
    tuple path's ``sorted(wave)``).
    """
    partition = dataflow_partition(space, rd, engine=engine)
    if instances_of is None and partition.array_backed:
        level_offsets, point_rows = partition.level_arrays()
        return Schedule.from_arrays(
            name,
            label,
            level_offsets,
            point_rows,
            scheme="dataflow",
            num_steps=partition.num_steps,
        )
    phases = []
    for level, wave in enumerate(partition.wavefronts):
        units = []
        for p in sorted(wave):
            if instances_of is not None:
                units.append(ExecutionUnit.block(list(instances_of[p])))
            else:
                units.append(ExecutionUnit.single(label, p))
        phases.append(ParallelPhase(f"wavefront-{level}", tuple(units)))
    return Schedule.from_phases(
        name,
        phases,
        scheme="dataflow",
        num_steps=partition.num_steps,
    )
