"""Iterative dataflow partitioning (the second branch of Algorithm 1).

When the loop has multiple coupled reference pairs (so the intermediate set's
chains may bifurcate and are not disjoint) but the loop bounds are known at
compile time, the paper falls back to successive dataflow partitioning:

    do while (Φ is not empty)
        P1 = Φ \\ ran Rd          # iterations with no pending predecessor
        emit DOALL(P1)
        Φ  = Φ \\ P1
        Rd = Rd restricted to Φ
    end do

Each emitted set is a fully parallel *wavefront*; the number of iterations of
the outer while loop is the number of partitioning steps (238 for the paper's
Cholesky kernel at NMAT=250, M=4, N=40, NRHS=3) and equals the length of the
longest dependence chain — i.e. this is list scheduling by levels of the
dependence DAG, which achieves the maximum (dataflow) parallelism attainable
with barrier-only synchronization.

Two engines implement the while loop.  The set-based one executes it
literally (rebuilding ``ran Rd`` and restricting the relation every step —
O(steps · |Rd|) Python-level work).  The vectorised one recognises the loop as
Kahn level scheduling: points become compact indices via lexicographic key
encoding, the relation becomes a CSR adjacency with an in-degree array, and
every wavefront is peeled with a handful of numpy operations — one pass over
the edges in total.  ``engine="auto"`` (default) vectorises at
:data:`~repro.isl.relations.BULK_SIZE_THRESHOLD` points/pairs; both engines
emit identical wavefronts and raise the same :class:`RuntimeError` on cyclic
(stalling) relations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Set, Tuple, Union

import numpy as np

from ..isl.relations import (
    FiniteRelation,
    PointCodec,
    in_sorted,
    resolve_bulk_engine,
)
from .schedule import ExecutionUnit, Instance, ParallelPhase, Schedule

__all__ = ["DataflowPartition", "dataflow_partition", "dataflow_schedule"]

Point = Tuple[int, ...]


@dataclass(frozen=True)
class DataflowPartition:
    """The result of iterative dataflow partitioning: an ordered list of wavefronts."""

    wavefronts: Tuple[FrozenSet[Point], ...]
    rd: FiniteRelation

    @property
    def num_steps(self) -> int:
        """Number of partitioning steps (the paper reports 238 for Example 4)."""
        return len(self.wavefronts)

    @property
    def total_points(self) -> int:
        return sum(len(w) for w in self.wavefronts)

    def level_of(self) -> Dict[Point, int]:
        out: Dict[Point, int] = {}
        for level, wave in enumerate(self.wavefronts):
            for p in wave:
                out[p] = level
        return out

    def is_complete(self, space: Iterable[Point]) -> bool:
        """Every iteration appears in exactly one wavefront."""
        seen: Set[Point] = set()
        for wave in self.wavefronts:
            for p in wave:
                if p in seen:
                    return False
                seen.add(p)
        return seen == set(tuple(p) for p in space)

    def respects_dependences(self) -> bool:
        """Every dependence goes from an earlier wavefront to a strictly later one."""
        level = self.level_of()
        for src, dst in self.rd.pairs:
            if src not in level or dst not in level:
                return False
            if level[src] >= level[dst]:
                return False
        return True


def _dataflow_partition_vector(
    space_arr: np.ndarray,
    rd: FiniteRelation,
    max_steps: Optional[int],
    codec: PointCodec,
) -> DataflowPartition:
    """Kahn level scheduling over compact indices: one pass over the edges."""
    phi_keys = np.unique(codec.encode(space_arr))
    n = len(phi_keys)
    src, dst = rd.as_arrays()
    if len(src):
        src_keys = codec.encode(src)
        dst_keys = codec.encode(dst)
        keep = in_sorted(src_keys, phi_keys) & in_sorted(dst_keys, phi_keys)
        src_keys, dst_keys = src_keys[keep], dst_keys[keep]
    else:
        src_keys = dst_keys = np.zeros(0, dtype=np.int64)
    src_idx = np.searchsorted(phi_keys, src_keys)
    dst_idx = np.searchsorted(phi_keys, dst_keys)
    indegree = np.bincount(dst_idx, minlength=n)
    # CSR adjacency: out-edges grouped by source index.
    order = np.argsort(src_idx, kind="stable")
    dst_by_src = dst_idx[order]
    offsets = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(np.bincount(src_idx, minlength=n), out=offsets[1:])

    wavefronts: List[FrozenSet[Point]] = []
    frontier = np.flatnonzero(indegree == 0)
    released = 0
    steps = 0
    while released < n:
        if max_steps is not None and steps >= max_steps:
            raise RuntimeError(
                f"dataflow partitioning did not terminate within {max_steps} steps; "
                f"{n - released} iterations remain (is the dependence relation cyclic?)"
            )
        if frontier.size == 0:
            raise RuntimeError(
                "dataflow partitioning stalled: every remaining iteration has a "
                "pending predecessor (cyclic dependence relation)"
            )
        wavefronts.append(
            frozenset(map(tuple, codec.decode(phi_keys[frontier]).tolist()))
        )
        released += int(frontier.size)
        starts = offsets[frontier]
        counts = offsets[frontier + 1] - starts
        total = int(counts.sum())
        if total:
            # Gather all out-edges of the frontier in one shot.
            gather = np.repeat(
                starts - np.concatenate(([0], np.cumsum(counts)[:-1])), counts
            ) + np.arange(total)
            targets = dst_by_src[gather]
            indegree -= np.bincount(targets, minlength=n)
            frontier = np.unique(targets[indegree[targets] == 0])
        else:
            frontier = np.zeros(0, dtype=np.int64)
        steps += 1
    return DataflowPartition(tuple(wavefronts), rd)


def dataflow_partition(
    space: Union[np.ndarray, Iterable[Point]],
    rd: FiniteRelation,
    max_steps: Optional[int] = None,
    engine: str = "auto",
) -> DataflowPartition:
    """Run the while-loop of Algorithm 1's dataflow branch on concrete sets.

    ``rd`` must be oriented forward (earlier ≺ later); only pairs with both
    ends inside ``space`` constrain the partitioning.  ``max_steps`` guards
    against runaway loops in pathological inputs (a cycle in ``rd`` would
    otherwise never drain — cycles cannot arise from a legal sequential loop).
    ``space`` may be an iterable of tuples or an ``(n, dim)`` int array;
    ``engine`` selects the set-based or the vectorised peeling
    (``"auto"``/``"set"``/``"vector"``, see the module docstring).
    """
    space_arr, points, codec = resolve_bulk_engine(space, rd, engine)
    if codec is not None:
        return _dataflow_partition_vector(space_arr, rd, max_steps, codec)
    remaining: Set[Point] = (
        set(points) if points is not None else set(map(tuple, space_arr.tolist()))
    )
    relation = rd.restrict(domain=remaining, rng=remaining)
    wavefronts: List[FrozenSet[Point]] = []
    steps = 0
    while remaining:
        if max_steps is not None and steps >= max_steps:
            raise RuntimeError(
                f"dataflow partitioning did not terminate within {max_steps} steps; "
                f"{len(remaining)} iterations remain (is the dependence relation cyclic?)"
            )
        ran = {dst for src, dst in relation.pairs}
        p1 = frozenset(p for p in remaining if p not in ran)
        if not p1:
            raise RuntimeError(
                "dataflow partitioning stalled: every remaining iteration has a "
                "pending predecessor (cyclic dependence relation)"
            )
        wavefronts.append(p1)
        remaining -= p1
        relation = relation.restrict(domain=remaining, rng=remaining)
        steps += 1
    return DataflowPartition(tuple(wavefronts), rd)


def dataflow_schedule(
    name: str,
    space: Union[np.ndarray, Iterable[Point]],
    rd: FiniteRelation,
    label: str = "s",
    instances_of: Optional[Mapping[Point, Sequence[Instance]]] = None,
    engine: str = "auto",
) -> Schedule:
    """Wrap a dataflow partition into a :class:`Schedule` (one phase per wavefront).

    ``instances_of`` optionally maps an iteration point to the statement
    instances it stands for (used at statement level, where a point is a
    unified statement index vector); by default each point becomes the single
    instance ``(label, point)``.
    """
    partition = dataflow_partition(space, rd, engine=engine)
    phases = []
    for level, wave in enumerate(partition.wavefronts):
        units = []
        for p in sorted(wave):
            if instances_of is not None:
                units.append(ExecutionUnit.block(list(instances_of[p])))
            else:
                units.append(ExecutionUnit.single(label, p))
        phases.append(ParallelPhase(f"wavefront-{level}", tuple(units)))
    return Schedule.from_phases(
        name,
        phases,
        scheme="dataflow",
        num_steps=partition.num_steps,
    )
