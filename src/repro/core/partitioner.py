"""Algorithm 1 — the recurrence partitioning scheme, end to end.

:func:`recurrence_chain_partition` implements the paper's Algorithm 1 for
concrete parameter values and produces a :class:`~repro.core.schedule.Schedule`:

1. Build the unified iteration space Φ and the exact dependence relation Rd
   (iteration-level for perfect single-statement nests, statement-level via
   §3.3 otherwise).
2. If the program has a **single coupled reference pair with square,
   full-rank A and B** — the Lemma 1 case — apply the three-set partitioning
   (eq. 5) and execute the intermediate set as disjoint monotonic recurrence
   chains (WHILE loops) starting from the set W:

       DOALL(P1)  ;  DOALL over chains(W)  ;  DOALL(P3)

3. Otherwise, if the loop bounds are compile-time constants, run the
   **iterative dataflow partitioning**: peel P1 = Φ \\ ran Rd until Φ is empty,
   one DOALL phase per step.

Both branches hand the concrete sets to partitioners with a dual set/array
engine; spaces or relations at or beyond
:data:`~repro.isl.relations.BULK_SIZE_THRESHOLD` points/pairs are processed on
the vectorised int64-key path (identical results, see
:mod:`repro.core.partition` and :mod:`repro.core.dataflow`).
4. Otherwise Algorithm 1 does not apply and the caller should fall back to the
   PDM scheme (``repro.baselines.pdm``); :func:`recurrence_branch` raises
   :class:`PartitioningNotApplicable` so the fallback is an explicit decision.

The two branches are exposed separately — :func:`recurrence_branch` (the
Lemma 1 single-pair case) and :func:`dataflow_branch` (iterative dataflow
partitioning) — because the strategy registry of :mod:`repro.core.strategy`
registers them as two independent strategies of the unified ``plan()``
facade.  :func:`recurrence_chain_partition` remains as a **thin shim** tying
them together with the historical try/chains-else-dataflow dispatch; new code
should call :func:`repro.plan` instead, which walks an explicit fallback
chain over every registered scheme and records why strategies were skipped.

The returned schedule always satisfies (and the tests verify):
``schedule.covers(all statement instances)`` and
``schedule.respects(Rd)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..dependence.analysis import DependenceAnalysis
from ..ir.program import LoopProgram
from .chains import (
    MonotonicChain,
    chains_from_recurrence,
    chains_from_relation,
    chains_respect_relation,
    verify_disjoint_chains,
)
from .dataflow import dataflow_partition, dataflow_schedule
from .partition import ThreeSetPartition, three_set_partition
from .recurrence import AffineRecurrence, iteration_space_diameter, theorem1_bound
from .schedule import ArrayPhase, ExecutionUnit, Instance, ParallelPhase, Schedule
from .statement import (
    StatementLevelSpace,
    build_statement_space,
    statement_dataflow_schedule,
)

__all__ = [
    "PartitioningNotApplicable",
    "RecurrencePartitionResult",
    "recurrence_branch",
    "dataflow_branch",
    "recurrence_chain_partition",
    "three_phase_schedule",
]

Point = Tuple[int, ...]


class PartitioningNotApplicable(RuntimeError):
    """Raised when neither branch of Algorithm 1 applies (PDM fallback needed)."""


@dataclass(frozen=True)
class RecurrencePartitionResult:
    """Everything the partitioner derived, for reporting and validation."""

    program: LoopProgram
    params: Mapping[str, int]
    scheme: str  # "recurrence-chains" | "dataflow"
    schedule: Schedule
    partition: Optional[ThreeSetPartition]
    chains: Tuple[MonotonicChain, ...]
    recurrence: Optional[AffineRecurrence]
    statement_space: Optional[StatementLevelSpace]
    analysis: DependenceAnalysis

    @property
    def num_phases(self) -> int:
        return self.schedule.num_phases

    def chain_length_bound(self) -> Optional[int]:
        """The Theorem 1 bound for this problem instance (None when α ≤ 1).

        The diameter comes from the partition's array backing (per-axis
        min/max over the ``(n, dim)`` rows) — on an array-backed partition
        this never boxes the space into point tuples.
        """
        if self.recurrence is None or self.partition is None:
            return None
        diameter = iteration_space_diameter(self.partition.space_array())
        return theorem1_bound(self.recurrence, diameter)

    def longest_chain(self) -> int:
        return max((len(c) for c in self.chains), default=0)

    def summary(self) -> Dict[str, object]:
        info: Dict[str, object] = {
            "program": self.program.name,
            "scheme": self.scheme,
            **self.schedule.summary(),
        }
        if self.partition is not None:
            info.update(self.partition.counts())
        if self.chains:
            info["n_chains"] = len(self.chains)
            info["longest_chain"] = self.longest_chain()
            bound = self.chain_length_bound()
            if bound is not None:
                info["theorem1_bound"] = bound
        return info


def _single_statement_label(program: LoopProgram) -> str:
    labels = [s.label for s in program.statements()]
    if len(set(labels)) != 1:
        raise ValueError("expected a single-statement program")
    return labels[0]


def three_phase_schedule(
    name: str,
    label: str,
    partition: ThreeSetPartition,
    chains: Sequence[MonotonicChain],
) -> Schedule:
    """Build the P1 → chains → P3 schedule of the single-pair branch.

    The fully parallel DOALL phases (P1, P3) of an array-backed partition
    become :class:`~repro.core.schedule.ArrayPhase` views over the sorted row
    arrays — same instances in the same order, no per-point unit boxing; the
    chain phase keeps explicit multi-instance units (a WHILE chain is
    inherently sequential and tuple-shaped).
    """
    phases: List[ParallelPhase] = []
    if partition.array_backed:
        phases.append(
            ArrayPhase("P1 (independent + initial)", label, partition.p1_array())
        )
    else:
        p1_units = tuple(ExecutionUnit.single(label, p) for p in sorted(partition.p1))
        phases.append(ParallelPhase("P1 (independent + initial)", p1_units))
    chain_units = tuple(
        ExecutionUnit.chain(label, list(chain.points)) for chain in chains
    )
    phases.append(ParallelPhase("P2 (recurrence chains)", chain_units))
    if partition.array_backed:
        phases.append(ArrayPhase("P3 (final)", label, partition.p3_array()))
    else:
        p3_units = tuple(ExecutionUnit.single(label, p) for p in sorted(partition.p3))
        phases.append(ParallelPhase("P3 (final)", p3_units))
    return Schedule.from_phases(name, phases, scheme="recurrence-chains")


def recurrence_not_applicable_reason(analysis: DependenceAnalysis) -> Optional[str]:
    """Why the Lemma 1 single-pair branch does not apply (``None`` == applies).

    The condition is exactly the historical ``use_chains`` test of Algorithm 1;
    the strategy registry surfaces the returned reason in ``Plan.explain()``.
    """
    statements = analysis.program.statements()
    if len(statements) != 1:
        # The three-phase schedule of this branch executes exactly one
        # statement label; a second statement's instances would never be
        # scheduled and its dependences (e.g. a WAW rewrite of a constant
        # cell) never ordered.  Multi-statement programs take the §3.3
        # statement-level dataflow branch instead.
        return (
            "the chain branch schedules a single statement, but the program "
            f"has {len(statements)} (other statements' instances and "
            "dependences would not be covered)"
        )
    single_pair = analysis.single_coupled_pair()
    if single_pair is None:
        coupled = [
            d
            for d in analysis.pair_dependences
            if d.pair.is_coupled() and not d.is_empty()
        ]
        return (
            "needs exactly one coupled reference pair with dependences "
            f"(found {len(coupled)})"
        )
    if not single_pair.is_square_full_rank():
        return (
            "the coupled pair's subscript matrices are not square and "
            "full-rank (no Lemma 1 recurrence)"
        )
    if single_pair.source_indices != single_pair.target_indices:
        return "the coupled references do not share one iteration space"
    return None


def recurrence_branch(
    program: LoopProgram,
    params: Optional[Mapping[str, int]] = None,
    analysis: Optional[DependenceAnalysis] = None,
    engine: str = "auto",
) -> RecurrencePartitionResult:
    """The single-pair branch of Algorithm 1 (Lemma 1 recurrence chains).

    Raises :class:`PartitioningNotApplicable` when the program does not have
    exactly one square, full-rank coupled reference pair over one iteration
    space.  ``engine`` selects the partitioning engine
    (``"auto"``/``"set"``/``"vector"``, see :mod:`repro.core.partition`).
    """
    params = dict(params or {})
    analysis = analysis or DependenceAnalysis(program, params, engine=engine)
    reason = recurrence_not_applicable_reason(analysis)
    if reason is not None:
        raise PartitioningNotApplicable(
            f"recurrence-chain branch does not apply to {program.name!r}: {reason}"
        )
    single_pair = analysis.single_coupled_pair()
    label = single_pair.source_ctx.statement.label
    # The array form feeds the vectorised engine directly for large spaces
    # (three_set_partition switches engines on its own threshold); forcing
    # engine="set" keeps the whole branch on the original tuple path.
    space_points = (
        analysis.iteration_space_points
        if engine == "set"
        else analysis.iteration_space_array
    )
    rd = analysis.iteration_dependences
    partition = three_set_partition(space_points, rd, engine=engine)
    recurrence = AffineRecurrence.from_pair(single_pair)
    chains = chains_from_recurrence(partition, recurrence)
    if not verify_disjoint_chains(chains, partition.p2) or not chains_respect_relation(
        chains, partition
    ):
        # Lemma 1's precondition failed in practice: either the recurrence
        # walk did not yield a disjoint cover of P2, or Rd carries P2-internal
        # dependences outside the coupled pair's recurrence (e.g. an uncoupled
        # constant-subscript reference) that the chains do not order.  Fall
        # back to the graph walk over the full exact relation, which follows
        # every dependence edge.
        chains = chains_from_relation(partition)
        if not chains_respect_relation(chains, partition):
            raise PartitioningNotApplicable(
                f"recurrence-chain branch does not apply to {program.name!r}: "
                "P2-internal dependences do not decompose into disjoint "
                "monotonic chains (edges cross chains); the dataflow branch "
                "handles this shape"
            )
    schedule = three_phase_schedule(
        f"{program.name}-REC", label, partition, chains
    )
    return RecurrencePartitionResult(
        program=program,
        params=params,
        scheme="recurrence-chains",
        schedule=schedule,
        partition=partition,
        chains=tuple(chains),
        recurrence=recurrence,
        statement_space=None,
        analysis=analysis,
    )


def dataflow_branch(
    program: LoopProgram,
    params: Optional[Mapping[str, int]] = None,
    analysis: Optional[DependenceAnalysis] = None,
    engine: str = "auto",
) -> RecurrencePartitionResult:
    """The iterative dataflow branch of Algorithm 1.

    Needs concrete bounds, which ``params`` guarantees here
    (:class:`~repro.dependence.analysis.DependenceAnalysis` refuses unbound
    parameters).  Single-statement programs (always a perfect nest) are peeled
    directly on the iteration-level relation; multi-statement and imperfect
    nests go through the statement-level unified space of §3.3, which is
    itself array-native — the peeling consumes the unified ``(n, width)`` rows
    and the schedule stays in :class:`~repro.core.schedule.UnifiedArrayPhase`
    form — so the branch is array-native end to end either way (``engine="set"``
    forces the historical tuple path everywhere).
    """
    params = dict(params or {})
    analysis = analysis or DependenceAnalysis(program, params, engine=engine)
    contexts = program.statement_contexts()
    if len(contexts) == 1:
        label = contexts[0].statement.label
        space = (
            analysis.iteration_space_points
            if engine == "set"
            else analysis.iteration_space_array
        )
        schedule = dataflow_schedule(
            f"{program.name}-REC-dataflow",
            space,
            analysis.iteration_dependences,
            label=label,
            engine=engine,
        )
        return RecurrencePartitionResult(
            program=program,
            params=params,
            scheme="dataflow",
            schedule=schedule,
            partition=None,
            chains=(),
            recurrence=None,
            statement_space=None,
            analysis=analysis,
        )
    stmt_space = build_statement_space(program, params, analysis, engine=engine)
    if engine == "set":
        # The original tuple path: frozenset of unified points, per-point
        # block units — kept as the measurable baseline.
        schedule = dataflow_schedule(
            f"{program.name}-REC-dataflow",
            stmt_space.points,
            stmt_space.rd,
            instances_of=stmt_space.instance_of(),
            engine="set",
        )
    else:
        # Array-native statement level: the partitioner consumes the unified
        # (n, width) rows directly and the schedule stays in array form
        # (UnifiedArrayPhase) — no frozenset materialisation at scale.
        schedule = statement_dataflow_schedule(
            f"{program.name}-REC-dataflow", stmt_space, engine=engine
        )
    return RecurrencePartitionResult(
        program=program,
        params=params,
        scheme="dataflow",
        schedule=schedule,
        partition=None,
        chains=(),
        recurrence=None,
        statement_space=stmt_space,
        analysis=analysis,
    )


def recurrence_chain_partition(
    program: LoopProgram,
    params: Optional[Mapping[str, int]] = None,
    force_dataflow: bool = False,
) -> RecurrencePartitionResult:
    """Run Algorithm 1 on a program at concrete parameter values.

    ``force_dataflow=True`` skips the single-pair branch even when it applies
    (useful for comparing the two strategies on the same loop).

    .. deprecated::
        This is now a thin shim over :func:`recurrence_branch` /
        :func:`dataflow_branch`, kept for callers written against the
        original API.  New code should use :func:`repro.plan`, which walks
        the full strategy fallback chain (recurrence-chains → dataflow →
        PDM → …), records why strategies were skipped, and caches re-plans.
    """
    params = dict(params or {})
    analysis = DependenceAnalysis(program, params)
    if not force_dataflow:
        try:
            return recurrence_branch(program, params, analysis)
        except PartitioningNotApplicable:
            pass
    return dataflow_branch(program, params, analysis)
