"""Statement-level iteration space extension (§3.3).

Imperfectly nested loops (Example 3, the Cholesky kernel) and loops with
several statements cannot be partitioned on plain iteration vectors, because
two statement instances can share an iteration vector while being distinct
units of work.  The paper adopts the affine mapping framework of Kelly & Pugh:
every statement instance ``S(i)`` with ``l`` surrounding loops is given a
*unified index vector*

    s_i = (s0, i1, s1, i2, s2, ..., il, sl, 0, 0, ...)

where ``s_k`` is the statement's ordinal position among its siblings after
loop ``L_k`` (``s0`` is the position of the whole nest in the program) and the
vector is zero-padded on the right so all statements share one space.  The
lexicographic order of unified vectors is exactly the sequential execution
order, so the three-set and dataflow partitioners apply unchanged — they just
operate on unified vectors instead of iteration vectors.

:class:`StatementLevelSpace` builds the unified space for a program and maps
the per-reference-pair dependences of the exact analyser into it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Set, Tuple

from ..dependence.analysis import DependenceAnalysis
from ..ir.program import LoopProgram, StatementContext
from ..isl.lexorder import lex_lt
from ..isl.relations import FiniteRelation
from .schedule import Instance

__all__ = ["StatementLevelSpace", "build_statement_space"]

Point = Tuple[int, ...]


@dataclass(frozen=True)
class StatementLevelSpace:
    """The unified statement-instance space of a program at concrete bounds."""

    program_name: str
    #: per statement label: the syntactic position numbers (s0, s1, ..., sl)
    positions: Mapping[str, Tuple[int, ...]]
    #: unified vector length (common to all statements, zero-padded)
    width: int
    #: every statement instance as (label, iteration vector)
    instances: Tuple[Instance, ...]
    #: unified vector of every instance, parallel to ``instances``
    unified: Tuple[Point, ...]
    #: dependence relation over unified vectors, oriented forward
    rd: FiniteRelation

    # -- mapping helpers -------------------------------------------------------

    def unify(self, label: str, iteration: Sequence[int]) -> Point:
        """The unified index vector of one statement instance."""
        pos = self.positions[label]
        coords: List[int] = [pos[0]]
        for k, iv in enumerate(iteration):
            coords.append(int(iv))
            coords.append(pos[k + 1])
        coords.extend([0] * (self.width - len(coords)))
        return tuple(coords)

    @property
    def points(self) -> FrozenSet[Point]:
        return frozenset(self.unified)

    def instance_of(self) -> Dict[Point, List[Instance]]:
        """Map a unified point back to the statement instance(s) it denotes."""
        out: Dict[Point, List[Instance]] = {}
        for inst, point in zip(self.instances, self.unified):
            out.setdefault(point, []).append(inst)
        return out

    def sequential_order_is_lexicographic(
        self, sequential: Sequence[Instance]
    ) -> bool:
        """Property of the §3.3 mapping: program order == lexicographic order."""
        previous: Optional[Point] = None
        for label, iteration in sequential:
            current = self.unify(label, iteration)
            if previous is not None and not lex_lt(previous, current):
                return False
            previous = current
        return True


def _statement_positions(program: LoopProgram) -> Tuple[Dict[str, Tuple[int, ...]], int]:
    """Position numbers (s0, ..., sl) per statement and the unified width.

    ``position`` stored on each :class:`StatementContext` is the path of child
    indices from the program root; the entry after loop ``k`` is exactly the
    sibling ordinal the paper's mapping needs.  Statements in the same loop get
    consecutive ordinals automatically because child indices are consecutive.
    """
    positions: Dict[str, Tuple[int, ...]] = {}
    max_depth = 0
    for ctx in program.statement_contexts():
        positions[ctx.statement.label] = tuple(int(x) for x in ctx.position)
        max_depth = max(max_depth, ctx.depth)
    # Unified width: s0 + (i_k, s_k) per loop level up to the deepest statement.
    width = 1 + 2 * max_depth
    return positions, width


def build_statement_space(
    program: LoopProgram,
    params: Mapping[str, int],
    analysis: Optional[DependenceAnalysis] = None,
) -> StatementLevelSpace:
    """Build the unified statement-instance space and its dependence relation.

    The dependences come from the exact per-reference-pair analysis; each pair
    ``(i of S1) -> (j of S2)`` is mapped to unified vectors and then oriented
    so the lexicographically earlier instance is the source, dropping
    self-pairs — the statement-level analogue of eq. 4 / eq. 7.
    """
    analysis = analysis or DependenceAnalysis(program, params)
    positions, width = _statement_positions(program)

    instances: List[Instance] = [
        (label, tuple(iteration))
        for label, iteration in program.sequential_iterations(params)
    ]
    space = StatementLevelSpace(
        program_name=program.name,
        positions=positions,
        width=width,
        instances=tuple(instances),
        unified=(),
        rd=FiniteRelation(frozenset(), width, width),
    )
    unified = tuple(space.unify(label, iteration) for label, iteration in instances)

    pairs: Set[Tuple[Point, Point]] = set()
    for dep in analysis.pair_dependences:
        if dep.is_empty():
            continue
        src_label = dep.source_label
        dst_label = dep.target_label
        for src_iter, dst_iter in dep.relation.pairs:
            a = space.unify(src_label, src_iter)
            b = space.unify(dst_label, dst_iter)
            if a == b:
                continue
            pairs.add((a, b) if lex_lt(a, b) else (b, a))
    rd = FiniteRelation(frozenset(pairs), width, width)
    return StatementLevelSpace(
        program_name=program.name,
        positions=positions,
        width=width,
        instances=tuple(instances),
        unified=unified,
        rd=rd,
    )
