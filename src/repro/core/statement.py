"""Statement-level iteration space extension (§3.3) — array-native.

Imperfectly nested loops (Example 3, the Cholesky kernel) and loops with
several statements cannot be partitioned on plain iteration vectors, because
two statement instances can share an iteration vector while being distinct
units of work.  The paper adopts the affine mapping framework of Kelly & Pugh:
every statement instance ``S(i)`` with ``l`` surrounding loops is given a
*unified index vector*

    s_i = (s0, i1, s1, i2, s2, ..., il, sl, 0, 0, ...)

where ``s_k`` is the statement's ordinal position among its siblings after
loop ``L_k`` (``s0`` is the position of the whole nest in the program) and the
vector is zero-padded on the right so all statements share one space.  The
lexicographic order of unified vectors is exactly the sequential execution
order, so the three-set and dataflow partitioners apply unchanged — they just
operate on unified vectors instead of iteration vectors.

The mapping itself lives in :class:`UnifiedIndexMap` (a pure function of the
program's syntax, usable without building any space);
:class:`StatementLevelSpace` is the concrete unified space of a program at
given bounds, held — like every hot-path container since the array-native
refactor — in **dual representation**:

* the array form: one ``(n, width)`` int64 row per instance in unified
  (== sequential) order, with a parallel ``stmt_ids`` vector naming the
  statement of each row, and ``rd`` as an array-backed
  :class:`~repro.isl.relations.FiniteRelation` over unified rows;
* the tuple form: :attr:`StatementLevelSpace.instances`,
  :attr:`~StatementLevelSpace.unified` and
  :attr:`~StatementLevelSpace.points`, derived lazily on first access.

:func:`build_statement_space` builds the space on either engine:
``engine="set"`` reproduces the original per-instance tuple path (the
measurable baseline of the differential tests and the scaling benchmark);
``"auto"``/``"vector"`` run one :meth:`UnifiedIndexMap.unify_array`
gather/interleave per statement, lex-merge the per-statement blocks, and map
the exact analyser's pair relations into unified space with the
:class:`~repro.isl.relations.PointCodec` sort/merge machinery of
``FiniteRelation.oriented_forward`` — no per-instance Python tuples anywhere.
Both engines produce bit-identical spaces (pinned by
``tests/core/test_statement_differential.py`` on Hypothesis-generated
programs); the array path assumes a unit-stride (normalized) program, exactly
like the rest of the analysis layer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..dependence.analysis import DependenceAnalysis
from ..ir.program import LoopProgram
from ..isl.lexorder import lex_lt
from ..isl.relations import FiniteRelation, PointCodec, lexsort_rows, readonly_view
from .dataflow import dataflow_partition
from .schedule import ExecutionUnit, Instance, ParallelPhase, Schedule

__all__ = [
    "UnifiedIndexMap",
    "StatementLevelSpace",
    "build_statement_space",
    "statement_dataflow_schedule",
]

Point = Tuple[int, ...]


@dataclass(frozen=True)
class UnifiedIndexMap:
    """The §3.3 Kelly–Pugh mapping: statement instance → unified index vector.

    A pure function of the program's *syntax* (statement positions and the
    deepest nesting level) — it needs no enumerated space, so callers that
    only want to map vectors never build a :class:`StatementLevelSpace`.
    """

    #: per statement label: the syntactic position numbers (s0, s1, ..., sl)
    positions: Mapping[str, Tuple[int, ...]]
    #: unified vector length (common to all statements, zero-padded)
    width: int

    @staticmethod
    def from_program(program: LoopProgram) -> "UnifiedIndexMap":
        """Position numbers (s0, ..., sl) per statement and the unified width.

        ``position`` stored on each :class:`~repro.ir.program.StatementContext`
        is the path of child indices from the program root; the entry after
        loop ``k`` is exactly the sibling ordinal the paper's mapping needs.
        Statements in the same loop get consecutive ordinals automatically
        because child indices are consecutive.
        """
        positions: Dict[str, Tuple[int, ...]] = {}
        max_depth = 0
        for ctx in program.statement_contexts():
            positions[ctx.statement.label] = tuple(int(x) for x in ctx.position)
            max_depth = max(max_depth, ctx.depth)
        # Unified width: s0 + (i_k, s_k) per loop level up to the deepest statement.
        return UnifiedIndexMap(positions, 1 + 2 * max_depth)

    def depth_of(self, label: str) -> int:
        return len(self.positions[label]) - 1

    def unify(self, label: str, iteration: Sequence[int]) -> Point:
        """The unified index vector of one statement instance."""
        pos = self.positions[label]
        coords: List[int] = [pos[0]]
        for k, iv in enumerate(iteration):
            coords.append(int(iv))
            coords.append(pos[k + 1])
        coords.extend([0] * (self.width - len(coords)))
        return tuple(coords)

    def unify_array(self, label: str, iterations: np.ndarray) -> np.ndarray:
        """Unified vectors of a whole batch of one statement's iterations.

        ``iterations`` is ``(n, depth)``; the result is ``(n, width)`` — the
        iteration coordinates land in the odd columns ``1, 3, ..., 2·depth-1``
        (one strided interleave), the position digits broadcast into the even
        columns, and the tail stays zero-padded.  This is the vectorised twin
        of :meth:`unify`: ``unify_array(l, a)[k] == unify(l, a[k])`` row by
        row.
        """
        pos = self.positions[label]
        iters = np.asarray(iterations, dtype=np.int64)
        if iters.ndim != 2:
            raise ValueError("iterations must be an (n, depth) array")
        depth = iters.shape[1]
        if depth != len(pos) - 1:
            raise ValueError(
                f"statement {label!r} has depth {len(pos) - 1}, "
                f"got iteration vectors of rank {depth}"
            )
        out = np.zeros((len(iters), self.width), dtype=np.int64)
        out[:, 0] = pos[0]
        if depth:
            out[:, 1 : 2 * depth : 2] = iters
            out[:, 2 : 2 * depth + 1 : 2] = np.asarray(pos[1:], dtype=np.int64)
        return out


class StatementLevelSpace:
    """The unified statement-instance space of a program at concrete bounds.

    Array-backed: ``unified_array`` holds every instance's unified vector as
    an ``(n, width)`` int64 row (lexicographic == sequential order) with
    ``stmt_ids`` naming the statement of each row; the tuple views
    (:attr:`instances`, :attr:`unified`, :attr:`points`,
    :meth:`instance_of`) are derived lazily on first access and cached, so a
    purely array-path consumer (the vectorised dataflow branch) never boxes a
    single instance.
    """

    __slots__ = (
        "program_name",
        "index_map",
        "stmt_labels",
        "stmt_depths",
        "stmt_ids",
        "unified_array",
        "rd",
        "_instances",
        "_unified",
        "_points",
        "_codec",
        "_space_keys",
    )

    def __init__(
        self,
        program_name: str,
        index_map: UnifiedIndexMap,
        stmt_labels: Tuple[str, ...],
        stmt_ids: np.ndarray,
        unified_array: np.ndarray,
        rd: FiniteRelation,
    ):
        self.program_name = program_name
        self.index_map = index_map
        self.stmt_labels = tuple(stmt_labels)
        self.stmt_depths = tuple(index_map.depth_of(l) for l in self.stmt_labels)
        self.stmt_ids = readonly_view(np.asarray(stmt_ids, dtype=np.int64))
        self.unified_array = readonly_view(np.asarray(unified_array, dtype=np.int64))
        if self.unified_array.ndim != 2 or len(self.unified_array) != len(self.stmt_ids):
            raise ValueError("unified_array must be (n, width) parallel to stmt_ids")
        self.rd = rd
        self._instances: Optional[Tuple[Instance, ...]] = None
        self._unified: Optional[Tuple[Point, ...]] = None
        self._points: Optional[FrozenSet[Point]] = None
        self._codec: Optional[PointCodec] = None
        self._space_keys: Optional[np.ndarray] = None

    # -- mapping helpers -------------------------------------------------------

    @property
    def positions(self) -> Mapping[str, Tuple[int, ...]]:
        return self.index_map.positions

    @property
    def width(self) -> int:
        return self.index_map.width

    def unify(self, label: str, iteration: Sequence[int]) -> Point:
        """The unified index vector of one statement instance."""
        return self.index_map.unify(label, iteration)

    def unify_array(self, label: str, iterations: np.ndarray) -> np.ndarray:
        """Batch form of :meth:`unify` (see :meth:`UnifiedIndexMap.unify_array`)."""
        return self.index_map.unify_array(label, iterations)

    # -- array views -----------------------------------------------------------

    @property
    def space_array(self) -> np.ndarray:
        """The unified space as ``(n, width)`` rows — the vectorised
        partitioners' natural input (lexicographic row order)."""
        return self.unified_array

    def _keys(self) -> Tuple[PointCodec, np.ndarray]:
        """Codec over the unified box + the (ascending) keys of every row."""
        if self._codec is None:
            codec = PointCodec.for_arrays(self.unified_array)
            self._codec = codec
            self._space_keys = codec.encode(self.unified_array)
        return self._codec, self._space_keys

    def row_indices_of(self, rows: np.ndarray) -> np.ndarray:
        """Indices into :attr:`unified_array` of the given unified rows.

        Vectorised membership by codec key + ``searchsorted`` (the space rows
        are lexicographically sorted, so their keys are ascending).  Raises
        :class:`KeyError` when some row is not an instance of this space, and
        :class:`ValueError` when the unified box overflows int64 keys (callers
        fall back to the tuple path).
        """
        rows = np.asarray(rows, dtype=np.int64)
        codec, space_keys = self._keys()
        keys = codec.encode(rows)
        idx = np.searchsorted(space_keys, keys).clip(max=len(space_keys) - 1)
        ok = codec.contains(rows) & (space_keys[idx] == keys)
        if not ok.all():
            raise KeyError("some rows are not instances of this statement space")
        return idx

    def stmt_ids_of(self, rows: np.ndarray) -> np.ndarray:
        """The statement id (index into :attr:`stmt_labels`) of each unified row."""
        return self.stmt_ids[self.row_indices_of(rows)]

    # -- tuple views (lazy) ----------------------------------------------------

    @property
    def instances(self) -> Tuple[Instance, ...]:
        """Every statement instance as (label, iteration vector), in
        sequential (== unified lexicographic) order — materialised on first
        access for array-built spaces."""
        if self._instances is None:
            labels, depths = self.stmt_labels, self.stmt_depths
            out: List[Instance] = []
            for sid, row in zip(self.stmt_ids.tolist(), self.unified_array.tolist()):
                out.append((labels[sid], tuple(row[1 : 2 * depths[sid] : 2])))
            self._instances = tuple(out)
        return self._instances

    @property
    def unified(self) -> Tuple[Point, ...]:
        """Unified vector of every instance, parallel to :attr:`instances`."""
        if self._unified is None:
            self._unified = tuple(map(tuple, self.unified_array.tolist()))
        return self._unified

    @property
    def points(self) -> FrozenSet[Point]:
        if self._points is None:
            self._points = frozenset(self.unified)
        return self._points

    def instance_of(self) -> Dict[Point, List[Instance]]:
        """Map a unified point back to the statement instance(s) it denotes."""
        out: Dict[Point, List[Instance]] = {}
        for inst, point in zip(self.instances, self.unified):
            out.setdefault(point, []).append(inst)
        return out

    def __len__(self) -> int:
        return len(self.unified_array)

    def __repr__(self) -> str:
        return (
            f"StatementLevelSpace({self.program_name!r}, <{len(self)} instances, "
            f"width {self.width}, {len(self.rd)} dependences>)"
        )

    # -- invariants ------------------------------------------------------------

    def sequential_order_is_lexicographic(
        self, sequential: Sequence[Instance]
    ) -> bool:
        """Property of the §3.3 mapping: program order == lexicographic order."""
        previous: Optional[Point] = None
        for label, iteration in sequential:
            current = self.unify(label, iteration)
            if previous is not None and not lex_lt(previous, current):
                return False
            previous = current
        return True


def build_statement_space(
    program: LoopProgram,
    params: Mapping[str, int],
    analysis: Optional[DependenceAnalysis] = None,
    engine: str = "auto",
) -> StatementLevelSpace:
    """Build the unified statement-instance space and its dependence relation.

    The dependences come from the exact per-reference-pair analysis; each pair
    ``(i of S1) -> (j of S2)`` is mapped to unified vectors and then oriented
    so the lexicographically earlier instance is the source, dropping
    self-pairs — the statement-level analogue of eq. 4 / eq. 7.

    ``engine="auto"``/``"vector"`` build everything on arrays: per-statement
    domains come from the analysis' cached enumeration, one
    :meth:`UnifiedIndexMap.unify_array` interleave maps each statement's block,
    a lexicographic merge puts the blocks in sequential order, and the pair
    relations are concatenated and oriented on the
    :class:`~repro.isl.relations.PointCodec` path
    (:meth:`~repro.isl.relations.FiniteRelation.oriented_forward`), yielding an
    array-backed ``rd`` whose tuple pairs stay unbuilt until a set-path
    consumer asks.  ``engine="set"`` is the original per-instance tuple path,
    kept as the measurable baseline; both produce bit-identical spaces.
    """
    if engine not in ("auto", "set", "vector"):
        raise ValueError(f"unknown engine {engine!r}; use 'auto', 'set' or 'vector'")
    analysis = analysis or DependenceAnalysis(program, params, engine=engine)
    index_map = UnifiedIndexMap.from_program(program)
    contexts = program.statement_contexts()
    stmt_labels = tuple(ctx.statement.label for ctx in contexts)

    if engine == "set":
        return _build_set(program, params, analysis, index_map, stmt_labels)

    blocks: List[np.ndarray] = []
    ids: List[np.ndarray] = []
    for sid, ctx in enumerate(contexts):
        iters = analysis.statement_domain_array(ctx.statement.label)
        blocks.append(index_map.unify_array(ctx.statement.label, iters))
        ids.append(np.full(len(iters), sid, dtype=np.int64))
    if blocks:
        unified_all = np.concatenate(blocks)
        ids_all = np.concatenate(ids)
        order = lexsort_rows(unified_all)
        unified_all = unified_all[order]
        ids_all = ids_all[order]
    else:
        unified_all = np.zeros((0, index_map.width), dtype=np.int64)
        ids_all = np.zeros(0, dtype=np.int64)

    src_blocks: List[np.ndarray] = []
    dst_blocks: List[np.ndarray] = []
    for dep in analysis.pair_dependences:
        if dep.is_empty():
            continue
        src, dst = dep.relation.as_arrays()
        src_blocks.append(index_map.unify_array(dep.source_label, src))
        dst_blocks.append(index_map.unify_array(dep.target_label, dst))
    if src_blocks:
        combined = FiniteRelation.from_arrays(
            np.concatenate(src_blocks), np.concatenate(dst_blocks)
        )
        rd = combined.oriented_forward()
    else:
        rd = FiniteRelation(frozenset(), index_map.width, index_map.width)
    return StatementLevelSpace(
        program_name=program.name,
        index_map=index_map,
        stmt_labels=stmt_labels,
        stmt_ids=ids_all,
        unified_array=unified_all,
        rd=rd,
    )


def _build_set(
    program: LoopProgram,
    params: Mapping[str, int],
    analysis: DependenceAnalysis,
    index_map: UnifiedIndexMap,
    stmt_labels: Tuple[str, ...],
) -> StatementLevelSpace:
    """The original per-instance tuple path (the differential baseline)."""
    label_ids = {label: sid for sid, label in enumerate(stmt_labels)}
    instances: List[Instance] = [
        (label, tuple(iteration))
        for label, iteration in program.sequential_iterations(params)
    ]
    unified = tuple(index_map.unify(label, iteration) for label, iteration in instances)

    pairs: set = set()
    for dep in analysis.pair_dependences:
        if dep.is_empty():
            continue
        src_label = dep.source_label
        dst_label = dep.target_label
        for src_iter, dst_iter in dep.relation.pairs:
            a = index_map.unify(src_label, src_iter)
            b = index_map.unify(dst_label, dst_iter)
            if a == b:
                continue
            pairs.add((a, b) if lex_lt(a, b) else (b, a))
    rd = FiniteRelation(frozenset(pairs), index_map.width, index_map.width)

    unified_array = np.asarray(unified, dtype=np.int64).reshape(
        len(unified), index_map.width
    )
    stmt_ids = np.asarray([label_ids[l] for l, _ in instances], dtype=np.int64)
    space = StatementLevelSpace(
        program_name=program.name,
        index_map=index_map,
        stmt_labels=stmt_labels,
        stmt_ids=stmt_ids,
        unified_array=unified_array,
        rd=rd,
    )
    # Pre-seed the tuple views: on this engine they are the primary form.
    space._instances = tuple(instances)
    space._unified = unified
    return space


def statement_dataflow_schedule(
    name: str,
    space: StatementLevelSpace,
    engine: str = "auto",
) -> Schedule:
    """Dataflow-partition a statement-level space into a wavefront schedule.

    On the vector engine the wavefronts stay in array form end to end: the
    partition's CSR rows are unified vectors, the statement of each row is
    recovered with one vectorised :meth:`StatementLevelSpace.stmt_ids_of`
    lookup, and the result is a
    :class:`~repro.core.schedule.UnifiedArrayPhase` schedule — no frozenset of
    unified points, no per-instance :class:`~repro.core.schedule.ExecutionUnit`
    boxing.  When the partition ran on the set engine (small spaces under
    ``engine="auto"``, or an int64-key overflow fallback) the historical
    ``instances_of`` path is used instead; both forms execute and validate
    identically and enumerate instances in the same order (lexicographic
    within each wavefront).
    """
    partition = dataflow_partition(space.space_array, space.rd, engine=engine)
    if partition.array_backed:
        level_offsets, point_rows = partition.level_arrays()
        try:
            stmt_ids = space.stmt_ids_of(point_rows)
        except ValueError:
            stmt_ids = None  # unified box overflows int64 keys: tuple path below
        if stmt_ids is not None:
            return Schedule.from_unified_arrays(
                name,
                level_offsets,
                point_rows,
                stmt_ids,
                space.stmt_labels,
                space.stmt_depths,
                scheme="dataflow",
                num_steps=partition.num_steps,
            )
    # Tuple fallback, reusing the partition already computed above (the
    # wavefronts are identical on either engine): one block unit per unified
    # point, in lexicographic order — the same phases dataflow_schedule builds.
    instances_of = space.instance_of()
    phases = []
    for level, wave in enumerate(partition.wavefronts):
        units = tuple(
            ExecutionUnit.block(list(instances_of[p])) for p in sorted(wave)
        )
        phases.append(ParallelPhase(f"wavefront-{level}", units))
    return Schedule.from_phases(
        name, phases, scheme="dataflow", num_steps=partition.num_steps
    )
