"""Three-set partitioning of the iteration space (§3.1, eq. 5).

Given the iteration space Φ and the exact dependence relation Rd (oriented so
every pair maps the lexicographically earlier iteration to the later one), the
iterations split into

* **independent** iterations — neither predecessors nor successors,
* **initial** iterations    — dependent, but with no predecessor,
* **intermediate** iterations — with both predecessors and successors,
* **final** iterations      — dependent, but with no successor,

and the three executable sets of eq. 5 are

    P1 = Φ \\ ran Rd              (independent ∪ initial — fully parallel)
    P2 = ran Rd ∩ dom Rd          (intermediate)
    P3 = ran Rd \\ dom Rd         (final — fully parallel)

Dependences only go P1→P2, P2→P2, P2→P3 (never backwards), so the phases can
execute in that order with barriers between them; the intermediate set needs
further treatment (recurrence chains, §3.2, or dataflow partitioning, §3.4).

Both a concrete (enumerated points) and a symbolic (union-of-convex-sets)
variant are provided; the symbolic variant feeds the DOALL code generator and
may be a rational approximation (see :class:`SymbolicThreeSetPartition`), the
concrete variant is exact and feeds the executors and validators.

The concrete partitioner has two engines producing identical results: the
original set-based one (per-point Python set algebra) and a vectorised one
that encodes points as int64 lexicographic keys and computes every membership
test with sorted-array numpy operations (see
:mod:`repro.isl.relations`).  ``engine="auto"`` (the default) picks the
vectorised engine when the space or the relation reaches
:data:`~repro.isl.relations.BULK_SIZE_THRESHOLD`, which keeps 10⁵–10⁶-point
spaces tractable; ``engine="set"``/``engine="vector"`` force a specific one.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Set, Tuple, Union

import numpy as np

from ..isl.relations import (
    FiniteRelation,
    PointCodec,
    UnionRelation,
    in_sorted,
    readonly_view,
    resolve_bulk_engine,
)
from ..isl.sets import UnionSet
from ..isl.convex import ConvexSet

__all__ = ["ThreeSetPartition", "three_set_partition", "SymbolicThreeSetPartition", "symbolic_three_set_partition"]

Point = Tuple[int, ...]


class ThreeSetPartition:
    """The concrete three-set partition of an iteration space.

    Dual representation: the set engine constructs the partition from
    frozensets; the vector engine hands over ``(n, dim)`` int64 row arrays
    (:meth:`from_arrays`) and the frozenset views are derived lazily — a
    10⁵-point partition whose consumer only builds an array schedule never
    boxes a point into a tuple.  :meth:`p1_array`/:meth:`p3_array` expose the
    DOALL sets in lexicographic row order for the array schedule builders.
    """

    _SETS = ("space", "p1", "p2", "p3", "w")

    def __init__(
        self,
        space: FrozenSet[Point],
        rd: FiniteRelation,
        p1: FrozenSet[Point],
        p2: FrozenSet[Point],
        p3: FrozenSet[Point],
        w: FrozenSet[Point],
    ):
        self.rd = rd
        self._sets: Dict[str, FrozenSet[Point]] = {
            "space": frozenset(space),
            "p1": frozenset(p1),
            "p2": frozenset(p2),
            "p3": frozenset(p3),
            "w": frozenset(w),
        }
        self._rows: Dict[str, np.ndarray] = {}
        self._array_backed = False

    @staticmethod
    def from_arrays(
        space: np.ndarray,
        rd: FiniteRelation,
        p1: np.ndarray,
        p2: np.ndarray,
        p3: np.ndarray,
        w: np.ndarray,
    ) -> "ThreeSetPartition":
        """An array-backed partition: rows must be unique and lexicographically
        sorted per set; the frozenset views stay unbuilt until asked for."""
        part = ThreeSetPartition.__new__(ThreeSetPartition)
        part.rd = rd
        part._sets = {}
        # Read-only: the frozenset views are lazily cached off these arrays,
        # so an in-place edit through an alias must raise, not desync.
        part._rows = {
            "space": readonly_view(np.asarray(space, dtype=np.int64)),
            "p1": readonly_view(np.asarray(p1, dtype=np.int64)),
            "p2": readonly_view(np.asarray(p2, dtype=np.int64)),
            "p3": readonly_view(np.asarray(p3, dtype=np.int64)),
            "w": readonly_view(np.asarray(w, dtype=np.int64)),
        }
        part._array_backed = True
        return part

    def _set_view(self, name: str) -> FrozenSet[Point]:
        got = self._sets.get(name)
        if got is None:
            got = self._sets[name] = _frozen_rows(self._rows[name])
        return got

    def _row_view(self, name: str) -> np.ndarray:
        got = self._rows.get(name)
        if got is None:
            pts = sorted(self._sets[name])
            dim = len(pts[0]) if pts else (self.rd.dim_in or 0)
            got = self._rows[name] = readonly_view(
                np.asarray(pts, dtype=np.int64).reshape(len(pts), dim)
            )
        return got

    @property
    def space(self) -> FrozenSet[Point]:
        return self._set_view("space")

    @property
    def p1(self) -> FrozenSet[Point]:
        return self._set_view("p1")

    @property
    def p2(self) -> FrozenSet[Point]:
        return self._set_view("p2")

    @property
    def p3(self) -> FrozenSet[Point]:
        return self._set_view("p3")

    @property
    def w(self) -> FrozenSet[Point]:
        return self._set_view("w")

    def p1_array(self) -> np.ndarray:
        """P1 as lexicographically sorted ``(n, dim)`` rows (DOALL emission order)."""
        return self._row_view("p1")

    def p3_array(self) -> np.ndarray:
        """P3 as lexicographically sorted ``(n, dim)`` rows (DOALL emission order)."""
        return self._row_view("p3")

    def space_array(self) -> np.ndarray:
        """Φ as lexicographically sorted ``(n, dim)`` rows.

        Array-backed partitions return their backing directly, so geometric
        queries (e.g. the Theorem 1 diameter) never box the space into
        tuples; set-built partitions derive and cache the rows once.
        """
        return self._row_view("space")

    @property
    def array_backed(self) -> bool:
        """True when built by the vector engine — a fixed fact of construction,
        not of which lazy views have been materialised since."""
        return self._array_backed

    def __eq__(self, other) -> bool:
        if not isinstance(other, ThreeSetPartition):
            return NotImplemented
        if self.rd != other.rd:
            return False
        for name in self._SETS:
            mine, theirs = self._rows.get(name), other._rows.get(name)
            if mine is not None and theirs is not None:
                # Both array-backed (canonical rows): equal arrays prove equal
                # sets without boxing; unequal arrays still need the set view
                # (constructor-supplied rows may legally differ in order).
                if np.array_equal(mine, theirs):
                    continue
            if self._set_view(name) != other._set_view(name):
                return False
        return True

    def __hash__(self) -> int:
        return hash((self.rd,) + tuple(self._set_view(name) for name in self._SETS))

    def __repr__(self) -> str:
        return "ThreeSetPartition(" + ", ".join(
            f"|{name}|={self._size(name)}" for name in self._SETS
        ) + ")"

    def _size(self, name: str) -> int:
        rows = self._rows.get(name)
        if rows is not None:
            return len(rows)
        return len(self._sets[name])

    # -- classification views ----------------------------------------------------

    @cached_property
    def _touched(self) -> FrozenSet[Point]:
        """dom ∪ ran of the relation, computed once per partition.

        ``independent``/``initial`` both need it and used to rebuild it on
        every property access — an O(|Rd|) frozenset construction per call.
        """
        return self.rd.points()

    @cached_property
    def independent(self) -> FrozenSet[Point]:
        """Iterations not touched by any dependence."""
        return frozenset(p for p in self.p1 if p not in self._touched)

    @cached_property
    def initial(self) -> FrozenSet[Point]:
        """Dependent iterations with no predecessor."""
        return frozenset(p for p in self.p1 if p in self._touched)

    @property
    def intermediate(self) -> FrozenSet[Point]:
        return self.p2

    @property
    def final(self) -> FrozenSet[Point]:
        return self.p3

    # -- invariants ----------------------------------------------------------------

    def is_complete(self) -> bool:
        """P1 ⊎ P2 ⊎ P3 == Φ with pairwise-disjoint parts."""
        union = set(self.p1) | set(self.p2) | set(self.p3)
        disjoint = (
            len(self.p1) + len(self.p2) + len(self.p3) == len(union)
        )
        return disjoint and union == set(self.space)

    def respects_phase_order(self) -> bool:
        """No dependence goes against the P1 → P2 → P3 phase order, and none is
        internal to P1 or to P3."""
        rank = {}
        for p in self.p1:
            rank[p] = 0
        for p in self.p2:
            rank[p] = 1
        for p in self.p3:
            rank[p] = 2
        for src, dst in self.rd.pairs:
            rs, rd_ = rank.get(src), rank.get(dst)
            if rs is None or rd_ is None:
                return False
            if rs > rd_:
                return False
            if rs == rd_ and rs in (0, 2):
                return False
        return True

    def counts(self) -> Dict[str, int]:
        return {
            "space": self._size("space"),
            "P1": self._size("p1"),
            "P2": self._size("p2"),
            "P3": self._size("p3"),
            "W": self._size("w"),
            "independent": len(self.independent),
            "initial": len(self.initial),
        }


def _frozen_rows(arr: np.ndarray) -> FrozenSet[Point]:
    """An ``(n, dim)`` int array as a frozenset of point tuples."""
    return frozenset(map(tuple, arr.tolist()))


def _three_set_partition_vector(
    space_arr: np.ndarray, rd: FiniteRelation, codec: PointCodec
) -> ThreeSetPartition:
    """The bulk engine: eq. 5 with sorted-key membership instead of set algebra."""
    src, dst = rd.as_arrays()
    phi_keys = codec.encode(space_arr)
    phi_sorted = np.unique(phi_keys)
    src_keys = codec.encode(src)
    dst_keys = codec.encode(dst)
    keep = in_sorted(src_keys, phi_sorted) & in_sorted(dst_keys, phi_sorted)
    if keep.all():
        relation = rd  # nothing dropped: avoid rebuilding the pair set
    else:
        src, dst = src[keep], dst[keep]
        src_keys, dst_keys = src_keys[keep], dst_keys[keep]
        relation = FiniteRelation.from_arrays(src, dst)
    dom_sorted = np.unique(src_keys)
    ran_sorted = np.unique(dst_keys)
    in_ran = in_sorted(phi_keys, ran_sorted)
    in_dom = in_sorted(phi_keys, dom_sorted)
    p1_mask = ~in_ran
    p1_keys = np.unique(phi_keys[p1_mask])
    # W: targets of an edge whose source has no predecessor (is in P1).  Edge
    # targets are in ran by construction, so "dst ∈ P2" reduces to "dst ∈ dom".
    w_edges = in_sorted(src_keys, p1_keys) & in_sorted(dst_keys, dom_sorted)
    # Every set is emitted as sorted unique keys decoded back to rows: key
    # order equals lexicographic row order, so the arrays are canonical and
    # the frozenset views can stay unbuilt (ThreeSetPartition derives them
    # lazily only for set-path consumers).
    return ThreeSetPartition.from_arrays(
        space=codec.decode(phi_sorted),
        rd=relation,
        p1=codec.decode(p1_keys),
        p2=codec.decode(np.unique(phi_keys[in_ran & in_dom])),
        p3=codec.decode(np.unique(phi_keys[in_ran & ~in_dom])),
        w=codec.decode(np.unique(dst_keys[w_edges])),
    )


def three_set_partition(
    space: Union[np.ndarray, Iterable[Point]],
    rd: FiniteRelation,
    engine: str = "auto",
) -> ThreeSetPartition:
    """Compute eq. 5 from the enumerated iteration space and the exact Rd.

    ``rd`` must already be oriented forward (earlier ≺ later); iterations of
    ``rd`` that are outside ``space`` are ignored (they cannot occur when the
    relation was computed from the same bounds).  ``space`` may be an iterable
    of point tuples or an ``(n, dim)`` int array (the natural input of the
    vectorised engine).  ``engine`` is ``"auto"`` (vectorise at
    :data:`~repro.isl.relations.BULK_SIZE_THRESHOLD`), ``"set"`` or
    ``"vector"``; both engines produce identical partitions.
    """
    space_arr, points, codec = resolve_bulk_engine(space, rd, engine)
    if codec is not None:
        return _three_set_partition_vector(space_arr, rd, codec)
    if points is None:
        points = map(tuple, space_arr.tolist())
    phi = frozenset(points)
    relation = rd.restrict(domain=set(phi), rng=set(phi))
    dom = relation.domain()
    ran = relation.range()
    p1 = frozenset(p for p in phi if p not in ran)
    p2 = frozenset(ran & dom)
    p3 = frozenset(ran - dom)
    # W: the intermediate iterations that directly depend on an initial-set
    # iteration — the start points of the WHILE loops (§3.2).
    w = frozenset(
        dst for src, dst in relation.pairs if src in p1 and dst in p2
    )
    return ThreeSetPartition(space=phi, rd=relation, p1=p1, p2=p2, p3=p3, w=w)


# ---------------------------------------------------------------------------
# symbolic variant
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SymbolicThreeSetPartition:
    """The three-set partition as unions of convex sets (possibly parametric).

    The domain/range projections use rational Fourier–Motzkin elimination, so
    when the dependence relation is not unimodular the projected ``ran``/``dom``
    sets are supersets of the true integer shadows and the derived partition is
    an *approximation*: ``p1`` here is a subset of the exact P1, ``p3`` a
    superset of the exact P3, etc.  The approximation is used for generating
    the paper-style DOALL listings (repro.codegen.fortran); every executable
    schedule is built from the exact, enumeration-based
    :class:`ThreeSetPartition` instead.  The tests check the containment
    relations between the two on the paper's examples.
    """

    space: UnionSet
    p1: UnionSet
    p2: UnionSet
    p3: UnionSet
    w: UnionSet

    def bind_parameters(self, params: Mapping[str, int]) -> "SymbolicThreeSetPartition":
        return SymbolicThreeSetPartition(
            self.space.bind_parameters(params),
            self.p1.bind_parameters(params),
            self.p2.bind_parameters(params),
            self.p3.bind_parameters(params),
            self.w.bind_parameters(params),
        )

    def concrete(self, params: Mapping[str, int] | None = None) -> Dict[str, List[Point]]:
        """Enumerate every set (bounded spaces only) — used to cross-check the
        symbolic derivation against the concrete one."""
        return {
            "space": self.space.enumerate(params),
            "P1": self.p1.enumerate(params),
            "P2": self.p2.enumerate(params),
            "P3": self.p3.enumerate(params),
            "W": self.w.enumerate(params),
        }


def symbolic_three_set_partition(
    space: ConvexSet, rd: UnionRelation
) -> SymbolicThreeSetPartition:
    """Eq. 5 computed with set algebra on the symbolic relation.

    ``space`` is the iteration space Φ (one convex set, eq. 1) and ``rd`` the
    symbolic dependence relation of eq. 4 whose in/out spaces both correspond
    to Φ's variables (the out variables are the primed copies).
    """
    variables = space.variables
    phi = UnionSet.from_convex(space)
    # dom / ran come back over the relation's own variable names; rename the
    # range's primed variables back to the space's names before set algebra.
    # Rational pruning after every operation keeps the member count of the
    # iterated set algebra manageable (provably-empty members are dropped).
    dom = rd.domain().rename_variables(dict(zip(rd.in_vars, variables))).prune_rational()
    ran = rd.range().rename_variables(dict(zip(rd.out_vars, variables))).prune_rational()
    p1 = phi.subtract(ran).prune_rational()
    p2 = ran.intersect(dom).prune_rational()
    p3 = ran.subtract(dom).prune_rational()

    # W = { j | (i -> j) ∈ Rd, i ∈ P1, j ∈ P2 }: restrict the relation's domain
    # to P1, take the range, then intersect with P2 (cheaper than restricting
    # the range relation-side, which would multiply the piece counts).
    restricted = rd.intersect_domain(
        p1.rename_variables(dict(zip(variables, rd.in_vars)))
    )
    restricted_pieces = [
        piece for piece in restricted.pieces
        if not piece.graph.simplified().is_obviously_empty()
    ]
    if restricted_pieces:
        from ..isl.relations import UnionRelation

        ran_of_restricted = (
            UnionRelation(rd.in_vars, rd.out_vars, tuple(restricted_pieces))
            .range()
            .rename_variables(dict(zip(rd.out_vars, variables)))
            .prune_rational()
        )
        w = ran_of_restricted.intersect(p2).prune_rational()
    else:
        w = UnionSet.empty(variables)
    return SymbolicThreeSetPartition(space=phi, p1=p1, p2=p2, p3=p3, w=w)
