"""Monotonic recurrence chains in the intermediate set (Definition 1, §3.2).

A *monotonic dependence chain* is a lexicographically increasing sequence of
iterations in which each iteration directly depends on a unique immediate
predecessor.  For a single coupled reference pair with full-rank matrices,
Lemma 1 guarantees that inside the intermediate set P2 every iteration has
exactly one predecessor and one successor, so P2 decomposes into *disjoint*
monotonic chains; each chain is executed sequentially by a WHILE loop whose
start is the chain's first intermediate iteration (the set W) and whose
continuation condition is "the current iteration still has a successor inside
Φ" (``I ∈ Φ ∩ dom Rd``).

This module extracts chains in two independent ways:

* :func:`chains_from_relation` — purely graph-based, walking the exact finite
  relation restricted to P2 (works for any relation, used for validation and
  for the general multi-pair case),
* :func:`chains_from_recurrence` — following the affine map ``i ← i·T + u``
  from each W start (what the generated WHILE loop actually does),

and the test-suite checks they produce identical chains for the single-pair
programs, which is precisely the content of Lemma 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..isl.lexorder import lex_lt
from ..isl.relations import (
    BULK_SIZE_THRESHOLD,
    FiniteRelation,
    PointCodec,
    SuccessorIndex,
    in_sorted,
)
from .partition import ThreeSetPartition
from .recurrence import AffineRecurrence

__all__ = [
    "MonotonicChain",
    "split_into_monotonic_pairs",
    "chains_from_relation",
    "chains_from_recurrence",
    "verify_disjoint_chains",
    "chains_respect_relation",
]

Point = Tuple[int, ...]


@dataclass(frozen=True)
class MonotonicChain:
    """One lexicographically increasing chain of directly dependent iterations."""

    points: Tuple[Point, ...]

    def __post_init__(self):
        for a, b in zip(self.points, self.points[1:]):
            if not lex_lt(a, b):
                raise ValueError(
                    f"chain is not lexicographically increasing at {a} -> {b}"
                )

    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self):
        return iter(self.points)

    @property
    def start(self) -> Point:
        return self.points[0]

    @property
    def end(self) -> Point:
        return self.points[-1]

    def __str__(self) -> str:
        return " -> ".join(str(p) for p in self.points)


def split_into_monotonic_pairs(relation: FiniteRelation) -> List[Tuple[Point, Point]]:
    """Split arbitrary dependence pairs into monotonic (earlier, later) pairs.

    This is the fig. 2 operation: the solution chain 6 → 9 → 3 → 15 of the
    recurrence is not monotonic, but each *pair* of directly dependent
    iterations, ordered lexicographically, is a (two-element) monotonic chain:
    6 → 9, 3 → 9, 3 → 15.
    """
    out = []
    for a, b in relation.pairs:
        if a == b:
            continue
        out.append((a, b) if lex_lt(a, b) else (b, a))
    return sorted(set(out))


def _p2_successor_lookup(
    partition: ThreeSetPartition,
) -> Tuple[Callable[[Point], List[Point]], List[Point]]:
    """Successor lookup and chain heads of the P2-internal relation, vectorised.

    Builds a :class:`~repro.isl.relations.SuccessorIndex` over the relation's
    edges restricted to P2 (sorted-array binary search instead of
    dict-of-point probing) and finds the heads — P2 points with no predecessor
    inside P2 — with one bulk membership pass.
    """
    src, dst = partition.rd.as_arrays()
    p2_arr = np.array(sorted(partition.p2), dtype=np.int64).reshape(
        len(partition.p2), partition.rd.dim_in
    )
    codec = PointCodec.for_arrays(src, dst, p2_arr)
    p2_keys = np.unique(codec.encode(p2_arr))
    if len(src):
        src_keys = codec.encode(src)
        dst_keys = codec.encode(dst)
        keep = in_sorted(src_keys, p2_keys) & in_sorted(dst_keys, p2_keys)
        src, dst, dst_keys = src[keep], dst[keep], dst_keys[keep]
    else:
        dst_keys = np.zeros(0, dtype=np.int64)
    index = SuccessorIndex(src, dst, codec)
    has_pred = in_sorted(p2_keys, np.unique(dst_keys))
    heads = [tuple(r) for r in codec.decode(p2_keys[~has_pred]).tolist()]
    return index.successors, heads


def chains_from_relation(
    partition: ThreeSetPartition,
) -> List[MonotonicChain]:
    """Extract the maximal chains covering P2 by walking the exact relation.

    Only dependences internal to P2 shape the chains (dependences entering
    from P1 or leaving to P3 are handled by the phase ordering).  Every P2
    iteration belongs to at least one chain; when the internal relation is a
    union of simple paths (the Lemma 1 case) the chains are disjoint simple
    paths; otherwise (multiple coupled pairs) iterations may appear in more
    than one chain and the caller must fall back to dataflow partitioning.

    The successor lookup switches to sorted-array binary search
    (:func:`_p2_successor_lookup`) when P2 or the relation reaches
    :data:`~repro.isl.relations.BULK_SIZE_THRESHOLD`; the chain walk itself is
    identical for both lookups.
    """
    p2 = set(partition.p2)
    succ_of: Optional[Callable[[Point], List[Point]]] = None
    if p2 and (
        len(p2) >= BULK_SIZE_THRESHOLD or len(partition.rd) >= BULK_SIZE_THRESHOLD
    ):
        try:
            succ_of, heads = _p2_successor_lookup(partition)
        except ValueError:
            succ_of = None  # box too large for int64 keys: dict path below
    if succ_of is None:
        internal = partition.rd.restrict(domain=p2, rng=p2)
        succ = internal.successor_map()
        pred = internal.predecessor_map()
        succ_of = lambda p: succ.get(p, [])
        # Chain heads: P2 iterations with no predecessor inside P2.
        heads = sorted(p for p in p2 if not pred.get(p))

    chains: List[MonotonicChain] = []
    covered: Set[Point] = set()
    for head in heads:
        # Follow successors greedily; with a functional relation this is the
        # unique path, otherwise we take the lexicographically smallest branch
        # and additional branches start their own chains from their head.
        chain = [head]
        on_chain = {head}
        covered.add(head)
        current = head
        while True:
            nxt = next((q for q in succ_of(current) if q not in on_chain), None)
            if nxt is None:
                break
            chain.append(nxt)
            on_chain.add(nxt)
            covered.add(nxt)
            current = nxt
        chains.append(MonotonicChain(tuple(chain)))
    # Any P2 iteration not reached from a head lies on a cycle or a branch;
    # start an extra chain there so coverage is complete.
    for p in sorted(p2 - covered):
        chain = [p]
        on_chain = {p}
        covered.add(p)
        current = p
        while True:
            nxt = next(
                (q for q in succ_of(current) if q not in on_chain and q not in covered),
                None,
            )
            if nxt is None:
                break
            chain.append(nxt)
            on_chain.add(nxt)
            covered.add(nxt)
            current = nxt
        chains.append(MonotonicChain(tuple(chain)))
    return chains


def chains_from_recurrence(
    partition: ThreeSetPartition,
    recurrence: AffineRecurrence,
) -> List[MonotonicChain]:
    """Chains obtained by running the WHILE-loop recurrence from each W start.

    Mirrors the generated code of Algorithm 1: each start iteration in W is
    advanced by ``i ← i·T + u`` (or by the inverse map when that is the
    direction that moves lexicographically forward) while the next iteration
    stays inside the intermediate set.  The final iteration of the underlying
    recurrence chain is *not* included — it belongs to P3 and is executed by
    the final DOALL phase, exactly as in the paper.
    """
    p2 = set(partition.p2)
    inverse = recurrence.inverse()

    def forward_step(point: Point) -> Optional[Point]:
        """The unique lexicographically-forward dependence successor inside P2.

        Tries both the successor map and its inverse (the dependence equation
        of eq. 2 relates the two iterations symmetrically; which map moves
        forward depends on which reference the current iteration instantiates).
        Lemma 1 guarantees at most one candidate qualifies; if both ever did,
        we fail loudly because the single-pair precondition would be violated.
        """
        candidates = []
        for direction in (recurrence, inverse):
            nxt = direction.next_integer(point)
            if nxt is not None and tuple(nxt) in p2 and lex_lt(point, tuple(nxt)):
                candidates.append(tuple(nxt))
        unique = sorted(set(candidates))
        if len(unique) > 1:
            raise ValueError(
                f"iteration {point} has {len(unique)} forward successors in P2; "
                f"the single-coupled-pair precondition of Lemma 1 does not hold"
            )
        return unique[0] if unique else None

    chains: List[MonotonicChain] = []
    for start in sorted(partition.w):
        chain = [start]
        current = start
        while True:
            nxt = forward_step(current)
            if nxt is None or nxt in chain:
                break
            chain.append(nxt)
            current = nxt
        chains.append(MonotonicChain(tuple(chain)))
    return chains


def verify_disjoint_chains(chains: Sequence[MonotonicChain], p2: Iterable[Point]) -> bool:
    """Lemma 1 check: the chains are pairwise disjoint and exactly cover P2."""
    seen: Set[Point] = set()
    for chain in chains:
        for p in chain:
            if p in seen:
                return False
            seen.add(p)
    return seen == set(tuple(p) for p in p2)


def chains_respect_relation(
    chains: Sequence[MonotonicChain], partition: ThreeSetPartition
) -> bool:
    """Check every P2-internal dependence edge is honoured by the chains.

    The three-phase schedule runs the chains of P2 concurrently, each chain
    sequentially in order — so a dependence edge with *both* endpoints inside
    P2 is respected iff both endpoints sit on the *same* chain with the source
    strictly earlier.  The recurrence walk only follows the coupled pair's
    affine map; a second, uncoupled dependence (e.g. a constant-subscript
    reference rewritten every iteration) can thread through P2 without being
    on any chain, and this check is what catches that before the schedule is
    built.  Edges entering P2 from P1 or leaving it to P3 are ordered by the
    phase barriers and are not this function's concern.
    """
    position: Dict[Point, Tuple[int, int]] = {}
    for ci, chain in enumerate(chains):
        for pos, p in enumerate(chain):
            if p in position:
                return False  # overlapping chains would run an instance twice
            position[p] = (ci, pos)
    p2 = set(tuple(p) for p in partition.p2)
    if not p2 or not len(partition.rd):
        return True
    src, dst = partition.rd.as_arrays()
    for a, b in zip(map(tuple, src.tolist()), map(tuple, dst.tolist())):
        if a == b or a not in p2 or b not in p2:
            continue  # self-edges and edges ordered by the phase barriers
        pa = position.get(a)
        pb = position.get(b)
        if pa is None or pb is None:
            return False  # an internal endpoint is on no chain at all
        if pa[0] != pb[0] or pa[1] >= pb[1]:
            return False
    return True
