"""Parallel schedules: the common output format of every partitioning scheme.

All partitioners in this package (recurrence chains, dataflow, PDM, unique
sets, DOACROSS, tiling, ...) ultimately answer the same question: *in what
order, and with what synchronization, may the statement instances execute?*
Their answer is a :class:`Schedule` — an ordered sequence of
:class:`ParallelPhase` objects separated by barriers, where each phase holds
independent :class:`ExecutionUnit` s that may run concurrently, and each unit
is a sequence of statement instances that must run in the given order
(e.g. one monotonic recurrence chain executed by a WHILE loop).

This representation captures exactly what the paper's generated code captures:
``DOALL`` nests become phases whose units are single instances, the WHILE-loop
chains become multi-instance units inside the intermediate phase, and barrier
synchronization exists only *between* phases (``c$omp end do nowait`` inside a
phase, barriers at the P1/P2 and P2/P3 borders).

The runtime package consumes schedules to (a) validate them against the
dependence relation and the sequential semantics and (b) estimate/measure
speedups under a processor-count and overhead model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from ..isl.relations import FiniteRelation

__all__ = ["Instance", "ExecutionUnit", "ParallelPhase", "Schedule"]

Point = Tuple[int, ...]
#: A statement instance: (statement label, iteration vector).
Instance = Tuple[str, Point]


@dataclass(frozen=True)
class ExecutionUnit:
    """A sequence of statement instances that must execute in order.

    A unit is the smallest schedulable entity: a single iteration of a DOALL
    loop (one instance) or a whole recurrence chain executed by a WHILE loop
    (several instances in chain order).
    """

    instances: Tuple[Instance, ...]
    kind: str = "iteration"  # "iteration" | "chain" | "block"

    @staticmethod
    def single(label: str, point: Sequence[int]) -> "ExecutionUnit":
        return ExecutionUnit(((label, tuple(point)),), "iteration")

    @staticmethod
    def chain(label: str, points: Sequence[Sequence[int]]) -> "ExecutionUnit":
        return ExecutionUnit(tuple((label, tuple(p)) for p in points), "chain")

    @staticmethod
    def block(instances: Sequence[Instance]) -> "ExecutionUnit":
        return ExecutionUnit(tuple((l, tuple(p)) for l, p in instances), "block")

    def __len__(self) -> int:
        return len(self.instances)

    @property
    def work(self) -> int:
        """Number of statement instances (the unit's sequential execution time
        in the unit-cost model)."""
        return len(self.instances)


@dataclass(frozen=True)
class ParallelPhase:
    """A set of execution units that may run concurrently, ended by a barrier."""

    name: str
    units: Tuple[ExecutionUnit, ...]

    def __len__(self) -> int:
        return len(self.units)

    @property
    def work(self) -> int:
        """Total statement instances in the phase."""
        return sum(u.work for u in self.units)

    @property
    def span(self) -> int:
        """Length of the longest unit — the phase's critical path in unit cost."""
        return max((u.work for u in self.units), default=0)

    def instances(self) -> List[Instance]:
        out: List[Instance] = []
        for u in self.units:
            out.extend(u.instances)
        return out


@dataclass(frozen=True)
class Schedule:
    """An ordered sequence of parallel phases separated by barriers."""

    name: str
    phases: Tuple[ParallelPhase, ...]
    meta: Mapping[str, object] = field(default_factory=dict)

    # -- construction ---------------------------------------------------------

    @staticmethod
    def from_phases(
        name: str, phases: Sequence[ParallelPhase], **meta
    ) -> "Schedule":
        return Schedule(name, tuple(p for p in phases if len(p) > 0), dict(meta))

    @staticmethod
    def sequential(name: str, instances: Sequence[Instance]) -> "Schedule":
        """The degenerate schedule: everything in one unit of one phase."""
        unit = ExecutionUnit.block(list(instances))
        return Schedule(name, (ParallelPhase("sequential", (unit,)),), {})

    # -- aggregate metrics ------------------------------------------------------

    @property
    def num_phases(self) -> int:
        return len(self.phases)

    @property
    def total_work(self) -> int:
        """Total number of statement instances across all phases."""
        return sum(p.work for p in self.phases)

    @property
    def span(self) -> int:
        """Critical path length in unit cost: sum over phases of the longest unit."""
        return sum(p.span for p in self.phases)

    @property
    def max_parallelism(self) -> int:
        return max((len(p) for p in self.phases), default=0)

    def ideal_speedup(self) -> float:
        """Work/span ratio — the speedup on unboundedly many unit-cost processors."""
        return self.total_work / self.span if self.span else float("nan")

    def instances(self) -> List[Instance]:
        out: List[Instance] = []
        for p in self.phases:
            out.extend(p.instances())
        return out

    def instance_counts(self) -> Dict[str, int]:
        """Instances per phase name (useful in reports)."""
        return {p.name: p.work for p in self.phases}

    # -- safety checking ----------------------------------------------------------

    def covers(self, instances: Iterable[Instance]) -> bool:
        """True when the schedule executes exactly the given instances, once each."""
        mine = self.instances()
        return len(mine) == len(set(mine)) and set(mine) == set(instances)

    def execution_index(self) -> Dict[Instance, Tuple[int, int, int]]:
        """Map instance -> (phase number, unit number, position inside unit)."""
        out: Dict[Instance, Tuple[int, int, int]] = {}
        for pi, phase in enumerate(self.phases):
            for ui, unit in enumerate(phase.units):
                for k, inst in enumerate(unit.instances):
                    out[inst] = (pi, ui, k)
        return out

    def respects(self, dependences: FiniteRelation, label: str | None = None) -> bool:
        """Check that every dependence is honoured by the schedule.

        A dependence (i → j) is honoured when instance ``i`` executes in an
        earlier phase than ``j``, or in the same unit at an earlier position.
        Two dependent instances in *different units of the same phase* would be
        a race, and the method returns ``False``.

        ``dependences`` relates iteration vectors; when the schedule contains
        several statement labels the check is applied to instances with
        matching iteration vectors regardless of label unless ``label`` is
        given (single-statement programs pass the label of that statement).
        """
        index = self.execution_index()
        by_point: Dict[Point, List[Instance]] = {}
        for inst in index:
            by_point.setdefault(inst[1], []).append(inst)
        for src, dst in dependences.pairs:
            src_insts = by_point.get(tuple(src), [])
            dst_insts = by_point.get(tuple(dst), [])
            if label is not None:
                src_insts = [i for i in src_insts if i[0] == label]
                dst_insts = [i for i in dst_insts if i[0] == label]
            for si in src_insts:
                for di in dst_insts:
                    ps, us, ks = index[si]
                    pd, ud, kd = index[di]
                    if ps < pd:
                        continue
                    if ps == pd and us == ud and ks < kd:
                        continue
                    return False
        return True

    def violations(
        self, dependences: FiniteRelation, label: str | None = None
    ) -> List[Tuple[Instance, Instance]]:
        """All dependence pairs the schedule breaks (empty list == safe)."""
        index = self.execution_index()
        by_point: Dict[Point, List[Instance]] = {}
        for inst in index:
            by_point.setdefault(inst[1], []).append(inst)
        bad: List[Tuple[Instance, Instance]] = []
        for src, dst in dependences.pairs:
            src_insts = by_point.get(tuple(src), [])
            dst_insts = by_point.get(tuple(dst), [])
            if label is not None:
                src_insts = [i for i in src_insts if i[0] == label]
                dst_insts = [i for i in dst_insts if i[0] == label]
            for si in src_insts:
                for di in dst_insts:
                    ps, us, ks = index[si]
                    pd, ud, kd = index[di]
                    if ps < pd or (ps == pd and us == ud and ks < kd):
                        continue
                    bad.append((si, di))
        return bad

    def summary(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "phases": self.num_phases,
            "work": self.total_work,
            "span": self.span,
            "max_parallelism": self.max_parallelism,
            "ideal_speedup": round(self.ideal_speedup(), 3) if self.span else None,
            "phase_sizes": [len(p) for p in self.phases],
        }
