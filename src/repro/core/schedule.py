"""Parallel schedules: the common output format of every partitioning scheme.

All partitioners in this package (recurrence chains, dataflow, PDM, unique
sets, DOACROSS, tiling, ...) ultimately answer the same question: *in what
order, and with what synchronization, may the statement instances execute?*
Their answer is a :class:`Schedule` — an ordered sequence of
:class:`ParallelPhase` objects separated by barriers, where each phase holds
independent :class:`ExecutionUnit` s that may run concurrently, and each unit
is a sequence of statement instances that must run in the given order
(e.g. one monotonic recurrence chain executed by a WHILE loop).

This representation captures exactly what the paper's generated code captures:
``DOALL`` nests become phases whose units are single instances, the WHILE-loop
chains become multi-instance units inside the intermediate phase, and barrier
synchronization exists only *between* phases (``c$omp end do nowait`` inside a
phase, barriers at the P1/P2 and P2/P3 borders).

The runtime package consumes schedules to (a) validate them against the
dependence relation and the sequential semantics and (b) estimate/measure
speedups under a processor-count and overhead model.

Large DOALL phases additionally have an **array-backed form**:
:class:`ArrayPhase` holds its single-iteration units as one ``(n, dim)``
int64 array of iteration points instead of ``n`` :class:`ExecutionUnit`
objects, and :meth:`Schedule.from_arrays` builds a whole wavefront schedule
from CSR-style ``(level_offsets, point_rows)`` arrays.  The tuple view
(:attr:`ArrayPhase.units`) is derived lazily, so validators and the cost
simulator work unchanged while the executors iterate the rows directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

import numpy as np

from ..isl.relations import FiniteRelation, readonly_view

__all__ = [
    "Instance",
    "ExecutionUnit",
    "ParallelPhase",
    "ArrayPhase",
    "UnifiedArrayPhase",
    "Schedule",
]

Point = Tuple[int, ...]
#: A statement instance: (statement label, iteration vector).
Instance = Tuple[str, Point]


@dataclass(frozen=True)
class ExecutionUnit:
    """A sequence of statement instances that must execute in order.

    A unit is the smallest schedulable entity: a single iteration of a DOALL
    loop (one instance) or a whole recurrence chain executed by a WHILE loop
    (several instances in chain order).
    """

    instances: Tuple[Instance, ...]
    kind: str = "iteration"  # "iteration" | "chain" | "block"

    @staticmethod
    def single(label: str, point: Sequence[int]) -> "ExecutionUnit":
        return ExecutionUnit(((label, tuple(point)),), "iteration")

    @staticmethod
    def chain(label: str, points: Sequence[Sequence[int]]) -> "ExecutionUnit":
        return ExecutionUnit(tuple((label, tuple(p)) for p in points), "chain")

    @staticmethod
    def block(instances: Sequence[Instance]) -> "ExecutionUnit":
        return ExecutionUnit(tuple((l, tuple(p)) for l, p in instances), "block")

    def __len__(self) -> int:
        return len(self.instances)

    @property
    def work(self) -> int:
        """Number of statement instances (the unit's sequential execution time
        in the unit-cost model)."""
        return len(self.instances)


@dataclass(frozen=True)
class ParallelPhase:
    """A set of execution units that may run concurrently, ended by a barrier."""

    name: str
    units: Tuple[ExecutionUnit, ...]

    def __len__(self) -> int:
        return len(self.units)

    @property
    def work(self) -> int:
        """Total statement instances in the phase."""
        return sum(u.work for u in self.units)

    @property
    def span(self) -> int:
        """Length of the longest unit — the phase's critical path in unit cost."""
        return max((u.work for u in self.units), default=0)

    def instances(self) -> List[Instance]:
        out: List[Instance] = []
        for u in self.units:
            out.extend(u.instances)
        return out


def validate_csr(level_offsets: np.ndarray, point_rows: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Validate and normalise CSR-style ``(level_offsets, point_rows)`` arrays.

    Shared by :meth:`Schedule.from_arrays` and
    :meth:`~repro.core.dataflow.DataflowPartition.from_arrays`; returns the
    int64-normalised pair or raises :class:`ValueError`.
    """
    offsets = np.asarray(level_offsets, dtype=np.int64)
    rows = np.asarray(point_rows, dtype=np.int64)
    if offsets.ndim != 1 or len(offsets) == 0 or rows.ndim != 2:
        raise ValueError(
            "level_offsets must be a 1-D prefix-sum array and point_rows (n, dim)"
        )
    if offsets[0] != 0 or offsets[-1] != len(rows):
        raise ValueError("level_offsets must start at 0 and end at len(point_rows)")
    if (np.diff(offsets) < 0).any():
        raise ValueError("level_offsets must be non-decreasing")
    # Read-only: the containers cache tuple views derived from these arrays,
    # so an in-place edit through any alias must raise, not desync.
    return readonly_view(offsets), readonly_view(rows)


class ArrayPhase:
    """A DOALL phase whose units are the rows of an ``(n, dim)`` int64 array.

    Semantically identical to a :class:`ParallelPhase` of ``n`` single-instance
    units ``(label, row)`` — :attr:`units` materialises exactly that tuple
    lazily, so every tuple-path consumer (validators, simulator, codegen)
    works unchanged — but the executors recognise the class and iterate the
    rows directly, skipping per-point :class:`ExecutionUnit` boxing.
    """

    __slots__ = ("name", "label", "points", "_units")

    def __init__(self, name: str, label: str, points: np.ndarray):
        self.name = name
        self.label = label
        pts = np.asarray(points, dtype=np.int64)
        if pts.ndim != 2:
            raise ValueError("ArrayPhase points must be an (n, dim) array")
        # Stored read-only: the lazy `units` view caches tuples of this data.
        self.points = readonly_view(pts)
        self._units: Tuple[ExecutionUnit, ...] | None = None

    @property
    def units(self) -> Tuple[ExecutionUnit, ...]:
        if self._units is None:
            self._units = tuple(
                ExecutionUnit.single(self.label, p) for p in self.points.tolist()
            )
        return self._units

    def __len__(self) -> int:
        return len(self.points)

    @property
    def work(self) -> int:
        return len(self.points)

    @property
    def span(self) -> int:
        return 1 if len(self.points) else 0

    def instances(self) -> List[Instance]:
        return [(self.label, tuple(p)) for p in self.points.tolist()]

    def __eq__(self, other) -> bool:
        if isinstance(other, ArrayPhase):
            return (
                self.name == other.name
                and self.label == other.label
                and np.array_equal(self.points, other.points)
            )
        if isinstance(other, ParallelPhase):
            return self.name == other.name and self.units == other.units
        return NotImplemented

    def __hash__(self) -> int:
        # Must match ParallelPhase's dataclass hash: the two compare equal
        # when (name, units) agree, so they have to hash alike too.  Hashing
        # materialises the unit view; phases are rarely used as dict/set keys.
        return hash((self.name, self.units))

    def __repr__(self) -> str:
        return f"ArrayPhase({self.name!r}, {self.label!r}, <{len(self)} points>)"


class UnifiedArrayPhase:
    """A DOALL phase over *statement instances* held as parallel arrays.

    The statement-level analogue of :class:`ArrayPhase` (§3.3): ``rows`` are
    unified index vectors — ``(s0, i1, s1, ..., il, sl, 0, ...)`` — and
    ``stmt_ids`` names each row's statement (an index into the ``labels``
    table, whose per-statement nesting depths are in ``depths``).  The
    iteration vector of row ``r`` is its odd columns up to the statement's
    depth: ``rows[r, 1 : 2·depth : 2]``.

    Semantically identical to a :class:`ParallelPhase` of ``n``
    single-instance block units in row order — :attr:`units` materialises
    exactly that tuple lazily, so validators, the simulator and codegen work
    unchanged — but the executors recognise the class and iterate the rows
    directly.
    """

    __slots__ = ("name", "labels", "depths", "stmt_ids", "rows", "_units")

    def __init__(
        self,
        name: str,
        labels: Sequence[str],
        depths: Sequence[int],
        stmt_ids: np.ndarray,
        rows: np.ndarray,
    ):
        self.name = name
        self.labels = tuple(labels)
        self.depths = tuple(int(d) for d in depths)
        if len(self.labels) != len(self.depths):
            raise ValueError("labels and depths must be parallel")
        ids = np.asarray(stmt_ids, dtype=np.int64)
        pts = np.asarray(rows, dtype=np.int64)
        if ids.ndim != 1 or pts.ndim != 2 or len(ids) != len(pts):
            raise ValueError("stmt_ids must be (n,) parallel to (n, width) rows")
        # Stored read-only: the lazy `units` view caches tuples of this data.
        self.stmt_ids = readonly_view(ids)
        self.rows = readonly_view(pts)
        self._units: Tuple[ExecutionUnit, ...] | None = None

    @property
    def units(self) -> Tuple[ExecutionUnit, ...]:
        if self._units is None:
            self._units = tuple(
                ExecutionUnit.block([inst]) for inst in self.instances()
            )
        return self._units

    def __len__(self) -> int:
        return len(self.rows)

    @property
    def work(self) -> int:
        return len(self.rows)

    @property
    def span(self) -> int:
        return 1 if len(self.rows) else 0

    def instances(self) -> List[Instance]:
        labels, depths = self.labels, self.depths
        return [
            (labels[sid], tuple(row[1 : 2 * depths[sid] : 2]))
            for sid, row in zip(self.stmt_ids.tolist(), self.rows.tolist())
        ]

    def __eq__(self, other) -> bool:
        if isinstance(other, UnifiedArrayPhase):
            return (
                self.name == other.name
                and self.labels == other.labels
                and self.depths == other.depths
                and np.array_equal(self.stmt_ids, other.stmt_ids)
                and np.array_equal(self.rows, other.rows)
            )
        if isinstance(other, ParallelPhase):
            return self.name == other.name and self.units == other.units
        return NotImplemented

    def __hash__(self) -> int:
        # Must match ParallelPhase's dataclass hash (see ArrayPhase.__hash__).
        return hash((self.name, self.units))

    def __repr__(self) -> str:
        return (
            f"UnifiedArrayPhase({self.name!r}, <{len(self)} instances, "
            f"{len(self.labels)} statements>)"
        )


@dataclass(frozen=True)
class Schedule:
    """An ordered sequence of parallel phases separated by barriers."""

    name: str
    phases: Tuple[ParallelPhase, ...]
    meta: Mapping[str, object] = field(default_factory=dict)

    # -- construction ---------------------------------------------------------

    @staticmethod
    def from_phases(
        name: str, phases: Sequence[ParallelPhase], **meta
    ) -> "Schedule":
        return Schedule(name, tuple(p for p in phases if len(p) > 0), dict(meta))

    @staticmethod
    def from_arrays(
        name: str,
        label: str,
        level_offsets: np.ndarray,
        point_rows: np.ndarray,
        phase_prefix: str = "wavefront",
        **meta,
    ) -> "Schedule":
        """A wavefront schedule from CSR-style arrays, one :class:`ArrayPhase`
        per level.

        ``point_rows`` is the ``(total, dim)`` array of all iteration points
        and ``level_offsets`` the ``(levels + 1,)`` prefix-sum array: level
        ``k`` owns rows ``level_offsets[k]:level_offsets[k+1]``.  Empty levels
        are dropped, mirroring :meth:`from_phases`.
        """
        offsets, rows = validate_csr(level_offsets, point_rows)
        phases = []
        for level in range(len(offsets) - 1):
            chunk = rows[int(offsets[level]) : int(offsets[level + 1])]
            if len(chunk):
                phases.append(ArrayPhase(f"{phase_prefix}-{level}", label, chunk))
        return Schedule(name, tuple(phases), dict(meta))

    @staticmethod
    def from_unified_arrays(
        name: str,
        level_offsets: np.ndarray,
        rows: np.ndarray,
        stmt_ids: np.ndarray,
        labels: Sequence[str],
        depths: Sequence[int],
        phase_prefix: str = "wavefront",
        **meta,
    ) -> "Schedule":
        """A statement-level wavefront schedule from CSR-style arrays.

        The §3.3 twin of :meth:`from_arrays`: ``rows`` holds unified index
        vectors and ``stmt_ids`` (parallel to ``rows``) the statement of each
        instance; level ``k`` owns rows ``level_offsets[k]:level_offsets[k+1]``
        and becomes one :class:`UnifiedArrayPhase`.  Empty levels are dropped.
        """
        offsets, pts = validate_csr(level_offsets, rows)
        ids = np.asarray(stmt_ids, dtype=np.int64)
        if ids.ndim != 1 or len(ids) != len(pts):
            raise ValueError("stmt_ids must be (n,) parallel to the point rows")
        phases = []
        for level in range(len(offsets) - 1):
            lo, hi = int(offsets[level]), int(offsets[level + 1])
            if hi > lo:
                phases.append(
                    UnifiedArrayPhase(
                        f"{phase_prefix}-{level}", labels, depths,
                        ids[lo:hi], pts[lo:hi],
                    )
                )
        return Schedule(name, tuple(phases), dict(meta))

    @staticmethod
    def sequential(name: str, instances: Sequence[Instance]) -> "Schedule":
        """The degenerate schedule: everything in one unit of one phase."""
        unit = ExecutionUnit.block(list(instances))
        return Schedule(name, (ParallelPhase("sequential", (unit,)),), {})

    # -- aggregate metrics ------------------------------------------------------

    @property
    def num_phases(self) -> int:
        return len(self.phases)

    @property
    def total_work(self) -> int:
        """Total number of statement instances across all phases."""
        return sum(p.work for p in self.phases)

    @property
    def span(self) -> int:
        """Critical path length in unit cost: sum over phases of the longest unit."""
        return sum(p.span for p in self.phases)

    @property
    def max_parallelism(self) -> int:
        return max((len(p) for p in self.phases), default=0)

    def ideal_speedup(self) -> float:
        """Work/span ratio — the speedup on unboundedly many unit-cost processors."""
        return self.total_work / self.span if self.span else float("nan")

    def instances(self) -> List[Instance]:
        out: List[Instance] = []
        for p in self.phases:
            out.extend(p.instances())
        return out

    def instance_counts(self) -> Dict[str, int]:
        """Instances per phase name (useful in reports)."""
        return {p.name: p.work for p in self.phases}

    # -- safety checking ----------------------------------------------------------

    def covers(self, instances: Iterable[Instance]) -> bool:
        """True when the schedule executes exactly the given instances, once each."""
        mine = self.instances()
        return len(mine) == len(set(mine)) and set(mine) == set(instances)

    def execution_index(self) -> Dict[Instance, Tuple[int, int, int]]:
        """Map instance -> (phase number, unit number, position inside unit)."""
        out: Dict[Instance, Tuple[int, int, int]] = {}
        for pi, phase in enumerate(self.phases):
            for ui, unit in enumerate(phase.units):
                for k, inst in enumerate(unit.instances):
                    out[inst] = (pi, ui, k)
        return out

    def respects(self, dependences: FiniteRelation, label: str | None = None) -> bool:
        """Check that every dependence is honoured by the schedule.

        A dependence (i → j) is honoured when instance ``i`` executes in an
        earlier phase than ``j``, or in the same unit at an earlier position.
        Two dependent instances in *different units of the same phase* would be
        a race, and the method returns ``False``.

        ``dependences`` relates iteration vectors; when the schedule contains
        several statement labels the check is applied to instances with
        matching iteration vectors regardless of label unless ``label`` is
        given (single-statement programs pass the label of that statement).
        """
        index = self.execution_index()
        by_point: Dict[Point, List[Instance]] = {}
        for inst in index:
            by_point.setdefault(inst[1], []).append(inst)
        for src, dst in dependences.pairs:
            src_insts = by_point.get(tuple(src), [])
            dst_insts = by_point.get(tuple(dst), [])
            if label is not None:
                src_insts = [i for i in src_insts if i[0] == label]
                dst_insts = [i for i in dst_insts if i[0] == label]
            for si in src_insts:
                for di in dst_insts:
                    ps, us, ks = index[si]
                    pd, ud, kd = index[di]
                    if ps < pd:
                        continue
                    if ps == pd and us == ud and ks < kd:
                        continue
                    return False
        return True

    def violations(
        self, dependences: FiniteRelation, label: str | None = None
    ) -> List[Tuple[Instance, Instance]]:
        """All dependence pairs the schedule breaks (empty list == safe)."""
        index = self.execution_index()
        by_point: Dict[Point, List[Instance]] = {}
        for inst in index:
            by_point.setdefault(inst[1], []).append(inst)
        bad: List[Tuple[Instance, Instance]] = []
        for src, dst in dependences.pairs:
            src_insts = by_point.get(tuple(src), [])
            dst_insts = by_point.get(tuple(dst), [])
            if label is not None:
                src_insts = [i for i in src_insts if i[0] == label]
                dst_insts = [i for i in dst_insts if i[0] == label]
            for si in src_insts:
                for di in dst_insts:
                    ps, us, ks = index[si]
                    pd, ud, kd = index[di]
                    if ps < pd or (ps == pd and us == ud and ks < kd):
                        continue
                    bad.append((si, di))
        return bad

    def summary(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "phases": self.num_phases,
            "work": self.total_work,
            "span": self.span,
            "max_parallelism": self.max_parallelism,
            "ideal_speedup": round(self.ideal_speedup(), 3) if self.span else None,
            "phase_sizes": [len(p) for p in self.phases],
        }
