"""Setuptools entry point (kept for environments without PEP 660 support)."""
from setuptools import setup, find_packages

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'Non-Uniform Dependences Partitioned by Recurrence "
        "Chains' (Yu & D'Hollander, ICPP 2004)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    # the calibrated strategy-selection table loaded by the default selector
    package_data={"repro.core": ["selection_table.json"]},
    include_package_data=True,
    python_requires=">=3.10",
    install_requires=["numpy>=1.24"],
)
