"""API-surface guard: every module imports and every ``__all__`` name exists.

With the planning facade in place the historical entry points live on as
shims, and the top-level package re-exports the facade — this test walks
every ``repro`` module and verifies that (a) it imports cleanly and (b)
every name it advertises in ``__all__`` actually resolves, so a refactor
can never silently break an advertised import.
"""

import importlib
import pkgutil

import pytest

import repro


def _iter_module_names():
    yield "repro"
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield info.name


MODULES = sorted(set(_iter_module_names()))


@pytest.mark.parametrize("name", MODULES)
def test_module_all_names_resolve(name):
    module = importlib.import_module(name)
    exported = getattr(module, "__all__", None)
    if exported is None:
        return
    assert len(exported) == len(set(exported)), f"duplicate names in {name}.__all__"
    missing = [attr for attr in exported if not hasattr(module, attr)]
    assert not missing, f"{name}.__all__ advertises missing names: {missing}"


def test_facade_is_exported_top_level():
    for attr in ("plan", "Plan", "PlanConfig", "PlanCache", "strategy_names"):
        assert attr in repro.__all__
        assert hasattr(repro, attr)
