"""Shared test configuration: helper-module path and Hypothesis profiles.

``tests/strategies.py`` (the shared Hypothesis strategies for random loop
programs) is a plain helper module, not a test file; the tests directory is
not a package, so it is put on ``sys.path`` here for ``from strategies
import ...`` to work from any test subdirectory.

Two Hypothesis profiles are registered:

* ``ci`` — the reproducible profile CI pins with ``--hypothesis-profile=ci``:
  derandomized (fixed seed derived from each test, so every run generates the
  same programs), a fixed example budget, and no per-example deadline (the
  exact analyser's first call pays numpy warm-up that would trip the default
  200 ms deadline on shared runners).
* ``dev`` — the default everywhere else: fewer examples so the tier-1 suite
  stays fast, still no deadline.
"""

import os
import sys

from hypothesis import HealthCheck, settings

sys.path.insert(0, os.path.dirname(__file__))

settings.register_profile(
    "ci",
    derandomize=True,
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile(
    "dev",
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))
