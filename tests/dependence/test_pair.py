"""Tests for repro.dependence.pair: matrices, recurrence form, classification."""

from fractions import Fraction

import pytest

from repro.dependence.analysis import DependenceAnalysis
from repro.dependence.pair import ReferencePair
from repro.ir.builder import aref, assign, loop, program
from repro.workloads.examples import example2_loop, figure1_loop, figure2_loop


def single_pair(prog, params=None):
    """The write/read coupled pair (ignoring the write/write output pair)."""
    analysis = DependenceAnalysis(prog, params or {})
    pairs = [
        p for p in analysis.coupled_pairs if str(p.source_ref) != str(p.target_ref)
    ]
    assert pairs, "expected at least one coupled write/read pair"
    return pairs[0]


class TestFigure1Pair:
    def test_matrices(self):
        pair = single_pair(figure1_loop(10, 10))
        A, a, B, b = pair.matrices()
        assert A == [[3, 2], [0, 1]]
        assert a == [1, -1]
        assert B == [[1, 0], [0, 1]]
        assert b == [3, 1]

    def test_recurrence_T_u(self):
        pair = single_pair(figure1_loop(10, 10))
        T, u = pair.recurrence()
        assert T.tolist() == [[3, 2], [0, 1]]
        assert u == (Fraction(-2), Fraction(-2))
        # det(T) = 3, the value the paper quotes for Example 1
        assert T.det() == 3

    def test_recurrence_successor_matches_equation(self):
        pair = single_pair(figure1_loop(10, 10))
        T, u = pair.recurrence()
        i = (4, 3)
        j = tuple(x + du for x, du in zip(T.row_apply(list(i)), u))
        # i's write address must equal j's read address
        assert pair.source_ref.evaluate({"I1": 4, "I2": 3}) == pair.target_ref.evaluate(
            {"I1": int(j[0]), "I2": int(j[1])}
        )

    def test_classification(self):
        pair = single_pair(figure1_loop(10, 10))
        assert pair.is_coupled()
        assert pair.has_coupled_subscript_dimensions()
        assert pair.is_square_full_rank()
        assert not pair.is_uniform()
        assert pair.ranks() == (2, 2)


class TestOtherPairs:
    def test_figure2_pair_1d(self):
        pair = single_pair(figure2_loop(20))
        A, a, B, b = pair.matrices()
        assert A == [[2]]
        assert B == [[-1]]
        assert b == [21]
        assert pair.is_square_full_rank()
        assert not pair.is_uniform()

    def test_example2_pair(self):
        pair = single_pair(example2_loop(12))
        T, u = pair.recurrence()
        # |det T| should be 2 (the paper's a = |det(T)| = 2 for Example 2)
        assert abs(T.det()) in (Fraction(2), Fraction(1, 2))

    def test_uniform_pair(self):
        body = assign("s", aref("a", "I", "J"), [aref("a", "I-1", "J-2")])
        prog = program(
            "uniform", loop("I", 1, 5, loop("J", 1, 5, body)), array_shapes={"a": (10, 10)}
        )
        pair = single_pair(prog)
        assert pair.is_uniform()
        assert not pair.has_coupled_subscript_dimensions()

    def test_non_square_pair_has_no_recurrence(self):
        body = assign("s", aref("a", "I+J"), [aref("a", "I")])
        prog = program(
            "flat", loop("I", 1, 5, loop("J", 1, 5, body)), array_shapes={"a": (20,)}
        )
        pair = single_pair(prog)
        assert not pair.is_square_full_rank()
        assert pair.recurrence() is None

    def test_output_pair_detection(self):
        prog = figure1_loop(5, 5)
        analysis = DependenceAnalysis(prog, {})
        kinds = {p.is_output_pair() for p in analysis.reference_pairs}
        # one write/read pair plus the write/write output-dependence pair
        assert kinds == {False, True}
