"""Tests for repro.dependence.tests: GCD and Banerjee conservativeness."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dependence.analysis import DependenceAnalysis
from repro.dependence.tests import banerjee_test, combined_test, gcd_test
from repro.ir.builder import aref, assign, loop, program
from repro.workloads.examples import figure1_loop, figure2_loop
from repro.workloads.synthetic import random_coupled_loop


def make_1d(write_sub, read_sub, n=10, size=200):
    body = assign("s", aref("a", write_sub), [aref("a", read_sub)])
    return program("p", loop("I", 1, n, body), array_shapes={"a": (size,)})


def write_read_pair(prog, params=None):
    """The write/read reference pair (skip the write/write output-dependence pair)."""
    analysis = DependenceAnalysis(prog, params or {})
    pairs = [
        p for p in analysis.coupled_pairs if str(p.source_ref) != str(p.target_ref)
    ]
    assert pairs
    return pairs[0]


class TestGcdTest:
    def test_provable_independence(self):
        # write 2I, read 2I+1: parity mismatch, gcd 2 does not divide 1
        prog = make_1d("2*I", "2*I+1")
        pair = write_read_pair(prog)
        assert gcd_test(pair).independent

    def test_cannot_disprove_dependence(self):
        prog = figure1_loop(10, 10)
        pair = DependenceAnalysis(prog, {}).coupled_pairs[0]
        assert not gcd_test(pair).independent

    def test_constant_mismatch_dimension(self):
        body = assign("s", aref("a", "I", "3"), [aref("a", "I", "5")])
        prog = program("p", loop("I", 1, 5, body), array_shapes={"a": (10, 10)})
        pair = write_read_pair(prog)
        assert gcd_test(pair).independent


class TestBanerjeeTest:
    def test_out_of_range_offsets(self):
        # write a(I), read a(I+100) with I in 1..10: ranges never overlap
        prog = make_1d("I", "I+100", n=10, size=300)
        pair = write_read_pair(prog)
        assert banerjee_test(pair, {}).independent

    def test_overlapping_ranges_not_disproved(self):
        prog = make_1d("I", "I+2", n=10)
        pair = DependenceAnalysis(prog, {}).coupled_pairs[0]
        assert not banerjee_test(pair, {}).independent

    def test_figure2_not_disproved(self):
        pair = DependenceAnalysis(figure2_loop(20), {}).coupled_pairs[0]
        assert not banerjee_test(pair, {}).independent


class TestSoundness:
    """Neither test may declare independence when exact dependences exist."""

    def check_soundness(self, prog):
        analysis = DependenceAnalysis(prog, {})
        for dep in analysis.pair_dependences:
            if dep.is_empty() or not dep.pair.is_coupled():
                continue
            assert not gcd_test(dep.pair).independent
            assert not banerjee_test(dep.pair, {}).independent
            assert not combined_test(dep.pair, {}).independent

    def test_paper_examples(self):
        self.check_soundness(figure1_loop(10, 10))
        self.check_soundness(figure2_loop(20))

    @given(st.integers(0, 10**6))
    @settings(max_examples=15, deadline=None)
    def test_random_loops(self, seed):
        rng = random.Random(seed)
        spec = random_coupled_loop(rng, n1=5, n2=5)
        self.check_soundness(spec.program)
