"""Tests for repro.dependence.exact: exact dependences vs brute force."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dependence.analysis import DependenceAnalysis
from repro.dependence.exact import enumerate_domain, exact_pair_dependences, reference_addresses
from repro.ir.builder import aref, assign, loop, program
from repro.workloads.examples import example3_loop, figure1_loop, figure2_loop
from repro.workloads.synthetic import large_triangular_loop, random_coupled_loop
import random


def brute_force_dependences(prog, params):
    """All (i, j) pairs of different iterations touching the same element with a write."""
    contexts = {ctx.statement.label: ctx for ctx in prog.statement_contexts()}
    accesses = []  # (label, iteration, address, is_write)
    for label, iteration in prog.sequential_iterations(params):
        ctx = contexts[label]
        env = dict(zip(ctx.index_names, iteration))
        for ref in ctx.statement.writes:
            accesses.append((label, iteration, (ref.array,) + ref.evaluate(env), True))
        for ref in ctx.statement.reads:
            accesses.append((label, iteration, (ref.array,) + ref.evaluate(env), False))
    pairs = set()
    by_addr = {}
    for label, iteration, addr, is_write in accesses:
        by_addr.setdefault(addr, []).append((label, iteration, is_write))
    for addr, items in by_addr.items():
        for a in items:
            for b in items:
                if a[1] == b[1] and a[0] == b[0]:
                    continue
                if a[2] or b[2]:
                    pairs.add(((a[0], a[1]), (b[0], b[1])))
    return pairs


class TestEnumerateDomain:
    def test_rectangular(self):
        prog = figure1_loop(3, 4)
        ctx = prog.statement_contexts()[0]
        points = enumerate_domain(ctx, {})
        assert points.shape == (12, 2)

    def test_triangular(self):
        prog = example3_loop(5)
        ctx = prog.context_of("s1")
        points = enumerate_domain(ctx, {})
        assert all(1 <= i <= 5 and 1 <= j <= i and j <= k <= i for i, j, k in points.tolist())
        expected = sum((i - j + 1) for i in range(1, 6) for j in range(1, i + 1))
        assert len(points) == expected

    def test_parametric_binding(self):
        prog = figure1_loop()
        ctx = prog.statement_contexts()[0]
        points = enumerate_domain(ctx, {"N1": 2, "N2": 3}, prog.parameters)
        assert len(points) == 6


class TestReferenceAddresses:
    def test_matches_pointwise_evaluation(self):
        prog = figure1_loop(4, 4)
        ctx = prog.statement_contexts()[0]
        ref = ctx.statement.writes[0]
        points = enumerate_domain(ctx, {})
        addrs = reference_addresses(ref, ctx.index_names, points)
        for point, addr in zip(points.tolist(), addrs.tolist()):
            assert tuple(addr) == ref.evaluate(dict(zip(ctx.index_names, point)))


class TestExactDependences:
    def test_figure1_matches_brute_force(self):
        prog = figure1_loop(10, 10)
        analysis = DependenceAnalysis(prog, {})
        rel = analysis.iteration_dependences
        brute = brute_force_dependences(prog, {})
        brute_iter_pairs = set()
        for (l1, i1), (l2, i2) in brute:
            if i1 == i2:
                continue
            brute_iter_pairs.add((min(i1, i2), max(i1, i2)))
        assert set(rel.pairs) == brute_iter_pairs

    def test_figure1_distances_match_paper(self):
        prog = figure1_loop(10, 10)
        rel = DependenceAnalysis(prog, {}).iteration_dependences
        assert sorted(rel.distances()) == [(2, 2), (4, 4), (6, 6)]

    def test_figure2_solutions(self):
        prog = figure2_loop(20)
        rel = DependenceAnalysis(prog, {}).iteration_dependences
        for (i,), (j,) in rel.pairs:
            assert 2 * i == 21 - j or 2 * j == 21 - i

    def test_example3_no_dependence_at_small_n(self):
        # the write a(I-J, I+J) and read a(I+2K+5, 4K-J) cannot collide for N <= 8
        prog = example3_loop(8)
        analysis = DependenceAnalysis(prog, {})
        assert not analysis.has_dependences()

    def test_example3_dependences_at_larger_n(self):
        prog = example3_loop(40)
        analysis = DependenceAnalysis(prog, {})
        assert analysis.has_dependences()

    def test_self_pairs_excluded_by_default(self):
        body = assign("s", aref("a", "I"), [aref("a", "I")])
        prog = program("selfloop", loop("I", 1, 5, body), array_shapes={"a": (10,)})
        analysis = DependenceAnalysis(prog, {})
        assert not analysis.has_dependences()

    @given(st.integers(0, 10**6))
    @settings(max_examples=10, deadline=None)
    def test_random_loops_match_brute_force(self, seed):
        rng = random.Random(seed)
        spec = random_coupled_loop(rng, n1=5, n2=5)
        prog = spec.program
        rel = DependenceAnalysis(prog, {}).iteration_dependences
        brute = brute_force_dependences(prog, {})
        brute_iter_pairs = set()
        for (l1, i1), (l2, i2) in brute:
            if i1 == i2:
                continue
            brute_iter_pairs.add((min(i1, i2), max(i1, i2)))
        assert set(rel.pairs) == brute_iter_pairs


class TestSortJoinEngine:
    """The vectorised sort/merge join must match the reference hash join."""

    def pairs_of(self, prog):
        return DependenceAnalysis(prog, {}).reference_pairs

    def assert_engines_agree(self, prog, params=None):
        params = dict(params or {})
        for pair in DependenceAnalysis(prog, params).reference_pairs:
            hashed = exact_pair_dependences(
                pair, params, prog.parameters, engine="hash"
            )
            sorted_ = exact_pair_dependences(
                pair, params, prog.parameters, engine="sort"
            )
            assert sorted_ == hashed
            assert (sorted_.dim_in, sorted_.dim_out) == (hashed.dim_in, hashed.dim_out)

    def test_rectangular_domains(self):
        self.assert_engines_agree(figure1_loop(10, 10))
        self.assert_engines_agree(figure2_loop(20))

    def test_triangular_domains(self):
        # Non-rectangular (bounding box + filter) enumeration into the join.
        self.assert_engines_agree(large_triangular_loop(15))
        self.assert_engines_agree(example3_loop(40))

    def test_triangular_result_is_array_backed(self):
        prog = large_triangular_loop(15)
        rels = [
            exact_pair_dependences(pair, {}, engine="sort")
            for pair in self.pairs_of(prog)
        ]
        nonempty = [rel for rel in rels if len(rel)]
        assert nonempty
        for rel in nonempty:
            assert rel._pairs is None  # no tuple pairs were formed

    def test_empty_domain_pair(self):
        body = assign("s", aref("x", "I+1"), [aref("x", "I")])
        prog = program("empty", loop("I", 5, 4, body), array_shapes={"x": (10,)})
        for pair in self.pairs_of(prog):
            for engine in ("hash", "sort", "auto"):
                rel = exact_pair_dependences(pair, {}, engine=engine)
                assert rel.is_empty()

    def test_rank_zero_scalar_reference_pair(self):
        # A scalar (rank-0) accumulator: every iteration touches t, so the
        # write/write pair relates all distinct iteration pairs, both engines.
        body = assign("s", aref("t"), [aref("x", "I")])
        prog = program(
            "scalar", loop("I", 1, 4, body), array_shapes={"t": (1,), "x": (6,)}
        )
        pairs = [
            p
            for p in self.pairs_of(prog)
            if p.source_ref.array == "t" and p.target_ref.array == "t"
        ]
        assert pairs
        for pair in pairs:
            hashed = exact_pair_dependences(pair, {}, engine="hash")
            sorted_ = exact_pair_dependences(pair, {}, engine="sort")
            assert sorted_ == hashed
            assert len(hashed) == 4 * 4 - 4  # all ordered distinct pairs
            with_self = exact_pair_dependences(
                pair, {}, engine="sort", include_self=True
            )
            assert len(with_self) == 4 * 4

    def test_unknown_engine_rejected(self):
        pair = self.pairs_of(figure1_loop(4, 4))[0]
        with pytest.raises(ValueError):
            exact_pair_dependences(pair, {}, engine="simd")

    def test_analysis_engines_equivalent_end_to_end(self):
        for prog in (figure1_loop(10, 10), figure2_loop(20), large_triangular_loop(12)):
            set_rd = DependenceAnalysis(prog, {}, engine="set").iteration_dependences
            vec_rd = DependenceAnalysis(prog, {}, engine="vector").iteration_dependences
            auto_rd = DependenceAnalysis(prog, {}).iteration_dependences
            assert set_rd == vec_rd == auto_rd
