"""Tests for repro.dependence.analysis: the whole-program driver."""

import pytest

from repro.dependence.analysis import DependenceAnalysis
from repro.workloads.examples import (
    cholesky_loop,
    example2_loop,
    example3_loop,
    figure1_loop,
    figure2_loop,
)


class TestDriver:
    def test_unbound_parameters_rejected(self):
        with pytest.raises(ValueError):
            DependenceAnalysis(figure1_loop(), {})

    def test_figure1_summary(self):
        analysis = DependenceAnalysis(figure1_loop(10, 10), {})
        s = analysis.summary()
        assert s["n_direct_dependences"] == 18
        assert s["single_coupled_pair"] is True
        assert s["uniform"] is False

    def test_figure2_summary(self):
        analysis = DependenceAnalysis(figure2_loop(20), {})
        assert analysis.has_single_coupled_pair()
        assert len(analysis.iteration_dependences) == 9
        assert len(analysis.iteration_space_points) == 20

    def test_example2_single_pair(self):
        analysis = DependenceAnalysis(example2_loop(12), {})
        pair = analysis.single_coupled_pair()
        assert pair is not None and pair.is_square_full_rank()

    def test_example3_statement_level_facts(self):
        analysis = DependenceAnalysis(example3_loop(40), {})
        assert not analysis.has_single_coupled_pair() or analysis.has_dependences()
        # iteration-level combined relation is undefined for imperfect nests
        with pytest.raises(ValueError):
            _ = analysis.iteration_dependences

    def test_cholesky_has_multiple_coupled_pairs(self):
        prog = cholesky_loop(nmat=2, m=2, n=5, nrhs=1)
        analysis = DependenceAnalysis(prog, {})
        assert len(analysis.reference_pairs) > 1
        assert analysis.has_dependences()
        assert not analysis.has_single_coupled_pair()

    def test_pair_dependences_source_target_labels(self):
        analysis = DependenceAnalysis(example3_loop(40), {})
        labels = {
            (d.source_label, d.target_label)
            for d in analysis.nonempty_pair_dependences()
        }
        assert all({a, b} <= {"s1", "s2"} for a, b in labels)

    def test_caching_returns_same_object(self):
        analysis = DependenceAnalysis(figure1_loop(6, 6), {})
        assert analysis.iteration_dependences is analysis.iteration_dependences
        assert analysis.reference_pairs is analysis.reference_pairs
