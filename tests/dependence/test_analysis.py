"""Tests for repro.dependence.analysis: the whole-program driver."""

import pytest

from repro.dependence.analysis import DependenceAnalysis, ImperfectNestError
from repro.workloads.examples import (
    cholesky_loop,
    example2_loop,
    example3_loop,
    figure1_loop,
    figure2_loop,
)


class TestDriver:
    def test_unbound_parameters_rejected(self):
        with pytest.raises(ValueError):
            DependenceAnalysis(figure1_loop(), {})

    def test_figure1_summary(self):
        analysis = DependenceAnalysis(figure1_loop(10, 10), {})
        s = analysis.summary()
        assert s["n_direct_dependences"] == 18
        assert s["single_coupled_pair"] is True
        assert s["uniform"] is False

    def test_figure2_summary(self):
        analysis = DependenceAnalysis(figure2_loop(20), {})
        assert analysis.has_single_coupled_pair()
        assert len(analysis.iteration_dependences) == 9
        assert len(analysis.iteration_space_points) == 20

    def test_example2_single_pair(self):
        analysis = DependenceAnalysis(example2_loop(12), {})
        pair = analysis.single_coupled_pair()
        assert pair is not None and pair.is_square_full_rank()

    def test_example3_statement_level_facts(self):
        analysis = DependenceAnalysis(example3_loop(40), {})
        assert not analysis.has_single_coupled_pair() or analysis.has_dependences()
        # iteration-level combined relation is undefined for imperfect nests
        with pytest.raises(ValueError):
            _ = analysis.iteration_dependences

    def test_cholesky_has_multiple_coupled_pairs(self):
        prog = cholesky_loop(nmat=2, m=2, n=5, nrhs=1)
        analysis = DependenceAnalysis(prog, {})
        assert len(analysis.reference_pairs) > 1
        assert analysis.has_dependences()
        assert not analysis.has_single_coupled_pair()

    def test_pair_dependences_source_target_labels(self):
        analysis = DependenceAnalysis(example3_loop(40), {})
        labels = {
            (d.source_label, d.target_label)
            for d in analysis.nonempty_pair_dependences()
        }
        assert all({a, b} <= {"s1", "s2"} for a, b in labels)

    def test_caching_returns_same_object(self):
        analysis = DependenceAnalysis(figure1_loop(6, 6), {})
        assert analysis.iteration_dependences is analysis.iteration_dependences
        assert analysis.reference_pairs is analysis.reference_pairs


class TestSummaryErrorHandling:
    """summary() reports None for imperfect nests, re-raises genuine errors."""

    def test_imperfect_nest_reports_none_fields(self):
        analysis = DependenceAnalysis(example3_loop(40), {})
        with pytest.raises(ImperfectNestError):
            _ = analysis.iteration_dependences
        s = analysis.summary()
        assert s["n_direct_dependences"] is None
        assert s["uniform"] is None
        assert s["n_reference_pairs"] > 0

    def test_imperfect_nest_error_is_a_value_error(self):
        # Existing `except ValueError` callers must keep working.
        assert issubclass(ImperfectNestError, ValueError)

    def test_genuine_error_propagates(self, monkeypatch):
        import repro.dependence.analysis as analysis_module

        def boom(*args, **kwargs):
            raise ValueError("address table corrupted")

        monkeypatch.setattr(analysis_module, "exact_pair_dependences", boom)
        analysis = DependenceAnalysis(figure1_loop(6, 6), {})
        with pytest.raises(ValueError, match="address table corrupted"):
            analysis.summary()

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            DependenceAnalysis(figure1_loop(6, 6), {}, engine="gpu")


class TestEngineEquivalence:
    """engine='set' and engine='vector' must produce identical analyses."""

    @pytest.mark.parametrize(
        "prog",
        [figure1_loop(10, 10), figure2_loop(20), example2_loop(12)],
        ids=lambda p: p.name,
    )
    def test_summaries_identical(self, prog):
        set_an = DependenceAnalysis(prog, {}, engine="set")
        vec_an = DependenceAnalysis(prog, {}, engine="vector")
        assert set_an.summary() == vec_an.summary()
        assert set_an.iteration_dependences == vec_an.iteration_dependences
        assert set_an.is_uniform() == vec_an.is_uniform()

    def test_uniform_program_agrees(self):
        from repro.workloads.synthetic import large_uniform_loop

        prog = large_uniform_loop(12, 9)
        set_an = DependenceAnalysis(prog, {}, engine="set")
        vec_an = DependenceAnalysis(prog, {}, engine="vector")
        assert set_an.is_uniform() is True
        assert vec_an.is_uniform() is True
