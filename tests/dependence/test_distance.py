"""Tests for repro.dependence.distance: distances, directions, uniformity."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dependence.analysis import DependenceAnalysis
from repro.dependence.distance import (
    classify_pair,
    direction_vectors,
    distance_vectors,
    is_uniform_relation,
)
from repro.isl.relations import FiniteRelation
from repro.ir.builder import aref, assign, loop, program
from repro.workloads.examples import figure1_loop, figure2_loop
from repro.workloads.synthetic import random_coupled_loop


def uniform_2d(n=6):
    body = assign("s", aref("a", "I+1", "J+2"), [aref("a", "I", "J")])
    return program(
        "uniform", loop("I", 1, n, loop("J", 1, n, body)), array_shapes={"a": (20, 20)}
    )


class TestDistanceAndDirection:
    def test_figure1_distances(self):
        rel = DependenceAnalysis(figure1_loop(10, 10), {}).iteration_dependences
        assert distance_vectors(rel) == {(2, 2), (4, 4), (6, 6)}
        assert direction_vectors(rel) == {("<", "<")}

    def test_direction_vectors_mixed(self):
        rel = FiniteRelation.from_pairs([((1, 5), (3, 2)), ((1, 1), (1, 4))])
        assert direction_vectors(rel) == {("<", ">"), ("=", "<")}


class TestUniformity:
    def test_uniform_loop_is_uniform(self):
        prog = uniform_2d()
        analysis = DependenceAnalysis(prog, {})
        assert is_uniform_relation(
            analysis.iteration_dependences, analysis.iteration_space_points
        )

    def test_figure1_is_nonuniform(self):
        analysis = DependenceAnalysis(figure1_loop(10, 10), {})
        assert not analysis.is_uniform()

    def test_figure2_is_nonuniform(self):
        analysis = DependenceAnalysis(figure2_loop(20), {})
        assert not analysis.is_uniform()

    def test_empty_relation_is_uniform(self):
        assert is_uniform_relation(FiniteRelation(frozenset(), 2, 2), [(1, 1), (2, 2)])

    @given(st.integers(0, 10**6))
    @settings(max_examples=10, deadline=None)
    def test_matrix_classification_consistent_with_exact(self, seed):
        # A == B (forced uniform generation) must never be classified as
        # non-uniform by the exhaustive check.
        rng = random.Random(seed)
        spec = random_coupled_loop(rng, n1=5, n2=5, force_uniform=True)
        analysis = DependenceAnalysis(spec.program, {})
        assert analysis.is_uniform()


class TestClassifyPair:
    def test_figure1(self):
        pairs = DependenceAnalysis(figure1_loop(8, 8), {}).coupled_pairs
        pair = [p for p in pairs if str(p.source_ref) != str(p.target_ref)][0]
        c = classify_pair(pair)
        assert c.coupled
        assert not c.uniform_by_matrix
        assert c.square_full_rank
        assert c.non_uniform_candidate
        assert c.ranks == (2, 2)

    def test_uniform_pair(self):
        pair = DependenceAnalysis(uniform_2d(), {}).coupled_pairs[0]
        c = classify_pair(pair)
        assert c.uniform_by_matrix
        assert not c.non_uniform_candidate


class TestArrayUniformityCheck:
    """is_uniform_relation must answer identically for tuple and array spaces."""

    def both(self, relation, points):
        import numpy as np

        as_tuples = is_uniform_relation(relation, points)
        as_array = is_uniform_relation(
            relation, np.asarray(points, dtype=np.int64).reshape(len(points), -1)
        )
        assert as_tuples == as_array
        return as_tuples

    def test_uniform_relation(self):
        space = [(i, j) for i in range(4) for j in range(4)]
        rel = FiniteRelation.from_pairs(
            [((i, j), (i + 1, j + 1)) for i in range(3) for j in range(3)]
        )
        assert self.both(rel, space) is True

    def test_non_uniform_relation(self):
        space = [(i, j) for i in range(4) for j in range(4)]
        rel = FiniteRelation.from_pairs([((0, 0), (1, 1))])  # (2,2)->(3,3) missing
        assert self.both(rel, space) is False

    def test_out_of_space_endpoints_agree(self):
        # A pair entirely outside the space contributes its distance but no
        # in-space placement: both representations must say "not uniform"
        # when an in-space placement of that distance is missing.
        space = [(0, 0), (1, 1)]
        outside_only = FiniteRelation.from_pairs([((5, 5), (6, 6))])
        assert self.both(outside_only, space) is False
        covered = FiniteRelation.from_pairs([((5, 5), (6, 6)), ((0, 0), (1, 1))])
        assert self.both(covered, space) is True

    def test_hypothesis_style_random_agreement(self):
        import numpy as np

        rng = random.Random(7)
        space = [(i, j) for i in range(5) for j in range(5)]
        for _ in range(25):
            pairs = {
                (
                    (rng.randrange(6), rng.randrange(6)),
                    (rng.randrange(6), rng.randrange(6)),
                )
                for _ in range(rng.randrange(1, 8))
            }
            rel = FiniteRelation.from_pairs(pairs)
            self.both(rel, space)
