"""Tests for repro.dependence.distance: distances, directions, uniformity."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dependence.analysis import DependenceAnalysis
from repro.dependence.distance import (
    classify_pair,
    direction_vectors,
    distance_vectors,
    is_uniform_relation,
)
from repro.isl.relations import FiniteRelation
from repro.ir.builder import aref, assign, loop, program
from repro.workloads.examples import figure1_loop, figure2_loop
from repro.workloads.synthetic import random_coupled_loop


def uniform_2d(n=6):
    body = assign("s", aref("a", "I+1", "J+2"), [aref("a", "I", "J")])
    return program(
        "uniform", loop("I", 1, n, loop("J", 1, n, body)), array_shapes={"a": (20, 20)}
    )


class TestDistanceAndDirection:
    def test_figure1_distances(self):
        rel = DependenceAnalysis(figure1_loop(10, 10), {}).iteration_dependences
        assert distance_vectors(rel) == {(2, 2), (4, 4), (6, 6)}
        assert direction_vectors(rel) == {("<", "<")}

    def test_direction_vectors_mixed(self):
        rel = FiniteRelation.from_pairs([((1, 5), (3, 2)), ((1, 1), (1, 4))])
        assert direction_vectors(rel) == {("<", ">"), ("=", "<")}


class TestUniformity:
    def test_uniform_loop_is_uniform(self):
        prog = uniform_2d()
        analysis = DependenceAnalysis(prog, {})
        assert is_uniform_relation(
            analysis.iteration_dependences, analysis.iteration_space_points
        )

    def test_figure1_is_nonuniform(self):
        analysis = DependenceAnalysis(figure1_loop(10, 10), {})
        assert not analysis.is_uniform()

    def test_figure2_is_nonuniform(self):
        analysis = DependenceAnalysis(figure2_loop(20), {})
        assert not analysis.is_uniform()

    def test_empty_relation_is_uniform(self):
        assert is_uniform_relation(FiniteRelation(frozenset(), 2, 2), [(1, 1), (2, 2)])

    @given(st.integers(0, 10**6))
    @settings(max_examples=10, deadline=None)
    def test_matrix_classification_consistent_with_exact(self, seed):
        # A == B (forced uniform generation) must never be classified as
        # non-uniform by the exhaustive check.
        rng = random.Random(seed)
        spec = random_coupled_loop(rng, n1=5, n2=5, force_uniform=True)
        analysis = DependenceAnalysis(spec.program, {})
        assert analysis.is_uniform()


class TestClassifyPair:
    def test_figure1(self):
        pairs = DependenceAnalysis(figure1_loop(8, 8), {}).coupled_pairs
        pair = [p for p in pairs if str(p.source_ref) != str(p.target_ref)][0]
        c = classify_pair(pair)
        assert c.coupled
        assert not c.uniform_by_matrix
        assert c.square_full_rank
        assert c.non_uniform_candidate
        assert c.ranks == (2, 2)

    def test_uniform_pair(self):
        pair = DependenceAnalysis(uniform_2d(), {}).coupled_pairs[0]
        c = classify_pair(pair)
        assert c.uniform_by_matrix
        assert not c.non_uniform_candidate
