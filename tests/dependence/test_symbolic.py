"""Tests for repro.dependence.symbolic: the symbolic relation vs the exact one."""

import pytest

from repro.dependence.analysis import DependenceAnalysis
from repro.dependence.symbolic import (
    source_target_names,
    symbolic_dependence_relation,
    symbolic_pair_relation,
)
from repro.workloads.examples import example2_loop, example3_loop, figure1_loop, figure2_loop


class TestSymbolicRelation:
    def test_source_target_names(self):
        src, dst = source_target_names(("I1", "I2"))
        assert src == ("I1", "I2")
        assert dst == ("I1'", "I2'")

    def test_figure1_matches_exact(self):
        prog = figure1_loop(10, 10)
        exact = DependenceAnalysis(prog, {}).iteration_dependences
        symbolic = symbolic_dependence_relation(prog).enumerate_pairs()
        assert set(symbolic.pairs) == set(exact.pairs)

    def test_figure2_matches_exact(self):
        prog = figure2_loop(20)
        exact = DependenceAnalysis(prog, {}).iteration_dependences
        symbolic = symbolic_dependence_relation(prog).enumerate_pairs()
        assert set(symbolic.pairs) == set(exact.pairs)

    def test_example2_matches_exact(self):
        prog = example2_loop(12)
        exact = DependenceAnalysis(prog, {}).iteration_dependences
        symbolic = symbolic_dependence_relation(prog).enumerate_pairs()
        assert set(symbolic.pairs) == set(exact.pairs)

    def test_parametric_relation_binds(self):
        prog = figure1_loop()  # symbolic N1, N2
        rel = symbolic_dependence_relation(prog)
        pairs = rel.enumerate_pairs({"N1": 10, "N2": 10})
        exact = DependenceAnalysis(figure1_loop(10, 10), {}).iteration_dependences
        assert set(pairs.pairs) == set(exact.pairs)

    def test_orientation_is_forward(self):
        prog = figure1_loop(10, 10)
        rel = symbolic_dependence_relation(prog).enumerate_pairs()
        for src, dst in rel.pairs:
            assert src < dst

    def test_imperfect_nest_rejected(self):
        with pytest.raises(ValueError):
            symbolic_dependence_relation(example3_loop(10))

    def test_pair_relation_requires_same_index_space(self):
        prog = example3_loop(10)
        analysis = DependenceAnalysis(prog, {})
        cross = [
            p
            for p in analysis.reference_pairs
            if p.source_ctx.statement.label != p.target_ctx.statement.label
        ]
        assert cross
        with pytest.raises(ValueError):
            symbolic_pair_relation(cross[0])
