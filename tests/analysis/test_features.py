"""Tests for the program-feature layer (repro.analysis.features).

The features feed strategy selection, so the facts asserted here are the ones
the selectors rank on: nest shape, coupling, uniformity, the Lemma 1
single-coupled-pair gate, the wavefront estimate, and the bucket key the
calibrated table is indexed by — plus the fingerprint-keyed cache contract
(repeated planning of the same nest never re-extracts).
"""

import pytest

from repro.analysis.features import (
    WAVEFRONT_SAMPLE_CAP,
    ProgramFeatures,
    clear_feature_cache,
    feature_cache_stats,
    program_features,
)
from repro.workloads.corpus import lu_kernel, sor_kernel
from repro.workloads.examples import (
    cholesky_loop,
    example2_loop,
    example3_loop,
    figure1_loop,
    figure2_loop,
)
from repro.workloads.synthetic import large_triangular_loop, large_uniform_loop


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_feature_cache()
    yield
    clear_feature_cache()


def _two_shift_uniform_loop(n1, n2):
    """Like ``large_uniform_loop`` but with a second read ``x(I1, I2+1)``,
    giving two distinct uniform distances (1,1) and (1,0).  The closed-form
    O(1) feature path requires exactly one distinct distance, so this program
    exercises the enumerating wavefront estimator and its sampling cap."""
    from repro.ir.builder import aref, assign, loop, program

    body = assign(
        "s",
        aref("x", "I1+1", "I2+1"),
        [aref("x", "I1", "I2"), aref("x", "I1", "I2+1")],
    )
    return program(
        "two-shift-uniform",
        loop("I1", 1, n1, loop("I2", 1, n2, body)),
        array_shapes={"x": (n1 + 2, n2 + 2)},
    )


class TestExtraction:
    def test_figure1_features(self):
        f = program_features(figure1_loop(10, 10))
        assert f.program == "figure1"
        assert f.nest_depth == 2 and f.n_statements == 1
        assert f.perfect_nest and f.rectangular
        assert f.n_points == 100
        assert f.coupled_subscripts and f.single_coupled_pair
        assert f.uniform is False
        assert f.n_dependences > 0
        assert f.wavefront_levels is not None and not f.sampled
        assert f.bucket() == "perfect|1cp|coupled|nonuniform|rect|d2|dep"

    def test_figure2_is_depth1_nonuniform(self):
        f = program_features(figure2_loop(20))
        assert f.nest_depth == 1 and f.uniform is False
        assert f.bucket() == "perfect|1cp|separable|nonuniform|rect|d1|dep"

    def test_uniform_stencil(self):
        f = program_features(large_uniform_loop(12, 12))
        assert f.uniform is True
        assert f.wavefront_levels == 12  # one wavefront per diagonal
        assert f.wavefront_width == pytest.approx(12.0)

    def test_triangular_space_is_not_rectangular(self):
        f = program_features(large_triangular_loop(10))
        assert not f.rectangular
        assert f.n_points == 55

    def test_imperfect_nest_features(self):
        f = program_features(example3_loop(12))
        assert not f.perfect_nest
        assert f.uniform is None and f.wavefront_levels is None
        assert f.n_points == sum(
            1 for _ in example3_loop(12).sequential_iterations({})
        )

    def test_sor_is_multi_pair_uniform(self):
        f = program_features(sor_kernel(8))
        assert f.perfect_nest and f.uniform is True
        assert not f.single_coupled_pair  # several pairs carry dependences
        assert f.n_reference_pairs > 1

    def test_lu_is_imperfect_nonrectangular(self):
        f = program_features(lu_kernel(6))
        assert not f.perfect_nest and not f.rectangular
        assert f.nest_depth == 3

    def test_parametric_features_depend_on_params(self):
        prog = figure1_loop()  # symbolic N1/N2
        small = program_features(prog, {"N1": 6, "N2": 6})
        large = program_features(prog, {"N1": 10, "N2": 10})
        assert small.n_points == 36 and large.n_points == 100

    def test_dependence_density_and_dicts(self):
        f = program_features(figure2_loop(20))
        assert f.dependence_density == pytest.approx(f.n_dependences / 20)
        info = f.as_dict()
        assert info["bucket"] == f.bucket()
        assert isinstance(f.describe(), str) and "depth=1" in f.describe()


class TestWavefrontSampling:
    """Programs with *two* distinct uniform distances miss the closed-form
    gate (which requires exactly one), so they take the enumerating wavefront
    estimator and its sampling cap."""

    def test_large_space_is_sampled(self):
        # 60k points > cap: the estimate comes from the lexicographic prefix.
        f = program_features(_two_shift_uniform_loop(300, 200), cache=False)
        assert f.sampled
        assert f.wavefront_levels is not None
        # the true dataflow depth (chains stepping by (1,0)) is 300; the
        # extrapolated estimate must land within a factor of two
        assert 150 <= f.wavefront_levels <= 600

    def test_small_space_is_exact(self):
        f = program_features(large_uniform_loop(40, 40), cache=False)
        assert not f.sampled and f.wavefront_levels == 40

    def test_custom_sample_cap(self):
        f = program_features(
            _two_shift_uniform_loop(40, 40), sample_cap=100, cache=False
        )
        assert f.sampled


class TestClosedFormFeatures:
    """Symbolic-eligible nests (rectangular, exactly one uniform distance)
    get O(1)-in-N features: exact closed-form counts, never sampled, no
    point or pair enumeration."""

    def test_counts_match_enumeration_exactly(self):
        f = program_features(large_uniform_loop(12, 12), cache=False)
        assert f.n_points == 144
        assert f.n_dependences == 11 * 11
        assert f.wavefront_levels == 12 and not f.sampled
        assert f.uniform is True and f.single_coupled_pair

    def test_huge_space_is_closed_form(self):
        # 10⁸ points: enumeration is impossible, the closed form is exact.
        f = program_features(large_uniform_loop(10_000, 10_000), cache=False)
        assert f.n_points == 10**8
        assert f.n_dependences == 9_999**2
        assert f.wavefront_levels == 10_000 and not f.sampled
        assert f.wavefront_width == pytest.approx(10**8 / 10_000)

    def test_two_distinct_shifts_fall_back_to_enumeration(self):
        f = program_features(_two_shift_uniform_loop(12, 9), cache=False)
        assert f.uniform is True and not f.sampled
        # chains step by (1,0): exact depth is n1 = 12 levels
        assert f.wavefront_levels == 12


class TestFeatureCache:
    def test_cache_hits_on_refetch(self):
        program_features(figure1_loop(8, 8))
        stats = feature_cache_stats()
        assert stats["misses"] == 1 and stats["hits"] == 0
        program_features(figure1_loop(8, 8))  # fresh but equal program object
        stats = feature_cache_stats()
        assert stats["hits"] == 1 and stats["size"] == 1

    def test_params_key_separately(self):
        prog = figure1_loop()
        a = program_features(prog, {"N1": 6, "N2": 6})
        b = program_features(prog, {"N1": 8, "N2": 8})
        assert a is not b and feature_cache_stats()["size"] == 2

    def test_cache_false_bypasses(self):
        program_features(figure1_loop(8, 8), cache=False)
        assert feature_cache_stats() == {"size": 0, "hits": 0, "misses": 0}

    def test_plan_shares_the_cache(self):
        """A default plan() extracts features once; re-planning hits."""
        from repro.core.strategy import plan

        plan(cholesky_loop(nmat=1, m=2, n=4, nrhs=1), cache=False)
        first = feature_cache_stats()
        assert first["misses"] >= 1
        plan(cholesky_loop(nmat=1, m=2, n=4, nrhs=1), cache=False)
        again = feature_cache_stats()
        assert again["hits"] >= 1
        assert again["misses"] == first["misses"]

    def test_pinned_plan_skips_extraction(self):
        from repro.core.strategy import PlanConfig, plan

        plan(
            example2_loop(8),
            config=PlanConfig(strategies=("dataflow",)), cache=False,
        )
        assert feature_cache_stats() == {"size": 0, "hits": 0, "misses": 0}


class TestFeatureCacheThreadSafety:
    def test_concurrent_extraction_keeps_cache_coherent(self):
        """Many threads extracting features of a handful of programs must
        never corrupt the LRU; counters stay coherent and bounded."""
        import threading

        progs = [figure1_loop(6 + i, 6) for i in range(4)]
        errors = []

        def worker(worker_id):
            try:
                for i in range(25):
                    program_features(progs[(worker_id + i) % len(progs)])
            except Exception as exc:  # noqa: BLE001 - collected for assert
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(w,)) for w in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        stats = feature_cache_stats()
        assert stats["size"] <= len(progs)
        assert stats["hits"] + stats["misses"] == 6 * 25
