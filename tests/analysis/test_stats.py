"""Tests for repro.analysis.stats: the §1-style corpus statistics."""

from repro.analysis.stats import classify_loop, corpus_statistics
from repro.workloads.corpus import CorpusComposition, build_corpus
from repro.workloads.examples import figure1_loop, figure2_loop
from repro.ir.builder import aref, assign, loop, program


def uniform_loop():
    body = assign("s", aref("a", "I+1", "J"), [aref("a", "I", "J")])
    return program("u", loop("I", 1, 6, loop("J", 1, 6, body)), array_shapes={"a": (20, 20)})


class TestClassifyLoop:
    def test_figure1_is_coupled_nonuniform(self):
        c = classify_loop(figure1_loop(8, 8))
        assert c.has_coupled_pair
        assert c.has_dependences
        assert not c.uniform_exact
        assert c.non_uniform

    def test_figure2_is_nonuniform(self):
        # 1-D subscripts are not "coupled" in the multi-dimension sense, but the
        # dependences are still non-uniform — exactly the fig. 2 situation.
        c = classify_loop(figure2_loop(20))
        assert c.has_dependences and c.non_uniform
        assert not c.has_coupled_pair

    def test_uniform_loop(self):
        c = classify_loop(uniform_loop())
        assert c.has_dependences
        assert c.uniform_exact
        assert not c.non_uniform
        assert not c.has_coupled_pair

    def test_matrix_only_classification(self):
        c = classify_loop(figure1_loop(8, 8), exact=False)
        assert c.uniform_exact is None
        assert c.non_uniform  # falls back to the matrix-level answer


class TestCorpusStatistics:
    def test_measured_fractions_match_ground_truth(self):
        comp = CorpusComposition("t", 40, 0.6, 0.6)
        specs = build_corpus(comp, seed=123, n1=6, n2=6)
        stats, classifications = corpus_statistics(specs, exact=True)
        assert stats.total_loops == 40
        assert len(classifications) == 40
        # the classifier's coupled count equals the generator's label count
        generated_coupled = sum(1 for s in specs if s.coupled)
        assert stats.loops_with_coupled_subscripts == generated_coupled
        # soundness direction: loops generated with identical matrices (uniform
        # by construction) must never be classified as non-uniform.  (The
        # converse does not hold: differing matrices can still happen to
        # produce translation-invariant dependences inside small bounds.)
        for spec, cls in zip(specs, classifications):
            if spec.uniform:
                assert not cls.non_uniform, spec.program.name

    def test_fraction_properties(self):
        comp = CorpusComposition("t", 30, 0.5, 0.5)
        specs = build_corpus(comp, seed=7, n1=5, n2=5)
        stats, _ = corpus_statistics(specs, exact=False)
        d = stats.as_dict()
        assert 0.0 <= d["coupled_fraction"] <= 1.0
        assert 0.0 <= d["nonuniform_fraction"] <= d["coupled_fraction"] + 1e-9
        assert stats.nonuniform_given_coupled <= 1.0

    def test_empty_corpus(self):
        stats, classifications = corpus_statistics([], exact=False)
        assert stats.total_loops == 0
        assert stats.coupled_fraction == 0.0
        assert classifications == []
