"""Tests for repro.analysis.experiments: the per-figure experiment harness."""

import pytest

from repro.analysis.experiments import (
    run_example1_partition,
    run_example2_partition,
    run_example3_partition,
    run_example4_dataflow,
    run_figure1_dependences,
    run_figure2_chains,
    run_figure3_experiment,
    run_intro_statistics,
    run_theorem1_check,
)
from repro.analysis.report import format_dict, format_speedups, format_table


class TestPerExperimentFacts:
    def test_figure1_dependence_structure(self):
        r = run_figure1_dependences(10, 10)
        assert r["distances"] == [(2, 2), (4, 4), (6, 6)]
        assert r["direct_dependences"] == 18
        assert r["uniform"] is False
        assert r["single_coupled_pair"] is True

    def test_figure2_sets(self):
        r = run_figure2_chains(20)
        assert r["independent"] == [7, 12, 14, 16, 18, 20]
        assert r["initial"] == [1, 2, 3, 4, 5, 6]
        assert r["P2"] == []
        assert r["P3"] == [8, 9, 10, 11, 13, 15, 17, 19]
        assert (3, 9) in r["monotonic_pairs"] and (6, 9) in r["monotonic_pairs"]

    def test_example1_partition(self):
        r = run_example1_partition(20, 40)
        assert r["validated"] is True
        assert r["phases"] == 3
        assert r["det_T"] == 3.0
        assert r["longest_chain"] <= r["theorem1_bound"]

    def test_example2_single_intermediate(self):
        r = run_example2_partition(12)
        assert r["P2_points"] == [(2, 6)]
        assert r["validated"] is True

    def test_example3_empty_intermediate(self):
        r = run_example3_partition(40)
        assert r["P2"] == 0
        assert r["phases"] == 2
        assert r["validated"] is True

    def test_example4_dataflow_steps(self):
        r = run_example4_dataflow(nmat=1, m=4, n=12, nrhs=1)
        assert r["scheme"] == "dataflow"
        assert r["partitioning_steps"] > 10
        assert r["paper_steps"] == 238

    def test_theorem1(self):
        r = run_theorem1_check(sizes=((10, 10), (15, 25)))
        assert r["all_hold"] is True
        assert len(r["rows"]) == 2


class TestFigure3:
    def test_ex1_panel(self):
        r = run_figure3_experiment("ex1", {"N1": 40, "N2": 80}, validate=True)
        assert set(r["speedups"]) == {"REC", "PDM", "PL"}
        assert all(r["validated"].values())
        # REC is the overall winner on this panel (paper's headline claim)
        assert r["winner_at"][4] == "REC"
        # every scheme scales with the processor count
        for name, values in r["speedups"].items():
            assert values[-1] > values[0]

    def test_ex2_panel(self):
        r = run_figure3_experiment("ex2", {"N": 24})
        assert set(r["speedups"]) == {"REC", "UNIQUE"}
        assert r["winner_at"][4] == "REC"

    def test_ex3_panel(self):
        r = run_figure3_experiment("ex3", {"N": 30})
        assert set(r["speedups"]) == {"REC", "PAR", "DOACROSS"}
        assert r["winner_at"][4] == "REC"
        rec = r["speedups"]["REC"]
        doa = r["speedups"]["DOACROSS"]
        assert rec[-1] >= doa[-1]

    def test_ex4_panel(self):
        r = run_figure3_experiment("ex4", {"NMAT": 2, "M": 2, "N": 10, "NRHS": 1})
        assert set(r["speedups"]) == {"REC", "PDM"}
        assert len(r["speedups"]["REC"]) == 4

    def test_unknown_panel(self):
        with pytest.raises(KeyError):
            run_figure3_experiment("ex9")


class TestStatisticsAndReporting:
    def test_intro_statistics(self):
        r = run_intro_statistics(loops=20, seed=5)
        assert r["composition"]["loops"] == 20
        assert 0 <= r["measured"]["coupled_fraction"] <= 1
        assert abs(
            r["measured"]["coupled_fraction"] - r["generated"]["coupled_fraction"]
        ) < 1e-9
        assert r["paper_reference"]["pairs_with_coupled_subscripts"] == 0.45

    def test_format_table(self):
        text = format_table(["a", "b"], [[1, 2], [30, 40]])
        assert "a" in text and "30" in text

    def test_format_speedups(self):
        r = run_figure3_experiment("ex2", {"N": 16})
        text = format_speedups(r)
        assert "REC" in text and "p=4" in text

    def test_format_dict_nested(self):
        text = format_dict({"x": 1, "y": {"z": 2}})
        assert "x: 1" in text and "z: 2" in text
