"""Differential tests for the symbolic-plan compiled kernel.

The ``symbolic`` strategy plans without materialising the iteration space and
the ``compiled`` backend executes through a generated NumPy module, so the
correctness story cannot lean on the enumerated reference sets the other
schemes share.  Instead the kernel is pinned **bit-identical to
``execute_sequential``** over a Hypothesis stream of symbolic-eligible
programs (every dimensionality, distance, offset and semantics shape the
generator covers), and the source → ``compile_function`` → run round trip is
exercised on every generated kernel.

The fallback contract is pinned too: a schedule the kernel generator cannot
serve (wrong scheme, custom semantics, missing cache key) executes through
the serial interpreter with the reason recorded in ``RunResult.meta`` — the
``compiled`` backend never fails where ``serial`` would have succeeded.
"""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.codegen.python_source import (
    clear_kernel_cache,
    compile_function,
    ensure_symbolic_kernel,
    generate_symbolic_kernel_source,
    kernel_cache_stats,
    symbolic_kernel_reason,
)
from repro.core.strategy import PlanConfig, plan
from repro.ir.builder import aref, assign, loop, program
from repro.ir.semantics import compute_heavy_semantics, sum_semantics
from repro.runtime import execute, execute_sequential, make_store
from repro.workloads.examples import figure1_loop
from repro.workloads.synthetic import large_uniform_loop

SYMBOLIC = PlanConfig(strategies=("symbolic",))

_INDICES = ("I1", "I2", "I3")

#: The three vectorizable statement semantics (None = the order-sensitive
#: default); anything else must fall back to the serial interpreter.
_SEMANTICS = (None, sum_semantics, compute_heavy_semantics)


def _xor_semantics(arrays, env, read_values):
    """A custom (non-vectorizable) semantics: the kernel must decline it."""
    acc = 1
    for v in read_values:
        acc ^= int(v)
    return acc


@st.composite
def symbolic_programs(draw):
    """Random symbolic-eligible nests: a single statement over rectangular
    unit-stride bounds, rank-d identity-coefficient subscripts, and exactly
    one distinct nonzero uniform distance (drawn lex-positive, so it is a
    flow dependence).  An optional zero-distance read (same subscripts as the
    write) exercises the self-pair skip."""
    dim = draw(st.integers(1, 3))
    names = _INDICES[:dim]
    bounds = [draw(st.integers(3, 6)) for _ in range(dim)]

    # Lex-positive distance u with |u_k| <= 2: zeros before the first
    # nonzero component, which is drawn positive.
    first = draw(st.integers(0, dim - 1))
    u = [0] * dim
    u[first] = draw(st.integers(1, 2))
    for k in range(first + 1, dim):
        u[k] = draw(st.integers(-2, 2))

    # Write offsets in [2, 4] keep every subscript non-negative (|u_k| <= 2).
    offs = [draw(st.integers(2, 4)) for _ in range(dim)]

    def subscript(base, delta):
        return "+".join(filter(None, [base, str(delta)])) if delta else base

    write = aref("x", *(subscript(n, a) for n, a in zip(names, offs)))
    reads = [aref("x", *(subscript(n, a - d) for n, a, d in zip(names, offs, u)))]
    if draw(st.booleans()):  # zero-distance self read: skipped by the gate
        reads.append(aref("x", *(subscript(n, a) for n, a in zip(names, offs))))

    body = assign("s", write, reads, semantics=draw(st.sampled_from(_SEMANTICS)))
    nest = body
    for k in reversed(range(dim)):
        nest = loop(names[k], 1, bounds[k], nest)
    # subscripts reach bound + off + max(0, -u_k) <= bound + 4 + 2
    shape = tuple(b + 7 for b in bounds)
    return program("hypothesis-symbolic", nest, array_shapes={"x": shape})


class TestDifferential:
    @given(prog=symbolic_programs())
    def test_compiled_bit_identical_to_sequential(self, prog):
        p = plan(prog, config=SYMBOLIC, cache=False)
        assert p.strategy == "symbolic"
        ref = execute_sequential(prog, {})
        result = execute(prog, p.schedule, {}, backend="compiled")
        assert result.meta.get("kernel") is True, result.meta  # no fallback
        assert set(ref) == set(result.store)
        assert all(np.array_equal(ref[k], result.store[k]) for k in ref)
        assert result.instances_executed == p.schedule.total_work
        assert result.phases_executed == p.schedule.num_phases

    @given(prog=symbolic_programs())
    def test_kernel_source_round_trips_through_compile_function(self, prog):
        """source -> compile_function -> run reproduces the sequential store
        on every generated kernel shape (phase mix, dimensionality,
        semantics)."""
        p = plan(prog, config=SYMBOLIC, cache=False)
        source = generate_symbolic_kernel_source(prog, p.schedule)
        fn = compile_function(source, "run_kernel")
        store = make_store(prog)
        stats = fn(store)
        ref = execute_sequential(prog, {})
        assert all(np.array_equal(ref[k], store[k]) for k in ref)
        # one stats row per phase: (name, instances, elapsed)
        assert [row[0] for row in stats] == [ph.name for ph in p.schedule.phases]
        assert [row[1] for row in stats] == [ph.work for ph in p.schedule.phases]
        assert all(row[2] >= 0.0 for row in stats)


class TestFallback:
    def test_non_symbolic_schedule_falls_back_to_serial(self):
        prog = figure1_loop(8, 8)
        p = plan(prog, cache=False)
        assert p.strategy != "symbolic"
        result = execute(prog, p.schedule, {}, backend="compiled")
        assert result.backend == "compiled"
        assert result.meta["fallback"] == "serial"
        assert "not a symbolic plan" in result.meta["reason"]
        ref = execute_sequential(prog, {})
        assert all(np.array_equal(ref[k], result.store[k]) for k in ref)

    def test_custom_semantics_fall_back_to_serial(self):
        """Eligibility is syntactic, so the symbolic *plan* succeeds — but the
        kernel generator declines the un-vectorizable semantics and the
        backend runs the schedule through the interpreter instead."""
        body = assign(
            "s", aref("x", "I1+1", "I2+1"), [aref("x", "I1", "I2")],
            semantics=_xor_semantics,
        )
        prog = program(
            "custom-sem",
            loop("I1", 1, 6, loop("I2", 1, 5, body)),
            array_shapes={"x": (8, 7)},
        )
        p = plan(prog, config=SYMBOLIC, cache=False)
        assert p.strategy == "symbolic"
        result = execute(prog, p.schedule, {}, backend="compiled")
        assert result.meta["fallback"] == "serial"
        assert "semantics" in result.meta["reason"]
        ref = execute_sequential(prog, {})
        assert all(np.array_equal(ref[k], result.store[k]) for k in ref)

    def test_kernel_reason_names_the_scheme(self):
        prog = figure1_loop(6, 6)
        p = plan(prog, cache=False)
        reason = symbolic_kernel_reason(prog, p.schedule)
        assert reason is not None and p.schedule.meta.get("scheme", "") in reason

    def test_missing_kernel_key_raises(self):
        prog = large_uniform_loop(6, 5)
        p = plan(prog, config=SYMBOLIC, cache=False)
        stripped = dict(p.schedule.meta)
        stripped.pop("kernel_key", None)
        object.__setattr__(p.schedule, "meta", stripped)
        try:
            with pytest.raises(ValueError, match="kernel_key"):
                ensure_symbolic_kernel(prog, p.schedule)
        finally:
            object.__setattr__(
                p.schedule, "meta", {**stripped, "kernel_key": "restored"}
            )


class TestKernelCache:
    @pytest.fixture(autouse=True)
    def fresh_cache(self):
        clear_kernel_cache()
        yield
        clear_kernel_cache()

    def test_miss_then_hit_on_same_plan(self):
        prog = large_uniform_loop(6, 5)
        p = plan(prog, config=SYMBOLIC, cache=False)
        fn1, status1 = ensure_symbolic_kernel(prog, p.schedule)
        fn2, status2 = ensure_symbolic_kernel(prog, p.schedule)
        assert (status1, status2) == ("miss", "hit")
        assert fn1 is fn2
        assert kernel_cache_stats() == {"hits": 1, "misses": 1, "size": 1}

    def test_distinct_programs_get_distinct_kernels(self):
        a = large_uniform_loop(6, 5)
        b = large_uniform_loop(7, 4)
        pa = plan(a, config=SYMBOLIC, cache=False)
        pb = plan(b, config=SYMBOLIC, cache=False)
        fa, _ = ensure_symbolic_kernel(a, pa.schedule)
        fb, _ = ensure_symbolic_kernel(b, pb.schedule)
        assert fa is not fb
        assert kernel_cache_stats()["size"] == 2

    def test_backend_reports_cache_status(self):
        prog = large_uniform_loop(6, 5)
        p = plan(prog, config=SYMBOLIC, cache=False)
        first = execute(prog, p.schedule, {}, backend="compiled")
        again = execute(prog, p.schedule, {}, backend="compiled")
        assert first.meta["kernel_cache"] == "miss"
        assert again.meta["kernel_cache"] == "hit"

    def test_cache_is_lru_bounded(self, monkeypatch):
        """Regression: the kernel cache used to grow without limit — a
        memory leak in a long-lived server.  It is now an LRU with a cap."""
        from repro.codegen import python_source

        monkeypatch.setattr(python_source, "_KERNEL_CACHE_MAXSIZE", 2)
        progs = [large_uniform_loop(6 + i, 5) for i in range(3)]
        plans = [plan(p, config=SYMBOLIC, cache=False) for p in progs]
        kernels = [ensure_symbolic_kernel(p, pl.schedule)[0] for p, pl in zip(progs, plans)]
        assert kernel_cache_stats()["size"] == 2
        # oldest entry (progs[0]) was evicted: re-ensuring recompiles
        fn, status = ensure_symbolic_kernel(progs[0], plans[0].schedule)
        assert status == "miss"
        # newest entry is still warm
        fn2, status2 = ensure_symbolic_kernel(progs[2], plans[2].schedule)
        assert status2 == "hit" and fn2 is kernels[2]

    def test_cache_safe_under_concurrent_ensure(self):
        """Many threads compiling/hitting at once never corrupt the LRU."""
        import threading

        prog = large_uniform_loop(6, 5)
        p = plan(prog, config=SYMBOLIC, cache=False)
        fns, errors = [], []

        def worker():
            try:
                for _ in range(20):
                    fn, _ = ensure_symbolic_kernel(prog, p.schedule)
                    fns.append(fn)
            except Exception as exc:  # noqa: BLE001 - collected for assert
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        assert kernel_cache_stats()["size"] == 1
        # at most the initial compile race produces extra objects (last put
        # wins); once warm, everyone must be handed the one cached kernel
        assert len(set(map(id, fns))) <= len(threads)
        warm, status = ensure_symbolic_kernel(prog, p.schedule)
        assert status == "hit"
