"""Tests for repro.codegen: bounds, listings and executable generated code."""

import numpy as np
import pytest

from repro.codegen import (
    chain_subroutine,
    compile_function,
    doall_nest_listing,
    generate_chain_function,
    generate_schedule_runner,
    nest_bounds,
    rec_partition_listing,
    render_affine,
)
from repro.core import (
    AffineRecurrence,
    recurrence_chain_partition,
    symbolic_three_set_partition,
)
from repro.dependence import DependenceAnalysis, symbolic_dependence_relation
from repro.ir.semantics import DEFAULT_SEMANTICS
from repro.isl.affine import var
from repro.isl.convex import Constraint, ConvexSet
from repro.isl.enumerate_points import enumerate_convex
from repro.runtime import execute_sequential, make_store
from repro.workloads.examples import figure1_loop, figure2_loop


class TestBounds:
    def test_render_affine(self):
        assert render_affine(var("i") * 2 + 1) == "2*i+1"
        assert render_affine(var("i") - var("j")) in ("i-j", "-j+i")

    def test_box_bounds(self):
        cs = ConvexSet.from_box(["i", "j"], [(1, 10), (2, 8)])
        nb = nest_bounds(cs)
        assert nb.is_bounded()
        assert nb.levels[0].render_lower() == "1"
        assert nb.levels[0].render_upper() == "10"
        assert nb.levels[1].render_lower() == "2"

    def test_triangular_bounds(self):
        cs = ConvexSet.from_constraints(
            ["i", "j"],
            [
                Constraint.ge("i", 1),
                Constraint.le("i", 6),
                Constraint.ge("j", "i"),
                Constraint.le("j", 6),
            ],
        )
        nb = nest_bounds(cs)
        assert "i" in nb.levels[1].render_lower()

    def test_bounds_evaluate_to_exact_enumeration(self):
        cs = ConvexSet.from_constraints(
            ["i", "j"],
            [
                Constraint.ge("i", 0),
                Constraint.le(var("i") * 2, 9),
                Constraint.ge("j", "i"),
                Constraint.le("j", 5),
            ],
        )
        nb = nest_bounds(cs)
        generated = []
        lo0 = max(b.evaluate({}) for b in nb.levels[0].lowers)
        hi0 = min(b.evaluate({}) for b in nb.levels[0].uppers)
        for i in range(lo0, hi0 + 1):
            lo1 = max(b.evaluate({"i": i}) for b in nb.levels[1].lowers)
            hi1 = min(b.evaluate({"i": i}) for b in nb.levels[1].uppers)
            for j in range(lo1, hi1 + 1):
                if all(g.satisfied_by({"i": i, "j": j}) for g in nb.guards):
                    generated.append((i, j))
        assert generated == enumerate_convex(cs)


class TestListings:
    def test_doall_nest_listing(self):
        cs = ConvexSet.from_box(["i", "j"], [(1, 4), (1, 5)])
        lines = doall_nest_listing(cs, "s(i,j)")
        text = "\n".join(lines)
        assert sum(1 for l in lines if l.strip().startswith("DOALL")) == 2
        assert text.count("ENDDOALL") == 2
        assert "s(i,j)" in text

    def test_rec_partition_listing_structure(self):
        prog = figure1_loop(10, 10)
        sym = symbolic_dependence_relation(prog)
        partition = symbolic_three_set_partition(prog.iteration_space(), sym)
        rec = AffineRecurrence.from_pair(
            DependenceAnalysis(prog, {}).single_coupled_pair()
        )
        listing = rec_partition_listing(partition, rec, "s(I1,I2)", order=["I1", "I2"])
        assert "initial partition" in listing
        assert "final partition" in listing
        assert "SUBROUTINE chain" in listing
        assert "DO WHILE" in listing
        assert listing.count("DOALL") >= 2

    def test_chain_subroutine_contains_recurrence_update(self):
        prog = figure1_loop(10, 10)
        rec = AffineRecurrence.from_pair(DependenceAnalysis(prog, {}).single_coupled_pair())
        lines = chain_subroutine(rec, prog.iteration_space().bind_parameters({}), "s(i1,i2)")
        text = "\n".join(lines)
        assert "DO WHILE" in text
        assert "3*i1" in text  # the i1' = 3*i1 - 2 update


class TestGeneratedPython:
    def test_chain_function_matches_library(self):
        result = recurrence_chain_partition(figure1_loop(30, 40))
        source = generate_chain_function(result.recurrence, 2)
        fn = compile_function(source, "follow_chain")
        p2 = set(result.partition.p2)
        for chain in result.chains:
            walked = fn(chain.start, lambda p: p in p2)
            assert tuple(tuple(p) for p in walked) == chain.points

    def test_chain_function_1d(self):
        result = recurrence_chain_partition(figure2_loop(20))
        source = generate_chain_function(result.recurrence, 1)
        fn = compile_function(source, "follow_chain")
        # empty intermediate set: every walk stops immediately
        assert fn((6,), lambda p: False) == [(6,)]

    def test_compile_function_missing_name(self):
        with pytest.raises(ValueError):
            compile_function("x = 1\n", "nope")

    def test_schedule_runner_reproduces_sequential_result(self):
        prog = figure1_loop(8, 9)
        result = recurrence_chain_partition(prog)
        source = generate_schedule_runner(prog, result.schedule)
        runner = compile_function(source, "run_schedule")
        store = make_store(prog)
        semantics = {s.label: (s.semantics or DEFAULT_SEMANTICS) for s in prog.statements()}
        runner(store, semantics)
        reference = execute_sequential(prog, {})
        assert np.array_equal(reference["a"], store["a"])

    def test_schedule_runner_mentions_barriers(self):
        prog = figure2_loop(10)
        result = recurrence_chain_partition(prog)
        source = generate_schedule_runner(prog, result.schedule)
        assert source.count("barrier") == result.schedule.num_phases
