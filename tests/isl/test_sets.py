"""Tests for repro.isl.sets: unions of convex sets and their algebra."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isl.convex import Constraint, ConvexSet
from repro.isl.sets import UnionSet


def box(v, bounds):
    return ConvexSet.from_box(v, bounds)


def points_of(us, params=None):
    return set(us.enumerate(params))


class TestConstruction:
    def test_empty(self):
        assert UnionSet.empty(["i"]).is_empty()
        assert UnionSet.empty(["i"]).count() == 0

    def test_from_convex(self):
        u = UnionSet.from_convex(box(["i"], [(1, 3)]))
        assert u.count() == 3

    def test_from_members_drops_obviously_empty(self):
        u = UnionSet.from_members(
            ("i",), [box(["i"], [(1, 3)]), box(["i"], [(5, 2)]).simplified()]
        )
        # the empty box may or may not be syntactically contradictory; count is 3 anyway
        assert u.count() == 3

    def test_incompatible_spaces_rejected(self):
        a = UnionSet.from_convex(box(["i"], [(1, 2)]))
        b = UnionSet.from_convex(box(["j"], [(1, 2)]))
        try:
            a.union(b)
            assert False, "expected ValueError"
        except ValueError:
            pass


class TestAlgebra:
    def test_union_counts(self):
        a = UnionSet.from_convex(box(["i"], [(1, 3)]))
        b = UnionSet.from_convex(box(["i"], [(3, 5)]))
        assert a.union(b).count() == 5  # overlap at 3 counted once

    def test_intersection(self):
        a = UnionSet.from_convex(box(["i", "j"], [(1, 5), (1, 5)]))
        b = UnionSet.from_convex(box(["i", "j"], [(3, 8), (0, 2)]))
        inter = a.intersect(b)
        assert points_of(inter) == {(i, j) for i in range(3, 6) for j in range(1, 3)}

    def test_subtract_box(self):
        a = UnionSet.from_convex(box(["i", "j"], [(1, 4), (1, 4)]))
        b = UnionSet.from_convex(box(["i", "j"], [(2, 3), (2, 3)]))
        diff = a.subtract(b)
        expected = {
            (i, j)
            for i in range(1, 5)
            for j in range(1, 5)
            if not (2 <= i <= 3 and 2 <= j <= 3)
        }
        assert points_of(diff) == expected

    def test_subtract_produces_disjoint_members(self):
        a = UnionSet.from_convex(box(["i", "j"], [(1, 6), (1, 6)]))
        b = UnionSet.from_convex(box(["i", "j"], [(2, 4), (3, 5)]))
        diff = a.subtract(b)
        seen = {}
        for m in diff.members:
            from repro.isl.enumerate_points import enumerate_convex

            for p in enumerate_convex(m):
                assert p not in seen, f"point {p} appears in two members"
                seen[p] = True

    def test_subtract_everything(self):
        a = UnionSet.from_convex(box(["i"], [(1, 5)]))
        assert a.subtract(a).count() == 0

    def test_subtract_universe_member(self):
        a = UnionSet.from_convex(box(["i"], [(1, 5)]))
        universe = UnionSet.universe(["i"])
        assert a.subtract(universe).count() == 0

    def test_intersect_convex(self):
        a = UnionSet.from_convex(box(["i"], [(1, 10)]))
        out = a.intersect_convex(box(["i"], [(5, 20)]))
        assert points_of(out) == {(i,) for i in range(5, 11)}

    @given(
        st.tuples(st.integers(0, 5), st.integers(0, 5)),
        st.tuples(st.integers(0, 5), st.integers(0, 5)),
        st.tuples(st.integers(0, 5), st.integers(0, 5)),
        st.tuples(st.integers(0, 5), st.integers(0, 5)),
    )
    @settings(max_examples=30, deadline=None)
    def test_set_algebra_matches_python_sets(self, ai, aj, bi, bj):
        abox = [(min(ai), max(ai)), (min(aj), max(aj))]
        bbox = [(min(bi), max(bi)), (min(bj), max(bj))]
        A = UnionSet.from_convex(box(["i", "j"], abox))
        B = UnionSet.from_convex(box(["i", "j"], bbox))
        pa, pb = points_of(A), points_of(B)
        assert points_of(A.union(B)) == pa | pb
        assert points_of(A.intersect(B)) == pa & pb
        assert points_of(A.subtract(B)) == pa - pb


class TestQueries:
    def test_contains(self):
        u = UnionSet.from_convex(box(["i"], [(1, 3)])).union(
            UnionSet.from_convex(box(["i"], [(7, 9)]))
        )
        assert u.contains((2,))
        assert u.contains((8,))
        assert not u.contains((5,))

    def test_sample_point(self):
        u = UnionSet.from_convex(box(["i"], [(5, 3)])).union(
            UnionSet.from_convex(box(["i"], [(4, 4)]))
        )
        assert u.sample_point() == (4,)

    def test_bind_parameters(self):
        cs = ConvexSet.from_constraints(
            ["i"], [Constraint.ge("i", 1), Constraint.le("i", "N")], parameters=["N"]
        )
        u = UnionSet(("i",), (cs,), ("N",))
        assert u.bind_parameters({"N": 4}).count() == 4

    def test_rename_variables(self):
        u = UnionSet.from_convex(box(["i"], [(1, 2)])).rename_variables({"i": "x"})
        assert u.variables == ("x",)
        assert u.count() == 2

    def test_coalesced_removes_integer_empty_members(self):
        from repro.isl.affine import var

        empty_int = ConvexSet.from_constraints(
            ["i"], [Constraint.ge(var("i") * 2, 1), Constraint.le(var("i") * 2, 1)]
        )
        u = UnionSet(("i",), (box(["i"], [(1, 2)]), empty_int))
        assert len(u.coalesced().members) == 1
