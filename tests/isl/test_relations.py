"""Tests for repro.isl.relations: finite and symbolic relations."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isl.affine import AffineExpr, var
from repro.isl.convex import Constraint, ConvexSet
from repro.isl.lexorder import lex_lt
from repro.isl.relations import (
    BULK_SIZE_THRESHOLD,
    ConvexRelation,
    FiniteRelation,
    PointCodec,
    SuccessorIndex,
    UnionRelation,
    in_sorted,
)
from repro.isl.sets import UnionSet


def rel(pairs):
    return FiniteRelation.from_pairs(pairs)


class TestFiniteRelationBasics:
    def test_domain_range(self):
        r = rel([((1,), (2,)), ((1,), (3,)), ((4,), (5,))])
        assert r.domain() == {(1,), (4,)}
        assert r.range() == {(2,), (3,), (5,)}
        assert r.points() == {(1,), (2,), (3,), (4,), (5,)}

    def test_contains_len_iter(self):
        r = rel([((1,), (2,))])
        assert ((1,), (2,)) in r
        assert len(r) == 1
        assert list(r) == [((1,), (2,))]

    def test_inverse(self):
        r = rel([((1, 2), (3, 4))])
        assert r.inverse().pairs == frozenset({((3, 4), (1, 2))})

    def test_union(self):
        a = rel([((1,), (2,))])
        b = rel([((2,), (3,))])
        assert len(a.union(b)) == 2

    def test_restrict(self):
        r = rel([((1,), (2,)), ((3,), (4,))])
        assert len(r.restrict(domain={(1,)})) == 1
        assert len(r.restrict(rng={(4,)})) == 1
        assert len(r.restrict(domain={(1,)}, rng={(4,)})) == 0

    def test_successors_predecessors(self):
        r = rel([((1,), (2,)), ((1,), (3,)), ((2,), (3,))])
        assert r.successors((1,)) == [(2,), (3,)]
        assert r.predecessors((3,)) == [(1,), (2,)]
        assert r.successor_map()[(1,)] == [(2,), (3,)]
        assert r.predecessor_map()[(3,)] == [(1,), (2,)]

    def test_compose(self):
        a = rel([((1,), (2,))])
        b = rel([((2,), (5,)), ((2,), (6,))])
        assert a.compose(b).pairs == frozenset({((1,), (5,)), ((1,), (6,))})

    def test_transitive_closure(self):
        r = rel([((1,), (2,)), ((2,), (3,)), ((3,), (4,))])
        closure = r.transitive_closure()
        assert ((1,), (4,)) in closure
        assert ((1,), (3,)) in closure
        assert len(closure) == 6

    def test_distances(self):
        r = rel([((1, 1), (3, 3)), ((2, 2), (6, 6))])
        assert r.distances() == {(2, 2), (4, 4)}


class TestOrientation:
    def test_forward_backward_split(self):
        r = rel([((1,), (5,)), ((5,), (2,)), ((3,), (3,))])
        fwd = r.lexicographically_forward()
        back = r.lexicographically_backward()
        assert fwd.pairs == frozenset({((1,), (5,))})
        assert back.pairs == frozenset({((5,), (2,))})

    def test_oriented_forward_drops_self_and_flips(self):
        r = rel([((5,), (2,)), ((3,), (3,)), ((1,), (4,))])
        oriented = r.oriented_forward()
        assert oriented.pairs == frozenset({((2,), (5,)), ((1,), (4,))})

    @given(
        st.lists(
            st.tuples(st.integers(0, 5), st.integers(0, 5)), min_size=1, max_size=15
        )
    )
    @settings(max_examples=40)
    def test_oriented_forward_always_forward(self, raw):
        r = rel([((a,), (b,)) for a, b in raw])
        for src, dst in r.oriented_forward().pairs:
            assert src < dst


class TestPointCodec:
    def test_encode_decode_round_trip(self):
        points = np.array([[1, 5], [3, -2], [0, 0], [7, 4]], dtype=np.int64)
        codec = PointCodec.for_arrays(points)
        keys = codec.encode(points)
        assert np.array_equal(codec.decode(keys), points)
        assert len(set(keys.tolist())) == 4

    def test_key_order_is_lexicographic(self):
        points = np.array(
            [[2, 1], [1, 9], [1, 2], [2, 0], [0, 5]], dtype=np.int64
        )
        codec = PointCodec.for_arrays(points)
        keys = codec.encode(points)
        by_key = [tuple(p) for p in points[np.argsort(keys)].tolist()]
        assert by_key == sorted(tuple(p) for p in points.tolist())

    def test_contains(self):
        codec = PointCodec.for_arrays(np.array([[0, 0], [3, 3]], dtype=np.int64))
        mask = codec.contains(np.array([[1, 1], [4, 0], [-1, 2]], dtype=np.int64))
        assert mask.tolist() == [True, False, False]

    def test_overflow_raises(self):
        huge = np.array([[0, 0], [2**40, 2**40]], dtype=np.int64)
        with pytest.raises(ValueError):
            PointCodec.for_arrays(huge)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            PointCodec.for_arrays(np.zeros((0, 2), dtype=np.int64))

    def test_in_sorted(self):
        sorted_keys = np.array([2, 5, 9], dtype=np.int64)
        keys = np.array([1, 2, 5, 6, 9, 10], dtype=np.int64)
        assert in_sorted(keys, sorted_keys).tolist() == [
            False, True, True, False, True, False,
        ]
        assert not in_sorted(keys, np.zeros(0, dtype=np.int64)).any()


class TestArrayBackedRelation:
    def make(self):
        return rel(
            [((1, 1), (2, 3)), ((2, 3), (4, 4)), ((1, 2), (2, 3)), ((5, 0), (6, 1))]
        )

    def test_as_arrays_round_trip(self):
        r = self.make()
        src, dst = r.as_arrays()
        assert src.shape == (4, 2) and dst.shape == (4, 2)
        assert FiniteRelation.from_arrays(src, dst) == r
        # cached: the same objects come back
        assert r.as_arrays()[0] is src

    def test_as_arrays_empty(self):
        r = FiniteRelation(frozenset(), 2, 2)
        src, dst = r.as_arrays()
        assert src.shape == (0, 2) and dst.shape == (0, 2)

    def test_bulk_dom_ran_match_set_ops(self):
        r = self.make()
        codec = r.codec()
        dom_pts = {tuple(p) for p in codec.decode(r.bulk_dom(codec)).tolist()}
        ran_pts = {tuple(p) for p in codec.decode(r.bulk_ran(codec)).tolist()}
        assert dom_pts == r.domain()
        assert ran_pts == r.range()

    def test_bulk_restrict_matches_set_restrict(self):
        r = self.make()
        domain = {(1, 1), (1, 2)}
        rng = {(2, 3)}
        codec = r.codec(np.array(sorted(domain | rng), dtype=np.int64))
        dom_keys = np.unique(codec.encode(np.array(sorted(domain), dtype=np.int64)))
        rng_keys = np.unique(codec.encode(np.array(sorted(rng), dtype=np.int64)))
        assert r.bulk_restrict(codec, dom_keys, rng_keys) == r.restrict(domain, rng)
        assert r.bulk_restrict(codec, dom_keys) == r.restrict(domain=domain)
        # no-op restriction returns self
        all_keys = np.unique(
            np.concatenate([codec.encode(a) for a in r.as_arrays()])
        )
        assert r.bulk_restrict(codec, all_keys, all_keys) is r

    def test_successor_index_matches_successors(self):
        r = self.make()
        index = SuccessorIndex.from_relation(r)
        for point in sorted(r.points()):
            assert index.successors(point) == r.successors(point)

    def test_successor_index_out_of_box_point(self):
        r = self.make()
        index = SuccessorIndex.from_relation(r)
        assert index.successors((100, 100)) == []

    def test_oriented_forward_bulk_matches_scalar(self):
        n = BULK_SIZE_THRESHOLD + 500
        raw = [
            ((k % 67, (k * 13) % 71), ((k * 7) % 67, (k * 3) % 71))
            for k in range(n)
        ]
        r = rel(raw)
        assert len(r) >= BULK_SIZE_THRESHOLD  # the bulk branch actually runs
        expected = set()
        for a, b in r.pairs:
            if a == b:
                continue
            expected.add((a, b) if lex_lt(a, b) else (b, a))
        assert r.oriented_forward().pairs == frozenset(expected)


class TestLazyRelation:
    """from_arrays defers the frozenset; both representations are equivalent."""

    def arrays(self):
        src = np.array([[1, 1], [2, 3], [1, 2], [5, 0], [1, 1]], dtype=np.int64)
        dst = np.array([[2, 3], [4, 4], [2, 3], [6, 1], [2, 3]], dtype=np.int64)
        return src, dst  # contains one duplicate pair

    def test_pairs_deferred_until_asked(self):
        r = FiniteRelation.from_arrays(*self.arrays())
        assert r._pairs is None  # not materialised by construction
        assert len(r) == 4  # length known without materialising (deduplicated)
        assert not r.is_empty()
        assert r._pairs is None
        assert ((1, 1), (2, 3)) in r  # set-path access materialises
        assert r._pairs is not None

    def test_equal_to_set_built_relation(self):
        src, dst = self.arrays()
        lazy = FiniteRelation.from_arrays(src, dst)
        eager = FiniteRelation.from_pairs(
            list(zip(map(tuple, src.tolist()), map(tuple, dst.tolist())))
        )
        assert lazy == eager
        assert eager == lazy
        assert hash(lazy) == hash(eager)
        assert list(lazy) == list(eager)

    def test_array_built_relations_compare_without_tuples(self):
        a = FiniteRelation.from_arrays(*self.arrays())
        b = FiniteRelation.from_arrays(*self.arrays())
        assert a == b
        assert a._pairs is None and b._pairs is None  # compared on arrays

    def test_canonical_array_order_matches_sorted_pairs(self):
        r = FiniteRelation.from_arrays(*self.arrays())
        src, dst = r.as_arrays()
        expected = sorted(r.pairs)
        assert [tuple(p) for p in src.tolist()] == [a for a, _ in expected]
        assert [tuple(p) for p in dst.tolist()] == [b for _, b in expected]

    def test_union_on_arrays_matches_set_union(self):
        r1 = FiniteRelation.from_arrays(*self.arrays())
        r2 = FiniteRelation.from_pairs([((9, 9), (10, 10)), ((1, 1), (2, 3))])
        merged = r1.union(r2)
        assert merged.pairs == r1.pairs | r2.pairs
        empty = FiniteRelation(frozenset(), 2, 2)
        assert r1.union(empty) == r1
        assert empty.union(r1) == r1

    def test_oriented_forward_stays_on_arrays(self):
        src = np.array([[3, 3], [1, 1], [2, 2]], dtype=np.int64)
        dst = np.array([[1, 1], [1, 1], [4, 4]], dtype=np.int64)
        r = FiniteRelation.from_arrays(src, dst)
        fwd = r.oriented_forward()
        assert fwd._pairs is None  # array in, array out
        assert fwd.pairs == frozenset({((1, 1), (3, 3)), ((2, 2), (4, 4))})

    def test_distances_on_arrays(self):
        r = FiniteRelation.from_arrays(*self.arrays())
        assert r.distances() == {(1, 2), (2, 1), (1, 1)}

    def test_rank_zero_arrays(self):
        src = np.zeros((3, 0), dtype=np.int64)
        dst = np.zeros((3, 0), dtype=np.int64)
        r = FiniteRelation.from_arrays(src, dst)
        assert r.pairs == frozenset({((), ())})
        assert (r.dim_in, r.dim_out) == (0, 0)

    def test_heterogeneous_dims(self):
        src = np.array([[1], [2]], dtype=np.int64)
        dst = np.array([[5, 6], [7, 8]], dtype=np.int64)
        r = FiniteRelation.from_arrays(src, dst)
        assert r._pairs is None
        assert r.pairs == frozenset({((1,), (5, 6)), ((2,), (7, 8))})
        assert r.inverse().pairs == frozenset({((5, 6), (1,)), ((7, 8), (2,))})


class TestConvexRelation:
    def make_fig2_relation(self):
        # { i -> j : 2i = 21 - j, 1 <= i,j <= 20 }
        cons = [
            Constraint.eq(var("i") * 2 + var("j"), 21),
            Constraint.ge("i", 1),
            Constraint.le("i", 20),
            Constraint.ge("j", 1),
            Constraint.le("j", 20),
        ]
        return ConvexRelation.from_constraints(["i"], ["j"], cons)

    def test_contains_pair(self):
        r = self.make_fig2_relation()
        assert r.contains_pair((6,), (9,))
        assert not r.contains_pair((6,), (10,))

    def test_domain_range_projection_cover(self):
        r = self.make_fig2_relation()
        dom = r.domain()
        # every i with an integer partner 21-2i in 1..20 must be in dom
        for i in range(1, 11):
            assert dom.contains((i,))

    def test_inverse(self):
        r = self.make_fig2_relation()
        assert r.inverse().contains_pair((9,), (6,))

    def test_intersect_domain_range(self):
        r = self.make_fig2_relation()
        restricted = r.intersect_domain(ConvexSet.from_box(["i"], [(1, 3)]))
        assert restricted.contains_pair((3,), (15,))
        assert not restricted.contains_pair((6,), (9,))
        restricted2 = r.intersect_range(ConvexSet.from_box(["j"], [(1, 10)]))
        assert restricted2.contains_pair((6,), (9,))
        assert not restricted2.contains_pair((3,), (15,))

    def test_is_empty(self):
        cons = [Constraint.eq(var("i"), var("j")), Constraint.ge("i", 5), Constraint.le("j", 3)]
        r = ConvexRelation.from_constraints(["i"], ["j"], cons)
        assert r.is_empty()


class TestUnionRelation:
    def make_union(self):
        piece1 = ConvexRelation.from_constraints(
            ["i"], ["j"], [Constraint.eq(var("j"), var("i") + 1), Constraint.ge("i", 1), Constraint.le("i", 4)]
        )
        piece2 = ConvexRelation.from_constraints(
            ["i"], ["j"], [Constraint.eq(var("j"), var("i") + 10), Constraint.ge("i", 1), Constraint.le("i", 2)]
        )
        return UnionRelation.from_pieces([piece1, piece2])

    def test_enumerate_pairs(self):
        fr = self.make_union().enumerate_pairs()
        assert ((1,), (2,)) in fr
        assert ((1,), (11,)) in fr
        assert len(fr) == 6

    def test_domain_range(self):
        u = self.make_union()
        dom = u.domain()
        assert dom.contains((1,)) and dom.contains((4,))
        ran = u.range()
        assert ran.contains((2,)) and ran.contains((12,))

    def test_inverse_and_contains(self):
        u = self.make_union()
        assert u.contains_pair((1,), (11,))
        assert u.inverse().contains_pair((11,), (1,))

    def test_empty_relation(self):
        e = UnionRelation.empty(["i"], ["j"])
        assert e.is_empty()
        assert len(e.enumerate_pairs()) == 0

    def test_mixed_spaces_rejected(self):
        a = ConvexRelation.from_constraints(["i"], ["j"], [])
        b = ConvexRelation.from_constraints(["x"], ["y"], [])
        with pytest.raises(ValueError):
            UnionRelation.from_pieces([a, b])

    def test_intersect_domain(self):
        u = self.make_union()
        restricted = u.intersect_domain(UnionSet.from_convex(ConvexSet.from_box(["i"], [(1, 1)])))
        fr = restricted.enumerate_pairs()
        assert set(fr.domain()) == {(1,)}
