"""Tests for repro.isl.lexorder: lexicographic comparisons and constraints."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isl.lexorder import (
    is_lex_positive,
    lex_compare,
    lex_le,
    lex_le_constraints,
    lex_lt,
    lex_lt_constraints,
    lex_positive_constraints,
)

vectors = st.lists(st.integers(-5, 5), min_size=3, max_size=3).map(tuple)


class TestTupleComparisons:
    def test_basic(self):
        assert lex_lt((1, 5), (2, 0))
        assert lex_lt((1, 5), (1, 6))
        assert not lex_lt((1, 5), (1, 5))
        assert lex_le((1, 5), (1, 5))
        assert lex_compare((2, 0), (1, 9)) == 1

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            lex_lt((1,), (1, 2))

    def test_is_lex_positive(self):
        assert is_lex_positive((0, 0, 1))
        assert is_lex_positive((2, -5, 0))
        assert not is_lex_positive((0, 0, 0))
        assert not is_lex_positive((0, -1, 5))

    @given(vectors, vectors)
    @settings(max_examples=60)
    def test_matches_python_tuple_order(self, a, b):
        assert lex_lt(a, b) == (a < b)
        assert lex_le(a, b) == (a <= b)
        assert lex_compare(a, b) == ((a > b) - (a < b))

    @given(vectors, vectors)
    @settings(max_examples=60)
    def test_trichotomy(self, a, b):
        assert (lex_lt(a, b) + lex_lt(b, a) + (a == b)) == 1


def satisfies_some_disjunct(disjuncts, assignment):
    return any(all(c.satisfied_by(assignment) for c in conj) for conj in disjuncts)


class TestConstraintEncodings:
    @given(vectors, vectors)
    @settings(max_examples=60, deadline=None)
    def test_lt_constraints_match_tuple_order(self, a, b):
        left = ["a0", "a1", "a2"]
        right = ["b0", "b1", "b2"]
        disjuncts = lex_lt_constraints(left, right)
        env = {**{f"a{k}": a[k] for k in range(3)}, **{f"b{k}": b[k] for k in range(3)}}
        assert satisfies_some_disjunct(disjuncts, env) == (a < b)

    @given(vectors, vectors)
    @settings(max_examples=60, deadline=None)
    def test_le_constraints_match_tuple_order(self, a, b):
        left = ["a0", "a1", "a2"]
        right = ["b0", "b1", "b2"]
        disjuncts = lex_le_constraints(left, right)
        env = {**{f"a{k}": a[k] for k in range(3)}, **{f"b{k}": b[k] for k in range(3)}}
        assert satisfies_some_disjunct(disjuncts, env) == (a <= b)

    @given(vectors)
    @settings(max_examples=60, deadline=None)
    def test_positive_constraints_match_predicate(self, d):
        names = ["d0", "d1", "d2"]
        disjuncts = lex_positive_constraints(names)
        env = {f"d{k}": d[k] for k in range(3)}
        assert satisfies_some_disjunct(disjuncts, env) == is_lex_positive(d)

    def test_number_of_disjuncts(self):
        assert len(lex_lt_constraints(["a"], ["b"])) == 1
        assert len(lex_lt_constraints(["a", "c"], ["b", "d"])) == 2
        assert len(lex_le_constraints(["a", "c"], ["b", "d"])) == 3

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            lex_lt_constraints(["a"], ["b", "c"])
