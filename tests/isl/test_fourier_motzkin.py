"""Tests for repro.isl.fourier_motzkin: projection vs brute-force enumeration."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isl.affine import var
from repro.isl.convex import Constraint, ConvexSet
from repro.isl.enumerate_points import enumerate_convex
from repro.isl.fourier_motzkin import eliminate_variable, project_onto, project_out


def brute_projection(points, keep_indices):
    return sorted({tuple(p[k] for k in keep_indices) for p in points})


class TestElimination:
    def test_substitution_through_equality(self):
        cons = [
            Constraint.eq(var("j"), var("i") + 2),
            Constraint.ge(var("j"), 5),
        ]
        out = eliminate_variable(cons, "j")
        # j = i + 2 and j >= 5  =>  i >= 3
        cs = ConvexSet(("i",), tuple(out))
        assert cs.contains((3,))
        assert not cs.contains((2,))

    def test_lower_upper_combination(self):
        cons = [
            Constraint.ge(var("x"), var("a")),       # x >= a
            Constraint.le(var("x"), var("b")),       # x <= b
        ]
        out = eliminate_variable(cons, "x")
        cs = ConvexSet(("a", "b"), tuple(out))
        assert cs.contains((2, 5))
        assert not cs.contains((5, 2))

    def test_contradiction_detected(self):
        cons = [Constraint.ge(var("x"), 5), Constraint.le(var("x"), 3)]
        out = eliminate_variable(cons, "x")
        assert any(c.is_contradiction() for c in out)


class TestProjection:
    def test_project_out_box(self):
        cs = ConvexSet.from_box(["i", "j"], [(1, 4), (2, 6)])
        projected = project_out(cs, ["j"])
        assert projected.variables == ("i",)
        assert projected.variable_bounds("i") == (1, 4)

    def test_project_onto_keeps_requested(self):
        cs = ConvexSet.from_box(["i", "j", "k"], [(1, 2), (3, 4), (5, 6)])
        projected = project_onto(cs, ["j"])
        assert projected.variables == ("j",)
        assert projected.variable_bounds("j") == (3, 4)

    def test_triangular_projection(self):
        # 1 <= i <= 5, i <= j <= 5 : projection onto j is [1, 5]
        cs = ConvexSet.from_constraints(
            ["i", "j"],
            [
                Constraint.ge("i", 1),
                Constraint.le("i", 5),
                Constraint.ge("j", "i"),
                Constraint.le("j", 5),
            ],
        )
        projected = project_onto(cs, ["j"])
        assert projected.variable_bounds("j") == (1, 5)

    def test_projection_is_superset_of_true_shadow(self):
        # 2i = j with 1 <= j <= 6: true shadow of j is even values, the
        # rational projection is the full interval — conservative, never smaller.
        cs = ConvexSet.from_constraints(
            ["i", "j"],
            [
                Constraint.eq(var("j"), var("i") * 2),
                Constraint.ge("j", 1),
                Constraint.le("j", 6),
            ],
        )
        projected = project_onto(cs, ["j"])
        true_shadow = brute_projection(enumerate_convex(cs), [1])
        for (j,) in true_shadow:
            assert projected.contains((j,))

    @given(
        st.tuples(st.integers(0, 4), st.integers(0, 4), st.integers(0, 4), st.integers(0, 4)),
        st.tuples(st.integers(-2, 2), st.integers(-2, 2), st.integers(-4, 4)),
    )
    @settings(max_examples=40, deadline=None)
    def test_projection_covers_brute_force(self, box, extra):
        lo1, hi1, lo2, hi2 = box
        a, b, c = extra
        cons = [
            Constraint.ge("i", min(lo1, hi1)),
            Constraint.le("i", max(lo1, hi1)),
            Constraint.ge("j", min(lo2, hi2)),
            Constraint.le("j", max(lo2, hi2)),
            Constraint.ge(var("i") * a + var("j") * b + c, 0),
        ]
        cs = ConvexSet.from_constraints(["i", "j"], cons)
        points = enumerate_convex(cs)
        projected = project_onto(cs, ["i"])
        # every actual i value must be in the projection (soundness); the
        # projection may be larger (rational relaxation) but never smaller.
        for (i_val,) in brute_projection(points, [0]):
            assert projected.contains((i_val,))
