"""Tests for repro.isl.affine: affine expression arithmetic and substitution."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isl.affine import AffineExpr, const, var

names = st.sampled_from(["i", "j", "k", "N"])
small_ints = st.integers(min_value=-8, max_value=8)


def exprs():
    return st.builds(
        lambda coeffs, c: AffineExpr.build(dict(coeffs), c),
        st.dictionaries(names, small_ints, max_size=3).map(lambda d: tuple(d.items())),
        small_ints,
    )


class TestConstruction:
    def test_variable(self):
        e = var("i")
        assert e.coeff("i") == 1
        assert e.constant == 0

    def test_constant(self):
        assert const(5).constant == 5
        assert const(5).is_constant()

    def test_build_drops_zero_coefficients(self):
        e = AffineExpr.build({"i": 0, "j": 2})
        assert e.variables == ("j",)

    def test_from_any(self):
        assert AffineExpr.from_any("i") == var("i")
        assert AffineExpr.from_any(3) == const(3)
        assert AffineExpr.from_any(var("i")) == var("i")
        with pytest.raises(TypeError):
            AffineExpr.from_any(object())

    def test_hashable_and_equal(self):
        assert var("i") + 1 == AffineExpr.build({"i": 1}, 1)
        assert hash(var("i") + 1) == hash(AffineExpr.build({"i": 1}, 1))


class TestArithmetic:
    def test_add_sub(self):
        e = var("i") * 3 + var("j") - 2
        assert e.coeff("i") == 3
        assert e.coeff("j") == 1
        assert e.constant == -2

    def test_cancellation(self):
        e = var("i") - var("i")
        assert e.is_constant() and e.constant == 0

    def test_scalar_multiplication(self):
        e = (var("i") + 2) * Fraction(1, 2)
        assert e.coeff("i") == Fraction(1, 2)
        assert e.constant == 1

    def test_rsub_radd(self):
        e = 5 - var("i")
        assert e.coeff("i") == -1 and e.constant == 5
        e2 = 5 + var("i")
        assert e2.coeff("i") == 1 and e2.constant == 5

    def test_negation(self):
        e = -(var("i") - 3)
        assert e.coeff("i") == -1 and e.constant == 3

    @given(exprs(), exprs())
    @settings(max_examples=50)
    def test_addition_commutative(self, a, b):
        assert a + b == b + a

    @given(exprs(), exprs(), exprs())
    @settings(max_examples=50)
    def test_addition_associative(self, a, b, c):
        assert (a + b) + c == a + (b + c)

    @given(exprs(), small_ints)
    @settings(max_examples=50)
    def test_scalar_distributes(self, a, k):
        assert (a + a) * k == a * k + a * k


class TestEvaluation:
    def test_evaluate(self):
        e = var("i") * 3 + var("j") - 2
        assert e.evaluate({"i": 2, "j": 5}) == 9

    def test_evaluate_missing_variable(self):
        with pytest.raises(KeyError):
            (var("i") + 1).evaluate({})

    def test_substitute_expression(self):
        e = var("i") * 2 + 1
        out = e.substitute({"i": var("j") + 3})
        assert out == var("j") * 2 + 7

    def test_substitute_constant(self):
        assert (var("i") + var("j")).substitute({"i": 4}) == var("j") + 4

    def test_rename(self):
        assert (var("i") + var("j")).rename({"i": "x"}) == var("x") + var("j")

    def test_drop(self):
        assert (var("i") + var("j") + 1).drop(["j"]) == var("i") + 1

    @given(exprs(), st.dictionaries(names, small_ints, min_size=4, max_size=4))
    @settings(max_examples=50)
    def test_substitution_consistent_with_evaluation(self, e, env):
        # substituting constants then reading the constant == evaluating
        substituted = e.substitute(env)
        assert substituted.is_constant()
        assert substituted.constant == e.evaluate(env)


class TestUtilities:
    def test_scaled_to_integer(self):
        e = var("i") * Fraction(1, 2) + Fraction(1, 3)
        scaled = e.scaled_to_integer()
        assert scaled.is_integral()
        assert scaled == var("i") * 3 + 2

    def test_is_integral(self):
        assert (var("i") * 2 + 1).is_integral()
        assert not (var("i") * Fraction(1, 2)).is_integral()

    def test_str_rendering(self):
        assert str(var("i") - 1) in ("i-1", "i -1")
        assert str(const(0)) == "0"
