"""Tests for repro.isl.enumerate_points: point enumeration and numpy filtering."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isl.affine import var
from repro.isl.convex import Constraint, ConvexSet
from repro.isl.enumerate_points import (
    EnumerationTruncated,
    enumerate_convex,
    filter_box_numpy,
    iteration_points,
)


class TestEnumerateConvex:
    def test_box(self):
        cs = ConvexSet.from_box(["i", "j"], [(1, 3), (1, 2)])
        points = enumerate_convex(cs)
        assert points == [(1, 1), (1, 2), (2, 1), (2, 2), (3, 1), (3, 2)]

    def test_lexicographic_order(self):
        cs = ConvexSet.from_box(["i", "j"], [(0, 2), (0, 2)])
        points = enumerate_convex(cs)
        assert points == sorted(points)

    def test_triangular(self):
        cs = ConvexSet.from_constraints(
            ["i", "j"],
            [
                Constraint.ge("i", 1),
                Constraint.le("i", 4),
                Constraint.ge("j", "i"),
                Constraint.le("j", 4),
            ],
        )
        points = enumerate_convex(cs)
        assert len(points) == 10
        assert all(j >= i for i, j in points)

    def test_equality_constraint(self):
        cs = ConvexSet.from_constraints(
            ["i", "j"],
            [
                Constraint.eq(var("j"), var("i") * 2),
                Constraint.ge("i", 1),
                Constraint.le("i", 4),
                Constraint.ge("j", 1),
                Constraint.le("j", 8),
            ],
        )
        assert enumerate_convex(cs) == [(1, 2), (2, 4), (3, 6), (4, 8)]

    def test_empty_set(self):
        assert enumerate_convex(ConvexSet.from_box(["i"], [(3, 1)])) == []

    def test_infeasible_after_projection(self):
        # contradictory constraints that are not a syntactic contradiction
        cs = ConvexSet.from_constraints(
            ["i", "j"],
            [
                Constraint.ge("i", 1),
                Constraint.le("i", 5),
                Constraint.ge("j", 1),
                Constraint.le("j", 5),
                Constraint.ge("i", 10),
            ],
        )
        assert enumerate_convex(cs) == []

    def test_unbounded_raises(self):
        with pytest.raises(ValueError):
            enumerate_convex(ConvexSet.from_constraints(["i"], [Constraint.ge("i", 0)]))

    def test_parametric_needs_binding(self):
        cs = ConvexSet.from_constraints(
            ["i"], [Constraint.ge("i", 1), Constraint.le("i", "N")], parameters=["N"]
        )
        with pytest.raises(ValueError):
            enumerate_convex(cs)
        assert enumerate_convex(cs, {"N": 3}) == [(1,), (2,), (3,)]

    def test_max_points_cap_raises_on_truncation(self):
        cs = ConvexSet.from_box(["i"], [(1, 100)])
        with pytest.raises(EnumerationTruncated) as excinfo:
            enumerate_convex(cs, max_points=5)
        # the truncated prefix rides along on the exception
        assert excinfo.value.points == [(1,), (2,), (3,), (4,), (5,)]

    def test_max_points_cap_opt_in_truncated_result(self):
        cs = ConvexSet.from_box(["i"], [(1, 100)])
        points = enumerate_convex(cs, max_points=5, allow_truncated=True)
        assert points == [(1,), (2,), (3,), (4,), (5,)]

    def test_max_points_exact_fit_is_complete(self):
        cs = ConvexSet.from_box(["i"], [(1, 5)])
        # enumeration finishes exactly at the cap: complete, no exception
        assert enumerate_convex(cs, max_points=5) == [(1,), (2,), (3,), (4,), (5,)]

    def test_max_points_above_size_is_complete(self):
        cs = ConvexSet.from_box(["i"], [(1, 3)])
        assert enumerate_convex(cs, max_points=10) == [(1,), (2,), (3,)]

    @given(st.integers(0, 5), st.integers(0, 5), st.integers(-3, 3), st.integers(-3, 3))
    @settings(max_examples=30, deadline=None)
    def test_matches_brute_force(self, hi1, hi2, a, b):
        cons = [
            Constraint.ge("i", 0),
            Constraint.le("i", hi1),
            Constraint.ge("j", 0),
            Constraint.le("j", hi2),
            Constraint.ge(var("i") * a + var("j") * b, 0),
        ]
        cs = ConvexSet.from_constraints(["i", "j"], cons)
        expected = sorted(
            (i, j)
            for i in range(0, hi1 + 1)
            for j in range(0, hi2 + 1)
            if a * i + b * j >= 0
        )
        assert enumerate_convex(cs) == expected


class TestNumpyFiltering:
    def test_iteration_points_shape_and_order(self):
        grid = iteration_points([(1, 2), (5, 7)])
        assert grid.shape == (6, 2)
        assert grid[0].tolist() == [1, 5]
        assert grid[-1].tolist() == [2, 7]
        # row-major: lexicographic
        as_tuples = [tuple(r) for r in grid.tolist()]
        assert as_tuples == sorted(as_tuples)

    def test_iteration_points_zero_dims(self):
        grid = iteration_points([])
        assert grid.shape == (1, 0)

    def test_filter_matches_membership(self):
        cs = ConvexSet.from_constraints(
            ["i", "j"], [Constraint.ge("j", "i"), Constraint.le("j", 8)]
        )
        grid = iteration_points([(0, 9), (0, 9)])
        mask = filter_box_numpy(cs, grid)
        for row, keep in zip(grid.tolist(), mask.tolist()):
            assert keep == cs.contains(tuple(row))

    def test_filter_with_params(self):
        cs = ConvexSet.from_constraints(
            ["i"], [Constraint.ge("i", 1), Constraint.le("i", "N")], parameters=["N"]
        )
        grid = iteration_points([(0, 10)])
        mask = filter_box_numpy(cs, grid, {"N": 4})
        assert mask.sum() == 4

    def test_filter_dimension_mismatch(self):
        cs = ConvexSet.from_box(["i", "j"], [(0, 1), (0, 1)])
        with pytest.raises(ValueError):
            filter_box_numpy(cs, np.zeros((3, 3), dtype=np.int64))

    def test_filter_equality(self):
        cs = ConvexSet.from_constraints(["i", "j"], [Constraint.eq(var("i"), var("j"))])
        grid = iteration_points([(0, 3), (0, 3)])
        mask = filter_box_numpy(cs, grid)
        assert mask.sum() == 4
