"""Tests for repro.isl.linalg: exact linear algebra, HNF/SNF, diophantine solving."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isl.linalg import (
    DiophantineSolution,
    RationalMatrix,
    extended_gcd,
    gcd_list,
    hermite_normal_form,
    identity_matrix,
    integer_nullspace,
    lcm_list,
    mat_det,
    mat_inverse,
    mat_mul,
    mat_rank,
    smith_normal_form,
    solve_diophantine,
    vec_mat,
)

small_ints = st.integers(min_value=-9, max_value=9)


def matrices(rows, cols):
    return st.lists(
        st.lists(small_ints, min_size=cols, max_size=cols), min_size=rows, max_size=rows
    )


# ---------------------------------------------------------------------------
# scalar helpers
# ---------------------------------------------------------------------------


class TestExtendedGcd:
    def test_basic(self):
        g, x, y = extended_gcd(12, 18)
        assert g == 6
        assert 12 * x + 18 * y == 6

    def test_zero_zero(self):
        assert extended_gcd(0, 0)[0] == 0

    def test_negative_operands(self):
        g, x, y = extended_gcd(-12, 18)
        assert g == 6
        assert -12 * x + 18 * y == 6

    @given(small_ints, small_ints)
    def test_bezout_identity(self, a, b):
        g, x, y = extended_gcd(a, b)
        assert g >= 0
        assert a * x + b * y == g
        if a or b:
            assert a % g == 0 and b % g == 0

    def test_gcd_list(self):
        assert gcd_list([4, 6, 8]) == 2
        assert gcd_list([]) == 0
        assert gcd_list([0, 0, 5]) == 5

    def test_lcm_list(self):
        assert lcm_list([4, 6]) == 12
        assert lcm_list([]) == 1
        assert lcm_list([0, 3]) == 3


# ---------------------------------------------------------------------------
# basic matrix ops
# ---------------------------------------------------------------------------


class TestMatrixOps:
    def test_identity_multiplication(self):
        a = [[1, 2], [3, 4]]
        assert mat_mul(a, identity_matrix(2)) == [
            [Fraction(1), Fraction(2)],
            [Fraction(3), Fraction(4)],
        ]

    def test_mul_shape_mismatch(self):
        with pytest.raises(ValueError):
            mat_mul([[1, 2]], [[1, 2]])

    def test_det_2x2(self):
        assert mat_det([[3, 2], [0, 1]]) == 3

    def test_det_singular(self):
        assert mat_det([[1, 2], [2, 4]]) == 0

    def test_det_requires_square(self):
        with pytest.raises(ValueError):
            mat_det([[1, 2, 3], [4, 5, 6]])

    def test_inverse_roundtrip(self):
        a = [[3, 2], [0, 1]]
        inv = mat_inverse(a)
        assert mat_mul(a, inv) == identity_matrix(2)

    def test_inverse_singular_raises(self):
        with pytest.raises(ValueError):
            mat_inverse([[1, 2], [2, 4]])

    def test_rank(self):
        assert mat_rank([[1, 2], [2, 4]]) == 1
        assert mat_rank([[1, 0], [0, 1]]) == 2
        assert mat_rank([[0, 0], [0, 0]]) == 0

    def test_vec_mat_row_convention(self):
        # (1, 2) @ [[3,0],[2,1]] = (3+4, 0+2) = (7, 2)
        assert vec_mat([1, 2], [[3, 0], [2, 1]]) == [Fraction(7), Fraction(2)]

    @given(matrices(2, 2), matrices(2, 2), matrices(2, 2))
    @settings(max_examples=40, deadline=None)
    def test_matmul_associative(self, a, b, c):
        left = mat_mul(mat_mul(a, b), c)
        right = mat_mul(a, mat_mul(b, c))
        assert left == right

    @given(matrices(2, 2), matrices(2, 2))
    @settings(max_examples=40, deadline=None)
    def test_det_multiplicative(self, a, b):
        assert mat_det(mat_mul(a, b)) == mat_det(a) * mat_det(b)


class TestRationalMatrix:
    def test_inverse_and_det(self):
        T = RationalMatrix.from_rows([[3, 2], [0, 1]])
        assert T.det() == 3
        assert (T @ T.inverse()).rows == RationalMatrix.identity(2).rows

    def test_row_apply(self):
        T = RationalMatrix.from_rows([[3, 2], [0, 1]])
        assert T.row_apply([1, 1]) == [Fraction(3), Fraction(3)]

    def test_is_full_rank(self):
        assert RationalMatrix.from_rows([[2, 0], [0, 5]]).is_full_rank()
        assert not RationalMatrix.from_rows([[1, 2], [2, 4]]).is_full_rank()

    def test_is_integer(self):
        assert RationalMatrix.from_rows([[1, 2], [3, 4]]).is_integer()
        assert not RationalMatrix.from_rows([[Fraction(1, 2), 0], [0, 1]]).is_integer()

    def test_add_sub(self):
        a = RationalMatrix.from_rows([[1, 2], [3, 4]])
        b = RationalMatrix.from_rows([[1, 1], [1, 1]])
        assert (a + b - b).rows == a.rows


# ---------------------------------------------------------------------------
# Hermite / Smith normal forms
# ---------------------------------------------------------------------------


class TestNormalForms:
    @given(matrices(3, 3))
    @settings(max_examples=50, deadline=None)
    def test_hnf_reconstruction(self, a):
        H, U = hermite_normal_form(a)
        # H == U @ A and U unimodular
        assert mat_mul(U, a) == [[Fraction(x) for x in row] for row in H]
        assert abs(mat_det(U)) == 1

    @given(matrices(3, 3))
    @settings(max_examples=50, deadline=None)
    def test_hnf_echelon_structure(self, a):
        H, _U = hermite_normal_form(a)
        pivots = []
        for row in H:
            nz = [c for c, x in enumerate(row) if x != 0]
            pivots.append(nz[0] if nz else None)
        # pivot columns strictly increase over the non-zero rows
        seen = [p for p in pivots if p is not None]
        assert seen == sorted(seen) and len(seen) == len(set(seen))

    @given(matrices(3, 3))
    @settings(max_examples=50, deadline=None)
    def test_snf_reconstruction(self, a):
        S, U, V = smith_normal_form(a)
        assert mat_mul(mat_mul(U, a), V) == [[Fraction(x) for x in row] for row in S]
        assert abs(mat_det(U)) == 1
        assert abs(mat_det(V)) == 1

    @given(matrices(3, 3))
    @settings(max_examples=50, deadline=None)
    def test_snf_divisibility_chain(self, a):
        S, _U, _V = smith_normal_form(a)
        diag = [S[i][i] for i in range(3)]
        # off-diagonal must be zero
        for i in range(3):
            for j in range(3):
                if i != j:
                    assert S[i][j] == 0
        for d1, d2 in zip(diag, diag[1:]):
            if d1 != 0 and d2 != 0:
                assert d2 % d1 == 0
            if d1 == 0:
                assert d2 == 0

    def test_snf_preserves_det_magnitude(self):
        a = [[2, 4, 4], [-6, 6, 12], [10, 4, 16]]
        S, _U, _V = smith_normal_form(a)
        prod = S[0][0] * S[1][1] * S[2][2]
        assert abs(prod) == abs(mat_det(a))


# ---------------------------------------------------------------------------
# diophantine systems
# ---------------------------------------------------------------------------


class TestDiophantine:
    def test_figure1_system(self):
        # 3*i1 - j1 = 2 ; 2*i1 + i2 - j2 = 2 over (i1, i2, j1, j2)
        A = [[3, 0, -1, 0], [2, 1, 0, -1]]
        b = [2, 2]
        sol = solve_diophantine(A, b)
        assert sol is not None
        x = sol.particular
        assert 3 * x[0] - x[2] == 2
        assert 2 * x[0] + x[1] - x[3] == 2
        assert sol.num_free == 2

    def test_no_solution(self):
        # 2x = 1 has no integer solution
        assert solve_diophantine([[2]], [1]) is None

    def test_inconsistent_system(self):
        # x = 1 and x = 2
        assert solve_diophantine([[1], [1]], [1, 2]) is None

    def test_point_instantiation(self):
        sol = solve_diophantine([[2, 3]], [1])
        assert sol is not None
        for params in [(0,), (1,), (-2,)]:
            pt = sol.point(params)
            assert 2 * pt[0] + 3 * pt[1] == 1

    def test_point_wrong_arity(self):
        sol = solve_diophantine([[2, 3]], [1])
        with pytest.raises(ValueError):
            sol.point((1, 2, 3))

    def test_zero_columns(self):
        assert solve_diophantine([], []) is not None or True  # degenerate accepted

    def test_rhs_length_mismatch(self):
        with pytest.raises(ValueError):
            solve_diophantine([[1, 2]], [1, 2])

    @given(matrices(2, 3), st.lists(small_ints, min_size=3, max_size=3))
    @settings(max_examples=60, deadline=None)
    def test_solutions_satisfy_system(self, a, x_seed):
        # Build a guaranteed-solvable system: b = A @ x_seed
        b = [sum(a[i][j] * x_seed[j] for j in range(3)) for i in range(2)]
        sol = solve_diophantine(a, b)
        assert sol is not None
        for params in [(0,) * sol.num_free, tuple(range(1, sol.num_free + 1))]:
            x = sol.point(params)
            for i in range(2):
                assert sum(a[i][j] * x[j] for j in range(3)) == b[i]

    @given(matrices(2, 3))
    @settings(max_examples=40, deadline=None)
    def test_nullspace_vectors_annihilate(self, a):
        for v in integer_nullspace(a):
            for row in a:
                assert sum(row[j] * v[j] for j in range(3)) == 0
