"""Tests for repro.isl.convex: constraints, convex sets, emptiness, bounds."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isl.affine import AffineExpr, var
from repro.isl.convex import Constraint, ConvexSet, EQ, GE


class TestConstraint:
    def test_ge_le_lt_gt(self):
        i = var("i")
        assert Constraint.ge(i, 3).satisfied_by({"i": 3})
        assert not Constraint.ge(i, 3).satisfied_by({"i": 2})
        assert Constraint.le(i, 3).satisfied_by({"i": 3})
        assert not Constraint.lt(i, 3).satisfied_by({"i": 3})
        assert Constraint.lt(i, 3).satisfied_by({"i": 2})
        assert Constraint.gt(i, 3).satisfied_by({"i": 4})
        assert Constraint.eq(i, 3).satisfied_by({"i": 3})

    def test_invalid_kind(self):
        with pytest.raises(ValueError):
            Constraint(var("i"), "<=")

    def test_normalized_divides_by_gcd(self):
        c = Constraint.ge(var("i") * 4, 6)  # 4i - 6 >= 0 -> 2i - 3 >= 0 -> i >= 2 (tighten)
        n = c.normalized()
        assert n.expr.coeff("i") in (1, 2)
        # the tightened constraint must still accept exactly i >= 2
        assert n.satisfied_by({"i": 2})
        assert not n.satisfied_by({"i": 1})

    def test_normalized_equality_unsat_detected_at_contradiction(self):
        c = Constraint.eq(var("i") * 2, 3)  # 2i == 3 has no integer solution
        assert c.is_contradiction()

    def test_negated_ge(self):
        c = Constraint.ge(var("i"), 3)
        (neg,) = c.negated()
        assert neg.satisfied_by({"i": 2})
        assert not neg.satisfied_by({"i": 3})

    def test_negated_eq_gives_two_branches(self):
        c = Constraint.eq(var("i"), 3)
        branches = c.negated()
        assert len(branches) == 2
        assert any(b.satisfied_by({"i": 4}) for b in branches)
        assert any(b.satisfied_by({"i": 2}) for b in branches)
        assert not any(b.satisfied_by({"i": 3}) for b in branches)

    def test_tautology_and_contradiction(self):
        assert Constraint.ge(AffineExpr.constant_expr(1), 0).is_tautology()
        assert Constraint.ge(AffineExpr.constant_expr(-1), 0).is_contradiction()
        assert Constraint.eq(AffineExpr.constant_expr(0), 0).is_tautology()


class TestConvexSetBasics:
    def test_box_membership(self):
        cs = ConvexSet.from_box(["i", "j"], [(1, 5), (2, 4)])
        assert cs.contains((1, 2))
        assert cs.contains((5, 4))
        assert not cs.contains((0, 3))
        assert not cs.contains((3, 5))

    def test_contains_wrong_arity(self):
        cs = ConvexSet.from_box(["i"], [(1, 5)])
        with pytest.raises(ValueError):
            cs.contains((1, 2))

    def test_box_requires_matching_bounds(self):
        with pytest.raises(ValueError):
            ConvexSet.from_box(["i", "j"], [(1, 5)])

    def test_universe(self):
        u = ConvexSet.universe(["i"])
        assert u.contains((123456,))

    def test_parameter_binding(self):
        cs = ConvexSet.from_constraints(
            ["i"], [Constraint.ge("i", 1), Constraint.le("i", "N")], parameters=["N"]
        )
        bound = cs.bind_parameters({"N": 3})
        assert bound.parameters == ()
        assert bound.contains((3,))
        assert not bound.contains((4,))

    def test_unbound_parameter_membership_raises(self):
        cs = ConvexSet.from_constraints(
            ["i"], [Constraint.le("i", "N")], parameters=["N"]
        )
        with pytest.raises(ValueError):
            cs.contains((1,))
        assert cs.contains((1,), params={"N": 5})

    def test_rename_variables(self):
        cs = ConvexSet.from_box(["i"], [(1, 3)]).rename_variables({"i": "x"})
        assert cs.variables == ("x",)
        assert cs.contains((2,))

    def test_simplified_deduplicates(self):
        c = Constraint.ge("i", 1)
        cs = ConvexSet(("i",), (c, c, Constraint.ge(AffineExpr.constant_expr(3), 0)))
        assert len(cs.simplified().constraints) == 1


class TestBoundsAndEmptiness:
    def test_variable_bounds_box(self):
        cs = ConvexSet.from_box(["i", "j"], [(1, 10), (2, 7)])
        assert cs.variable_bounds("i") == (1, 10)
        assert cs.variable_bounds("j") == (2, 7)

    def test_variable_bounds_triangular(self):
        cs = ConvexSet.from_constraints(
            ["i", "j"],
            [
                Constraint.ge("i", 1),
                Constraint.le("i", 6),
                Constraint.ge("j", "i"),
                Constraint.le("j", 6),
            ],
        )
        assert cs.variable_bounds("j") == (1, 6)
        assert cs.variable_bounds("i") == (1, 6)

    def test_bounding_box(self):
        cs = ConvexSet.from_box(["i", "j"], [(0, 3), (5, 9)])
        assert cs.bounding_box() == [(0, 3), (5, 9)]

    def test_empty_by_contradictory_bounds(self):
        cs = ConvexSet.from_box(["i"], [(5, 3)])
        assert cs.is_empty()

    def test_empty_by_rational_infeasibility(self):
        cs = ConvexSet.from_constraints(
            ["i", "j"],
            [Constraint.ge("i", "j"), Constraint.ge("j", AffineExpr.variable("i") + 1)],
        )
        assert cs.is_empty()

    def test_empty_by_integrality(self):
        # 1 <= 2i <= 1 has no integer solution although rationally feasible
        cs = ConvexSet.from_constraints(
            ["i"],
            [Constraint.ge(var("i") * 2, 1), Constraint.le(var("i") * 2, 1)],
        )
        assert cs.is_empty()

    def test_nonempty_samples_a_member(self):
        cs = ConvexSet.from_box(["i", "j"], [(2, 4), (3, 3)])
        assert not cs.is_empty()
        point = cs.sample_point()
        assert point is not None
        assert cs.contains(point)

    def test_sample_point_empty(self):
        assert ConvexSet.from_box(["i"], [(5, 3)]).sample_point() is None

    def test_parametric_emptiness_uses_rational_relaxation(self):
        cs = ConvexSet.from_constraints(
            ["i"],
            [Constraint.ge("i", "N"), Constraint.le("i", "N")],
            parameters=["N"],
        )
        assert not cs.is_empty()


class TestConvexSetProperty:
    @given(
        st.lists(
            st.tuples(st.integers(0, 6), st.integers(0, 6)), min_size=2, max_size=2
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_membership_matches_box_definition(self, ranges):
        bounds = [(min(a, b), max(a, b)) for a, b in ranges]
        cs = ConvexSet.from_box(["i", "j"], bounds)
        for i in range(-1, 8):
            for j in range(-1, 8):
                expected = bounds[0][0] <= i <= bounds[0][1] and bounds[1][0] <= j <= bounds[1][1]
                assert cs.contains((i, j)) == expected
