"""Tests for the baseline partitioning schemes (PDM, PL, UNIQUE, DOACROSS, tiling, PAR).

Every scheme must produce a schedule that (a) covers exactly the program's
statement instances, (b) respects the exact dependences, and (c) reproduces the
sequential array contents — the same bar the REC partitioner is held to.
"""

import numpy as np
import pytest

from repro.baselines import (
    doacross_schedule,
    inner_parallel_schedule,
    minimum_distances,
    pdm_partition,
    pdm_schedule,
    pl_schedule,
    tiling_schedule,
    unique_sets_partition,
    unique_sets_schedule,
)
from repro.core import recurrence_chain_partition
from repro.core.statement import build_statement_space
from repro.dependence import DependenceAnalysis
from repro.runtime import validate_schedule
from repro.workloads.examples import (
    cholesky_loop,
    example2_loop,
    example3_loop,
    figure1_loop,
    figure2_loop,
)


def check(prog, schedule, deps):
    report = validate_schedule(prog, schedule, {}, dependences=deps, seeds=(0, 1))
    assert report.ok, f"{schedule.name}: {report}"
    assert report.respects_dependences, f"{schedule.name} violates dependences"


class TestPDM:
    @pytest.mark.parametrize("factory,arg", [(figure1_loop, (14, 17)), (example2_loop, (16,)), (figure2_loop, (20,))])
    def test_valid_on_perfect_nests(self, factory, arg):
        prog = factory(*arg)
        analysis = DependenceAnalysis(prog, {})
        sched = pdm_schedule(prog, {}, analysis)
        check(prog, sched, analysis.iteration_dependences)
        assert sched.num_phases == 1  # outermost DOALL over cosets

    def test_partition_covers_distances(self):
        prog = figure1_loop(12, 12)
        analysis = DependenceAnalysis(prog, {})
        partition = pdm_partition(analysis.iteration_space_points, analysis.iteration_dependences)
        assert partition.covers(analysis.iteration_dependences.distances())
        assert partition.num_parallel_sets >= 1
        assert partition.longest_chain >= 1

    def test_statement_level_on_cholesky(self):
        prog = cholesky_loop(nmat=1, m=2, n=4, nrhs=1)
        sched = pdm_schedule(prog, {})
        space = build_statement_space(prog, {})
        check(prog, sched, space.rd)

    def test_pdm_serializes_more_than_rec(self):
        """PDM's artificial dependences give longer sequential units than REC chains."""
        prog = figure1_loop(20, 30)
        rec = recurrence_chain_partition(prog)
        pdm = pdm_schedule(prog, {}, rec.analysis)
        assert pdm.span >= rec.schedule.span


class TestPL:
    def test_valid(self):
        prog = figure1_loop(14, 18)
        analysis = DependenceAnalysis(prog, {})
        sched = pl_schedule(prog, {}, analysis)
        check(prog, sched, analysis.iteration_dependences)

    def test_pl_has_fewer_parallel_sets_than_pdm(self):
        """The primitive direction basis introduces more artificial dependences,
        so PL has coarser (fewer, longer) parallel sets than PDM — the reason it
        trails PDM in figure 3."""
        prog = figure1_loop(20, 30)
        analysis = DependenceAnalysis(prog, {})
        pdm = pdm_schedule(prog, {}, analysis)
        pl = pl_schedule(prog, {}, analysis)
        assert len(pl.phases[0]) <= len(pdm.phases[0])
        assert pl.span >= pdm.span


class TestUniqueSets:
    def test_valid_on_example2(self):
        prog = example2_loop(16)
        analysis = DependenceAnalysis(prog, {})
        sched = unique_sets_schedule(prog, {}, analysis)
        check(prog, sched, analysis.iteration_dependences)

    def test_more_phases_than_rec(self):
        """The scheme's head/tail split gives a longer phase sequence than REC's
        three partitions (the §5 comparison on Example 2)."""
        prog = example2_loop(30)
        analysis = DependenceAnalysis(prog, {})
        uniq = unique_sets_schedule(prog, {}, analysis)
        rec = recurrence_chain_partition(prog)
        assert uniq.num_phases >= rec.schedule.num_phases

    def test_partition_structure(self):
        prog = example2_loop(16)
        analysis = DependenceAnalysis(prog, {})
        sets = unique_sets_partition(
            analysis.iteration_space_points, analysis.iteration_dependences
        )
        counts = sets.counts()
        assert sum(counts.values()) == len(analysis.iteration_space_points)
        # heads/tails/intersection are disjoint
        all_sets = [
            sets.independent, sets.flow_head, sets.anti_head,
            sets.intersection, sets.flow_tail, sets.anti_tail,
        ]
        total = sum(len(s) for s in all_sets)
        assert total == len(set().union(*all_sets))


class TestDoacross:
    def test_valid_on_perfect_nest(self):
        prog = figure1_loop(12, 14)
        analysis = DependenceAnalysis(prog, {})
        sched = doacross_schedule(prog, {}, analysis)
        check(prog, sched, analysis.iteration_dependences)

    def test_valid_on_imperfect_nest(self):
        prog = example3_loop(35)
        analysis = DependenceAnalysis(prog, {})
        sched = doacross_schedule(prog, {}, analysis)
        space = build_statement_space(prog, {}, analysis)
        check(prog, sched, space.rd)

    def test_more_synchronization_than_rec(self):
        prog = example3_loop(40)
        analysis = DependenceAnalysis(prog, {})
        doa = doacross_schedule(prog, {}, analysis)
        rec = recurrence_chain_partition(prog)
        assert doa.num_phases >= rec.schedule.num_phases


class TestTiling:
    def test_minimum_distances(self):
        rel = DependenceAnalysis(figure1_loop(10, 10), {}).iteration_dependences
        assert minimum_distances(rel, 2) == (2, 2)

    def test_valid(self):
        prog = example2_loop(14)
        analysis = DependenceAnalysis(prog, {})
        sched = tiling_schedule(prog, {}, analysis)
        check(prog, sched, analysis.iteration_dependences)
        assert sched.meta["tiles"] == sched.num_phases

    def test_parallelism_bounded_by_tile_volume(self):
        prog = example2_loop(20)
        analysis = DependenceAnalysis(prog, {})
        sched = tiling_schedule(prog, {}, analysis)
        tile_volume = 1
        for s in sched.meta["tile_size"]:
            tile_volume *= s
        assert sched.max_parallelism <= tile_volume


class TestInnerParallel:
    def test_valid_on_example3(self):
        prog = example3_loop(35)
        analysis = DependenceAnalysis(prog, {})
        sched = inner_parallel_schedule(prog, {}, analysis)
        space = build_statement_space(prog, {}, analysis)
        check(prog, sched, space.rd)

    def test_one_phase_per_outer_iteration(self):
        prog = example3_loop(12)
        sched = inner_parallel_schedule(prog, {})
        assert sched.num_phases == 12

    def test_valid_on_figure1(self):
        prog = figure1_loop(8, 9)
        analysis = DependenceAnalysis(prog, {})
        sched = inner_parallel_schedule(prog, {}, analysis)
        check(prog, sched, analysis.iteration_dependences)
