"""Tests for repro.baselines.lattice: PDM extraction and lattice cosets."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.lattice import DistanceLattice, direction_basis, pseudo_distance_matrix
from repro.dependence import DependenceAnalysis
from repro.isl.lexorder import is_lex_positive
from repro.workloads.examples import example2_loop, figure1_loop

small_vecs = st.lists(
    st.tuples(st.integers(-4, 4), st.integers(-4, 4)).filter(lambda v: v != (0, 0)),
    min_size=1,
    max_size=4,
)


class TestPseudoDistanceMatrix:
    def test_figure1_pdm(self):
        rel = DependenceAnalysis(figure1_loop(10, 10), {}).iteration_dependences
        pdm = pseudo_distance_matrix(sorted(rel.distances()), 2)
        # the distances (2,2),(4,4),(6,6) reduce to the single generator (2,2)
        assert pdm == [(2, 2)]

    def test_vectors_are_lex_positive(self):
        rel = DependenceAnalysis(example2_loop(20), {}).iteration_dependences
        for v in pseudo_distance_matrix(sorted(rel.distances()), 2):
            assert is_lex_positive(v)

    def test_empty_distances(self):
        assert pseudo_distance_matrix([], 2) == []

    @given(small_vecs)
    @settings(max_examples=40, deadline=None)
    def test_pdm_covers_all_distances(self, distances):
        pdm = pseudo_distance_matrix(distances, 2)
        lattice = DistanceLattice.from_vectors(pdm, 2)
        assert lattice.covers(distances)

    def test_direction_basis_is_primitive(self):
        from math import gcd

        rel = DependenceAnalysis(figure1_loop(10, 10), {}).iteration_dependences
        basis = direction_basis(sorted(rel.distances()), 2)
        assert basis == [(1, 1)]
        for v in basis:
            g = 0
            for x in v:
                g = gcd(g, abs(x))
            assert g == 1


class TestDistanceLattice:
    def test_contains(self):
        lattice = DistanceLattice.from_vectors([(2, 2)], 2)
        assert lattice.contains((0, 0))
        assert lattice.contains((4, 4))
        assert lattice.contains((-2, -2))
        assert not lattice.contains((2, 0))
        assert not lattice.contains((3, 3))

    def test_empty_lattice(self):
        lattice = DistanceLattice.from_vectors([], 2)
        assert lattice.contains((0, 0))
        assert not lattice.contains((1, 0))
        assert lattice.coset_key((3, 4)) == (3, 4)

    def test_coset_key_consistency(self):
        lattice = DistanceLattice.from_vectors([(2, 2), (0, 6)], 2)
        p = (3, 5)
        shifted = (3 + 2, 5 + 2 + 6)
        assert lattice.coset_key(p) == lattice.coset_key(shifted)
        assert lattice.coset_key(p) != lattice.coset_key((4, 5))

    @given(small_vecs, st.tuples(st.integers(-6, 6), st.integers(-6, 6)), st.integers(-3, 3), st.integers(-3, 3))
    @settings(max_examples=40, deadline=None)
    def test_coset_key_invariant_under_lattice_shifts(self, gens, point, k1, k2):
        lattice = DistanceLattice.from_vectors(gens, 2)
        shift = (
            k1 * gens[0][0] + (k2 * gens[-1][0] if len(gens) > 1 else 0),
            k1 * gens[0][1] + (k2 * gens[-1][1] if len(gens) > 1 else 0),
        )
        moved = (point[0] + shift[0], point[1] + shift[1])
        assert lattice.coset_key(point) == lattice.coset_key(moved)

    def test_cosets_partition_the_space(self):
        lattice = DistanceLattice.from_vectors([(2, 2)], 2)
        points = [(i, j) for i in range(1, 5) for j in range(1, 5)]
        cosets = lattice.cosets(points)
        flattened = [p for members in cosets.values() for p in members]
        assert sorted(flattened) == sorted(points)
        # members of a coset differ by lattice vectors
        for members in cosets.values():
            base = members[0]
            for other in members[1:]:
                assert lattice.contains((other[0] - base[0], other[1] - base[1]))
