"""Tests for the unified planning facade (repro.core.strategy).

Covers the acceptance contract of the facade:

* every paper workload plans successfully through ``plan()`` with the
  default config, and the chosen strategy matches the historical
  hand-rolled dispatch (``recurrence_chain_partition``'s two branches);
* ``plan()`` output is bit-identical (phase names + instance sequences) to
  the pre-facade entry points, for Algorithm 1 and for all six baselines;
* cached re-plans return the *identical* ``Plan`` object;
* the fallback chain records why strategies were skipped, honours the
  configured preference order, and raises
  :class:`PartitioningNotApplicable` with every reason when nothing applies.
"""

import pytest

from repro.baselines import (
    PLPartition,
    doacross_schedule,
    inner_parallel_schedule,
    pdm_schedule,
    pl_schedule,
    tiling_schedule,
    unique_sets_schedule,
)
from repro.core import recurrence_chain_partition
from repro.core.partitioner import PartitioningNotApplicable
from repro.core.strategy import (
    PlanCache,
    PlanConfig,
    default_plan_cache,
    plan,
    program_fingerprint,
    strategy_names,
    strategy_table,
)
from repro.workloads.examples import (
    cholesky_loop,
    example2_loop,
    example3_loop,
    figure1_loop,
    figure2_loop,
)

#: Every paper workload (small sizes) with the strategy the old dispatch chose.
WORKLOADS = [
    ("figure1", lambda: figure1_loop(10, 10), "recurrence-chains"),
    ("figure2", lambda: figure2_loop(20), "recurrence-chains"),
    ("example2", lambda: example2_loop(12), "recurrence-chains"),
    ("example3", lambda: example3_loop(12), "dataflow"),
    ("cholesky", lambda: cholesky_loop(nmat=1, m=2, n=6, nrhs=1), "dataflow"),
]

BASELINES = [
    ("pdm", pdm_schedule),
    ("pl", pl_schedule),
    ("unique-sets", unique_sets_schedule),
    ("doacross", doacross_schedule),
    ("tiling", tiling_schedule),
    ("inner-parallel", inner_parallel_schedule),
]


def schedule_mismatches(a, b):
    """Phase-by-phase comparison (names + exact instance sequences)."""
    problems = []
    if a.num_phases != b.num_phases:
        return [f"phase count {a.num_phases} != {b.num_phases}"]
    for pa, pb in zip(a.phases, b.phases):
        if pa.name != pb.name:
            problems.append(f"phase name {pa.name!r} != {pb.name!r}")
        if pa.instances() != pb.instances():
            problems.append(f"instances differ in phase {pa.name!r}")
    return problems


class TestFallbackChain:
    @pytest.mark.parametrize(
        "factory,expected", [(f, e) for _, f, e in WORKLOADS],
        ids=[name for name, _, _ in WORKLOADS],
    )
    def test_default_plan_matches_old_dispatch(self, factory, expected):
        prog = factory()
        p = plan(prog, cache=False)
        assert p.strategy == expected
        old = recurrence_chain_partition(factory())
        assert p.scheme == old.scheme
        assert schedule_mismatches(p.schedule, old.schedule) == []
        assert p.validate(seeds=(0,)).ok

    @pytest.mark.parametrize(
        "factory", [f for _, f, _ in WORKLOADS], ids=[n for n, _, _ in WORKLOADS]
    )
    def test_cached_replan_is_identical(self, factory):
        cache = PlanCache()
        first = plan(factory(), cache=cache)
        again = plan(factory(), cache=cache)  # a *fresh* equal program object
        assert again is first
        assert cache.stats() == {"size": 1, "hits": 1, "misses": 1}

    def test_skip_reasons_are_recorded(self):
        # The fixed selector probes the historical chain front-to-back, so the
        # inapplicable Algorithm 1 branch is recorded with its reason.
        p = plan(example3_loop(10), config=PlanConfig(selector="fixed"), cache=False)
        assert p.strategy == "dataflow"
        skipped = dict(p.skipped)
        assert "recurrence-chains" in skipped
        # example3 has two statements: the chain branch's single-statement
        # gate is the first inapplicability reason to fire.
        assert "single statement" in skipped["recurrence-chains"]
        assert "recurrence-chains" in p.explain()

    def test_fixed_selector_is_bit_identical_to_old_dispatch(self):
        """`selector="fixed"` pins the historical walk: same strategy, same
        skip list, same schedule, and no feature extraction in the report."""
        for _, factory, expected in WORKLOADS:
            p = plan(factory(), config=PlanConfig(selector="fixed"), cache=False)
            assert p.strategy == expected
            old = recurrence_chain_partition(factory())
            assert schedule_mismatches(p.schedule, old.schedule) == []
            assert p.selection is not None
            assert p.selection.selector == "fixed"
            assert p.selection.scores == () and p.selection.features is None
            assert p.selection.order == strategy_names()

    def test_force_dataflow_skips_chains(self):
        p = plan(
            figure1_loop(10, 10),
            config=PlanConfig(force_dataflow=True),
            cache=False,
        )
        assert p.strategy == "dataflow"
        assert dict(p.skipped)["recurrence-chains"] == (
            "disabled by PlanConfig(force_dataflow=True)"
        )
        old = recurrence_chain_partition(figure1_loop(10, 10), force_dataflow=True)
        assert schedule_mismatches(p.schedule, old.schedule) == []

    def test_no_applicable_strategy_raises_with_reasons(self):
        with pytest.raises(PartitioningNotApplicable) as exc:
            plan(
                cholesky_loop(nmat=1, m=2, n=4, nrhs=1),
                config=PlanConfig(strategies=("recurrence-chains", "pl")),
                cache=False,
            )
        message = str(exc.value)
        assert "recurrence-chains" in message and "pl" in message
        assert "perfect nest" in message

    def test_unknown_strategy_name(self):
        with pytest.raises(KeyError):
            plan(
                figure2_loop(8),
                config=PlanConfig(strategies=("no-such-scheme",)),
                cache=False,
            )

    def test_registry_covers_all_seven_schemes(self):
        names = strategy_names()
        assert names[:2] == ("recurrence-chains", "dataflow")  # Algorithm 1 first
        for name, _ in BASELINES:
            assert name in names
        table = strategy_table()
        assert {row["name"] for row in table} == set(names)
        assert all(row["description"] for row in table)


class TestBaselineStrategies:
    @pytest.mark.parametrize("name,schedule_fn", BASELINES, ids=[n for n, _ in BASELINES])
    def test_pinned_strategy_matches_old_entry_point(self, name, schedule_fn):
        prog = figure1_loop(8, 8)
        p = plan(prog, config=PlanConfig(strategies=(name,)), cache=False)
        assert p.strategy == name
        old = schedule_fn(figure1_loop(8, 8), {})
        assert schedule_mismatches(p.schedule, old) == []
        assert p.validate(seeds=(0,)).ok

    def test_pl_partition_reports_its_own_scheme(self):
        p = plan(
            figure1_loop(8, 8), config=PlanConfig(strategies=("pl",)), cache=False
        )
        assert isinstance(p.partition, PLPartition)
        assert p.partition.scheme == "pl"
        pdm = plan(
            figure1_loop(8, 8), config=PlanConfig(strategies=("pdm",)), cache=False
        )
        assert pdm.partition.scheme == "pdm"
        assert not isinstance(pdm.partition, PLPartition)


class TestPlanConfig:
    def test_engine_validation(self):
        with pytest.raises(ValueError):
            PlanConfig(engine="banana")
        with pytest.raises(ValueError):
            PlanConfig(bulk_size_threshold=0)

    def test_engines_produce_identical_schedules(self):
        set_plan = plan(
            figure1_loop(10, 10), config=PlanConfig(engine="set"), cache=False
        )
        vec_plan = plan(
            figure1_loop(10, 10), config=PlanConfig(engine="vector"), cache=False
        )
        assert schedule_mismatches(set_plan.schedule, vec_plan.schedule) == []

    def test_bulk_threshold_override_is_scoped(self):
        from repro.isl import relations

        before = relations.BULK_SIZE_THRESHOLD
        p = plan(
            figure1_loop(10, 10),
            config=PlanConfig(bulk_size_threshold=1),
            cache=False,
        )
        # threshold=1 forces the vector engine even on this 100-point space …
        assert p.partition.array_backed
        # … and the global constant is restored afterwards.
        assert relations.BULK_SIZE_THRESHOLD == before

    def test_strategy_order_is_honoured(self):
        p = plan(
            figure1_loop(8, 8),
            config=PlanConfig(strategies=("tiling", "recurrence-chains")),
            cache=False,
        )
        assert p.strategy == "tiling"

    def test_configs_cache_separately(self):
        cache = PlanCache()
        a = plan(figure2_loop(10), cache=cache)
        b = plan(
            figure2_loop(10), config=PlanConfig(strategies=("pdm",)), cache=cache
        )
        assert a is not b and len(cache) == 2


class TestPlanCacheMechanics:
    def test_lru_eviction(self):
        cache = PlanCache(maxsize=2)
        plans = [plan(figure2_loop(n), cache=cache) for n in (6, 7, 8)]
        assert len(cache) == 2
        # the oldest entry (n=6) was evicted: re-planning misses and rebuilds
        rebuilt = plan(figure2_loop(6), cache=cache)
        assert rebuilt is not plans[0]

    def test_fingerprint_is_content_based(self):
        assert program_fingerprint(figure1_loop(9, 9)) == program_fingerprint(
            figure1_loop(9, 9)
        )
        assert program_fingerprint(figure1_loop(9, 9)) != program_fingerprint(
            figure1_loop(9, 10)
        )

    def test_fingerprint_distinguishes_custom_semantics(self):
        """Same loop text with different statement semantics must not share a
        cached plan — the cached Plan executes *its* program's semantics."""
        import numpy as np

        from repro.ir.builder import aref, assign, loop, program
        from repro.ir.semantics import sum_semantics

        def build(semantics):
            body = assign(
                "s", aref("x", "I+1"), [aref("x", "I")], semantics=semantics
            )
            return program(
                "sem-probe", loop("I", 1, 8, body), array_shapes={"x": (10,)}
            )

        cache = PlanCache()
        default_plan = plan(build(None), cache=cache)
        summing_plan = plan(build(sum_semantics), cache=cache)
        assert summing_plan is not default_plan
        assert len(cache) == 2
        # same semantics object again: now it hits
        assert plan(build(sum_semantics), cache=cache) is summing_plan
        # and the cached plans execute their own program's semantics
        assert not np.array_equal(
            default_plan.execute()["x"], summing_plan.execute()["x"]
        )

    def test_default_cache_is_shared(self):
        cache = default_plan_cache()
        p = plan(figure2_loop(9))
        assert plan(figure2_loop(9)) is p
        assert cache.stats()["hits"] >= 1


class TestPlanExplain:
    def test_explain_reports_skips_selection_and_timing(self):
        p = plan(example3_loop(8), config=PlanConfig(selector="fixed"), cache=False)
        lines = p.explain().splitlines()
        assert lines[0].startswith("plan for 'example3'")
        skips = [l for l in lines if l.strip().startswith("- skipped")]
        assert any("recurrence-chains" in l for l in skips)
        # every recorded skip carries its reason text
        for name, reason in p.skipped:
            assert any(name in l and reason in l for l in skips)
        selected = [l for l in lines if "selected dataflow" in l]
        assert len(selected) == 1
        assert " in " in selected[0] and "ms" in selected[0]  # timing suffix
        assert "schedule:" in lines[-1]

    def test_explain_lists_skips_in_chain_order(self):
        p = plan(
            cholesky_loop(nmat=1, m=2, n=4, nrhs=1),
            config=PlanConfig(
                strategies=("recurrence-chains", "pl", "tiling", "dataflow")
            ),
            cache=False,
        )
        assert [name for name, _ in p.skipped] == [
            "recurrence-chains", "pl", "tiling",
        ]
        text = p.explain()
        positions = [text.index(f"skipped {name}:") for name, _ in p.skipped]
        assert positions == sorted(positions)
        assert text.index("selected dataflow") > positions[-1]
        # the imperfect-nest strategies report the perfect-nest requirement
        reasons = dict(p.skipped)
        assert "perfect nest" in reasons["pl"]
        assert "perfect nest" in reasons["tiling"]

    def test_explain_pinned_strategy_has_no_skips(self):
        p = plan(
            figure1_loop(6, 6), config=PlanConfig(strategies=("pdm",)), cache=False
        )
        assert p.skipped == ()
        assert "skipped" not in p.explain()
        assert "selected pdm" in p.explain()

    def test_explain_without_timing_omits_duration(self):
        from dataclasses import replace

        p = plan(figure2_loop(8), cache=False)
        untimed = replace(p, timings={})
        selected = [
            l for l in untimed.explain().splitlines() if "selected" in l
        ][0]
        assert " in " not in selected

    def test_force_dataflow_reason_appears_in_explain(self):
        p = plan(
            figure1_loop(8, 8),
            config=PlanConfig(force_dataflow=True),
            cache=False,
        )
        assert "disabled by PlanConfig(force_dataflow=True)" in p.explain()


class TestPlanCacheLRUBoundaries:
    def test_maxsize_validation(self):
        with pytest.raises(ValueError):
            PlanCache(maxsize=0)
        assert PlanCache(maxsize=1).maxsize == 1

    def test_get_refreshes_recency(self):
        """A cache *hit* must move the entry to most-recently-used: after
        hitting the oldest entry, an insertion evicts the other one."""
        cache = PlanCache(maxsize=2)
        a = plan(figure2_loop(6), cache=cache)
        b = plan(figure2_loop(7), cache=cache)
        assert plan(figure2_loop(6), cache=cache) is a  # refresh a
        plan(figure2_loop(8), cache=cache)  # evicts b (now LRU), not a
        assert plan(figure2_loop(6), cache=cache) is a  # still cached
        assert plan(figure2_loop(7), cache=cache) is not b  # was evicted

    def test_maxsize_one_keeps_only_latest(self):
        cache = PlanCache(maxsize=1)
        a = plan(figure2_loop(6), cache=cache)
        b = plan(figure2_loop(7), cache=cache)
        assert len(cache) == 1
        assert plan(figure2_loop(7), cache=cache) is b
        assert plan(figure2_loop(6), cache=cache) is not a

    def test_put_existing_key_updates_without_eviction(self):
        cache = PlanCache(maxsize=2)
        a = plan(figure2_loop(6), cache=cache)
        b = plan(figure2_loop(7), cache=cache)
        key_a = PlanCache.key(a.program, a.params, a.config)
        cache.put(key_a, a)  # re-insert under the same key
        assert len(cache) == 2  # no growth, no eviction
        assert plan(figure2_loop(7), cache=cache) is b  # b survived

    def test_eviction_is_oldest_first_across_overflow(self):
        cache = PlanCache(maxsize=2)
        plans = [plan(figure2_loop(n), cache=cache) for n in (6, 7, 8, 9)]
        assert len(cache) == 2
        # only the two newest survive
        assert plan(figure2_loop(9), cache=cache) is plans[3]
        assert plan(figure2_loop(8), cache=cache) is plans[2]
        assert plan(figure2_loop(6), cache=cache) is not plans[0]

    def test_clear_resets_entries_and_counters(self):
        cache = PlanCache(maxsize=4)
        plan(figure2_loop(6), cache=cache)
        plan(figure2_loop(6), cache=cache)
        assert cache.stats() == {"size": 1, "hits": 1, "misses": 1}
        cache.clear()
        assert cache.stats() == {"size": 0, "hits": 0, "misses": 0}


class TestPlanObject:
    def test_execute_matches_sequential(self):
        import numpy as np

        from repro.runtime import execute_sequential

        prog = figure1_loop(10, 10)
        p = plan(prog, cache=False)
        ref = execute_sequential(prog, {})
        store = p.execute()
        assert np.array_equal(ref["a"], store["a"])
        run = p.execute(threads=3)
        assert np.array_equal(ref["a"], run.store["a"])
        assert run.instances_executed == p.schedule.total_work

    def test_summary_superset_of_old_summary(self):
        prog = figure1_loop(10, 10)
        p = plan(prog, cache=False)
        old = recurrence_chain_partition(figure1_loop(10, 10)).summary()
        new = p.summary()
        for key, value in old.items():
            assert new[key] == value
        assert new["strategy"] == "recurrence-chains"

    def test_codegen_targets(self):
        p = plan(figure1_loop(6, 6), cache=False)
        assert "def run_schedule" in p.codegen()
        assert "DOALL" in p.codegen(target="fortran")
        with pytest.raises(ValueError):
            p.codegen(target="cobol")
        baseline = plan(
            figure1_loop(6, 6), config=PlanConfig(strategies=("pdm",)), cache=False
        )
        with pytest.raises(ValueError):
            baseline.codegen(target="fortran")

    def test_chain_diagnostics(self):
        p = plan(figure1_loop(20, 30), cache=False)
        assert p.chains and p.recurrence is not None
        assert p.longest_chain() <= p.chain_length_bound()
        df = plan(example3_loop(10), cache=False)
        assert df.chain_length_bound() is None and df.longest_chain() == 0


class TestPlanCacheThreadSafety:
    def test_concurrent_get_put_never_corrupts(self):
        """Hammer one PlanCache from many threads with interleaved hits,
        misses and evictions; the LRU must stay bounded and consistent.
        (Unlocked OrderedDict mutation raises or corrupts under this load —
        the regression this pins is the daemon's shared-cache requirement.)"""
        import threading

        cache = PlanCache(maxsize=8)
        sentinel = object()
        errors = []

        def worker(worker_id):
            try:
                for i in range(300):
                    key = (f"fp{(worker_id + i) % 16}", (), None)
                    if cache.get(key) is None:
                        cache.put(key, sentinel)
                    if i % 50 == 0:
                        cache.stats()
            except Exception as exc:  # noqa: BLE001 - collected for assert
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(w,)) for w in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        assert len(cache) <= 8
        stats = cache.stats()
        assert stats["hits"] + stats["misses"] == 8 * 300

    def test_concurrent_plan_calls_share_one_cache(self):
        """plan() itself is safe against a shared cache: all threads get
        the identical plan object once it is cached."""
        import threading

        cache = PlanCache()
        prog = figure2_loop(8)
        plans, errors = [], []

        def worker():
            try:
                for _ in range(5):
                    plans.append(plan(prog, cache=cache))
            except Exception as exc:  # noqa: BLE001 - collected for assert
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        # racing misses may each have planned (last put wins) — every
        # result must still be an equivalent plan of the same program...
        final = plan(prog, cache=cache)
        assert all(
            p.fingerprint == final.fingerprint and p.strategy == final.strategy
            for p in plans
        )
        # ...and once the race settles, hits are identity-stable
        assert plan(prog, cache=cache) is final
