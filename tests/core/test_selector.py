"""Tests for the strategy-selector layer of repro.core.strategy.

``plan()``'s dispatch is a selector (``fixed`` / ``feature_rules`` /
``table``) ranking the registered chain; these tests pin the registry
surface, the :class:`SelectionReport` attached to every plan, the calibrated
table's loading/fallback behavior, and the bypass rules (pinned orders,
single-strategy chains, ``force_dataflow``).  The bit-identity of
``selector="fixed"`` with the historical chain is pinned separately in
``test_strategy.py``.
"""

import pytest

from repro.core.strategy import (
    DEFAULT_SELECTOR,
    SELECTION_TABLE_PATH,
    PlanConfig,
    Score,
    SelectionReport,
    clear_selection_table_cache,
    get_selector,
    get_strategy,
    load_selection_table,
    plan,
    selector_names,
    strategy_names,
)
from repro.workloads.examples import example3_loop, figure1_loop, figure2_loop


@pytest.fixture(autouse=True)
def fresh_table_cache():
    clear_selection_table_cache()
    yield
    clear_selection_table_cache()


class TestRegistry:
    def test_registered_selectors(self):
        assert selector_names() == ("fixed", "feature_rules", "table")
        assert DEFAULT_SELECTOR == "table"
        assert PlanConfig().selector == "table"

    def test_get_selector(self):
        sel = get_selector("feature_rules")
        assert sel.name == "feature_rules" and callable(sel.rank)
        with pytest.raises(KeyError, match="unknown selector 'banana'"):
            get_selector("banana")

    def test_planconfig_rejects_unknown_selector(self):
        with pytest.raises(ValueError, match="unknown selector"):
            PlanConfig(selector="banana")

    def test_every_strategy_has_a_score_hook(self):
        from repro.analysis.features import program_features

        features = program_features(figure1_loop(6, 6), cache=False)
        for name in strategy_names():
            s = get_strategy(name).score(features)
            assert isinstance(s, Score)
            assert 0.0 <= s.value <= 1.0 and s.reason


class TestSelectionReports:
    def test_table_selector_on_calibrated_bucket(self):
        p = plan(figure1_loop(10, 10), cache=False)
        sel = p.selection
        assert isinstance(sel, SelectionReport)
        assert sel.selector == "table"
        assert sel.source == "calibrated workload table"
        assert sel.bucket == "perfect|1cp|coupled|nonuniform|rect|d2|dep"
        assert sel.order[0] == "recurrence-chains"
        assert p.strategy == "recurrence-chains"
        # scores cover the whole chain, calibrated entries first
        assert [name for name, _, _ in sel.scores] == list(sel.order)
        assert "calibrated" in sel.scores[0][2]

    def test_table_falls_back_on_uncalibrated_bucket(self):
        # example3's bucket is not in the corpus-derived table
        p = plan(example3_loop(8), cache=False)
        sel = p.selection
        assert sel.selector == "table"
        assert sel.source == "bucket not calibrated; feature-rule fallback"
        assert sel.scores and sel.features is not None
        assert sel.bucket not in load_selection_table()["buckets"]

    def test_feature_rules_selector(self):
        p = plan(
            figure1_loop(10, 10),
            config=PlanConfig(selector="feature_rules"), cache=False,
        )
        sel = p.selection
        assert sel.selector == "feature_rules"
        assert sel.order[0] == "recurrence-chains"  # non-uniform single pair
        # scores are sorted descending and cover every registered strategy
        values = [v for _, v, _ in sel.scores]
        assert values == sorted(values, reverse=True)
        assert set(sel.order) == set(strategy_names())

    def test_selectors_only_reorder_the_chain(self):
        for name in selector_names():
            p = plan(
                figure2_loop(12),
                config=PlanConfig(selector=name), cache=False,
            )
            assert sorted(p.selection.order) == sorted(strategy_names())

    def test_pinned_order_skips_selection(self):
        p = plan(
            figure1_loop(8, 8),
            config=PlanConfig(strategies=("dataflow", "doacross")),
            cache=False,
        )
        sel = p.selection
        assert sel.source == "pinned order (PlanConfig.strategies)"
        assert sel.order == ("dataflow", "doacross")
        assert sel.scores == () and sel.features is None

    def test_force_dataflow_uses_the_fixed_rank(self):
        p = plan(
            figure1_loop(8, 8),
            config=PlanConfig(force_dataflow=True), cache=False,
        )
        assert p.strategy == "dataflow"
        assert p.selection.source == "fixed chain (force_dataflow)"
        assert p.selection.scores == ()

    def test_explain_shows_scores_for_ranked_plans_only(self):
        ranked = plan(figure1_loop(10, 10), cache=False).explain()
        assert "selector 'table'" in ranked or "selector" in ranked
        assert "- score recurrence-chains" in ranked
        assert "features:" in ranked and "bucket:" in ranked

        fixed = plan(
            figure1_loop(10, 10),
            config=PlanConfig(selector="fixed"), cache=False,
        ).explain()
        assert "- score" not in fixed and "features:" not in fixed


class TestSelectionTable:
    def test_checked_in_table_loads_and_is_cached(self):
        table = load_selection_table()
        assert table["version"] == 1 and table["processors"] == 4
        assert table["buckets"] and table["families"]
        for entries in table["buckets"].values():
            assert entries[0]["rel_time"] == 1.0  # normalized to the best
            names = [e["strategy"] for e in entries]
            assert set(names) <= set(strategy_names())
        assert load_selection_table() is table  # per-path cache

    def test_missing_table_yields_empty(self, tmp_path):
        table = load_selection_table(tmp_path / "nope.json")
        assert table == {"version": 0, "buckets": {}, "families": {}}

    def test_missing_table_behaves_like_feature_rules(self, tmp_path, monkeypatch):
        import repro.core.strategy as strategy_mod

        monkeypatch.setattr(
            strategy_mod, "SELECTION_TABLE_PATH", tmp_path / "absent.json"
        )
        clear_selection_table_cache()
        p = plan(figure1_loop(10, 10), cache=False)
        assert p.selection.selector == "table"
        assert p.selection.source == "bucket not calibrated; feature-rule fallback"
        assert p.strategy == "recurrence-chains"  # the rules agree here

    def test_checked_in_path_is_packaged_beside_the_module(self):
        assert SELECTION_TABLE_PATH.name == "selection_table.json"
        assert SELECTION_TABLE_PATH.exists()
