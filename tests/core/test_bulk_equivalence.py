"""Equivalence of the vectorized partitioning engine with the set-based one.

The array-backed engine (lexicographic int64 keys, sorted-array membership,
Kahn peeling) must produce bit-identical partitions and wavefronts on every
example workload of the paper — perfect nests at iteration level and
imperfect nests at statement level — plus the synthetic scaling case.
"""

import numpy as np
import pytest

import repro.core.chains as chains_module
from repro.core.chains import chains_from_relation
from repro.core.dataflow import dataflow_partition
from repro.core.partition import three_set_partition
from repro.core.statement import build_statement_space
from repro.dependence import DependenceAnalysis
from repro.isl.relations import FiniteRelation
from repro.workloads.examples import (
    cholesky_loop,
    example2_loop,
    example3_loop,
    figure1_loop,
    figure2_loop,
)
from repro.workloads.synthetic import scale_partition_case


def _iteration_level(prog):
    analysis = DependenceAnalysis(prog, {})
    return prog.name, analysis.iteration_space_points, analysis.iteration_dependences


def _statement_level(prog):
    space = build_statement_space(prog, {})
    return prog.name, sorted(space.points), space.rd


def _cases():
    for prog in (figure1_loop(12, 12), figure2_loop(20), example2_loop(12)):
        yield _iteration_level(prog)
    for prog in (example3_loop(6), cholesky_loop(nmat=1, m=2, n=6, nrhs=1)):
        yield _statement_level(prog)
    space, rd = scale_partition_case(25, 20)
    yield "scale-25x20", [tuple(p) for p in space.tolist()], rd


CASES = list(_cases())
CASE_IDS = [name for name, _, _ in CASES]


class TestEngineEquivalence:
    @pytest.mark.parametrize("name,space,rd", CASES, ids=CASE_IDS)
    def test_three_set_partition_identical(self, name, space, rd):
        set_result = three_set_partition(space, rd, engine="set")
        vec_result = three_set_partition(space, rd, engine="vector")
        assert vec_result.space == set_result.space
        assert vec_result.p1 == set_result.p1
        assert vec_result.p2 == set_result.p2
        assert vec_result.p3 == set_result.p3
        assert vec_result.w == set_result.w
        assert vec_result.rd == set_result.rd
        assert vec_result.is_complete() and vec_result.respects_phase_order()

    @pytest.mark.parametrize("name,space,rd", CASES, ids=CASE_IDS)
    def test_dataflow_wavefronts_identical(self, name, space, rd):
        set_result = dataflow_partition(space, rd, engine="set")
        vec_result = dataflow_partition(space, rd, engine="vector")
        assert vec_result.wavefronts == set_result.wavefronts
        assert vec_result.is_complete(space)
        assert vec_result.respects_dependences()

    def test_array_space_input_equals_tuple_input(self):
        space, rd = scale_partition_case(15, 12)
        tuples = [tuple(p) for p in space.tolist()]
        for engine in ("set", "vector"):
            from_array = three_set_partition(space, rd, engine=engine)
            from_tuples = three_set_partition(tuples, rd, engine=engine)
            assert from_array == from_tuples
            assert (
                dataflow_partition(space, rd, engine=engine).wavefronts
                == dataflow_partition(tuples, rd, engine=engine).wavefronts
            )

    def test_unknown_engine_rejected(self):
        space, rd = scale_partition_case(4, 4)
        with pytest.raises(ValueError):
            three_set_partition(space, rd, engine="simd")
        with pytest.raises(ValueError):
            dataflow_partition(space, rd, engine="simd")

    def test_auto_falls_back_when_keys_overflow(self, monkeypatch):
        """Coordinates too large for int64 keys: auto uses the set engine —
        for every space input form — while forced vector raises."""
        import repro.isl.relations as relations_module

        monkeypatch.setattr(relations_module, "BULK_SIZE_THRESHOLD", 1)
        space = [(0, 0), (2**40, 2**40), (1, 1)]
        rd = FiniteRelation.from_pairs([((0, 0), (2**40, 2**40))])
        for space_input in (space, np.array(space, dtype=np.int64)):
            partition = three_set_partition(space_input, rd)
            assert partition.p1 == {(0, 0), (1, 1)}
            flow = dataflow_partition(space_input, rd)
            assert flow.num_steps == 2
        with pytest.raises(ValueError, match="too large"):
            three_set_partition(space, rd, engine="vector")


class TestVectorStallPaths:
    def test_cyclic_relation_detected(self):
        space = [(1,), (2,)]
        rd = FiniteRelation.from_pairs([((1,), (2,)), ((2,), (1,))])
        with pytest.raises(RuntimeError, match="stalled"):
            dataflow_partition(space, rd, engine="vector")

    def test_partial_cycle_detected_after_progress(self):
        # an acyclic prefix drains, then the cycle stalls the peeling
        space = [(1,), (2,), (3,)]
        rd = FiniteRelation.from_pairs(
            [((1,), (2,)), ((2,), (3,)), ((3,), (2,))]
        )
        with pytest.raises(RuntimeError, match="stalled"):
            dataflow_partition(space, rd, engine="vector")

    def test_max_steps_guard(self):
        space = [(i,) for i in range(1, 50)]
        rd = FiniteRelation.from_pairs([((i,), (i + 1,)) for i in range(1, 49)])
        with pytest.raises(RuntimeError, match="did not terminate"):
            dataflow_partition(space, rd, max_steps=5, engine="vector")

    def test_self_loop_stalls(self):
        space = [(1,), (2,)]
        rd = FiniteRelation.from_pairs([((2,), (2,))])
        with pytest.raises(RuntimeError, match="stalled"):
            dataflow_partition(space, rd, engine="vector")


class TestChainsBulkLookup:
    def test_sorted_array_lookup_matches_dict_lookup(self, monkeypatch):
        prog = figure1_loop(25, 25)
        analysis = DependenceAnalysis(prog, {})
        partition = three_set_partition(
            analysis.iteration_space_points, analysis.iteration_dependences
        )
        baseline = chains_from_relation(partition)
        monkeypatch.setattr(chains_module, "BULK_SIZE_THRESHOLD", 1)
        bulk = chains_from_relation(partition)
        assert [c.points for c in bulk] == [c.points for c in baseline]
