"""Property-based differential tests for the §3.3 statement level.

With three engines coexisting (set, vectorised iteration-level, array-native
statement-level) hand-pinned equivalence tests cover only the handful of
paper examples; this module pins the **tuple path and the array path of
`StatementLevelSpace` bit-identical on Hypothesis-generated programs** —
unified vectors, the statement-level Rd, the instance↔point maps, and the
dataflow schedules built from them — plus the §3.3 mapping invariant
(program order == lexicographic unified order) as a property of every
generated program.

The generated programs (see ``tests/strategies.py``) span 1–3 statements,
depth ≤ 3, imperfect placement, triangular/rectangular bounds and affine
subscripts with negative coefficients.  Run with ``--hypothesis-profile=ci``
for the derandomized fixed-budget profile CI uses.
"""

import numpy as np
from hypothesis import given

from repro.core.partitioner import dataflow_branch
from repro.core.statement import (
    UnifiedIndexMap,
    build_statement_space,
    statement_dataflow_schedule,
)
from repro.workloads.examples import cholesky_loop, example3_loop
from strategies import loop_programs


def spaces_for(prog):
    """The same program through the tuple path and the array path."""
    return (
        build_statement_space(prog, {}, engine="set"),
        build_statement_space(prog, {}, engine="vector"),
    )


def assert_schedules_identical(a, b):
    """Phase names and exact instance sequences must match."""
    assert a.num_phases == b.num_phases
    for pa, pb in zip(a.phases, b.phases):
        assert pa.name == pb.name
        assert pa.instances() == pb.instances()


class TestSpaceDifferential:
    @given(prog=loop_programs())
    def test_unified_vectors_bit_identical(self, prog):
        set_space, vec_space = spaces_for(prog)
        assert set_space.unified == vec_space.unified
        assert np.array_equal(set_space.unified_array, vec_space.unified_array)
        assert np.array_equal(set_space.stmt_ids, vec_space.stmt_ids)
        assert set_space.width == vec_space.width
        assert set_space.positions == vec_space.positions

    @given(prog=loop_programs())
    def test_instances_bit_identical_and_sequential(self, prog):
        set_space, vec_space = spaces_for(prog)
        assert set_space.instances == vec_space.instances
        # Both must enumerate exactly the sequential execution, in order.
        assert list(vec_space.instances) == [
            (label, tuple(it)) for label, it in prog.sequential_iterations({})
        ]

    @given(prog=loop_programs())
    def test_rd_bit_identical(self, prog):
        set_space, vec_space = spaces_for(prog)
        # FiniteRelation equality is representation-independent, so this
        # compares the array-built relation against the tuple-built one.
        assert set_space.rd == vec_space.rd

    @given(prog=loop_programs())
    def test_instance_of_roundtrip(self, prog):
        _, vec_space = spaces_for(prog)
        back = vec_space.instance_of()
        for inst, point in zip(vec_space.instances, vec_space.unified):
            assert inst in back[point]
        # and the vectorised reverse map agrees with the dict
        if len(vec_space):
            ids = vec_space.stmt_ids_of(vec_space.unified_array)
            assert np.array_equal(ids, vec_space.stmt_ids)

    @given(prog=loop_programs())
    def test_sequential_order_is_lexicographic(self, prog):
        """The §3.3 mapping invariant on every generated (normalized) program."""
        _, vec_space = spaces_for(prog)
        assert vec_space.sequential_order_is_lexicographic(
            prog.sequential_iterations({})
        )

    @given(prog=loop_programs())
    def test_unify_array_matches_scalar_unify(self, prog):
        index_map = UnifiedIndexMap.from_program(prog)
        _, vec_space = spaces_for(prog)
        for label, iteration in vec_space.instances:
            batch = index_map.unify_array(label, np.asarray([iteration]))
            assert tuple(batch[0].tolist()) == index_map.unify(label, iteration)


class TestScheduleDifferential:
    @given(prog=loop_programs())
    def test_dataflow_branch_engines_bit_identical(self, prog):
        set_result = dataflow_branch(prog, {}, engine="set")
        vec_result = dataflow_branch(prog, {}, engine="vector")
        assert set_result.scheme == vec_result.scheme == "dataflow"
        assert_schedules_identical(set_result.schedule, vec_result.schedule)

    @given(prog=loop_programs(min_statements=2))
    def test_statement_schedule_validates(self, prog):
        """Array-path statement schedules execute to the sequential result."""
        from repro.runtime.executor import validate_schedule

        result = dataflow_branch(prog, {}, engine="vector")
        space = result.statement_space
        if space is not None:
            assert result.schedule.covers(space.instances)
        report = validate_schedule(
            prog, result.schedule, {}, dependences=None, seeds=(0,)
        )
        assert report.ok, str(report)


class TestPinnedExamples:
    """The paper's imperfect nests, pinned explicitly (no generation)."""

    def test_example3_differential(self):
        set_space, vec_space = spaces_for(example3_loop(12))
        assert set_space.unified == vec_space.unified
        assert set_space.instances == vec_space.instances
        assert set_space.rd == vec_space.rd

    def test_cholesky_differential(self):
        prog = cholesky_loop(nmat=1, m=2, n=6, nrhs=1)
        set_space, vec_space = spaces_for(prog)
        assert set_space.unified == vec_space.unified
        assert set_space.instances == vec_space.instances
        assert set_space.rd == vec_space.rd
        set_result = dataflow_branch(prog, {}, engine="set")
        vec_result = dataflow_branch(prog, {}, engine="vector")
        assert_schedules_identical(set_result.schedule, vec_result.schedule)

    def test_vector_path_is_array_backed_at_scale(self):
        """Above the bulk threshold the whole statement level stays in array
        form: array-backed rd, UnifiedArrayPhase schedule."""
        from repro.core.schedule import UnifiedArrayPhase
        from repro.workloads.synthetic import large_cholesky_nest

        prog = large_cholesky_nest(120)  # 7380 instances > BULK_SIZE_THRESHOLD
        space = build_statement_space(prog, {}, engine="vector")
        assert space.rd._pairs is None  # tuple pairs never built
        schedule = statement_dataflow_schedule("stmt", space, engine="vector")
        assert all(isinstance(p, UnifiedArrayPhase) for p in schedule.phases)
        # and the lazy tuple views still agree with the set path
        set_space = build_statement_space(prog, {}, engine="set")
        assert set_space.rd == space.rd
        assert set_space.instances == space.instances
